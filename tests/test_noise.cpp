// Tests for the noise engine: coupling calculators, envelope construction,
// delay-noise superposition, the iterative window/noise fixpoint and the
// false-aggressor filter.
#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "noise/aggressor_filter.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/envelope_builder.hpp"
#include "noise/iterative.hpp"
#include "noise/noise_analyzer.hpp"
#include "sta/analyzer.hpp"
#include "wave/ramp.hpp"

namespace tka::noise {
namespace {

using test::Fixture;

struct Bound {
  sta::DelayModel model;
  sta::StaResult sta;
  Bound(const Fixture& fx)
      : model(*fx.netlist, fx.parasitics),
        sta(sta::run_sta(*fx.netlist, model, fx.sta_options())) {}
};

TEST(AnalyticCalc, PeakFormulaAndBounds) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n0", "c1_n0", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  const net::NetId victim = fx.netlist->net_by_name("c0_n0");
  const wave::PulseShape s = calc.pulse(victim, cap, 0.05);
  EXPECT_GT(s.peak, 0.0);
  // Never above the charge-sharing bound Vdd*Cc/(Cv+Cc).
  const double cv = b.model.net_load_pf(victim);
  EXPECT_LE(s.peak, 1.2 * 0.006 / (cv + 0.006) + 1e-9);
  EXPECT_DOUBLE_EQ(s.rise, 0.05);
  EXPECT_NEAR(s.tau, b.model.driver_res_kohm(victim) * (cv + 0.006), 1e-12);
}

TEST(AnalyticCalc, PeakMonotonicInCap) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId small = test::couple(fx, "c0_n0", "c1_n0", 0.002);
  const layout::CapId big = test::couple(fx, "c0_n1", "c1_n1", 0.008);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EXPECT_GT(calc.pulse(fx.netlist->net_by_name("c0_n1"), big, 0.05).peak,
            calc.pulse(fx.netlist->net_by_name("c0_n0"), small, 0.05).peak);
}

TEST(AnalyticCalc, SlowerAggressorSmallerPeak) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n0", "c1_n0", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  const net::NetId v = fx.netlist->net_by_name("c0_n0");
  EXPECT_GT(calc.pulse(v, cap, 0.02).peak, calc.pulse(v, cap, 0.5).peak);
}

TEST(AnalyticCalc, ZeroedCapGivesZeroPulse) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n0", "c1_n0", 0.006);
  fx.parasitics.zero_coupling(cap);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EXPECT_DOUBLE_EQ(calc.pulse(fx.netlist->net_by_name("c0_n0"), cap, 0.05).peak, 0.0);
}

TEST(AnalyticVsSim, PeaksAgreeWithinModelError) {
  // The closed form and the MNA template should agree on peak within a
  // factor ~2 across a parameter sweep (they model the same physics at
  // different fidelity).
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n0", "c1_n0", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator ana(fx.parasitics, b.model);
  SimCouplingCalculator sim(*fx.netlist, fx.parasitics, b.model);
  const net::NetId v = fx.netlist->net_by_name("c0_n0");
  for (double tr : {0.02, 0.05, 0.15, 0.4}) {
    const double pa = ana.pulse(v, cap, tr).peak;
    const double ps = sim.pulse(v, cap, tr).peak;
    ASSERT_GT(ps, 0.0);
    EXPECT_LT(pa / ps, 2.5) << "tr=" << tr;
    EXPECT_GT(pa / ps, 0.4) << "tr=" << tr;
  }
}

TEST(DelayNoise, HandComputedRectangleEnvelope) {
  const double vdd = 1.0;
  const wave::Pwl vic = wave::make_rising_ramp(1.0, 0.2, vdd);
  // Rectangle of 0.3 V over [0.9, 1.5] (with sharp edges).
  const wave::Pwl env({{0.9, 0.0}, {0.9001, 0.3}, {1.5, 0.3}, {1.5001, 0.0}});
  // Ramp reaches 0.8 V (so ramp-0.3 = 0.5) at t = 0.9 + 0.8*0.2 = 1.06.
  EXPECT_NEAR(delay_noise(vic, env, vdd, 1.0), 0.06, 1e-3);
}

TEST(DelayNoise, TallEnvelopeDelaysPastItsEnd) {
  const double vdd = 1.0;
  const wave::Pwl vic = wave::make_rising_ramp(1.0, 0.2, vdd);
  // 0.6 V held until 1.5 then linear to 0 at 1.6: vic-env crosses 0.5 when
  // env = 0.5 on the falling edge -> t = 1.5 + 0.1/6.
  const wave::Pwl env({{0.8, 0.0}, {0.8001, 0.6}, {1.5, 0.6}, {1.6, 0.0}});
  EXPECT_NEAR(delay_noise(vic, env, vdd, 1.0), 0.5 + 0.1 / 6.0, 1e-3);
}

TEST(DelayNoise, EnvelopeBeforeTransitionIsHarmless) {
  const double vdd = 1.0;
  const wave::Pwl vic = wave::make_rising_ramp(5.0, 0.2, vdd);
  const wave::Pwl env({{0.0, 0.0}, {0.1, 0.4}, {1.0, 0.0}});
  EXPECT_DOUBLE_EQ(delay_noise(vic, env, vdd, 5.0), 0.0);
}

TEST(DelayNoise, MonotoneInEnvelopeHeight) {
  const double vdd = 1.2;
  const wave::Pwl vic = wave::make_rising_ramp(2.0, 0.3, vdd);
  double prev = -1.0;
  for (double h : {0.05, 0.15, 0.3, 0.6, 0.9}) {
    const wave::Pwl env({{1.8, 0.0}, {1.9, h}, {2.6, h}, {3.0, 0.0}});
    const double dn = delay_noise(vic, env, vdd, 2.0);
    EXPECT_GE(dn, prev);
    prev = dn;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(CouplingMaskOps, AllNoneCountSet) {
  CouplingMask all = CouplingMask::all(5);
  CouplingMask none = CouplingMask::none(5);
  EXPECT_EQ(all.count(), 5u);
  EXPECT_EQ(none.count(), 0u);
  none.set(2, true);
  EXPECT_TRUE(none.active(2));
  EXPECT_EQ(none.count(), 1u);
  all.set(0, false);
  EXPECT_EQ(all.count(), 4u);
}

TEST(EnvelopeBuilderTest, EnvelopeSpansAggressorWindow) {
  Fixture fx = test::make_parallel_chains(2, 2);
  test::set_arrival(fx, "c1_in", 0.0, 0.4);  // wide aggressor window
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  const net::NetId v = fx.netlist->net_by_name("c0_n1");
  const net::NetId a = fx.netlist->net_by_name("c1_n1");
  const wave::Pwl& env = builder.envelope(v, cap);
  ASSERT_FALSE(env.empty());
  const sta::TimingWindow& aw = b.sta.windows[a];
  EXPECT_GT(aw.width(), 0.3);  // window survived propagation
  // The envelope peak plateau covers [eat+rise-ish, lat+rise-ish].
  const wave::PulseShape s = builder.pulse_shape(v, cap);
  EXPECT_NEAR(env.peak(), s.peak, 1e-9);
  EXPECT_NEAR(env.value(aw.eat + 0.5 * s.rise), s.peak, s.peak * 0.5);
  EXPECT_NEAR(env.value(aw.lat), s.peak, s.peak * 0.25);
}

TEST(EnvelopeBuilderTest, WidenedEnvelopeDominates) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  const net::NetId v = fx.netlist->net_by_name("c0_n1");
  const wave::Pwl base = builder.envelope(v, cap);
  const wave::Pwl wide = builder.envelope_widened(v, cap, 0.3);
  EXPECT_TRUE(wide.encapsulates(base, -10.0, 10.0, 1e-9));
  EXPECT_GT(wide.integral(), base.integral());
  // Narrowing never exceeds the base.
  const wave::Pwl narrow = builder.envelope_widened(v, cap, -10.0);
  EXPECT_TRUE(base.encapsulates(narrow, -10.0, 10.0, 1e-9));
}

TEST(EnvelopeBuilderTest, PlateauCoversTrapezoid) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  const net::NetId v = fx.netlist->net_by_name("c0_n1");
  const net::NetId a = fx.netlist->net_by_name("c1_n1");
  const sta::TimingWindow& aw = b.sta.windows[a];
  const wave::Pwl plateau =
      builder.plateau_envelope(v, cap, aw.eat - 1.0, aw.lat + 5.0);
  EXPECT_TRUE(plateau.encapsulates(builder.envelope(v, cap), -10.0, 20.0, 1e-9));
}

TEST(Analyzer, MoreAggressorsMoreNoise) {
  Fixture fx = test::make_parallel_chains(3, 3);
  const layout::CapId c1 = test::couple(fx, "c0_n2", "c1_n2", 0.005);
  const layout::CapId c2 = test::couple(fx, "c0_n2", "c2_n2", 0.005);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  const net::NetId v = fx.netlist->net_by_name("c0_n2");

  CouplingMask one = CouplingMask::none(fx.parasitics.num_couplings());
  one.set(c1, true);
  CouplingMask two = CouplingMask::all(fx.parasitics.num_couplings());
  (void)c2;
  const double dn1 = analyzer.victim_delay_noise(v, builder, one);
  const double dn2 = analyzer.victim_delay_noise(v, builder, two);
  EXPECT_GT(dn1, 0.0);
  EXPECT_GE(dn2, dn1);
}

TEST(Analyzer, UpperBoundDominatesActual) {
  Fixture fx = test::make_parallel_chains(3, 4);
  test::set_arrival(fx, "c1_in", 0.0, 0.2);
  test::set_arrival(fx, "c2_in", 0.1, 0.3);
  test::couple(fx, "c0_n3", "c1_n3", 0.006);
  test::couple(fx, "c0_n3", "c2_n3", 0.004);
  test::couple(fx, "c0_n2", "c1_n2", 0.005);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  const CouplingMask all = CouplingMask::all(fx.parasitics.num_couplings());
  for (net::NetId v = 0; v < fx.netlist->num_nets(); ++v) {
    const double dn = analyzer.victim_delay_noise(v, builder, all);
    const double ub = analyzer.delay_noise_upper_bound(v, builder, all);
    EXPECT_GE(ub + 1e-9, dn) << "net " << fx.netlist->net(v).name;
  }
}

TEST(Analyzer, DominanceIntervalAnchoredAtT50) {
  Fixture fx = test::make_parallel_chains(2, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  const net::NetId v = fx.netlist->net_by_name("c0_n1");
  const CouplingMask all = CouplingMask::all(fx.parasitics.num_couplings());
  const wave::DominanceInterval iv = analyzer.dominance_interval(v, builder, all);
  EXPECT_DOUBLE_EQ(iv.lo, b.sta.windows[v].lat);
  EXPECT_GT(iv.hi, iv.lo);
}

TEST(Iterative, NoCouplingsMeansNoNoise) {
  Fixture fx = test::make_parallel_chains(2, 3);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  IterativeOptions opt;
  opt.sta = fx.sta_options();
  const NoiseReport rep = analyze_iterative(
      *fx.netlist, fx.parasitics, b.model, calc,
      CouplingMask::all(fx.parasitics.num_couplings()), opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.noisy_delay, rep.noiseless_delay);
}

TEST(Iterative, NoisyDelayAtLeastNoiseless) {
  Fixture fx = test::make_parallel_chains(3, 4);
  test::couple(fx, "c0_n3", "c1_n3", 0.006);
  test::couple(fx, "c0_n2", "c2_n2", 0.005);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  IterativeOptions opt;
  opt.sta = fx.sta_options();
  const NoiseReport rep = analyze_iterative(
      *fx.netlist, fx.parasitics, b.model, calc,
      CouplingMask::all(fx.parasitics.num_couplings()), opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.noisy_delay, rep.noiseless_delay);
  for (net::NetId n = 0; n < fx.netlist->num_nets(); ++n) {
    EXPECT_GE(rep.noisy_windows[n].lat + 1e-12, rep.noiseless_windows[n].lat);
    EXPECT_GE(rep.delay_noise[n], 0.0);
  }
}

TEST(Iterative, MaskControlsParticipation) {
  Fixture fx = test::make_parallel_chains(2, 3);
  const layout::CapId cap = test::couple(fx, "c0_n2", "c1_n2", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  IterativeOptions opt;
  opt.sta = fx.sta_options();
  CouplingMask none = CouplingMask::none(fx.parasitics.num_couplings());
  const NoiseReport off = analyze_iterative(*fx.netlist, fx.parasitics, b.model,
                                            calc, none, opt);
  EXPECT_DOUBLE_EQ(off.noisy_delay, off.noiseless_delay);
  none.set(cap, true);
  const NoiseReport on = analyze_iterative(*fx.netlist, fx.parasitics, b.model,
                                           calc, none, opt);
  EXPECT_GT(on.noisy_delay, off.noisy_delay);
}

TEST(Iterative, IndirectAggressorNeedsIterations) {
  // Figure-1 scenario: a2 couples to a1's net; a1 couples to the victim.
  // When the victim switches just after a1's noiseless envelope ends, a1
  // alone is harmless — but a2's noise widens a1's window enough to reach
  // the victim. Indirect noise appears only through iteration, so there
  // must exist a victim alignment where the all-aggressor fixpoint beats
  // the a1-only one. Sweep the victim arrival to find it.
  bool found = false;
  for (double arrival = 0.25; arrival <= 0.60 && !found; arrival += 0.004) {
    Fixture fx = test::make_parallel_chains(3, 2, 0.012, 0.05);
    // Chain 0 = victim (arrives late), chain 1 = a1, chain 2 = a2 (overlaps
    // a1's transition so it can widen a1's window).
    test::set_arrival(fx, "c0_in", arrival, arrival);
    test::set_arrival(fx, "c1_in", 0.00, 0.02);
    test::set_arrival(fx, "c2_in", 0.00, 0.10);
    const layout::CapId a1_v = test::couple(fx, "c0_n1", "c1_n1", 0.02);
    test::couple(fx, "c1_n1", "c2_n1", 0.02);
    Bound b(fx);
    AnalyticCouplingCalculator calc(fx.parasitics, b.model);
    IterativeOptions opt;
    opt.sta = fx.sta_options();

    CouplingMask only_a1 = CouplingMask::none(fx.parasitics.num_couplings());
    only_a1.set(a1_v, true);
    const NoiseReport rep1 = analyze_iterative(*fx.netlist, fx.parasitics,
                                               b.model, calc, only_a1, opt);
    const CouplingMask all = CouplingMask::all(fx.parasitics.num_couplings());
    const NoiseReport rep2 = analyze_iterative(*fx.netlist, fx.parasitics,
                                               b.model, calc, all, opt);
    const double dn1 = rep1.noisy_delay - rep1.noiseless_delay;
    const double dn2 = rep2.noisy_delay - rep2.noiseless_delay;
    if (dn2 > dn1 + 5e-5 && dn1 < 1e-4 && rep2.iterations >= 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Iterative, PessimisticStartConvergesToSameFixpoint) {
  Fixture fx = test::make_parallel_chains(3, 3);
  test::couple(fx, "c0_n2", "c1_n2", 0.006);
  test::couple(fx, "c1_n1", "c2_n1", 0.004);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  IterativeOptions opt;
  opt.sta = fx.sta_options();
  const CouplingMask all = CouplingMask::all(fx.parasitics.num_couplings());
  const NoiseReport up = analyze_iterative(*fx.netlist, fx.parasitics, b.model,
                                           calc, all, opt);
  opt.pessimistic_start = true;
  const NoiseReport down = analyze_iterative(*fx.netlist, fx.parasitics,
                                             b.model, calc, all, opt);
  EXPECT_TRUE(up.converged);
  EXPECT_TRUE(down.converged);
  // The pessimistic fixpoint bounds the optimistic one from above; for this
  // well-behaved circuit they should coincide closely.
  EXPECT_GE(down.noisy_delay + 1e-9, up.noisy_delay);
  EXPECT_NEAR(down.noisy_delay, up.noisy_delay, 0.02);
}

TEST(Filter, FarWindowAggressorFiltered) {
  Fixture fx = test::make_parallel_chains(2, 2);
  // Aggressor switches far after the victim (5 ns later): can never hit it.
  test::set_arrival(fx, "c1_in", 5.0, 5.2);
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  AggressorFilter filter(*fx.netlist, fx.parasitics, analyzer, builder, {});
  const net::NetId victim = fx.netlist->net_by_name("c0_n1");
  const net::NetId agg = fx.netlist->net_by_name("c1_n1");
  EXPECT_TRUE(filter.is_false(victim, cap));
  // On the reverse side the roles swap: victim c1_n1 switches at 5 ns; the
  // aggressor (c0_n1, switching at ~0) ends long before -> also false.
  EXPECT_TRUE(filter.is_false(agg, cap));
  EXPECT_EQ(filter.num_filtered(), 2u);
}

TEST(Filter, OverlappingAggressorKept) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  AggressorFilter filter(*fx.netlist, fx.parasitics, analyzer, builder, {});
  EXPECT_FALSE(filter.is_false(fx.netlist->net_by_name("c0_n1"), cap));
}

TEST(Filter, ZeroedAndTinyCapsFiltered) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId dead = test::couple(fx, "c0_n0", "c1_n0", 0.005);
  const layout::CapId tiny = test::couple(fx, "c0_n1", "c1_n1", 1.2e-6);
  fx.parasitics.zero_coupling(dead);
  Bound b(fx);
  AnalyticCouplingCalculator calc(fx.parasitics, b.model);
  EnvelopeBuilder builder(*fx.netlist, fx.parasitics, calc, b.sta.windows);
  NoiseAnalyzer analyzer(*fx.netlist, fx.parasitics, b.model);
  AggressorFilter filter(*fx.netlist, fx.parasitics, analyzer, builder, {});
  EXPECT_TRUE(filter.is_false(fx.netlist->net_by_name("c0_n0"), dead));
  EXPECT_TRUE(filter.is_false(fx.netlist->net_by_name("c0_n1"), tiny));
}

}  // namespace
}  // namespace tka::noise
