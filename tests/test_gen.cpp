// Tests for the synthetic benchmark generator and the i1..i10 suite.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/benchmark_suite.hpp"
#include "gen/circuit_generator.hpp"
#include "net/topo.hpp"
#include "sta/analyzer.hpp"
#include "util/error.hpp"

namespace tka::gen {
namespace {

TEST(Generator, ProducesValidDeterministicCircuit) {
  GeneratorParams p;
  p.num_gates = 80;
  p.target_couplings = 300;
  p.seed = 42;
  const GeneratedCircuit a = generate_circuit(p);
  const GeneratedCircuit b = generate_circuit(p);
  a.netlist->validate();
  EXPECT_EQ(a.netlist->num_gates(), b.netlist->num_gates());
  EXPECT_EQ(a.netlist->num_nets(), b.netlist->num_nets());
  EXPECT_EQ(a.parasitics.num_couplings(), b.parasitics.num_couplings());
  for (layout::CapId id = 0; id < a.parasitics.num_couplings(); ++id) {
    EXPECT_EQ(a.parasitics.coupling(id).net_a, b.parasitics.coupling(id).net_a);
    EXPECT_DOUBLE_EQ(a.parasitics.coupling(id).cap_pf,
                     b.parasitics.coupling(id).cap_pf);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorParams p;
  p.num_gates = 80;
  p.seed = 1;
  const GeneratedCircuit a = generate_circuit(p);
  p.seed = 2;
  const GeneratedCircuit b = generate_circuit(p);
  // Structure almost surely differs: compare gate fanin wiring and the
  // extracted coupling values.
  bool differs = a.netlist->num_gates() != b.netlist->num_gates() ||
                 a.parasitics.num_couplings() != b.parasitics.num_couplings();
  if (!differs) {
    for (net::GateId g = 0; g < a.netlist->num_gates() && !differs; ++g) {
      differs = a.netlist->gate(g).inputs != b.netlist->gate(g).inputs;
    }
    for (layout::CapId c = 0; c < a.parasitics.num_couplings() && !differs; ++c) {
      differs = a.parasitics.coupling(c).cap_pf != b.parasitics.coupling(c).cap_pf;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, GateCountNearTarget) {
  GeneratorParams p;
  p.num_gates = 200;
  p.seed = 7;
  const GeneratedCircuit c = generate_circuit(p);
  // A few gates may be skipped on degenerate fanin picks.
  EXPECT_GE(c.netlist->num_gates(), 190u);
  EXPECT_LE(c.netlist->num_gates(), 200u);
}

TEST(Generator, CouplingTargetRespected) {
  GeneratorParams p;
  p.num_gates = 150;
  p.target_couplings = 400;
  p.seed = 3;
  const GeneratedCircuit c = generate_circuit(p);
  EXPECT_LE(c.parasitics.num_couplings(), 400u);
  EXPECT_GE(c.parasitics.num_couplings(), 200u);  // enough density exists
}

TEST(Generator, ArrivalsCreateWindowDiversity) {
  GeneratorParams p;
  p.num_gates = 100;
  p.seed = 9;
  const GeneratedCircuit c = generate_circuit(p);
  sta::DelayModel model(*c.netlist, c.parasitics);
  const sta::StaResult res = sta::run_sta(*c.netlist, model, c.sta_options());
  int with_width = 0;
  for (net::NetId n : c.netlist->primary_inputs()) {
    if (res.windows[n].width() > 1e-6) ++with_width;
  }
  EXPECT_GT(with_width, 0);
  EXPECT_GT(res.max_lat, 0.1);  // non-trivial depth
}

TEST(Generator, HasLogicDepth) {
  GeneratorParams p;
  p.num_gates = 150;
  p.seed = 11;
  const GeneratedCircuit c = generate_circuit(p);
  const std::vector<int> lv = net::net_levels(*c.netlist);
  EXPECT_GE(*std::max_element(lv.begin(), lv.end()), p.min_depth / 2);
}

TEST(Suite, TenSpecsWithPaperSizes) {
  const auto& specs = benchmark_specs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_STREQ(specs[0].name, "i1");
  EXPECT_EQ(specs[0].gates, 59);
  EXPECT_EQ(specs[0].couplings, 232u);
  EXPECT_STREQ(specs[9].name, "i10");
  EXPECT_EQ(specs[9].gates, 3379);
  EXPECT_EQ(specs[9].couplings, 18318u);
  EXPECT_EQ(benchmark_spec("i5").gates, 204);
  EXPECT_THROW(benchmark_spec("i11"), Error);
}

TEST(Suite, BuildSmallBenchmarks) {
  for (const char* name : {"i1", "i3"}) {
    const GeneratedCircuit c = build_benchmark(benchmark_spec(name));
    c.netlist->validate();
    EXPECT_GT(c.parasitics.num_couplings(), 100u) << name;
    // Coupling count within 25% of the paper's figure (the synthetic layout
    // must offer enough overlap pairs).
    const double target = static_cast<double>(benchmark_spec(name).couplings);
    EXPECT_GT(c.parasitics.num_couplings(), 0.75 * target) << name;
  }
}

}  // namespace
}  // namespace tka::gen
