// Shared hand-crafted circuit fixtures for noise and top-k tests: parallel
// buffer chains with explicitly placed coupling caps and controllable
// input arrivals, bypassing the placer/extractor so electrical conditions
// are exact and easy to reason about.
#pragma once

#include <memory>
#include <vector>

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"
#include "sta/analyzer.hpp"

namespace tka::test {

/// A design with explicit parasitics and arrivals.
struct Fixture {
  std::unique_ptr<net::Netlist> netlist;
  layout::Parasitics parasitics{0};
  std::vector<sta::InputArrival> arrivals;  // by net id

  sta::StaOptions sta_options() const {
    sta::StaOptions opt;
    const std::vector<sta::InputArrival>* table = &arrivals;
    opt.input_arrival = [table](net::NetId n) {
      return n < table->size() ? (*table)[n] : sta::InputArrival{};
    };
    return opt;
  }
};

/// Builds `num_chains` parallel BUFX1 chains of `length` gates each. Chain
/// c's nets are named "c<c>_n<i>" (i = 0..length-1); its PI is "c<c>_in".
/// Every net gets `gcap` pF to ground and `res` kOhm of wire.
inline Fixture make_parallel_chains(int num_chains, int length,
                                    double gcap = 0.010, double res = 0.05) {
  Fixture fx;
  const net::CellLibrary& lib = net::CellLibrary::default_library();
  fx.netlist = std::make_unique<net::Netlist>(lib, "chains");
  const size_t buf = lib.index_of("BUFX1");
  for (int c = 0; c < num_chains; ++c) {
    net::NetId cur = fx.netlist->add_primary_input("c" + std::to_string(c) + "_in");
    for (int i = 0; i < length; ++i) {
      cur = fx.netlist->add_gate(
          buf, {cur}, "c" + std::to_string(c) + "_g" + std::to_string(i),
          "c" + std::to_string(c) + "_n" + std::to_string(i));
    }
    fx.netlist->mark_primary_output(cur);
  }
  fx.parasitics = layout::Parasitics(fx.netlist->num_nets());
  for (net::NetId n = 0; n < fx.netlist->num_nets(); ++n) {
    fx.parasitics.add_ground_cap(n, gcap);
    fx.parasitics.add_wire_res(n, res);
  }
  fx.arrivals.assign(fx.netlist->num_nets(), sta::InputArrival{});
  return fx;
}

/// Sets the arrival window of the named primary input.
inline void set_arrival(Fixture& fx, const std::string& pi_name, double eat,
                        double lat) {
  const net::NetId n = fx.netlist->net_by_name(pi_name);
  fx.arrivals[n] = {eat, lat};
}

/// Adds a coupling cap between two named nets.
inline layout::CapId couple(Fixture& fx, const std::string& a,
                            const std::string& b, double cap_pf) {
  return fx.parasitics.add_coupling(fx.netlist->net_by_name(a),
                                    fx.netlist->net_by_name(b), cap_pf);
}

}  // namespace tka::test
