// Snapshot-chain lifecycle tests: the chunked COW vector underneath
// Netlist/Parasitics storage, DesignSnapshot's bit-identity and sharing
// contracts, the concurrent publish/pin protocol the serving layer relies
// on (run under TSan in CI), and the mem.snapshot_bytes zero-balance
// teardown invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "layout/parasitics.hpp"
#include "net/netlist.hpp"
#include "obs/memory.hpp"
#include "session/analysis_session.hpp"
#include "session/design_snapshot.hpp"
#include "sta/delay_model.hpp"
#include "topk/topk_engine.hpp"
#include "util/cow_vec.hpp"

namespace tka {
namespace {

using session::DesignSnapshot;
using session::WhatIfEdit;
using test::Fixture;

// ---------------------------------------------------------------- CowVec

// Small chunks (2^2 = 4 elements) so a handful of pushes spans several.
using SmallVec = util::CowVec<int, 2>;

TEST(CowVec, PushBackIndexIterate) {
  SmallVec v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 11; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 11u);
  EXPECT_EQ(v.num_chunks(), 3u);  // 4 + 4 + 3
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i) * 10);
  }
  int expect = 0;
  for (int x : v) {
    EXPECT_EQ(x, expect);
    expect += 10;
  }
}

TEST(CowVec, FillConstructorAndMut) {
  SmallVec v(6, 7);
  EXPECT_EQ(v.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(v[i], 7);
  v.mut(5) = 42;
  EXPECT_EQ(v[5], 42);
  EXPECT_EQ(v[4], 7);
}

TEST(CowVec, CopySharesEveryChunk) {
  SmallVec a(10, 1);
  SmallVec b = a;
  ASSERT_EQ(b.num_chunks(), a.num_chunks());
  for (std::size_t c = 0; c < a.num_chunks(); ++c) {
    EXPECT_TRUE(a.chunk_shared(c));
    EXPECT_TRUE(b.chunk_shared(c));
  }
  // Reads never detach.
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 1);
  EXPECT_TRUE(a.chunk_shared(0));
}

TEST(CowVec, MutDetachesOnlyTheTouchedChunk) {
  SmallVec a(12, 5);  // chunks 0..2
  SmallVec b = a;
  b.mut(6) = 99;  // chunk 1
  EXPECT_EQ(b[6], 99);
  EXPECT_EQ(a[6], 5);  // original untouched
  EXPECT_FALSE(b.chunk_shared(1));
  EXPECT_FALSE(a.chunk_shared(1));
  EXPECT_TRUE(a.chunk_shared(0));
  EXPECT_TRUE(a.chunk_shared(2));
}

TEST(CowVec, PushBackOnCopyDetachesTail) {
  SmallVec a;
  for (int i = 0; i < 6; ++i) a.push_back(i);
  SmallVec b = a;
  b.push_back(100);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_EQ(b[6], 100);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(a[i], static_cast<int>(i));
  EXPECT_TRUE(a.chunk_shared(0));      // full chunk still shared
  EXPECT_FALSE(a.chunk_shared(1));     // tail chunk detached by b's append
}

TEST(CowVec, VisitChunksKeysIdentifySharing) {
  SmallVec a(8, 3);
  SmallVec b = a;
  b.mut(0) = 4;  // detach chunk 0 in b
  std::vector<const void*> ka, kb;
  a.visit_chunks([&](const void* key, const std::vector<int>&) {
    ka.push_back(key);
  });
  b.visit_chunks([&](const void* key, const std::vector<int>&) {
    kb.push_back(key);
  });
  ASSERT_EQ(ka.size(), 2u);
  ASSERT_EQ(kb.size(), 2u);
  EXPECT_NE(ka[0], kb[0]);  // detached
  EXPECT_EQ(ka[1], kb[1]);  // still shared
}

// --------------------------------------------------------- DesignSnapshot

// The victim chain plus aggressors with distinct coupling strengths, same
// shape the session tests use.
Fixture snapshot_fixture() {
  Fixture fx = test::make_parallel_chains(4, 4);
  test::couple(fx, "c0_n1", "c1_n1", 0.012);
  test::couple(fx, "c0_n2", "c2_n2", 0.006);
  test::couple(fx, "c0_n3", "c3_n3", 0.003);
  test::couple(fx, "c2_n1", "c3_n1", 0.004);
  return fx;
}

topk::TopkOptions options(const Fixture& fx, int k) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = topk::Mode::kElimination;
  opt.threads = 1;
  opt.iterative.sta = fx.sta_options();
  return opt;
}

void expect_identical(const topk::TopkResult& a, const topk::TopkResult& b) {
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.baseline_delay, b.baseline_delay);
  EXPECT_EQ(a.reference_delay, b.reference_delay);
  EXPECT_EQ(a.estimated_delay, b.estimated_delay);
  EXPECT_EQ(a.evaluated_delay, b.evaluated_delay);
  EXPECT_EQ(a.set_by_k, b.set_by_k);
}

void expect_same_design(const net::Netlist& nl_a,
                        const layout::Parasitics& pa,
                        const net::Netlist& nl_b,
                        const layout::Parasitics& pb) {
  ASSERT_EQ(nl_a.num_gates(), nl_b.num_gates());
  for (net::GateId g = 0; g < nl_a.num_gates(); ++g) {
    EXPECT_EQ(nl_a.gate(g).cell_index, nl_b.gate(g).cell_index) << "gate " << g;
  }
  ASSERT_EQ(pa.num_nets(), pb.num_nets());
  for (net::NetId n = 0; n < pa.num_nets(); ++n) {
    EXPECT_EQ(pa.ground_cap(n), pb.ground_cap(n)) << "net " << n;
    EXPECT_EQ(pa.wire_res(n), pb.wire_res(n)) << "net " << n;
  }
  ASSERT_EQ(pa.num_couplings(), pb.num_couplings());
  for (layout::CapId c = 0; c < pa.num_couplings(); ++c) {
    EXPECT_EQ(pa.coupling(c).cap_pf, pb.coupling(c).cap_pf) << "cap " << c;
  }
}

TEST(DesignSnapshot, ApplyMatchesDeepCopyBitForBit) {
  Fixture fx = snapshot_fixture();
  const std::size_t buf2 =
      net::CellLibrary::default_library().index_of("BUFX2");

  WhatIfEdit edit;
  edit.shield_couplings = {0};
  edit.zero_couplings = {3};
  edit.resizes = {
      {fx.netlist->net(fx.netlist->net_by_name("c0_n1")).driver, buf2}};

  // Deep-copy reference: apply the same edit to full copies.
  net::Netlist deep_nl(*fx.netlist);
  layout::Parasitics deep_par(fx.parasitics);
  session::apply_edit_to_design(deep_nl, deep_par, edit);

  auto base = DesignSnapshot::make_base(net::Netlist(*fx.netlist),
                                        layout::Parasitics(fx.parasitics),
                                        sta::DelayModelOptions{});
  auto child = base->apply(edit);

  EXPECT_EQ(base->epoch(), 0u);
  EXPECT_EQ(child->epoch(), 1u);
  expect_same_design(child->netlist(), child->parasitics(), deep_nl, deep_par);
  // The base is immutable: the edit must not leak backwards.
  expect_same_design(base->netlist(), base->parasitics(), *fx.netlist,
                     fx.parasitics);
  // COW: the successor introduces far less storage than the base design.
  EXPECT_GT(base->unique_bytes(), 0u);
  EXPECT_LT(child->unique_bytes(), base->unique_bytes());
}

TEST(DesignSnapshot, SessionOnSnapshotMatchesColdRun) {
  Fixture fx = snapshot_fixture();
  WhatIfEdit edit;
  edit.shield_couplings = {1};

  auto base = DesignSnapshot::make_base(net::Netlist(*fx.netlist),
                                        layout::Parasitics(fx.parasitics),
                                        sta::DelayModelOptions{});
  auto child = base->apply(edit);

  session::AnalysisSession pinned(child, session::SessionOptions{
                                             .retain_candidates = true});
  const topk::TopkResult got = pinned.run(options(fx, 2));

  // Cold reference on deep copies of the edited design.
  Fixture ref = snapshot_fixture();
  ref.parasitics.shield_coupling(1);
  session::AnalysisSession cold(std::move(*ref.netlist),
                                layout::Parasitics(ref.parasitics),
                                sta::DelayModelOptions{},
                                session::SessionOptions{
                                    .retain_candidates = false});
  const topk::TopkResult want = cold.run(options(fx, 2));
  expect_identical(got, want);
}

TEST(DesignSnapshot, StatsCountSharingAcrossChain) {
  const DesignSnapshot::Stats before = DesignSnapshot::stats();

  Fixture fx = snapshot_fixture();
  auto base = DesignSnapshot::make_base(net::Netlist(*fx.netlist),
                                        layout::Parasitics(fx.parasitics),
                                        sta::DelayModelOptions{});
  std::vector<std::shared_ptr<const DesignSnapshot>> chain{base};
  for (int e = 0; e < 4; ++e) {
    WhatIfEdit edit;
    edit.shield_couplings = {static_cast<layout::CapId>(e)};
    chain.push_back(chain.back()->apply(edit));
  }

  const DesignSnapshot::Stats during = DesignSnapshot::stats();
  EXPECT_EQ(during.live, before.live + 5);
  // Five snapshots whose logical footprint overlaps heavily: the chain
  // must resolve to far fewer resident bytes than the logical sum.
  EXPECT_GT(during.logical_bytes, during.resident_bytes);
  EXPECT_GT(during.shared_bytes(), 0u);

  chain.clear();
  base.reset();
  const DesignSnapshot::Stats after = DesignSnapshot::stats();
  EXPECT_EQ(after.live, before.live);
}

TEST(DesignSnapshot, TrackedBytesBalanceReturnsToZeroOnTeardown) {
  const std::int64_t before = obs::TrackedBytes::total("mem.snapshot_bytes");
  {
    Fixture fx = snapshot_fixture();
    auto head = DesignSnapshot::make_base(net::Netlist(*fx.netlist),
                                          layout::Parasitics(fx.parasitics),
                                          sta::DelayModelOptions{});
#if TKA_OBS_ENABLED
    EXPECT_GT(obs::TrackedBytes::total("mem.snapshot_bytes"), before);
#endif
    for (int e = 0; e < 8; ++e) {
      WhatIfEdit edit;
      edit.shield_couplings = {static_cast<layout::CapId>(e % 4)};
      head = head->apply(edit);
      // Dropping the previous head as we go: intermediate snapshots die
      // once unpinned, and their tracked bytes must die with them.
    }
  }
  EXPECT_EQ(obs::TrackedBytes::total("mem.snapshot_bytes"), before);
}

// The serving protocol under concurrency: readers pin whatever head they
// observe while a writer publishes successors. Each pinned snapshot must
// read back exactly the design state of its epoch, no matter how far the
// chain has advanced past it. TSan (CI) checks the pin/publish handoff;
// the value checks catch any mutation leaking across snapshots.
TEST(DesignSnapshot, ConcurrentPinAndPublishFuzz) {
  constexpr int kEpochs = 8;
  constexpr int kReaders = 4;

  Fixture fx = snapshot_fixture();
  const std::size_t num_caps = fx.parasitics.num_couplings();

  // Expected coupling-cap state per epoch, from serial deep replay.
  std::vector<WhatIfEdit> edits;
  std::vector<std::vector<double>> caps_at_epoch;
  {
    net::Netlist nl(*fx.netlist);
    layout::Parasitics par(fx.parasitics);
    auto record = [&] {
      std::vector<double> caps;
      for (layout::CapId c = 0; c < num_caps; ++c) {
        caps.push_back(par.coupling(c).cap_pf);
      }
      caps_at_epoch.push_back(std::move(caps));
    };
    record();
    for (int e = 0; e < kEpochs; ++e) {
      WhatIfEdit edit;
      edit.shield_couplings = {static_cast<layout::CapId>(e % num_caps)};
      edits.push_back(edit);
      session::apply_edit_to_design(nl, par, edit);
      record();
    }
  }

  std::mutex head_mu;
  std::shared_ptr<const DesignSnapshot> head = DesignSnapshot::make_base(
      net::Netlist(*fx.netlist), layout::Parasitics(fx.parasitics),
      sta::DelayModelOptions{});
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const DesignSnapshot> pin;
        {
          std::lock_guard<std::mutex> lock(head_mu);
          pin = head;
        }
        const std::uint64_t e = pin->epoch();
        if (e < last) ++bad;  // the head never moves backwards
        last = e;
        const std::vector<double>& want =
            caps_at_epoch[static_cast<std::size_t>(e)];
        for (layout::CapId c = 0; c < num_caps; ++c) {
          if (pin->parasitics().coupling(c).cap_pf != want[c]) {
            ++bad;
            break;
          }
        }
      }
    });
  }

  for (const WhatIfEdit& edit : edits) {
    std::shared_ptr<const DesignSnapshot> next;
    {
      std::lock_guard<std::mutex> lock(head_mu);
      next = head->apply(edit);
      head = next;
    }
    // Give readers a chance to pin intermediate epochs.
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(head->epoch(), static_cast<std::uint64_t>(kEpochs));
  const std::vector<double>& final_caps = caps_at_epoch.back();
  for (layout::CapId c = 0; c < num_caps; ++c) {
    EXPECT_EQ(head->parasitics().coupling(c).cap_pf, final_caps[c]);
  }
}

}  // namespace
}  // namespace tka
