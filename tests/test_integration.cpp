// End-to-end integration tests: the full generate -> place/route/extract ->
// STA -> noise fixpoint -> top-k pipeline on synthetic benchmark circuits,
// including cross-module round trips and determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/benchmark_suite.hpp"
#include "gen/circuit_generator.hpp"
#include "io/bench_reader.hpp"
#include "io/dot_writer.hpp"
#include "io/spef_lite.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/iterative.hpp"
#include "sta/critical_path.hpp"
#include "topk/topk_engine.hpp"

namespace tka {
namespace {

struct Pipeline {
  gen::GeneratedCircuit ckt;
  std::unique_ptr<sta::DelayModel> model;
  std::unique_ptr<noise::AnalyticCouplingCalculator> calc;
  std::unique_ptr<topk::TopkEngine> engine;

  explicit Pipeline(gen::GeneratedCircuit c) : ckt(std::move(c)) {
    model = std::make_unique<sta::DelayModel>(*ckt.netlist, ckt.parasitics);
    calc = std::make_unique<noise::AnalyticCouplingCalculator>(ckt.parasitics, *model);
    engine = std::make_unique<topk::TopkEngine>(*ckt.netlist, ckt.parasitics,
                                                *model, *calc);
  }

  topk::TopkOptions options(int k, topk::Mode mode) const {
    topk::TopkOptions opt;
    opt.k = k;
    opt.mode = mode;
    opt.beam_cap = 16;
    opt.iterative.sta = ckt.sta_options();
    return opt;
  }
};

gen::GeneratedCircuit small_circuit(std::uint64_t seed = 31) {
  gen::GeneratorParams p;
  p.name = "integration";
  p.num_gates = 60;
  p.target_couplings = 150;
  p.seed = seed;
  return gen::generate_circuit(p);
}

TEST(Integration, NoiseFixpointBracketsDelay) {
  Pipeline pl(small_circuit());
  noise::IterativeOptions it;
  it.sta = pl.ckt.sta_options();
  const noise::NoiseReport rep = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc,
      noise::CouplingMask::all(pl.ckt.parasitics.num_couplings()), it);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.noisy_delay, rep.noiseless_delay);
  EXPECT_LT(rep.noisy_delay, 2.5 * rep.noiseless_delay);  // sane noise level
}

TEST(Integration, AdditionResultWithinBrackets) {
  Pipeline pl(small_circuit());
  const topk::TopkResult res =
      pl.engine->run(pl.options(5, topk::Mode::kAddition));
  EXPECT_EQ(res.members.size(), 5u);
  EXPECT_GE(res.evaluated_delay, res.baseline_delay - 1e-9);
  EXPECT_LE(res.evaluated_delay, res.reference_delay + 1e-9);
  // The top-5 addition set must actually create noise.
  EXPECT_GT(res.evaluated_delay, res.baseline_delay + 1e-6);
}

TEST(Integration, EliminationResultWithinBrackets) {
  Pipeline pl(small_circuit());
  const topk::TopkResult res =
      pl.engine->run(pl.options(5, topk::Mode::kElimination));
  EXPECT_EQ(res.members.size(), 5u);
  EXPECT_LE(res.evaluated_delay, res.baseline_delay + 1e-9);
  EXPECT_GE(res.evaluated_delay, res.reference_delay - 1e-9);
  EXPECT_LT(res.evaluated_delay, res.baseline_delay - 1e-6);
}

TEST(Integration, AdditionTrailIsMonotoneAndTimed) {
  Pipeline pl(small_circuit());
  const topk::TopkResult res =
      pl.engine->run(pl.options(8, topk::Mode::kAddition));
  ASSERT_EQ(res.estimated_delay_by_k.size(), 8u);
  ASSERT_EQ(res.stats.runtime_by_k.size(), 8u);
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_GE(res.estimated_delay_by_k[i], res.estimated_delay_by_k[i - 1] - 1e-9);
    EXPECT_GE(res.stats.runtime_by_k[i], res.stats.runtime_by_k[i - 1]);
  }
  // Finalists exist for every cardinality on a circuit this dense.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(res.finalists_by_k[i].empty()) << "k=" << i + 1;
  }
}

TEST(Integration, EliminationTrailIsMonotone) {
  Pipeline pl(small_circuit());
  const topk::TopkResult res =
      pl.engine->run(pl.options(8, topk::Mode::kElimination));
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_LE(res.estimated_delay_by_k[i], res.estimated_delay_by_k[i - 1] + 1e-9);
  }
}

TEST(Integration, FullyDeterministic) {
  Pipeline a(small_circuit(99));
  Pipeline b(small_circuit(99));
  const topk::TopkResult ra = a.engine->run(a.options(4, topk::Mode::kAddition));
  const topk::TopkResult rb = b.engine->run(b.options(4, topk::Mode::kAddition));
  EXPECT_EQ(ra.members, rb.members);
  EXPECT_DOUBLE_EQ(ra.evaluated_delay, rb.evaluated_delay);
  EXPECT_DOUBLE_EQ(ra.baseline_delay, rb.baseline_delay);
}

TEST(Integration, SpefRoundTripPreservesAnalysis) {
  Pipeline pl(small_circuit());
  std::ostringstream os;
  io::write_spef_lite(os, *pl.ckt.netlist, pl.ckt.parasitics);
  std::istringstream is(os.str());
  const layout::Parasitics back = io::read_spef_lite(is, *pl.ckt.netlist);

  sta::DelayModel model2(*pl.ckt.netlist, back);
  noise::AnalyticCouplingCalculator calc2(back, model2);
  noise::IterativeOptions it;
  it.sta = pl.ckt.sta_options();
  const noise::NoiseReport r1 = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc,
      noise::CouplingMask::all(pl.ckt.parasitics.num_couplings()), it);
  const noise::NoiseReport r2 = noise::analyze_iterative(
      *pl.ckt.netlist, back, model2, calc2,
      noise::CouplingMask::all(back.num_couplings()), it);
  EXPECT_NEAR(r1.noisy_delay, r2.noisy_delay, 1e-9);
  EXPECT_NEAR(r1.noiseless_delay, r2.noiseless_delay, 1e-9);
}

TEST(Integration, ShieldingRemovesNoiseKeepsLoad) {
  Pipeline pl(small_circuit());
  noise::IterativeOptions it;
  it.sta = pl.ckt.sta_options();
  const noise::NoiseReport before = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc,
      noise::CouplingMask::all(pl.ckt.parasitics.num_couplings()), it);

  // Shield every coupling: noise vanishes, loading stays.
  for (layout::CapId id = 0; id < pl.ckt.parasitics.num_couplings(); ++id) {
    pl.ckt.parasitics.shield_coupling(id);
  }
  const noise::NoiseReport after = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc,
      noise::CouplingMask::all(pl.ckt.parasitics.num_couplings()), it);
  EXPECT_NEAR(after.noisy_delay, after.noiseless_delay, 1e-9);
  // Grounded shields add cap (Miller factor 1 -> 2x the coupling weight of
  // the quiet state), so the noiseless delay cannot drop.
  EXPECT_GE(after.noiseless_delay, before.noiseless_delay - 1e-9);
}

TEST(Integration, SingleSinkGeneratorHasOnePo) {
  gen::GeneratorParams p;
  p.name = "ss";
  p.num_gates = 50;
  p.seed = 5;
  p.single_sink = true;
  const gen::GeneratedCircuit c = generate_circuit(p);
  c.netlist->validate();
  EXPECT_EQ(c.netlist->primary_outputs().size(), 1u);
}

TEST(Integration, DominanceOffDoesNotImproveResult) {
  // Dominance pruning is exactness-preserving under the estimator: turning
  // it off may only change runtime, not find a strictly better set.
  Pipeline pl(small_circuit(7));
  topk::TopkOptions with = pl.options(4, topk::Mode::kAddition);
  topk::TopkOptions without = pl.options(4, topk::Mode::kAddition);
  without.use_dominance = false;
  const topk::TopkResult r1 = pl.engine->run(with);
  const topk::TopkResult r2 = pl.engine->run(without);
  EXPECT_NEAR(r1.estimated_delay, r2.estimated_delay,
              0.02 * std::abs(r1.estimated_delay));
}

TEST(Integration, BenchParserToFullAnalysis) {
  // c17 from text through the whole flow.
  auto nl = io::read_bench_string(R"(
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
)");
  const layout::Placement placement = layout::grid_place(*nl, {});
  const auto routes = layout::route_all(*nl, placement);
  layout::ExtractorOptions ex;
  ex.max_coupling_dist = 10.0;
  const layout::Parasitics par = layout::extract(*nl, routes, ex);
  ASSERT_GT(par.num_couplings(), 0u);

  sta::DelayModel model(*nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  topk::TopkEngine engine(*nl, par, model, calc);
  topk::TopkOptions opt;
  opt.k = 2;
  const topk::TopkResult res = engine.run(opt);
  EXPECT_EQ(res.members.size(), 2u);
  EXPECT_GT(res.evaluated_delay, res.baseline_delay);
}

}  // namespace
}  // namespace tka
