// Work-stealing task-graph runtime (runtime/task_graph.hpp): dependency
// ordering on diamond/chain/fan-out shapes, exception propagation with
// transitive cancellation, cycle detection, parallel_for_dynamic coverage,
// and engine bit-identity across thread counts with a forced-steal grain.
// The determinism assertions are the scheduler's hard contract
// (docs/SCHEDULER.md), not a tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gen/circuit_generator.hpp"
#include "io/report_writer.hpp"
#include "noise/coupling_calc.hpp"
#include "runtime/task_graph.hpp"
#include "sta/delay_model.hpp"
#include "topk/topk_engine.hpp"

namespace tka {
namespace {

// Records, per task, how many of its declared predecessors had already
// finished when the task started. Under a correct scheduler every task
// observes all of them.
struct OrderProbe {
  explicit OrderProbe(std::size_t n) : done(n), order(n, 0) {
    for (auto& d : done) d.store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<int>> done;
  std::vector<int> order;  // per-task slot: predecessors seen at start

  void run_task(const runtime::TaskGraph& g, std::size_t t,
                const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
    int seen = 0;
    for (const auto& [from, to] : edges) {
      if (to == t && done[from].load(std::memory_order_acquire) != 0) ++seen;
    }
    order[t] = seen;
    done[t].store(1, std::memory_order_release);
    (void)g;
  }
};

void check_edges_respected(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    int threads) {
  runtime::TaskGraph g(n);
  for (const auto& [from, to] : edges) g.add_edge(from, to);
  OrderProbe probe(n);
  g.run(threads, [&](std::size_t t) { probe.run_task(g, t, edges); });
  for (std::size_t t = 0; t < n; ++t) {
    int preds = 0;
    for (const auto& [from, to] : edges) {
      if (to == t) ++preds;
    }
    EXPECT_EQ(probe.order[t], preds)
        << "task " << t << " started before a predecessor finished "
        << "(threads=" << threads << ")";
  }
}

TEST(TaskGraph, DiamondRespectsDependencies) {
  // 0 -> {1, 2} -> 3
  const std::vector<std::pair<std::size_t, std::size_t>> edges = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  for (int threads : {1, 2, 8}) check_edges_respected(4, edges, threads);
}

TEST(TaskGraph, ChainRunsInOrder) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t t = 0; t + 1 < 16; ++t) edges.emplace_back(t, t + 1);
  for (int threads : {1, 2, 8}) check_edges_respected(16, edges, threads);
}

TEST(TaskGraph, FanOutFanInRespectsDependencies) {
  // 0 fans out to 1..30, all of which feed 31.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t t = 1; t < 31; ++t) {
    edges.emplace_back(0, t);
    edges.emplace_back(t, 31);
  }
  for (int threads : {1, 2, 8}) check_edges_respected(32, edges, threads);
}

TEST(TaskGraph, EveryTaskRunsExactlyOnce) {
  constexpr std::size_t kTasks = 200;
  runtime::TaskGraph g(kTasks);
  for (std::size_t t = 0; t + 3 < kTasks; t += 3) g.add_edge(t, t + 3);
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0, std::memory_order_relaxed);
  g.run(8, [&](std::size_t t) {
    runs[t].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(runs[t].load(std::memory_order_relaxed), 1) << "task " << t;
  }
}

TEST(TaskGraph, DuplicateAndInvalidEdgesTolerated) {
  runtime::TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate: must not double-count the dependency
  g.add_edge(1, 1);  // self-edge: ignored
  g.add_edge(0, 7);  // out of range: ignored
  g.add_edge(9, 2);  // out of range: ignored
  EXPECT_EQ(g.num_edges(), 1u);
  std::vector<int> ran(3, 0);
  g.run(2, [&](std::size_t t) { ran[t] = 1; });
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 3);
}

TEST(TaskGraph, EmptyGraphAndSingleTask) {
  runtime::TaskGraph empty(0);
  bool called = false;
  empty.run(4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);

  runtime::TaskGraph one(1);
  int runs = 0;
  one.run(4, [&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(TaskGraph, CycleDetectedBeforeExecution) {
  runtime::TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      g.run(2, [&](std::size_t) { ran.fetch_add(1); }), std::logic_error);
  EXPECT_EQ(ran.load(), 0) << "no task may run in a cyclic graph";
}

// A failing task must cancel its transitive dependents (they never run),
// leave independent tasks untouched, and rethrow the lowest-index failure
// on the caller — identically at every thread count, including when the
// failing task was stolen.
void check_exception_propagation(int threads) {
  // 0 -> 1 -> 2 (1 throws; 2 must be cancelled), 3..63 independent.
  constexpr std::size_t kTasks = 64;
  runtime::TaskGraph g(kTasks);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) r.store(0, std::memory_order_relaxed);
  bool threw = false;
  try {
    g.run(threads, [&](std::size_t t) {
      if (t == 1) throw std::runtime_error("task 1 failed");
      ran[t].fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "task 1 failed");
  }
  EXPECT_TRUE(threw) << "threads=" << threads;
  EXPECT_EQ(ran[0].load(), 1);
  EXPECT_EQ(ran[2].load(), 0) << "dependent of a failed task must not run";
  for (std::size_t t = 3; t < kTasks; ++t) {
    EXPECT_EQ(ran[t].load(), 1) << "independent task " << t << " skipped";
  }
}

TEST(TaskGraph, ExceptionCancelsDependentsSerial) {
  check_exception_propagation(1);
}

TEST(TaskGraph, ExceptionCancelsDependentsStolen) {
  for (int threads : {2, 8}) check_exception_propagation(threads);
}

TEST(TaskGraph, LowestIndexFailureWins) {
  // Both 5 and 40 throw; the caller must always see task 5's error no
  // matter which lane hit which failure first.
  runtime::TaskGraph g(64);
  for (int threads : {1, 2, 8}) {
    try {
      g.run(threads, [](std::size_t t) {
        if (t == 5) throw std::runtime_error("five");
        if (t == 40) throw std::runtime_error("forty");
      });
      FAIL() << "expected a throw (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "five") << "threads=" << threads;
    }
  }
}

TEST(TaskGraph, ReentrantRunFromTaskBodyExecutesInline) {
  runtime::TaskGraph outer(4);
  std::vector<std::atomic<int>> inner_runs(4);
  for (auto& r : inner_runs) r.store(0, std::memory_order_relaxed);
  outer.run(4, [&](std::size_t t) {
    runtime::TaskGraph inner(8);
    std::atomic<int> n{0};
    inner.run(4, [&](std::size_t) { n.fetch_add(1); });
    inner_runs[t].store(n.load(), std::memory_order_relaxed);
  });
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(inner_runs[t].load(), 8);
}

TEST(ParallelForDynamic, CoversRangeOnceAndRethrows) {
  constexpr std::size_t kN = 1000;
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    runtime::parallel_for_dynamic(threads, 0, kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
    EXPECT_THROW(runtime::parallel_for_dynamic(
                     threads, 0, kN,
                     [&](std::size_t i) {
                       if (i == 17) throw std::runtime_error("x");
                     },
                     /*grain=*/1),
                 std::runtime_error);
  }
}

TEST(ParallelForDynamic, EmptyRangeIsANoop) {
  bool called = false;
  runtime::parallel_for_dynamic(8, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Engine bit-identity across thread counts with a forced tiny grain
// (TKA_TASK_GRAIN=1): every chunk is a single index, maximizing steal
// traffic through the deques — the adversarial schedule for the
// determinism contract. Mirrors test_parallel's equivalence check but
// under steal stress instead of the default grain.
struct GrainGuard {
  GrainGuard() { setenv("TKA_TASK_GRAIN", "1", 1); }
  ~GrainGuard() { unsetenv("TKA_TASK_GRAIN"); }
};

TEST(TaskGraphEngine, BitIdenticalAcrossThreadCountsUnderStealStress) {
  GrainGuard grain;
  gen::GeneratorParams p;
  p.name = "task_graph";
  p.num_gates = 50;
  p.target_couplings = 110;
  p.seed = 23;
  gen::GeneratedCircuit ckt = gen::generate_circuit(p);
  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);

  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    std::string serial_json;
    for (int threads : {1, 2, 8}) {
      topk::TopkOptions opt;
      opt.k = 3;
      opt.mode = mode;
      opt.threads = threads;
      opt.beam_cap = 12;
      opt.iterative.sta = ckt.sta_options();
      topk::TopkResult res = engine.run(opt);
      res.stats.threads = 0;
      res.stats.runtime_s = 0.0;
      res.stats.runtime_by_k.assign(res.stats.runtime_by_k.size(), 0.0);
      std::ostringstream out;
      io::write_topk_result_json(out, *ckt.netlist, ckt.parasitics, res, 3);
      if (threads == 1) {
        serial_json = out.str();
      } else {
        EXPECT_EQ(out.str(), serial_json)
            << "mode=" << static_cast<int>(mode) << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace tka
