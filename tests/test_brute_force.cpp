// Unit tests for the brute-force baseline itself (combination enumeration,
// timeout behavior, degenerate inputs) — the comparator must be trustworthy
// before it can validate the engine.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "noise/coupling_calc.hpp"
#include "topk/brute_force.hpp"

namespace tka::topk {
namespace {

using test::Fixture;

struct BfHarness {
  Fixture fx;
  sta::DelayModel model;
  noise::AnalyticCouplingCalculator calc;

  explicit BfHarness(Fixture f)
      : fx(std::move(f)),
        model(*fx.netlist, fx.parasitics),
        calc(fx.parasitics, model) {}

  BruteForceOptions options(int k, Mode mode) const {
    BruteForceOptions opt;
    opt.k = k;
    opt.mode = mode;
    opt.iterative.sta = fx.sta_options();
    return opt;
  }
};

Fixture two_cap_fixture() {
  Fixture fx = test::make_parallel_chains(3, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.012);  // strong
  test::couple(fx, "c0_n1", "c2_n1", 0.004);  // weak
  return fx;
}

TEST(BruteForce, EnumeratesAllCombinations) {
  BfHarness h(two_cap_fixture());
  const auto res1 = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                     h.calc, h.options(1, Mode::kAddition));
  ASSERT_TRUE(res1.has_value());
  EXPECT_EQ(res1->subsets_evaluated, 2u);  // C(2,1)
  const auto res2 = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                     h.calc, h.options(2, Mode::kAddition));
  ASSERT_TRUE(res2.has_value());
  EXPECT_EQ(res2->subsets_evaluated, 1u);  // C(2,2)
}

TEST(BruteForce, PicksStrongerCapAtK1) {
  BfHarness h(two_cap_fixture());
  const auto add = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                    h.calc, h.options(1, Mode::kAddition));
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ(add->members, (std::vector<layout::CapId>{0}));
  const auto elim = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                     h.calc, h.options(1, Mode::kElimination));
  ASSERT_TRUE(elim.has_value());
  EXPECT_EQ(elim->members, (std::vector<layout::CapId>{0}));
  // Addition of the strong cap hurts more than elimination's residual.
  EXPECT_GT(add->delay, elim->delay);
}

TEST(BruteForce, FullSetReachesExtremes) {
  BfHarness h(two_cap_fixture());
  noise::IterativeOptions it;
  it.sta = h.fx.sta_options();
  const auto all_on = noise::analyze_iterative(
      *h.fx.netlist, h.fx.parasitics, h.model, h.calc,
      noise::CouplingMask::all(2), it);
  const auto add = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                    h.calc, h.options(2, Mode::kAddition));
  EXPECT_NEAR(add->delay, all_on.noisy_delay, 1e-9);
  const auto elim = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                     h.calc, h.options(2, Mode::kElimination));
  EXPECT_NEAR(elim->delay, all_on.noiseless_delay, 1e-9);
}

TEST(BruteForce, NulloptWhenTooFewCouplings) {
  BfHarness h(two_cap_fixture());
  EXPECT_FALSE(brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model, h.calc,
                                h.options(3, Mode::kAddition))
                   .has_value());
}

TEST(BruteForce, ZeroedCapsExcludedFromPool) {
  Fixture fx = two_cap_fixture();
  fx.parasitics.zero_coupling(1);
  BfHarness h(std::move(fx));
  const auto res = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                    h.calc, h.options(1, Mode::kAddition));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->subsets_evaluated, 1u);
  EXPECT_EQ(res->members, (std::vector<layout::CapId>{0}));
  EXPECT_FALSE(brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model, h.calc,
                                h.options(2, Mode::kAddition))
                   .has_value());
}

TEST(BruteForce, TimeoutIsHonored) {
  // Many couplings + k=3 would need thousands of evaluations; a zero-ish
  // timeout must abort quickly and be flagged.
  Fixture fx = test::make_parallel_chains(4, 3);
  for (const char* a : {"c0_n0", "c0_n1", "c0_n2"}) {
    for (const char* b : {"c1", "c2", "c3"}) {
      for (int i = 0; i < 3; ++i) {
        test::couple(fx, a, std::string(b) + "_n" + std::to_string(i), 0.003);
      }
    }
  }
  BfHarness h(std::move(fx));
  BruteForceOptions opt = h.options(3, Mode::kAddition);
  opt.timeout_s = 0.02;
  const auto res = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                    h.calc, opt);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->timed_out);
  EXPECT_LT(res->runtime_s, 1.0);
  // Partial results are still reported (best found so far).
  EXPECT_EQ(res->members.size(), 3u);
}

}  // namespace
}  // namespace tka::topk
