// Tests for the top-k machinery: candidate-set algebra, dominance pruning,
// I-lists, pseudo aggressors, and the engine validated against brute-force
// enumeration (the paper's Table-1 experiment in miniature).
#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "gen/circuit_generator.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/noise_analyzer.hpp"
#include "topk/aggressor.hpp"
#include "topk/brute_force.hpp"
#include "topk/dominance.hpp"
#include "topk/irredundant_list.hpp"
#include "topk/pseudo_aggressor.hpp"
#include "topk/topk_engine.hpp"
#include "wave/ramp.hpp"

namespace tka::topk {
namespace {

using test::Fixture;

TEST(SetAlgebra, UnionWithInsertsSorted) {
  std::vector<layout::CapId> out;
  EXPECT_TRUE(union_with({1, 5, 9}, 7, out));
  EXPECT_EQ(out, (std::vector<layout::CapId>{1, 5, 7, 9}));
  EXPECT_TRUE(union_with({}, 3, out));
  EXPECT_EQ(out, (std::vector<layout::CapId>{3}));
  EXPECT_FALSE(union_with({1, 5, 9}, 5, out));
}

TEST(SetAlgebra, UnionDisjoint) {
  std::vector<layout::CapId> out;
  EXPECT_TRUE(union_disjoint({1, 4}, {2, 9}, out));
  EXPECT_EQ(out, (std::vector<layout::CapId>{1, 2, 4, 9}));
  EXPECT_FALSE(union_disjoint({1, 4}, {4, 9}, out));
  EXPECT_TRUE(union_disjoint({}, {2}, out));
  EXPECT_EQ(out, (std::vector<layout::CapId>{2}));
}

TEST(SetAlgebra, MembersHashDiscriminates) {
  EXPECT_EQ(members_hash({1, 2, 3}), members_hash({1, 2, 3}));
  EXPECT_NE(members_hash({1, 2, 3}), members_hash({1, 2, 4}));
  EXPECT_NE(members_hash({1, 2}), members_hash({2, 1}));  // order-sensitive
  EXPECT_NE(members_hash({}), members_hash({0}));
}

TEST(IListTest, DedupByMembers) {
  IList list;
  CandidateSet a;
  a.members = {1, 2};
  a.score = 0.5;
  EXPECT_TRUE(list.try_add(a));
  EXPECT_FALSE(list.try_add(a));  // identical member set
  CandidateSet b;
  b.members = {1, 3};
  EXPECT_TRUE(list.try_add(b));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.best().members, a.members);
}

TEST(IListTest, ReduceAppliesDominanceAndBeam) {
  const wave::DominanceInterval iv{0.0, 10.0};
  IList list;
  auto mk = [](std::vector<layout::CapId> m, double peak, double score) {
    CandidateSet s;
    s.members = std::move(m);
    s.envelope = wave::Pwl({{1.0, 0.0}, {2.0, peak}, {6.0, peak}, {8.0, 0.0}});
    s.score = score;
    return s;
  };
  list.try_add(mk({1}, 0.5, 0.5));   // dominates everything below
  list.try_add(mk({2}, 0.3, 0.3));   // dominated by {1}
  list.try_add(mk({3}, 0.2, 0.2));   // dominated
  PruneStats stats;
  list.reduce(iv, 1e-9, 0, true, &stats);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.best().members, (std::vector<layout::CapId>{1}));
  EXPECT_EQ(stats.removed_dominated, 2u);

  // Without dominance, the beam keeps the top scorers.
  IList list2;
  for (int i = 0; i < 10; ++i) {
    list2.try_add(mk({static_cast<layout::CapId>(i)}, 0.1, 0.1 * i));
  }
  list2.reduce(iv, 1e-9, 3, false, &stats);
  EXPECT_EQ(list2.size(), 3u);
  EXPECT_NEAR(list2.best().score, 0.9, 1e-12);
}

TEST(Dominance, ParetoFrontSurvives) {
  const wave::DominanceInterval iv{0.0, 10.0};
  std::vector<CandidateSet> list;
  auto mk = [](std::vector<layout::CapId> m, double t0, double peak, double score) {
    CandidateSet s;
    s.members = std::move(m);
    s.envelope = wave::Pwl({{t0, 0.0}, {t0 + 0.5, peak}, {t0 + 2.0, peak},
                            {t0 + 3.0, 0.0}});
    s.score = score;
    return s;
  };
  // Two incomparable sets (early-small vs late-large support) + one
  // dominated (same window as the first, smaller peak).
  list.push_back(mk({1}, 1.0, 0.5, 0.4));
  list.push_back(mk({2}, 5.0, 0.5, 0.5));
  list.push_back(mk({3}, 1.0, 0.2, 0.1));
  prune_dominated(list, iv, 1e-9, nullptr);
  EXPECT_EQ(list.size(), 2u);
  for (const CandidateSet& s : list) EXPECT_NE(s.members.front(), 3u);
}

TEST(Dominance, EmptyAndSingleListsUntouched) {
  const wave::DominanceInterval iv{0.0, 1.0};
  std::vector<CandidateSet> empty;
  prune_dominated(empty, iv, 1e-9, nullptr);
  EXPECT_TRUE(empty.empty());
  std::vector<CandidateSet> one(1);
  prune_dominated(one, iv, 1e-9, nullptr);
  EXPECT_EQ(one.size(), 1u);
}

TEST(PseudoEnvelope, ShapeAdditionMode) {
  const double vdd = 1.2;
  const double t50 = 2.0;
  const double trans = 0.2;
  const double shift = 0.05;
  const wave::Pwl p = pseudo_envelope(t50, trans, vdd, shift, Mode::kAddition);
  ASSERT_FALSE(p.empty());
  // Height = Vdd * shift / trans for shift < trans.
  EXPECT_NEAR(p.peak(), vdd * shift / trans, 1e-9);
  EXPECT_GE(p.min_value(), -1e-12);
  // Exactness: vic - P == vic shifted by `shift`.
  const wave::Pwl vic = wave::make_rising_ramp(t50, trans, vdd);
  const wave::Pwl shifted = wave::make_rising_ramp(t50 + shift, trans, vdd);
  const wave::Pwl reconstructed = vic.minus(p);
  for (double t = 1.5; t <= 3.0; t += 0.01) {
    EXPECT_NEAR(reconstructed.value(t), shifted.value(t), 1e-9) << t;
  }
}

TEST(PseudoEnvelope, ShapeEliminationMode) {
  const double vdd = 1.2;
  const wave::Pwl p = pseudo_envelope(2.0, 0.2, vdd, 0.5, Mode::kElimination);
  // Large shift saturates at Vdd.
  EXPECT_NEAR(p.peak(), vdd, 1e-9);
  // Support sits before/around t50 (the transition moves earlier).
  EXPECT_LT(p.t_front(), 2.0);
  EXPECT_TRUE(pseudo_envelope(2.0, 0.2, vdd, 0.0, Mode::kAddition).empty());
}

TEST(PropagateShift, AdditionControllingInput) {
  const double lats[] = {1.0, 2.0, 1.5};
  // Shifting the controlling input moves the output fully.
  EXPECT_NEAR(propagate_shift(lats, 1, 0.3, Mode::kAddition), 0.3, 1e-12);
  // A non-controlling input must first catch up.
  EXPECT_NEAR(propagate_shift(lats, 0, 0.3, Mode::kAddition), 0.0, 1e-12);
  EXPECT_NEAR(propagate_shift(lats, 0, 1.4, Mode::kAddition), 0.4, 1e-12);
}

TEST(PropagateShift, EliminationLimitedBySecondInput) {
  const double lats[] = {1.0, 2.0, 1.5};
  // Speeding up the controlling input helps until input 2 (1.5) controls.
  EXPECT_NEAR(propagate_shift(lats, 1, 0.3, Mode::kElimination), 0.3, 1e-12);
  EXPECT_NEAR(propagate_shift(lats, 1, 1.0, Mode::kElimination), 0.5, 1e-12);
  // Speeding a non-controlling input does nothing.
  EXPECT_NEAR(propagate_shift(lats, 0, 0.5, Mode::kElimination), 0.0, 1e-12);
}

TEST(PropagateShift, SingleInputGateIsTransparent) {
  const double lats[] = {1.0};
  EXPECT_NEAR(propagate_shift(lats, 0, 0.7, Mode::kAddition), 0.7, 1e-12);
  EXPECT_NEAR(propagate_shift(lats, 0, 0.7, Mode::kElimination), 0.7, 1e-12);
}

// Figure-4 (non-monotonicity) at the scoring level: with the 0.5*Vdd
// threshold, two individually-harmless aggressors can jointly beat the best
// single aggressor, so top-2 need not contain top-1.
TEST(NonMonotonicity, JointEnvelopesBeatBestSingle) {
  const double vdd = 1.2;
  const double t50 = 2.0;
  const wave::Pwl vic = wave::make_rising_ramp(t50, 0.1, vdd);
  // a1: modest envelope overlapping the transition -> small dn.
  const wave::Pwl a1({{1.9, 0.0}, {1.95, 0.3}, {2.2, 0.3}, {2.4, 0.0}});
  // a2, a3: peak 0.45 plateaus sitting after the ramp completes; 0.45 <
  // 0.6 = Vdd/2, so each alone cannot re-dip the settled waveform.
  const wave::Pwl a2({{2.05, 0.0}, {2.1, 0.45}, {2.6, 0.45}, {2.8, 0.0}});
  const wave::Pwl a3 = a2;
  const double dn1 = noise::delay_noise(vic, a1, vdd, t50);
  const double dn2 = noise::delay_noise(vic, a2, vdd, t50);
  const double dn23 = noise::delay_noise(vic, a2.plus(a3), vdd, t50);
  const double dn12 = noise::delay_noise(vic, a1.plus(a2), vdd, t50);
  EXPECT_GT(dn1, 0.0);
  EXPECT_NEAR(dn2, 0.0, 1e-9);       // alone: harmless
  EXPECT_GT(dn23, dn12);             // top-2 = {a2,a3}, excluding top-1 a1
  EXPECT_GT(dn23, dn1);
}

// ---------------------------------------------------------------------------
// Engine end-to-end behavior on controlled fixtures.
// ---------------------------------------------------------------------------

struct EngineHarness {
  Fixture fx;
  sta::DelayModel model;
  noise::AnalyticCouplingCalculator calc;
  TopkEngine engine;

  explicit EngineHarness(Fixture f)
      : fx(std::move(f)),
        model(*fx.netlist, fx.parasitics),
        calc(fx.parasitics, model),
        engine(*fx.netlist, fx.parasitics, model, calc) {}

  TopkOptions options(int k, Mode mode) const {
    TopkOptions opt;
    opt.k = k;
    opt.mode = mode;
    opt.beam_cap = 0;     // exact enumeration
    opt.rerank_top = 16;  // generous exact re-ranking for validation
    opt.iterative.sta = fx.sta_options();
    return opt;
  }
};

Fixture single_victim_three_aggressors() {
  Fixture fx = test::make_parallel_chains(4, 2);
  // Chain 0 is the victim; aggressors with caps of clearly distinct sizes.
  test::couple(fx, "c0_n1", "c1_n1", 0.012);  // strongest
  test::couple(fx, "c0_n1", "c2_n1", 0.006);
  test::couple(fx, "c0_n1", "c3_n1", 0.003);  // weakest
  return fx;
}

TEST(Engine, Top1PicksStrongestAggressor) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult res = h.engine.run(h.options(1, Mode::kAddition));
  ASSERT_EQ(res.members.size(), 1u);
  EXPECT_EQ(res.members[0], 0u);  // cap 0 = 0.012 pF
  EXPECT_GT(res.evaluated_delay, res.baseline_delay);
}

TEST(Engine, DelayByKMonotoneForAddition) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult res = h.engine.run(h.options(3, Mode::kAddition));
  ASSERT_EQ(res.estimated_delay_by_k.size(), 3u);
  EXPECT_LE(res.estimated_delay_by_k[0], res.estimated_delay_by_k[1] + 1e-9);
  EXPECT_LE(res.estimated_delay_by_k[1], res.estimated_delay_by_k[2] + 1e-9);
  // All three caps chosen at k=3.
  EXPECT_EQ(res.set_by_k[2].size(), 3u);
}

TEST(Engine, AdditionOfEverythingApproachesAllAggressorDelay) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult res = h.engine.run(h.options(3, Mode::kAddition));
  // Adding all three couplings must land exactly on the all-aggressor
  // fixpoint delay.
  EXPECT_NEAR(res.evaluated_delay, res.reference_delay, 1e-9);
}

TEST(Engine, EliminationOfEverythingReachesNoiseless) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult res = h.engine.run(h.options(3, Mode::kElimination));
  EXPECT_EQ(res.members.size(), 3u);
  EXPECT_NEAR(res.evaluated_delay, res.reference_delay, 1e-9);
  EXPECT_LT(res.evaluated_delay, res.baseline_delay);
}

TEST(Engine, EliminationTop1RemovesStrongest) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult res = h.engine.run(h.options(1, Mode::kElimination));
  ASSERT_EQ(res.members.size(), 1u);
  EXPECT_EQ(res.members[0], 0u);
  EXPECT_LT(res.evaluated_delay, res.baseline_delay);
}

TEST(Engine, DominanceAblationPreservesResult) {
  EngineHarness h(single_victim_three_aggressors());
  TopkOptions with = h.options(2, Mode::kAddition);
  TopkOptions without = h.options(2, Mode::kAddition);
  without.use_dominance = false;
  const TopkResult r1 = h.engine.run(with);
  const TopkResult r2 = h.engine.run(without);
  EXPECT_EQ(r1.members, r2.members);
  // Pruning must have removed something on the way.
  EXPECT_GT(r1.stats.prune.removed_dominated, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  EngineHarness h(single_victim_three_aggressors());
  const TopkResult r1 = h.engine.run(h.options(2, Mode::kAddition));
  const TopkResult r2 = h.engine.run(h.options(2, Mode::kAddition));
  EXPECT_EQ(r1.members, r2.members);
  EXPECT_DOUBLE_EQ(r1.evaluated_delay, r2.evaluated_delay);
}

// ---------------------------------------------------------------------------
// Brute-force validation (paper Table 1): on small fixtures the engine must
// match exhaustive enumeration for k = 1..3.
// ---------------------------------------------------------------------------

Fixture validation_fixture(int which) {
  switch (which) {
    case 0:
      return single_victim_three_aggressors();
    case 1: {
      // Two coupled victims in series on chain 0.
      Fixture fx = test::make_parallel_chains(3, 3);
      test::set_arrival(fx, "c1_in", 0.0, 0.1);
      test::couple(fx, "c0_n1", "c1_n1", 0.010);
      test::couple(fx, "c0_n2", "c2_n2", 0.008);
      test::couple(fx, "c0_n2", "c1_n2", 0.004);
      return fx;
    }
    case 2: {
      // Aggressor-of-aggressor chain plus direct couplings.
      Fixture fx = test::make_parallel_chains(3, 3);
      test::set_arrival(fx, "c0_in", 0.05, 0.08);
      test::set_arrival(fx, "c2_in", 0.0, 0.15);
      test::couple(fx, "c0_n2", "c1_n2", 0.009);
      test::couple(fx, "c1_n1", "c2_n1", 0.009);
      test::couple(fx, "c0_n1", "c2_n1", 0.005);
      test::couple(fx, "c0_n0", "c1_n0", 0.004);
      return fx;
    }
    default: {
      // Reconvergent victim path with mid-chain couplings.
      Fixture fx = test::make_parallel_chains(4, 2);
      test::set_arrival(fx, "c3_in", 0.02, 0.12);
      test::couple(fx, "c0_n0", "c1_n0", 0.007);
      test::couple(fx, "c0_n1", "c2_n1", 0.007);
      test::couple(fx, "c0_n1", "c3_n1", 0.007);
      test::couple(fx, "c1_n1", "c3_n1", 0.005);
      return fx;
    }
  }
}

class BruteForceValidation
    : public ::testing::TestWithParam<std::tuple<int, int, Mode>> {};

TEST_P(BruteForceValidation, EngineMatchesExhaustive) {
  const auto [fixture_id, k, mode] = GetParam();
  EngineHarness h(validation_fixture(fixture_id));

  const TopkResult engine_res = h.engine.run(h.options(k, mode));

  topk::BruteForceOptions bf_opt;
  bf_opt.k = k;
  bf_opt.mode = mode;
  bf_opt.iterative.sta = h.fx.sta_options();
  const auto bf = brute_force_topk(*h.fx.netlist, h.fx.parasitics, h.model,
                                   h.calc, bf_opt);
  ASSERT_TRUE(bf.has_value());
  ASSERT_FALSE(bf->timed_out);

  // The engine's chosen set, re-evaluated with the same full analysis, must
  // match the exhaustive optimum. The engine scores with single-pass
  // superposition while the evaluator runs the full window fixpoint, and
  // these multi-PO fixtures (the paper's formulation has a single sink)
  // stress the gap, so near-ties within ~0.3% may resolve differently
  // (see EXPERIMENTS.md "Known deviations").
  const double tol = 1e-3;  // ns
  if (mode == Mode::kAddition) {
    EXPECT_LE(engine_res.evaluated_delay, bf->delay + 1e-9);
    EXPECT_GE(engine_res.evaluated_delay, bf->delay - tol)
        << "engine set misses the optimum";
  } else {
    EXPECT_GE(engine_res.evaluated_delay, bf->delay - 1e-9);
    EXPECT_LE(engine_res.evaluated_delay, bf->delay + tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCircuits, BruteForceValidation,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 4),
                       ::testing::Values(Mode::kAddition, Mode::kElimination)));

// The same validation on *generated* circuits (placer/router/extractor in
// the loop, single sink per the paper's formulation), swept over seeds.
class GeneratedBruteForce : public ::testing::TestWithParam<std::tuple<int, Mode>> {};

TEST_P(GeneratedBruteForce, EngineMatchesExhaustiveK2) {
  const auto [seed, mode] = GetParam();
  gen::GeneratorParams params;
  params.name = "bfgen";
  params.num_gates = 30;
  params.target_couplings = 14;
  params.seed = static_cast<std::uint64_t>(seed);
  params.single_sink = true;
  const gen::GeneratedCircuit ckt = gen::generate_circuit(params);
  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);

  topk::TopkOptions opt;
  opt.k = 2;
  opt.mode = mode;
  opt.beam_cap = 0;
  opt.rerank_top = 16;
  opt.iterative.sta = ckt.sta_options();
  const topk::TopkResult engine_res = engine.run(opt);

  topk::BruteForceOptions bf_opt;
  bf_opt.k = 2;
  bf_opt.mode = mode;
  bf_opt.iterative.sta = ckt.sta_options();
  const auto bf = brute_force_topk(*ckt.netlist, ckt.parasitics, model, calc, bf_opt);
  ASSERT_TRUE(bf.has_value());

  const double tol = 1e-3;
  if (mode == Mode::kAddition) {
    EXPECT_LE(engine_res.evaluated_delay, bf->delay + 1e-9);
    EXPECT_GE(engine_res.evaluated_delay, bf->delay - tol);
  } else {
    EXPECT_GE(engine_res.evaluated_delay, bf->delay - 1e-9);
    EXPECT_LE(engine_res.evaluated_delay, bf->delay + tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GeneratedBruteForce,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Values(Mode::kAddition, Mode::kElimination)));

}  // namespace
}  // namespace tka::topk
