// Tests for the runtime-telemetry subsystem: lane phase accounting in the
// thread pool, RSS sampling, TrackedBytes balance across session teardown,
// the export sinks (Prometheus text, JSONL snapshots) and the concurrent
// observe/snapshot contract. With TKA_OBS_DISABLED the same file instead
// proves the telemetry surface collapses to benign no-ops while the sinks
// still emit valid (empty) documents.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "harness/bench_json.hpp"
#include "obs/obs.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "session/analysis_session.hpp"
#include "topk/topk_engine.hpp"

namespace tka {
namespace {

namespace json = bench::json;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

json::Value parse_or_fail(const std::string& text) {
  json::Value v;
  std::string error;
  EXPECT_TRUE(json::parse(text, &v, &error)) << error << "\nin: " << text;
  return v;
}

#if TKA_OBS_ENABLED

// Every worker's delta over an interval must be (almost) fully attributed:
// workers spend their lives inside instrumented phases, so the three
// buckets sum to the lane's wall time up to scheduler/bookkeeping slop.
TEST(Telemetry, WorkerBucketsSumToWall) {
  const std::vector<runtime::LaneCounters> before = runtime::lane_snapshot();
  runtime::ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    pool.parallel_for(0, 6, [](std::size_t) { sleep_ms(5); });
    sleep_ms(5);  // park the workers so queue-idle shows up too
  }
  const std::vector<runtime::LaneCounters> after = runtime::lane_snapshot();
  const std::vector<runtime::LaneCounters> delta =
      runtime::lane_delta(before, after);
  ASSERT_GE(delta.size(), before.size() + 2);

  int workers_seen = 0;
  for (std::size_t i = before.size(); i < delta.size(); ++i) {
    const runtime::LaneCounters& lane = delta[i];
    if (!lane.worker) continue;
    ++workers_seen;
    ASSERT_GT(lane.wall_ns, 0u);
    const double wall = static_cast<double>(lane.wall_ns);
    const double sum = static_cast<double>(lane.exec_ns + lane.queue_idle_ns +
                                           lane.barrier_wait_ns);
    // A snapshot can race one phase switch (at most one in-flight segment
    // misattributed) and the worker loop has a few unphased instructions
    // per task; both are tiny next to the millisecond sleeps above.
    EXPECT_GE(sum, 0.75 * wall) << "worker lane " << i << " unaccounted time";
    EXPECT_LE(sum, 1.05 * wall + 2e6) << "worker lane " << i
                                      << " over-attributed";
    EXPECT_GT(lane.queue_idle_ns, 0u);  // it was parked between rounds
    // CPU burned inside exec can never exceed the exec wall (± the two
    // clocks' read skew); the tasks here sleep, so it should be far below.
    EXPECT_LE(lane.exec_cpu_ns, lane.exec_ns + 2u * 1000 * 1000)
        << "worker lane " << i << " exec CPU exceeds exec wall";
  }
  EXPECT_EQ(workers_seen, 2);

  // The calling lane ran chunk 0 (exec) and then blocked on the barrier.
  bool caller_found = false;
  for (const runtime::LaneCounters& lane : delta) {
    if (lane.worker || lane.tasks == 0) continue;
    caller_found = true;
    EXPECT_GT(lane.exec_ns, 0u);
    EXPECT_GT(lane.barrier_wait_ns, 0u);
  }
  EXPECT_TRUE(caller_found);
}

// Entering a nested phase credits the elapsed segment to the *enclosing*
// phase, so an inner barrier-wait interrupts — not inflates — outer exec.
TEST(Telemetry, NestedPhaseCreditsEnclosing) {
  using runtime::telemetry::LaneSlot;
  using runtime::telemetry::Phase;
  LaneSlot slot;
  slot.push(Phase::kExec);
  sleep_ms(10);
  slot.push(Phase::kBarrierWait);
  sleep_ms(10);
  slot.pop();
  sleep_ms(10);
  slot.pop();
  const std::uint64_t exec = slot.exec_ns.load();
  const std::uint64_t wait = slot.barrier_wait_ns.load();
  EXPECT_GE(exec, 19u * 1000 * 1000);  // the two outer sleeps
  EXPECT_GE(wait, 9u * 1000 * 1000);   // the inner sleep only
  EXPECT_EQ(slot.queue_idle_ns.load(), 0u);
  EXPECT_EQ(slot.depth, 0);
  // The exec segments were sleeps: wall ~20ms, CPU near zero. The gap is
  // exactly what perf_report reads as the lane's involuntary stall.
  EXPECT_LT(slot.exec_cpu_ns.load(), exec);
}

TEST(Telemetry, RssSamplerMonotonePeak) {
  const std::uint64_t rss_before = obs::current_rss_bytes();
  ASSERT_GT(rss_before, 0u) << "/proc/self/status should be readable here";
  obs::RssSampler sampler(5);
  sleep_ms(30);
  EXPECT_GT(sampler.samples(), 0u);
  const std::uint64_t peak1 = sampler.peak();
  EXPECT_GE(peak1, rss_before);
  // Touch a fresh 16 MiB so RSS demonstrably grows, then re-read the peak.
  std::vector<char> ballast(16u << 20);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;
  sleep_ms(30);
  const std::uint64_t peak2 = sampler.peak();
  EXPECT_GE(peak2, peak1);  // monotone
  sampler.stop();
  EXPECT_EQ(sampler.peak(), sampler.peak());  // stable once stopped
  EXPECT_GE(obs::registry().gauge("mem.rss_peak_bytes").value(), 0.0);
}

TEST(Telemetry, TrackedBytesBalance) {
  using obs::TrackedBytes;
  EXPECT_EQ(TrackedBytes::total("test.tracked_bytes"), 0);
  {
    TrackedBytes a("test.tracked_bytes");
    TrackedBytes b("test.tracked_bytes");
    a.add(100);
    b.add(50);
    EXPECT_EQ(a.held(), 100);
    EXPECT_EQ(TrackedBytes::total("test.tracked_bytes"), 150);
    a.set(30);
    EXPECT_EQ(TrackedBytes::total("test.tracked_bytes"), 80);
    a.add(-1000);  // clamped at zero, never negative
    EXPECT_EQ(a.held(), 0);
    EXPECT_EQ(TrackedBytes::total("test.tracked_bytes"), 50);
    EXPECT_EQ(obs::registry().gauge("test.tracked_bytes").value(), 50.0);
  }
  EXPECT_EQ(TrackedBytes::total("test.tracked_bytes"), 0);
  EXPECT_EQ(obs::registry().gauge("test.tracked_bytes").value(), 0.0);
}

// The mem.* gauges the session and builders feed must drain to zero when
// the owners are torn down — the balance invariant from the issue.
TEST(Telemetry, SessionByteGaugesDrainOnTeardown) {
  using obs::TrackedBytes;
  {
    test::Fixture fx = test::make_parallel_chains(3, 3);
    test::couple(fx, "c0_n1", "c1_n1", 0.012);
    test::couple(fx, "c0_n2", "c2_n2", 0.006);
    topk::TopkOptions opt;
    opt.k = 2;
    opt.mode = topk::Mode::kElimination;
    opt.iterative.sta = fx.sta_options();
    session::AnalysisSession s(*fx.netlist, fx.parasitics, {});
    const topk::TopkResult res = s.run(opt);
    EXPECT_FALSE(res.members.empty());
    EXPECT_GT(TrackedBytes::total("mem.candidate_tables_bytes"), 0);
    EXPECT_GE(TrackedBytes::total("mem.whatif_memo_bytes"), 0);
    EXPECT_GE(TrackedBytes::total("mem.envelope_cache_bytes"), 0);
  }
  EXPECT_EQ(TrackedBytes::total("mem.candidate_tables_bytes"), 0);
  EXPECT_EQ(TrackedBytes::total("mem.whatif_memo_bytes"), 0);
  EXPECT_EQ(TrackedBytes::total("mem.envelope_cache_bytes"), 0);
}

TEST(Telemetry, HistogramStatsPercentiles) {
  obs::Histogram& h = obs::registry().histogram("test.stats_hist", 1.0, 1024.0);
  h.reset();
  for (int i = 0; i < 10; ++i) h.observe(2.0);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.sum, 20.0);
  // Bucket-resolved: the reported quantile is the upper bound of the bucket
  // holding the crossing, so it brackets the true value to one bucket.
  EXPECT_GE(s.p50, 2.0);
  EXPECT_LT(s.p50, 2.0 * 1.5);
  EXPECT_EQ(s.p90, s.p50);
  EXPECT_EQ(s.max, s.p50);

  // counters_delta: histogram count/sum subtract like counters.
  const obs::MetricsSnapshot before = obs::registry().snapshot();
  h.observe(512.0);
  h.observe(512.0);
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  const obs::MetricsSnapshot delta = obs::counters_delta(before, after);
  ASSERT_TRUE(delta.histograms.count("test.stats_hist"));
  EXPECT_EQ(delta.histograms.at("test.stats_hist").count, 2u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("test.stats_hist").sum, 1024.0);
  EXPECT_GE(after.histograms.at("test.stats_hist").p90, 512.0);
}

TEST(Telemetry, PrometheusRoundTrip) {
  obs::registry().counter("test.prom.counter").add(3);
  obs::registry().gauge("test.prom.gauge").set(2.5);
  obs::Histogram& h = obs::registry().histogram("test.prom.hist", 1e-3, 10.0);
  h.reset();
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream out;
  obs::write_prometheus_text(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE tka_test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("tka_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tka_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("tka_test_prom_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tka_test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("tka_test_prom_hist_count 3"), std::string::npos);

  // Exposition-format shape: every non-comment line is `name[{labels}] value`
  // and the histogram's cumulative bucket counts never decrease.
  std::istringstream lines(text);
  std::string line;
  double prev_bucket = -1.0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparsable sample value in: " << line;
    if (line.compare(0, 26, "tka_test_prom_hist_bucket{") == 0) {
      const double n = std::strtod(value.c_str(), nullptr);
      EXPECT_GE(n, prev_bucket) << "non-cumulative buckets: " << line;
      prev_bucket = n;
    }
  }
  EXPECT_EQ(prev_bucket, 3.0);  // +Inf bucket saw every observation
}

TEST(Telemetry, SnapshotLineIsValidJson) {
  obs::registry().counter("test.jsonl.counter").add(7);
  obs::registry().histogram("test.jsonl.hist", 1.0, 100.0).observe(4.0);
  std::ostringstream out;
  obs::write_snapshot_line(out);
  const std::string line = out.str();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record, one line
  const json::Value v = parse_or_fail(line);
  EXPECT_GE(v.number_or("t_s", -1.0), 0.0);
  EXPECT_GT(v.number_or("rss_bytes", 0.0), 0.0);
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("test.jsonl.counter", 0.0), 7.0);
  const json::Value* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hist = hists->find("test.jsonl.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->number_or("count", 0.0), 1.0);
  EXPECT_GE(hist->number_or("p90", 0.0), 4.0);
}

TEST(Telemetry, MetricsFileSinkWritesParsableRecords) {
  const std::string path = "test_obs_telemetry_metrics.jsonl";
  {
    obs::MetricsFileSink sink(path, 10);
    ASSERT_TRUE(sink.ok());
    sleep_ms(50);
    sink.stop();
    EXPECT_GE(sink.records(), 3u);  // initial + periodic + final
  }
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  std::size_t records = 0;
  double prev_t = -1.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const json::Value v = parse_or_fail(line);
    const double t = v.number_or("t_s", -1.0);
    EXPECT_GE(t, prev_t);  // snapshots are time-ordered
    prev_t = t;
    ++records;
  }
  EXPECT_GE(records, 3u);
  std::remove(path.c_str());
}

// TSan target: concurrent observe() against stats()/snapshot() readers must
// be race-free, and once writers join, the totals are exact.
TEST(Telemetry, ConcurrentObserveAndSnapshot) {
  obs::Histogram& h =
      obs::registry().histogram("test.concurrent_hist", 1e-6, 100.0);
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::atomic<bool> done{false};
  std::thread reader([&]() {
    while (!done.load(std::memory_order_relaxed)) {
      const obs::HistogramStats s = h.stats();
      EXPECT_LE(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
      (void)obs::registry().snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(1e-4 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.stats().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

#else  // !TKA_OBS_ENABLED — the whole surface must be a benign no-op.

TEST(TelemetryDisabled, LaneSnapshotEmpty) {
  runtime::ThreadPool pool(2);
  pool.parallel_for(0, 8, [](std::size_t) { sleep_ms(1); });
  EXPECT_TRUE(runtime::lane_snapshot().empty());
  EXPECT_TRUE(runtime::lane_delta({}, {}).empty());
  runtime::publish_runtime_metrics();  // must not crash
}

TEST(TelemetryDisabled, SnapshotAndTrackingAreEmpty) {
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  obs::TrackedBytes tb("test.disabled_bytes");
  tb.add(1234);
  EXPECT_EQ(tb.held(), 0);
  EXPECT_EQ(obs::TrackedBytes::total("test.disabled_bytes"), 0);
  obs::RssSampler sampler(5);
  sampler.stop();
  EXPECT_EQ(sampler.samples(), 0u);
}

TEST(TelemetryDisabled, RssReadersStayLive) {
  // The raw readers are deliberately outside the compile-out so the bench
  // harness can always record memory.
  EXPECT_GT(obs::current_rss_bytes(), 0u);
  EXPECT_GE(obs::peak_rss_bytes(), obs::current_rss_bytes() / 2);
}

TEST(TelemetryDisabled, SinksEmitValidEmptyDocuments) {
  std::ostringstream prom;
  obs::write_prometheus_text(prom);
  EXPECT_FALSE(prom.str().empty());
  EXPECT_EQ(prom.str()[0], '#');  // comment-only exposition

  std::ostringstream snap;
  obs::write_snapshot_line(snap);
  const json::Value v = parse_or_fail(snap.str());
  EXPECT_GE(v.number_or("t_s", -1.0), 0.0);
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_TRUE(counters->object.empty());

  const std::string path = "test_obs_telemetry_disabled.jsonl";
  {
    obs::MetricsFileSink sink(path, 10);
    EXPECT_TRUE(sink.ok());
    sink.stop();
    EXPECT_EQ(sink.records(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  parse_or_fail(line);
  std::remove(path.c_str());
}

#endif  // TKA_OBS_ENABLED

}  // namespace
}  // namespace tka
