// Tests for noise-violation checking against a clock constraint.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/violations.hpp"

namespace tka::noise {
namespace {

using test::Fixture;

NoiseReport run_report(const Fixture& fx, const sta::DelayModel& model,
                       const AnalyticCouplingCalculator& calc) {
  IterativeOptions it;
  it.sta = fx.sta_options();
  return analyze_iterative(*fx.netlist, fx.parasitics, model, calc,
                           CouplingMask::all(fx.parasitics.num_couplings()), it);
}

TEST(Violations, CleanDesignHasNoViolations) {
  Fixture fx = test::make_parallel_chains(2, 3);
  test::couple(fx, "c0_n2", "c1_n2", 0.006);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  AnalyticCouplingCalculator calc(fx.parasitics, model);
  const NoiseReport rep = run_report(fx, model, calc);
  const ConstraintReport cr =
      check_constraints(*fx.netlist, rep, rep.noisy_delay * 2.0);
  EXPECT_TRUE(cr.violations.empty());
  EXPECT_GT(cr.worst_slack_ns, 0.0);
  EXPECT_DOUBLE_EQ(cr.total_negative_slack_ns, 0.0);
}

TEST(Violations, NoiseInducedViolationDetected) {
  Fixture fx = test::make_parallel_chains(2, 3);
  test::couple(fx, "c0_n2", "c1_n2", 0.008);
  test::couple(fx, "c0_n1", "c1_n1", 0.008);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  AnalyticCouplingCalculator calc(fx.parasitics, model);
  const NoiseReport rep = run_report(fx, model, calc);
  ASSERT_GT(rep.noisy_delay, rep.noiseless_delay);

  // A period between the two delays: passes noiseless, fails noisy.
  const double period = 0.5 * (rep.noiseless_delay + rep.noisy_delay);
  const ConstraintReport cr = check_constraints(*fx.netlist, rep, period);
  ASSERT_FALSE(cr.violations.empty());
  EXPECT_LT(cr.worst_slack_ns, 0.0);
  EXPECT_LT(cr.total_negative_slack_ns, 0.0);
  // Violations sorted worst-first.
  for (size_t i = 1; i < cr.violations.size(); ++i) {
    EXPECT_LE(cr.violations[i - 1].slack_ns, cr.violations[i].slack_ns);
  }
  // Each violation is consistent: arrival - period == slack.
  for (const Violation& v : cr.violations) {
    EXPECT_NEAR(v.arrival_ns - period, -v.slack_ns, 1e-12);
    EXPECT_TRUE(fx.netlist->net(v.endpoint).is_primary_output);
  }
}

TEST(Violations, StressPeriodSeparatesNoisyFromNoiseless) {
  Fixture fx = test::make_parallel_chains(2, 3);
  test::couple(fx, "c0_n2", "c1_n2", 0.010);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  AnalyticCouplingCalculator calc(fx.parasitics, model);
  const NoiseReport rep = run_report(fx, model, calc);
  ASSERT_GT(rep.noisy_delay, rep.noiseless_delay + 1e-4);
  const double period = suggest_stress_period(rep);
  EXPECT_GT(period, rep.noiseless_delay);
  EXPECT_LT(period, rep.noisy_delay);
  const ConstraintReport cr = check_constraints(*fx.netlist, rep, period);
  EXPECT_FALSE(cr.violations.empty());
}

TEST(Violations, FixingTopKClearsViolations) {
  // End-to-end: find violations, fix the top-k set, count again.
  Fixture fx = test::make_parallel_chains(3, 3);
  test::couple(fx, "c0_n2", "c1_n2", 0.010);
  test::couple(fx, "c0_n1", "c2_n1", 0.008);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  AnalyticCouplingCalculator calc(fx.parasitics, model);
  const NoiseReport before = run_report(fx, model, calc);
  const double period = suggest_stress_period(before);
  const size_t violations_before =
      check_constraints(*fx.netlist, before, period).violations.size();
  ASSERT_GT(violations_before, 0u);

  // Fix both couplings (k = total here) and re-check.
  fx.parasitics.zero_coupling(0);
  fx.parasitics.zero_coupling(1);
  const NoiseReport after = run_report(fx, model, calc);
  const size_t violations_after =
      check_constraints(*fx.netlist, after, period).violations.size();
  EXPECT_LT(violations_after, violations_before);
  EXPECT_EQ(violations_after, 0u);
}

}  // namespace
}  // namespace tka::noise
