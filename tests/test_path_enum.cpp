// Tests for k-worst path enumeration, validated against exhaustive path
// enumeration on small circuits.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "layout/parasitics.hpp"
#include "net/builder.hpp"
#include "sta/path_enum.hpp"

namespace tka::sta {
namespace {

struct PathSetup {
  std::unique_ptr<net::Netlist> nl;
  layout::Parasitics par{0};
  std::unique_ptr<DelayModel> model;
  StaResult sta;

  explicit PathSetup(std::unique_ptr<net::Netlist> netlist,
                 const StaOptions& opt = {})
      : nl(std::move(netlist)), par(nl->num_nets()) {
    for (net::NetId n = 0; n < nl->num_nets(); ++n) par.add_ground_cap(n, 0.01);
    model = std::make_unique<DelayModel>(*nl, par);
    sta = run_sta(*nl, *model, opt);
  }
};

// Exhaustive PI-to-PO path enumeration by DFS.
std::vector<TimingPath> all_paths(const net::Netlist& nl, const StaResult& sta) {
  std::vector<TimingPath> out;
  std::vector<net::NetId> stack;
  std::function<void(net::NetId, double)> walk = [&](net::NetId id,
                                                     double suffix_delay) {
    stack.push_back(id);
    const net::Net& n = nl.net(id);
    if (n.driver == net::kInvalidGate) {
      TimingPath p;
      p.nets.assign(stack.rbegin(), stack.rend());
      p.arrival = sta.windows[id].lat + suffix_delay;
      out.push_back(std::move(p));
    } else {
      const double d = sta.gate_delay[n.driver];
      for (net::NetId in : nl.gate(n.driver).inputs) walk(in, suffix_delay + d);
    }
    stack.pop_back();
  };
  for (net::NetId po : nl.primary_outputs()) walk(po, 0.0);
  std::sort(out.begin(), out.end(), [](const TimingPath& a, const TimingPath& b) {
    return a.arrival > b.arrival;
  });
  return out;
}

TEST(PathEnum, C17MatchesExhaustive) {
  PathSetup s(net::make_c17());
  const std::vector<TimingPath> exhaustive = all_paths(*s.nl, s.sta);
  const std::vector<TimingPath> enumerated =
      k_worst_paths(*s.nl, s.sta, exhaustive.size() + 5);
  ASSERT_EQ(enumerated.size(), exhaustive.size());
  for (size_t i = 0; i < exhaustive.size(); ++i) {
    EXPECT_NEAR(enumerated[i].arrival, exhaustive[i].arrival, 1e-12) << i;
  }
}

TEST(PathEnum, ArrivalsNonIncreasing) {
  PathSetup s(net::make_nand_tree(3));
  const auto paths = k_worst_paths(*s.nl, s.sta, 12);
  ASSERT_GE(paths.size(), 2u);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i].arrival, paths[i - 1].arrival + 1e-12);
  }
}

TEST(PathEnum, FirstPathIsTheCriticalPath) {
  StaOptions opt;
  opt.input_arrival = [](net::NetId n) {
    InputArrival a;
    if (n == 2) a.lat = 0.4;  // make one input clearly critical
    return a;
  };
  PathSetup s(net::make_c17(), opt);
  const auto paths = k_worst_paths(*s.nl, s.sta, 1);
  ASSERT_EQ(paths.size(), 1u);
  const TimingPath crit = critical_path(*s.nl, s.sta);
  EXPECT_EQ(paths[0].nets, crit.nets);
  EXPECT_NEAR(paths[0].arrival, crit.arrival, 1e-12);
}

TEST(PathEnum, CountLimitsOutput) {
  PathSetup s(net::make_c17());
  EXPECT_EQ(k_worst_paths(*s.nl, s.sta, 3).size(), 3u);
  EXPECT_EQ(k_worst_paths(*s.nl, s.sta, 0).size(), 0u);
}

TEST(PathEnum, PathsAreStructurallyValid) {
  PathSetup s(net::make_c17());
  for (const TimingPath& p : k_worst_paths(*s.nl, s.sta, 8)) {
    ASSERT_GE(p.nets.size(), 2u);
    EXPECT_TRUE(s.nl->net(p.nets.front()).is_primary_input);
    EXPECT_TRUE(s.nl->net(p.nets.back()).is_primary_output);
    for (size_t i = 1; i < p.nets.size(); ++i) {
      const net::Net& out = s.nl->net(p.nets[i]);
      ASSERT_NE(out.driver, net::kInvalidGate);
      const auto& ins = s.nl->gate(out.driver).inputs;
      EXPECT_NE(std::find(ins.begin(), ins.end(), p.nets[i - 1]), ins.end());
    }
  }
}

TEST(PathEnum, ChainHasExactlyOnePath) {
  PathSetup s(net::make_chain(6));
  const auto paths = k_worst_paths(*s.nl, s.sta, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].nets.size(), 7u);
}

}  // namespace
}  // namespace tka::sta
