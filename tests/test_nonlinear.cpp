// Tests for the square-law driver model and Newton-trapezoidal transient,
// and the linear-vs-nonlinear noise-pulse comparison (the paper's future
// work: non-linear driver models).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/coupled_rc.hpp"
#include "circuit/nonlinear.hpp"
#include "wave/ramp.hpp"

namespace tka::circuit {
namespace {

TEST(SquareLaw, CurrentRegions) {
  SquareLawDevice d(2.0, 0.8);  // k=2 mA/V^2, Vov=0.8
  EXPECT_DOUBLE_EQ(d.current(0.0), 0.0);
  // Triode: I(0.4) = 2*(0.8*0.4 - 0.08) = 0.48
  EXPECT_NEAR(d.current(0.4), 0.48, 1e-12);
  // Saturation: I = k*vov^2/2 = 0.64 at v=vov, flat (plus tiny leak).
  EXPECT_NEAR(d.current(0.8), 0.64, 1e-9);
  EXPECT_NEAR(d.current(1.5), 0.64, 1e-3);
  // Negative side: linearized.
  EXPECT_NEAR(d.current(-0.1), -0.16, 1e-12);
}

TEST(SquareLaw, ConductanceDecreasesTowardSaturation) {
  SquareLawDevice d(2.0, 0.8);
  EXPECT_GT(d.conductance(0.0), d.conductance(0.4));
  EXPECT_GT(d.conductance(0.4), d.conductance(0.79));
  EXPECT_GT(d.conductance(1.5), 0.0);  // g_min floor
}

TEST(SquareLaw, FromResistanceMatchesSmallSignal) {
  const double r = 1.6;  // kOhm
  SquareLawDevice d = SquareLawDevice::from_resistance(r, 0.9);
  EXPECT_NEAR(d.conductance(0.0), 1.0 / r, 1e-12);
}

TEST(NonlinearTransient, SmallSignalMatchesLinearRc) {
  // Tiny injected disturbance: the device behaves like its small-signal
  // resistance, so the response matches the linear RC simulation.
  const double r = 1.0;
  const double cap = 0.2;
  auto build = [&](bool with_res) {
    LinearCircuit ckt;
    const NodeId inj = ckt.add_node("inj");
    const NodeId out = ckt.add_node("out");
    // Small coupling from a weak source.
    ckt.add_vsource(inj, wave::make_rising_ramp(0.25, 0.1, 0.05));  // 50 mV
    ckt.add_capacitor(inj, out, 0.02);
    ckt.add_capacitor(out, 0, cap);
    if (with_res) ckt.add_resistor(out, 0, r);
    return ckt;
  };
  TransientOptions tr;
  tr.t_end = 3.0;
  tr.step = 0.002;

  LinearCircuit lin = build(true);
  const TransientResult ref = simulate(lin, tr);

  LinearCircuit nl = build(false);
  NonlinearOptions nopt;
  nopt.transient = tr;
  const std::vector<AttachedDevice> devs = {
      {2, SquareLawDevice::from_resistance(r, 0.9)}};
  const TransientResult res = simulate_nonlinear(nl, devs, nopt);

  for (double t = 0.1; t < 2.5; t += 0.2) {
    EXPECT_NEAR(res.waveform(2).value(t), ref.waveform(2).value(t), 0.004)
        << "t=" << t;
  }
}

TEST(NonlinearTransient, DcNewtonConverges) {
  // Constant source through a resistor into a device: solves the diode-like
  // equation without blowing up.
  LinearCircuit ckt;
  const NodeId src = ckt.add_node();
  const NodeId out = ckt.add_node();
  ckt.add_vsource(src, wave::Pwl::constant(1.0));
  ckt.add_resistor(src, out, 1.0);
  ckt.add_capacitor(out, 0, 0.01);
  NonlinearOptions opt;
  opt.transient.t_end = 0.5;
  opt.transient.step = 0.005;
  const std::vector<AttachedDevice> devs = {
      {out, SquareLawDevice::from_resistance(0.5, 0.9)}};
  const TransientResult res = simulate_nonlinear(ckt, devs, opt);
  // Equilibrium: I_R(v) = (1-v)/1 = I_dev(v); with R_ss=0.5 (k*vov=2):
  // triode I = (2/0.9)(0.9 v - v^2/2) -> solve; just require stability and
  // a value strictly between the linear-divider extremes.
  const double v_end = res.waveform(out).value(0.49);
  EXPECT_GT(v_end, 0.2);
  EXPECT_LT(v_end, 0.5);
}

TEST(NonlinearPulse, LargeGlitchExceedsLinearPrediction) {
  // The holding device weakens as the glitch grows, so for a strong
  // coupling the nonlinear peak must exceed the linear (small-signal) one.
  CoupledRcParams p;
  p.cc = 0.06;  // strong coupling -> large glitch
  p.agg_trans = 0.05;
  const double lin_peak = simulate_noise_pulse(p).peak();
  const double nl_peak = simulate_noise_pulse_nonlinear(p, 0.5 * p.vdd).peak();
  EXPECT_GT(nl_peak, lin_peak * 1.02);
}

TEST(NonlinearPulse, SmallGlitchMatchesLinear) {
  CoupledRcParams p;
  p.cc = 0.004;  // weak coupling -> small glitch, triode ~ linear
  const double lin_peak = simulate_noise_pulse(p).peak();
  const double nl_peak = simulate_noise_pulse_nonlinear(p, 0.5 * p.vdd).peak();
  EXPECT_NEAR(nl_peak, lin_peak, 0.25 * lin_peak);
}

TEST(NonlinearPulse, CharacterizationProducesValidShape) {
  CoupledRcParams p;
  const wave::PulseShape s = characterize_noise_pulse_nonlinear(p, 0.6);
  EXPECT_GT(s.peak, 0.0);
  EXPECT_GT(s.rise, 0.0);
  EXPECT_GT(s.tau, 0.0);
}

}  // namespace
}  // namespace tka::circuit
