// Tests for incremental STA: bit-exact equivalence with full re-analysis
// after parasitic edits, and bounded re-propagation.
#include <gtest/gtest.h>

#include "gen/circuit_generator.hpp"
#include "layout/parasitics.hpp"
#include "net/builder.hpp"
#include "sta/incremental.hpp"

namespace tka::sta {
namespace {

void expect_equal(const StaResult& a, const StaResult& b) {
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.windows[i].eat, b.windows[i].eat) << "net " << i;
    EXPECT_DOUBLE_EQ(a.windows[i].lat, b.windows[i].lat) << "net " << i;
    EXPECT_DOUBLE_EQ(a.windows[i].trans_late, b.windows[i].trans_late);
  }
  EXPECT_DOUBLE_EQ(a.max_lat, b.max_lat);
  EXPECT_EQ(a.worst_po, b.worst_po);
}

TEST(IncrementalSta, MatchesFullAfterCapChange) {
  auto nl = net::make_c17();
  layout::Parasitics par(nl->num_nets());
  for (net::NetId n = 0; n < nl->num_nets(); ++n) par.add_ground_cap(n, 0.01);
  DelayModel model(*nl, par);
  IncrementalSta inc(*nl, model);

  const net::NetId target = nl->net_by_name("N11");
  par.add_ground_cap(target, 0.05);
  inc.invalidate_net(target);
  const size_t changed = inc.update();
  EXPECT_GT(changed, 0u);
  expect_equal(inc.result(), run_sta(*nl, model));
}

TEST(IncrementalSta, NoChangeIsCheap) {
  auto nl = net::make_c17();
  layout::Parasitics par(nl->num_nets());
  for (net::NetId n = 0; n < nl->num_nets(); ++n) par.add_ground_cap(n, 0.01);
  DelayModel model(*nl, par);
  IncrementalSta inc(*nl, model);
  inc.invalidate_net(nl->net_by_name("N11"));
  // Nothing actually changed in the parasitics.
  EXPECT_EQ(inc.update(), 0u);
  expect_equal(inc.result(), run_sta(*nl, model));
}

TEST(IncrementalSta, CoupledShieldWorkflow) {
  gen::GeneratorParams p;
  p.name = "inc";
  p.num_gates = 80;
  p.target_couplings = 200;
  p.seed = 17;
  gen::GeneratedCircuit ckt = gen::generate_circuit(p);
  DelayModel model(*ckt.netlist, ckt.parasitics);
  IncrementalSta inc(*ckt.netlist, model, ckt.sta_options());

  // Shield the five largest couplings one at a time; the incremental result
  // must track the full recomputation at every step.
  std::vector<layout::CapId> order;
  for (layout::CapId id = 0; id < ckt.parasitics.num_couplings(); ++id) {
    order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](layout::CapId a, layout::CapId b) {
    return ckt.parasitics.coupling(a).cap_pf > ckt.parasitics.coupling(b).cap_pf;
  });
  for (int i = 0; i < 5; ++i) {
    const layout::CouplingCap cc = ckt.parasitics.coupling(order[i]);
    ckt.parasitics.shield_coupling(order[i]);
    inc.invalidate_net(cc.net_a);
    inc.invalidate_net(cc.net_b);
    inc.update();
    expect_equal(inc.result(), run_sta(*ckt.netlist, model, ckt.sta_options()));
  }
}

TEST(IncrementalSta, PiArrivalRefreshOnInvalidate) {
  auto nl = net::make_chain(3);
  layout::Parasitics par(nl->num_nets());
  for (net::NetId n = 0; n < nl->num_nets(); ++n) par.add_ground_cap(n, 0.01);
  DelayModel model(*nl, par);
  double arrival = 0.0;
  StaOptions opt;
  opt.input_arrival = [&arrival](net::NetId) {
    return InputArrival{arrival, arrival};
  };
  IncrementalSta inc(*nl, model, opt);
  const double base = inc.result().max_lat;

  arrival = 0.3;
  inc.invalidate_net(nl->primary_inputs().front());
  inc.update();
  EXPECT_NEAR(inc.result().max_lat, base + 0.3, 1e-12);
}

TEST(IncrementalSta, OnlyConeRecomputed) {
  // Changing the last net of one chain must not touch the other chain.
  auto nl = net::make_chain(4, "x");
  // Build a second independent chain in the same netlist.
  const net::CellLibrary& lib = nl->library();
  net::NetId cur = nl->add_primary_input("in2");
  for (int i = 0; i < 4; ++i) {
    cur = nl->add_gate(lib.index_of("BUFX1"), {cur}, "y" + std::to_string(i));
  }
  nl->mark_primary_output(cur);

  layout::Parasitics par(nl->num_nets());
  for (net::NetId n = 0; n < nl->num_nets(); ++n) par.add_ground_cap(n, 0.01);
  DelayModel model(*nl, par);
  IncrementalSta inc(*nl, model);

  const net::NetId tail1 = nl->net_by_name("n3");
  par.add_ground_cap(tail1, 0.1);
  inc.invalidate_net(tail1);
  const size_t changed = inc.update();
  // Only the final net of chain 1 changes (its driver's delay).
  EXPECT_EQ(changed, 1u);
  expect_equal(inc.result(), run_sta(*nl, model));
}

}  // namespace
}  // namespace tka::sta
