// Tests for logic simulation, toggle profiling and the functional
// false-aggressor filter.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "net/builder.hpp"
#include "net/logic_sim.hpp"
#include "noise/aggressor_filter.hpp"
#include "noise/coupling_calc.hpp"

namespace tka::net {
namespace {

std::vector<bool> pi_vector(const Netlist& nl,
                            const std::vector<std::pair<const char*, bool>>& values) {
  std::vector<bool> v(nl.num_nets(), false);
  for (const auto& [name, val] : values) v[nl.net_by_name(name)] = val;
  return v;
}

TEST(LogicSim, C17TruthTable) {
  auto nl = make_c17();
  // All inputs 0: N10 = NAND(0,0)=1, N11=1, N16=NAND(0,1)=1, N19=1,
  // N22=NAND(1,1)=0, N23=0.
  auto v = evaluate_netlist(*nl, pi_vector(*nl, {}));
  EXPECT_TRUE(v[nl->net_by_name("N10")]);
  EXPECT_FALSE(v[nl->net_by_name("N22")]);
  EXPECT_FALSE(v[nl->net_by_name("N23")]);

  // N1=N3=1 -> N10 = 0 -> N22 = NAND(0, x) = 1.
  v = evaluate_netlist(*nl, pi_vector(*nl, {{"N1", true}, {"N3", true}}));
  EXPECT_FALSE(v[nl->net_by_name("N10")]);
  EXPECT_TRUE(v[nl->net_by_name("N22")]);
}

TEST(LogicSim, ChainPropagatesInversion) {
  auto nl = make_chain(3);  // INV, BUF, INV
  std::vector<bool> in(nl->num_nets(), false);
  in[nl->primary_inputs().front()] = true;
  const auto v = evaluate_netlist(*nl, in);
  // INV(1)=0, BUF(0)=0, INV(0)=1.
  EXPECT_TRUE(v[nl->primary_outputs().front()]);
}

TEST(ToggleProfileTest, PiTogglesTracked) {
  auto nl = make_chain(2);
  const ToggleProfile prof = profile_toggles(*nl, 128, 1, 1.0);  // always flip
  const NetId pi = nl->primary_inputs().front();
  const NetId po = nl->primary_outputs().front();
  // flip_prob=1: the PI toggles in every event; the chain follows.
  EXPECT_EQ(prof.toggle_count[pi], 128);
  EXPECT_EQ(prof.toggle_count[po], 128);
  EXPECT_TRUE(prof.both_toggled(pi, po));
}

TEST(ToggleProfileTest, ZeroFlipNoToggles) {
  auto nl = make_c17();
  const ToggleProfile prof = profile_toggles(*nl, 64, 2, 0.0);
  for (NetId n = 0; n < nl->num_nets(); ++n) {
    EXPECT_EQ(prof.toggle_count[n], 0);
  }
}

TEST(ToggleProfileTest, IndependentSubtreesCanBothToggle) {
  auto nl = make_nand_tree(2);  // 4 PIs, 3 gates
  const ToggleProfile prof = profile_toggles(*nl, 256, 3, 0.5);
  // With 256 events, any two nets that can toggle together almost surely
  // did. The two mid-level NAND outputs are driven by disjoint PI pairs.
  const NetId t0 = nl->net_by_name("t0_out");
  const NetId t1 = nl->net_by_name("t1_out");
  EXPECT_GT(prof.toggle_count[t0], 0);
  EXPECT_GT(prof.toggle_count[t1], 0);
  EXPECT_TRUE(prof.both_toggled(t0, t1));
}

TEST(FunctionalFilter, ConstantAggressorFilteredOut) {
  // Couple a victim to a net that cannot toggle: XOR(a, a) == 0 always.
  const CellLibrary& lib = CellLibrary::default_library();
  auto fx = test::make_parallel_chains(2, 2);
  Netlist& nl = *fx.netlist;
  const NetId a = nl.net_by_name("c1_in");
  const NetId constant = nl.add_gate(lib.index_of("XOR2X1"), {a, a}, "konst");
  // Resize the parasitics to cover the new net and add couplings.
  layout::Parasitics par(nl.num_nets());
  const layout::CapId dead = par.add_coupling(nl.net_by_name("c0_n1"), constant, 0.01);
  const layout::CapId live =
      par.add_coupling(nl.net_by_name("c0_n0"), nl.net_by_name("c1_n0"), 0.01);
  for (NetId n = 0; n < nl.num_nets(); ++n) par.add_ground_cap(n, 0.01);

  sta::DelayModel model(nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  const sta::StaResult sr = sta::run_sta(nl, model, fx.sta_options());
  noise::EnvelopeBuilder builder(nl, par, calc, sr.windows);
  noise::NoiseAnalyzer analyzer(nl, par, model);
  noise::FilterOptions opt;
  opt.functional = true;
  opt.functional_events = 128;
  noise::AggressorFilter filter(nl, par, analyzer, builder, opt);

  // The constant net can never aggress the victim...
  EXPECT_TRUE(filter.is_false(nl.net_by_name("c0_n1"), dead));
  // ...while the live coupling survives.
  EXPECT_FALSE(filter.is_false(nl.net_by_name("c0_n0"), live));
}

}  // namespace
}  // namespace tka::net
