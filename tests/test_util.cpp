// Unit tests for the util module: RNG determinism/distribution, string
// helpers, logging levels, assertion/check behavior.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace tka {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) seen[rng.next_below(8)]++;
  for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(StringUtil, TrimRemovesBothEnds) {
  EXPECT_EQ(str::trim("  hello \t\n"), "hello");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("x"), "x");
}

TEST(StringUtil, SplitDropsEmptyTokens) {
  const auto tok = str::split("a, b,,c", ", ");
  ASSERT_EQ(tok.size(), 3u);
  EXPECT_EQ(tok[0], "a");
  EXPECT_EQ(tok[1], "b");
  EXPECT_EQ(tok[2], "c");
}

TEST(StringUtil, SplitEmptyInput) {
  EXPECT_TRUE(str::split("", ",").empty());
  EXPECT_TRUE(str::split(",,,", ",").empty());
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(str::starts_with("*NET foo", "*NET"));
  EXPECT_FALSE(str::starts_with("NET", "*NET"));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(str::to_lower("NaNd2"), "nand2");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(str::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str::format("%.2f", 1.005), "1.00");
}

TEST(ErrorAndCheck, TkaCheckThrows) {
  EXPECT_THROW(TKA_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(TKA_CHECK(true, "fine"));
  try {
    TKA_CHECK(false, "specific message");
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Logging, LevelGate) {
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  log::info() << "should be suppressed";
  log::set_level(log::Level::kWarn);  // restore default
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace tka
