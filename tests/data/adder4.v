// 4-bit ripple-carry adder in the library's structural-Verilog subset.
module adder4 (a0, a1, a2, a3, b0, b1, b2, b3, cin,
               s0, s1, s2, s3, cout);
  input a0, a1, a2, a3, b0, b1, b2, b3, cin;
  output s0, s1, s2, s3, cout;
  wire p0, g0, c1, p1, g1, c2, p2, g2, c3, p3, g3;
  wire t0, t1, t2, t3;

  XOR2X1 px0 (.A(a0), .B(b0), .Y(p0));
  AND2X1 gx0 (.A(a0), .B(b0), .Y(g0));
  XOR2X1 sx0 (.A(p0), .B(cin), .Y(s0));
  AND2X1 tx0 (.A(p0), .B(cin), .Y(t0));
  OR2X1  cx0 (.A(g0), .B(t0), .Y(c1));

  XOR2X1 px1 (.A(a1), .B(b1), .Y(p1));
  AND2X1 gx1 (.A(a1), .B(b1), .Y(g1));
  XOR2X1 sx1 (.A(p1), .B(c1), .Y(s1));
  AND2X1 tx1 (.A(p1), .B(c1), .Y(t1));
  OR2X1  cx1 (.A(g1), .B(t1), .Y(c2));

  XOR2X1 px2 (.A(a2), .B(b2), .Y(p2));
  AND2X1 gx2 (.A(a2), .B(b2), .Y(g2));
  XOR2X1 sx2 (.A(p2), .B(c2), .Y(s2));
  AND2X1 tx2 (.A(p2), .B(c2), .Y(t2));
  OR2X1  cx2 (.A(g2), .B(t2), .Y(c3));

  XOR2X1 px3 (.A(a3), .B(b3), .Y(p3));
  AND2X1 gx3 (.A(a3), .B(b3), .Y(g3));
  XOR2X1 sx3 (.A(p3), .B(c3), .Y(s3));
  AND2X1 tx3 (.A(p3), .B(c3), .Y(t3));
  OR2X1  cx3 (.A(g3), .B(t3), .Y(cout));
endmodule
