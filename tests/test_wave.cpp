// Unit and property tests for the PWL waveform algebra, pulses, ramps and
// trapezoidal envelopes — the numerical core of the linear noise framework.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "wave/envelope.hpp"
#include "wave/pulse.hpp"
#include "wave/pwl.hpp"
#include "wave/ramp.hpp"

namespace tka::wave {
namespace {

Pwl triangle(double t0, double tp, double t1, double peak) {
  return Pwl({{t0, 0.0}, {tp, peak}, {t1, 0.0}});
}

TEST(Pwl, EmptyIsZeroEverywhere) {
  Pwl w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.value(-100.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1e9), 0.0);
  EXPECT_DOUBLE_EQ(w.peak(), 0.0);
  EXPECT_DOUBLE_EQ(w.integral(), 0.0);
}

TEST(Pwl, ValueInterpolatesLinearly) {
  Pwl w({{0.0, 0.0}, {1.0, 2.0}, {3.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);  // constant extrapolation
  EXPECT_DOUBLE_EQ(w.value(9.0), 0.0);
}

TEST(Pwl, ConstantWaveform) {
  Pwl c = Pwl::constant(0.7);
  EXPECT_DOUBLE_EQ(c.value(-5.0), 0.7);
  EXPECT_DOUBLE_EQ(c.value(123.0), 0.7);
}

TEST(Pwl, DuplicateTimesMergeKeepingLater) {
  Pwl w({{0.0, 0.0}, {1.0, 1.0}, {1.0, 3.0}, {2.0, 0.0}});
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.value(1.0), 3.0);
}

TEST(Pwl, PeakAndPeakTime) {
  Pwl w = triangle(0.0, 1.5, 4.0, 2.5);
  EXPECT_DOUBLE_EQ(w.peak(), 2.5);
  EXPECT_DOUBLE_EQ(w.peak_time(), 1.5);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.0);
}

TEST(Pwl, ShiftMovesTimes) {
  Pwl w = triangle(0.0, 1.0, 2.0, 1.0).shifted(3.0);
  EXPECT_DOUBLE_EQ(w.value(4.0), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), 0.0);
}

TEST(Pwl, ScaleMultipliesValues) {
  Pwl w = triangle(0.0, 1.0, 2.0, 1.0).scaled(-2.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), -2.0);
  EXPECT_DOUBLE_EQ(w.min_value(), -2.0);
}

TEST(Pwl, PlusExactOnMergedBreakpoints) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  Pwl b = triangle(0.5, 1.5, 2.5, 2.0);
  Pwl s = a.plus(b);
  for (double t = -0.5; t <= 3.0; t += 0.1) {
    EXPECT_NEAR(s.value(t), a.value(t) + b.value(t), 1e-12) << "t=" << t;
  }
}

TEST(Pwl, PlusWithEmptyIsIdentity) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  EXPECT_TRUE(a.plus(Pwl()).same_points(a));
  EXPECT_TRUE(Pwl().plus(a).same_points(a));
}

TEST(Pwl, MinusIsInverseOfPlus) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  Pwl b = triangle(0.2, 0.9, 2.2, 0.7);
  Pwl diff = a.plus(b).minus(b);
  for (double t = -0.5; t <= 3.0; t += 0.05) {
    EXPECT_NEAR(diff.value(t), a.value(t), 1e-12);
  }
}

TEST(Pwl, UpperEnvelopeIsPointwiseMax) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  Pwl b = triangle(0.5, 1.5, 2.5, 1.2);
  Pwl m = a.upper_envelope(b);
  for (double t = -0.5; t <= 3.0; t += 0.01) {
    EXPECT_NEAR(m.value(t), std::max(a.value(t), b.value(t)), 1e-9) << "t=" << t;
  }
}

TEST(Pwl, UpperEnvelopeInsertsCrossings) {
  Pwl a({{0.0, 0.0}, {2.0, 2.0}});
  Pwl b({{0.0, 2.0}, {2.0, 0.0}});
  Pwl m = a.upper_envelope(b);
  EXPECT_NEAR(m.value(1.0), 1.0, 1e-12);   // crossing point value
  EXPECT_NEAR(m.value(0.5), 1.5, 1e-12);   // b side
  EXPECT_NEAR(m.value(1.5), 1.5, 1e-12);   // a side
}

TEST(Pwl, ClampIntroducesThresholdBreakpoints) {
  Pwl w({{0.0, -1.0}, {2.0, 3.0}});
  Pwl c = w.clamped(0.0, 2.0);
  for (double t = -0.5; t <= 2.5; t += 0.01) {
    EXPECT_NEAR(c.value(t), std::clamp(w.value(t), 0.0, 2.0), 1e-9) << t;
  }
}

TEST(Pwl, EncapsulatesBasic) {
  Pwl big = triangle(0.0, 1.0, 4.0, 2.0);
  Pwl small = triangle(0.5, 1.0, 3.0, 1.0);
  EXPECT_TRUE(big.encapsulates(small, 0.0, 4.0));
  EXPECT_FALSE(small.encapsulates(big, 0.0, 4.0));
}

TEST(Pwl, EncapsulatesOnlyInsideInterval) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  Pwl b = triangle(3.0, 4.0, 5.0, 1.0);
  // Outside [0,2], b exceeds a; inside it does not.
  EXPECT_TRUE(a.encapsulates(b, 0.0, 2.0));
  EXPECT_FALSE(a.encapsulates(b, 0.0, 5.0));
}

TEST(Pwl, EncapsulatesSelf) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  EXPECT_TRUE(a.encapsulates(a, -1.0, 3.0));
}

TEST(Pwl, LastTimeAtOrBelowOnRamp) {
  Pwl ramp = make_rising_ramp(5.0, 1.0, 1.0);
  auto t50 = ramp.last_time_at_or_below(0.5);
  ASSERT_TRUE(t50.has_value());
  EXPECT_NEAR(*t50, 5.0, 1e-12);
}

TEST(Pwl, LastTimeWithDipAfterCrossing) {
  // Rises through 0.5, dips below, recovers: the *last* crossing counts.
  Pwl w({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.2}, {3.0, 1.0}});
  auto t = w.last_time_at_or_below(0.5);
  ASSERT_TRUE(t.has_value());
  // Between t=2 (0.2) and t=3 (1.0): crosses 0.5 at 2.375.
  EXPECT_NEAR(*t, 2.0 + 0.3 / 0.8, 1e-12);
}

TEST(Pwl, LastTimeNulloptWhenEndsBelow) {
  Pwl w({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_FALSE(w.last_time_at_or_below(0.5).has_value());
}

TEST(Pwl, FirstTimeAtOrAbove) {
  Pwl ramp = make_rising_ramp(5.0, 1.0, 1.0);
  auto t = ramp.first_time_at_or_above(0.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-12);
  EXPECT_FALSE(Pwl::constant(2.0).first_time_at_or_above(0.5).has_value());
}

TEST(Pwl, IntegralOfTriangle) {
  Pwl w = triangle(0.0, 1.0, 2.0, 1.0);
  EXPECT_NEAR(w.integral(), 1.0, 1e-12);
}

TEST(Pwl, SimplifyRemovesCollinear) {
  Pwl w({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 0.0}});
  Pwl s = w.simplified(1e-9);
  EXPECT_EQ(s.size(), 3u);
  for (double t = 0.0; t <= 4.0; t += 0.1) EXPECT_NEAR(s.value(t), w.value(t), 1e-9);
}

TEST(Pwl, SimplifyBoundsError) {
  Rng rng(5);
  std::vector<Point> pts;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({t, rng.next_double(0.0, 1.0)});
    t += rng.next_double(0.01, 0.1);
  }
  Pwl w(std::move(pts));
  const double tol = 0.05;
  Pwl s = w.simplified(tol);
  EXPECT_LT(s.size(), w.size());
  for (double x = w.t_front(); x <= w.t_back(); x += 0.003) {
    EXPECT_LE(std::abs(s.value(x) - w.value(x)), tol + 1e-9);
  }
}

TEST(Pwl, SumOfManyMatchesFoldedPlus) {
  Pwl a = triangle(0.0, 1.0, 2.0, 1.0);
  Pwl b = triangle(0.5, 1.0, 3.0, 0.5);
  Pwl c = triangle(1.0, 2.0, 4.0, 2.0);
  const Pwl* terms[] = {&a, &b, &c};
  Pwl s = Pwl::sum(terms);
  Pwl folded = a.plus(b).plus(c);
  for (double t = -1.0; t <= 5.0; t += 0.05) {
    EXPECT_NEAR(s.value(t), folded.value(t), 1e-12);
  }
}

TEST(Ramp, RisingRampShape) {
  Pwl r = make_rising_ramp(2.0, 1.0, 1.2);
  EXPECT_DOUBLE_EQ(r.value(1.4), 0.0);
  EXPECT_DOUBLE_EQ(r.value(2.0), 0.6);
  EXPECT_DOUBLE_EQ(r.value(2.6), 1.2);
}

TEST(Ramp, FallingRampShape) {
  Pwl r = make_falling_ramp(2.0, 1.0, 1.2);
  EXPECT_DOUBLE_EQ(r.value(1.4), 1.2);
  EXPECT_DOUBLE_EQ(r.value(2.0), 0.6);
  EXPECT_DOUBLE_EQ(r.value(2.6), 0.0);
}

TEST(Pulse, ShapeAndPeak) {
  PulseShape s{0.3, 0.1, 0.5};
  Pwl p = make_pulse(s, 1.0);
  EXPECT_NEAR(p.peak(), 0.3, 1e-12);
  EXPECT_NEAR(p.peak_time(), 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(p.value(0.9), 0.0);
  EXPECT_DOUBLE_EQ(p.value(100.0), 0.0);  // returns to zero
  EXPECT_GE(p.min_value(), 0.0);
}

TEST(Pulse, DecayFollowsExponential) {
  PulseShape s{1.0, 0.1, 1.0};
  Pwl p = make_pulse(s, 0.0, 24);
  // At one tau past the peak the value should be near 1/e.
  EXPECT_NEAR(p.value(0.1 + 1.0), std::exp(-1.0), 0.05);
  EXPECT_NEAR(p.value(0.1 + 2.0), std::exp(-2.0), 0.05);
}

TEST(Pulse, WidthMatchesBreakpoints) {
  PulseShape s{0.5, 0.2, 0.4};
  Pwl p = make_pulse(s, 2.0);
  EXPECT_NEAR(p.t_back() - p.t_front(), pulse_width(s), 1e-9);
}

TEST(Pulse, ZeroPeakIsEmpty) {
  PulseShape s{0.0, 0.1, 0.5};
  EXPECT_TRUE(make_pulse(s, 0.0).empty());
}

TEST(Envelope, DegenerateWindowEqualsPulse) {
  PulseShape s{0.4, 0.1, 0.3};
  Pwl env = make_trapezoidal_envelope(s, 2.0, 2.0);
  Pwl pulse = make_pulse(s, 2.0);
  for (double t = 1.5; t <= 5.0; t += 0.01) {
    EXPECT_NEAR(env.value(t), pulse.value(t), 1e-12);
  }
}

TEST(Envelope, TrapezoidHasPlateau) {
  PulseShape s{0.4, 0.1, 0.3};
  Pwl env = make_trapezoidal_envelope(s, 1.0, 3.0);
  // Plateau spans [eat+rise, lat+rise] at the peak value.
  for (double t = 1.1; t <= 3.1; t += 0.05) {
    EXPECT_NEAR(env.value(t), 0.4, 1e-9) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(env.value(0.9), 0.0);
  EXPECT_DOUBLE_EQ(env.value(50.0), 0.0);
}

TEST(Envelope, EnvelopeBoundsAnyAlignmentPulse) {
  // Property (paper Fig 2): the trapezoid must encapsulate the pulse fired
  // anywhere inside the timing window.
  PulseShape s{0.35, 0.15, 0.45};
  const double eat = 1.0;
  const double lat = 2.5;
  Pwl env = make_trapezoidal_envelope(s, eat, lat);
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const double t0 = rng.next_double(eat, lat);
    Pwl pulse = make_pulse(s, t0);
    EXPECT_TRUE(env.encapsulates(pulse, 0.0, 20.0, 1e-6)) << "t0=" << t0;
  }
}

TEST(Envelope, CombineIsSuperposition) {
  PulseShape s1{0.2, 0.1, 0.3};
  PulseShape s2{0.3, 0.2, 0.2};
  Pwl e1 = make_trapezoidal_envelope(s1, 0.0, 1.0);
  Pwl e2 = make_trapezoidal_envelope(s2, 0.5, 2.0);
  const Pwl* terms[] = {&e1, &e2};
  Pwl combined = combine_envelopes(terms);
  for (double t = -0.5; t <= 6.0; t += 0.05) {
    EXPECT_NEAR(combined.value(t), e1.value(t) + e2.value(t), 1e-12);
  }
}

TEST(Envelope, DominanceBasics) {
  DominanceInterval iv{0.0, 10.0};
  Pwl big = make_trapezoidal_envelope({0.5, 0.1, 0.5}, 1.0, 4.0);
  Pwl small = make_trapezoidal_envelope({0.3, 0.1, 0.5}, 1.5, 3.0);
  EXPECT_TRUE(dominates(big, small, iv));
  EXPECT_FALSE(dominates(small, big, iv));
  EXPECT_EQ(compare(big, small, iv), DomOrder::kADominatesB);
  EXPECT_EQ(compare(small, big, iv), DomOrder::kBDominatesA);
}

TEST(Envelope, IncomparableEnvelopes) {
  DominanceInterval iv{0.0, 10.0};
  // Same peak, disjoint supports: neither encapsulates the other.
  Pwl a = make_trapezoidal_envelope({0.3, 0.1, 0.3}, 1.0, 2.0);
  Pwl b = make_trapezoidal_envelope({0.3, 0.1, 0.3}, 5.0, 6.0);
  EXPECT_EQ(compare(a, b, iv), DomOrder::kIncomparable);
}

TEST(Envelope, EqualEnvelopesCountAsDominated) {
  DominanceInterval iv{0.0, 10.0};
  Pwl a = make_trapezoidal_envelope({0.3, 0.1, 0.3}, 1.0, 2.0);
  EXPECT_EQ(compare(a, a, iv), DomOrder::kADominatesB);
}

// Property sweep: envelope widening (LAT extension) always yields a
// dominating envelope — the monotonicity higher-order aggressors rely on.
class EnvelopeWidening : public ::testing::TestWithParam<double> {};

TEST_P(EnvelopeWidening, WiderWindowDominates) {
  const double extension = GetParam();
  PulseShape s{0.4, 0.12, 0.35};
  Pwl base = make_trapezoidal_envelope(s, 1.0, 2.0);
  Pwl wide = make_trapezoidal_envelope(s, 1.0, 2.0 + extension);
  DominanceInterval iv{0.0, 15.0};
  EXPECT_TRUE(dominates(wide, base, iv));
}

INSTANTIATE_TEST_SUITE_P(Widths, EnvelopeWidening,
                         ::testing::Values(0.0, 0.05, 0.2, 0.7, 2.0, 8.0));

// Property sweep: random envelope pairs — dominance must agree with a dense
// pointwise check.
class DominanceRandom : public ::testing::TestWithParam<int> {};

TEST_P(DominanceRandom, MatchesDenseCheck) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DominanceInterval iv{0.0, 8.0};
  for (int trial = 0; trial < 20; ++trial) {
    PulseShape s1{rng.next_double(0.05, 0.5), rng.next_double(0.05, 0.3),
                  rng.next_double(0.1, 0.6)};
    PulseShape s2{rng.next_double(0.05, 0.5), rng.next_double(0.05, 0.3),
                  rng.next_double(0.1, 0.6)};
    const double e1 = rng.next_double(0.0, 3.0);
    const double e2 = rng.next_double(0.0, 3.0);
    Pwl a = make_trapezoidal_envelope(s1, e1, e1 + rng.next_double(0.0, 2.0));
    Pwl b = make_trapezoidal_envelope(s2, e2, e2 + rng.next_double(0.0, 2.0));
    bool dense_ab = true;
    for (double t = iv.lo; t <= iv.hi; t += 0.004) {
      if (a.value(t) < b.value(t) - 1e-7) {
        dense_ab = false;
        break;
      }
    }
    // The analytic check may be stricter between samples, never looser.
    if (dominates(a, b, iv, 1e-9)) EXPECT_TRUE(dense_ab);
    if (!dense_ab) EXPECT_FALSE(dominates(a, b, iv, 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace tka::wave
