// Parallel-vs-serial equivalence: every parallelized stage (wavefront
// victim sweep, noise fixpoint relaxation, brute-force enumeration,
// generator arrivals, finalist re-ranking) must be bit-identical to
// --threads 1 for any thread count — determinism is a hard contract of the
// runtime (docs/PARALLELISM.md), not a tolerance.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/circuit_generator.hpp"
#include "io/report_writer.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/iterative.hpp"
#include "topk/brute_force.hpp"
#include "topk/topk_engine.hpp"
#include "util/rng.hpp"

namespace tka {
namespace {

struct Pipeline {
  gen::GeneratedCircuit ckt;
  std::unique_ptr<sta::DelayModel> model;
  std::unique_ptr<noise::AnalyticCouplingCalculator> calc;
  std::unique_ptr<topk::TopkEngine> engine;

  explicit Pipeline(gen::GeneratedCircuit c) : ckt(std::move(c)) {
    model = std::make_unique<sta::DelayModel>(*ckt.netlist, ckt.parasitics);
    calc = std::make_unique<noise::AnalyticCouplingCalculator>(ckt.parasitics,
                                                               *model);
    engine = std::make_unique<topk::TopkEngine>(*ckt.netlist, ckt.parasitics,
                                                *model, *calc);
  }
};

gen::GeneratedCircuit circuit(std::uint64_t seed = 41) {
  gen::GeneratorParams p;
  p.name = "parallel";
  p.num_gates = 60;
  p.target_couplings = 140;
  p.seed = seed;
  return gen::generate_circuit(p);
}

topk::TopkOptions engine_options(const Pipeline& pl, topk::Mode mode,
                                 int threads) {
  topk::TopkOptions opt;
  opt.k = 4;
  opt.mode = mode;
  opt.threads = threads;
  opt.beam_cap = 16;
  opt.iterative.sta = pl.ckt.sta_options();
  return opt;
}

// Report JSON with the wall-clock-dependent fields normalized away; every
// other byte must match across thread counts.
std::string normalized_report_json(const Pipeline& pl, topk::TopkResult res,
                                   int k) {
  res.stats.threads = 0;
  res.stats.runtime_s = 0.0;
  res.stats.runtime_by_k.assign(res.stats.runtime_by_k.size(), 0.0);
  std::ostringstream out;
  io::write_topk_result_json(out, *pl.ckt.netlist, pl.ckt.parasitics, res, k);
  return out.str();
}

TEST(ParallelEquivalence, EngineBitIdenticalAcrossThreadCounts) {
  Pipeline pl(circuit());
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    const topk::TopkResult serial =
        pl.engine->run(engine_options(pl, mode, 1));
    EXPECT_EQ(serial.stats.threads, 1);
    const std::string serial_json =
        normalized_report_json(pl, serial, 4);
    for (int threads : {2, 8}) {
      const topk::TopkResult par =
          pl.engine->run(engine_options(pl, mode, threads));
      EXPECT_EQ(par.stats.threads, threads);
      // The chosen set, every per-cardinality winner and every delay are
      // bitwise equal — no tolerance.
      EXPECT_EQ(par.members, serial.members) << threads;
      EXPECT_EQ(par.set_by_k, serial.set_by_k) << threads;
      EXPECT_EQ(par.finalists_by_k, serial.finalists_by_k) << threads;
      EXPECT_EQ(par.estimated_delay_by_k, serial.estimated_delay_by_k)
          << threads;
      EXPECT_EQ(par.baseline_delay, serial.baseline_delay) << threads;
      EXPECT_EQ(par.estimated_delay, serial.estimated_delay) << threads;
      EXPECT_EQ(par.evaluated_delay, serial.evaluated_delay) << threads;
      // Work counters: the same candidates are generated and pruned.
      EXPECT_EQ(par.stats.sets_generated, serial.stats.sets_generated);
      EXPECT_EQ(par.stats.max_list_size, serial.stats.max_list_size);
      EXPECT_EQ(par.stats.prune.considered, serial.stats.prune.considered);
      EXPECT_EQ(par.stats.prune.removed_dominated,
                serial.stats.prune.removed_dominated);
      EXPECT_EQ(par.stats.prune.removed_beam, serial.stats.prune.removed_beam);
      // The whole report, byte for byte (runtime fields zeroed).
      EXPECT_EQ(normalized_report_json(pl, par, 4), serial_json) << threads;
    }
  }
}

TEST(ParallelEquivalence, FixpointBitIdenticalAcrossThreadCounts) {
  Pipeline pl(circuit(43));
  const noise::CouplingMask mask =
      noise::CouplingMask::all(pl.ckt.parasitics.num_couplings());
  noise::IterativeOptions it;
  it.sta = pl.ckt.sta_options();
  it.threads = 1;
  const noise::NoiseReport serial = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, mask, it);
  for (int threads : {4, 8}) {
    it.threads = threads;
    const noise::NoiseReport par = noise::analyze_iterative(
        *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, mask, it);
    EXPECT_EQ(par.delay_noise, serial.delay_noise) << threads;
    EXPECT_EQ(par.noisy_delay, serial.noisy_delay) << threads;
    EXPECT_EQ(par.noiseless_delay, serial.noiseless_delay) << threads;
    EXPECT_EQ(par.iterations, serial.iterations) << threads;
    EXPECT_EQ(par.converged, serial.converged) << threads;
  }
  // The pessimistic (upper-bound) start parallelizes one more loop.
  it.pessimistic_start = true;
  it.threads = 1;
  const noise::NoiseReport pes_serial = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, mask, it);
  it.threads = 4;
  const noise::NoiseReport pes_par = noise::analyze_iterative(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, mask, it);
  EXPECT_EQ(pes_par.delay_noise, pes_serial.delay_noise);
  EXPECT_EQ(pes_par.noisy_delay, pes_serial.noisy_delay);
}

TEST(ParallelEquivalence, BruteForceBitIdenticalAcrossThreadCounts) {
  gen::GeneratorParams p;
  p.name = "bf";
  p.num_gates = 12;
  p.target_couplings = 8;
  p.seed = 5;
  p.single_sink = true;
  Pipeline pl(gen::generate_circuit(p));

  topk::BruteForceOptions opt;
  opt.k = 2;
  opt.mode = topk::Mode::kAddition;
  opt.iterative.sta = pl.ckt.sta_options();
  opt.threads = 1;
  const auto serial = topk::brute_force_topk(
      *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, opt);
  ASSERT_TRUE(serial.has_value());
  EXPECT_FALSE(serial->timed_out);
  for (int threads : {2, 8}) {
    opt.threads = threads;
    const auto par = topk::brute_force_topk(
        *pl.ckt.netlist, pl.ckt.parasitics, *pl.model, *pl.calc, opt);
    ASSERT_TRUE(par.has_value());
    EXPECT_EQ(par->members, serial->members) << threads;
    EXPECT_EQ(par->delay, serial->delay) << threads;
    EXPECT_EQ(par->subsets_evaluated, serial->subsets_evaluated) << threads;
  }
}

TEST(ParallelEquivalence, GeneratorArrivalsIdenticalAcrossThreadCounts) {
  gen::GeneratorParams p;
  p.name = "genpar";
  p.num_gates = 120;
  p.target_couplings = 200;
  p.seed = 99;
  p.threads = 1;
  const gen::GeneratedCircuit serial = gen::generate_circuit(p);
  p.threads = 8;
  const gen::GeneratedCircuit par = gen::generate_circuit(p);
  ASSERT_EQ(par.arrivals.size(), serial.arrivals.size());
  for (std::size_t n = 0; n < serial.arrivals.size(); ++n) {
    EXPECT_EQ(par.arrivals[n].eat, serial.arrivals[n].eat) << n;
    EXPECT_EQ(par.arrivals[n].lat, serial.arrivals[n].lat) << n;
  }
}

TEST(ParallelEquivalence, RngStreamsAreDecorrelated) {
  Rng base(123);
  Rng s0(123, 0);
  Rng s1(123, 1);
  // Stream 0 is not the plain generator, streams differ from each other,
  // and the same (seed, stream) pair reproduces exactly.
  EXPECT_NE(s0.next_u64(), base.next_u64());
  Rng s1b(123, 1);
  const std::uint64_t a = s1.next_u64();
  EXPECT_EQ(a, s1b.next_u64());
  Rng s0b(123, 0);
  EXPECT_NE(s0b.next_u64(), a);
}

}  // namespace
}  // namespace tka
