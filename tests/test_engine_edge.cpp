// Edge-case and option-surface tests for the top-k engine: degenerate
// inputs, option extremes, and consistency across configuration knobs.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/obs.hpp"
#include "topk/topk_engine.hpp"

namespace tka::topk {
namespace {

using test::Fixture;

struct Harness {
  Fixture fx;
  sta::DelayModel model;
  noise::AnalyticCouplingCalculator calc;
  TopkEngine engine;

  explicit Harness(Fixture f)
      : fx(std::move(f)),
        model(*fx.netlist, fx.parasitics),
        calc(fx.parasitics, model),
        engine(*fx.netlist, fx.parasitics, model, calc) {}

  TopkOptions options(int k, Mode mode) const {
    TopkOptions opt;
    opt.k = k;
    opt.mode = mode;
    opt.iterative.sta = fx.sta_options();
    return opt;
  }
};

Fixture basic_fixture() {
  Fixture fx = test::make_parallel_chains(3, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.010);
  test::couple(fx, "c0_n0", "c2_n0", 0.006);
  return fx;
}

TEST(EngineEdge, NoCouplingsAtAll) {
  Harness h(test::make_parallel_chains(2, 2));
  const TopkResult res = h.engine.run(h.options(3, Mode::kAddition));
  EXPECT_TRUE(res.members.empty());
  EXPECT_DOUBLE_EQ(res.baseline_delay, res.reference_delay);
  EXPECT_DOUBLE_EQ(res.estimated_delay, res.baseline_delay);
}

TEST(EngineEdge, KLargerThanCouplingCount) {
  Harness h(basic_fixture());
  const TopkResult res = h.engine.run(h.options(10, Mode::kAddition));
  // At most the two existing couplings can be chosen; the trail carries the
  // best available set through the remaining cardinalities.
  EXPECT_LE(res.members.size(), 2u);
  EXPECT_EQ(res.set_by_k.size(), 10u);
  EXPECT_NEAR(res.evaluated_delay, res.reference_delay, 5e-3);
}

TEST(EngineEdge, AllCouplingsZeroed) {
  Fixture fx = basic_fixture();
  fx.parasitics.zero_coupling(0);
  fx.parasitics.zero_coupling(1);
  Harness h(std::move(fx));
  const TopkResult res = h.engine.run(h.options(2, Mode::kElimination));
  EXPECT_TRUE(res.members.empty());
  EXPECT_DOUBLE_EQ(res.baseline_delay, res.reference_delay);
}

TEST(EngineEdge, TightSlackThresholdStillSound) {
  Harness h(basic_fixture());
  TopkOptions opt = h.options(2, Mode::kAddition);
  opt.victim_slack_threshold = 0.0;  // only exactly-critical victims
  const TopkResult res = h.engine.run(opt);
  // Whatever is found must still be a valid bracketed result.
  EXPECT_GE(res.evaluated_delay, res.baseline_delay - 1e-9);
  EXPECT_LE(res.evaluated_delay, res.reference_delay + 1e-9);
}

TEST(EngineEdge, MaxPrimaryPerVictimOne) {
  Fixture fx = test::make_parallel_chains(4, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.012);
  test::couple(fx, "c0_n1", "c2_n1", 0.006);
  test::couple(fx, "c0_n1", "c3_n1", 0.003);
  Harness h(std::move(fx));
  TopkOptions opt = h.options(1, Mode::kAddition);
  opt.max_primary_per_victim = 1;
  const TopkResult res = h.engine.run(opt);
  // Only the largest coupling per victim is enumerable.
  ASSERT_EQ(res.members.size(), 1u);
  EXPECT_EQ(res.members[0], 0u);
}

TEST(EngineEdge, ReevaluateOffUsesEstimate) {
  Harness h(basic_fixture());
  TopkOptions opt = h.options(2, Mode::kAddition);
  opt.reevaluate = false;
  const TopkResult res = h.engine.run(opt);
  EXPECT_DOUBLE_EQ(res.evaluated_delay, res.estimated_delay);
}

TEST(EngineEdge, RerankZeroKeepsEstimatorChoice) {
  Harness h(basic_fixture());
  TopkOptions with = h.options(2, Mode::kElimination);
  TopkOptions without = h.options(2, Mode::kElimination);
  without.rerank_top = 0;
  const TopkResult r1 = h.engine.run(with);
  const TopkResult r2 = h.engine.run(without);
  // Re-ranking may only improve (reduce) the elimination delay.
  EXPECT_LE(r1.evaluated_delay, r2.evaluated_delay + 1e-12);
}

TEST(EngineEdge, HigherOrderToggleIsSafe) {
  Harness h(basic_fixture());
  TopkOptions opt = h.options(2, Mode::kAddition);
  opt.use_higher_order = false;
  const TopkResult res = h.engine.run(opt);
  EXPECT_EQ(res.members.size(), 2u);
  EXPECT_GE(res.evaluated_delay, res.baseline_delay);
}

TEST(EngineEdge, FilterToggleConsistency) {
  Harness h(basic_fixture());
  TopkOptions on = h.options(2, Mode::kAddition);
  TopkOptions off = h.options(2, Mode::kAddition);
  off.use_filter = false;
  const TopkResult r1 = h.engine.run(on);
  const TopkResult r2 = h.engine.run(off);
  // The filter is conservative, so both must find the same set here.
  EXPECT_EQ(r1.members, r2.members);
}

TEST(EngineEdge, StatsArePopulated) {
  Harness h(basic_fixture());
  const TopkResult res = h.engine.run(h.options(2, Mode::kAddition));
#if TKA_OBS_ENABLED
  // Counter-derived stats come from the obs metrics registry and read 0
  // when the observability layer is compiled out.
  EXPECT_GT(res.stats.sets_generated, 0u);
#endif
  EXPECT_GT(res.stats.max_list_size, 0u);
  EXPECT_GT(res.stats.runtime_s, 0.0);
  ASSERT_EQ(res.stats.runtime_by_k.size(), 2u);
  EXPECT_LE(res.stats.runtime_by_k[0], res.stats.runtime_by_k[1]);
}

TEST(EngineEdge, SmallestPossibleCircuit) {
  // One gate, one coupling between its input and output nets.
  const net::CellLibrary& lib = net::CellLibrary::default_library();
  Fixture fx;
  fx.netlist = std::make_unique<net::Netlist>(lib, "tiny");
  const net::NetId in = fx.netlist->add_primary_input("in");
  const net::NetId out =
      fx.netlist->add_gate(lib.index_of("BUFX1"), {in}, "g", "out");
  fx.netlist->mark_primary_output(out);
  fx.parasitics = layout::Parasitics(fx.netlist->num_nets());
  fx.parasitics.add_ground_cap(in, 0.01);
  fx.parasitics.add_ground_cap(out, 0.01);
  fx.parasitics.add_coupling(in, out, 0.005);
  fx.arrivals.assign(fx.netlist->num_nets(), sta::InputArrival{});
  Harness h(std::move(fx));
  const TopkResult res = h.engine.run(h.options(1, Mode::kAddition));
  EXPECT_EQ(res.members.size(), 1u);
}

}  // namespace
}  // namespace tka::topk
