// SigTable agreement tests: the packed-column (SoA) signature compare must
// reject exactly the pairs wave::signature_rejects rejects — the dominance
// prune's correctness rests on "signature rejects => exact check fails",
// and its bit-reproducibility on the SoA path agreeing with the scalar
// predicate pair for pair.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "topk/dominance.hpp"
#include "topk/sig_table.hpp"
#include "wave/envelope.hpp"
#include "wave/pwl.hpp"

namespace tka::topk {
namespace {

wave::Pwl random_envelope(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> val(0.0, 1.0);
  std::vector<wave::Point> pts;
  const int n = 2 + static_cast<int>(rng() % 14);
  for (int i = 0; i <= n; ++i) {
    const double t = lo + (hi - lo) * i / n;
    pts.push_back({t, val(rng)});
  }
  return wave::Pwl(pts);
}

// 10k random candidate pairs: the SoA compare (single-entry, prepared
// single-entry, and whole-table batch forms) must agree with
// wave::signature_rejects on every pair, including pairs engineered to sit
// near the rejection threshold.
TEST(SigTable, AgreesWithScalarPredicateOnRandomCandidates) {
  std::mt19937_64 rng(29);
  const wave::DominanceInterval iv{0.0, 1.0};
  const int kTableSize = 100;
  const int kCandidates = 100;  // 100 x 100 = 10k compared pairs

  SigTable table;
  std::vector<wave::EnvelopeSignature> ref;
  for (int i = 0; i < kTableSize; ++i) {
    const wave::EnvelopeSignature sig =
        wave::make_signature(random_envelope(rng, iv.lo, iv.hi), iv);
    ASSERT_TRUE(sig.valid);
    table.push_back(sig);
    ref.push_back(sig);
  }
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kTableSize));

  std::uniform_real_distribution<double> tol_dist(0.0, 0.2);
  std::vector<std::uint8_t> flags(table.size());
  int rejects = 0;
  for (int c = 0; c < kCandidates; ++c) {
    wave::EnvelopeSignature cand =
        wave::make_signature(random_envelope(rng, iv.lo, iv.hi), iv);
    if (c % 4 == 0) {
      // Push some candidates right against a table entry: threshold-edge
      // pairs are where a layout bug would first disagree.
      const wave::EnvelopeSignature& base = ref[rng() % ref.size()];
      cand = base;
      cand.peak += tol_dist(rng) * 0.01;
      cand.samples[rng() % wave::EnvelopeSignature::kSamples] -= 1e-10;
    }
    const double tol = tol_dist(rng);
    const SigTable::Prepared prep = SigTable::prepare(cand, tol);
    table.rejects_batch(cand, tol, flags.data());
    for (std::size_t j = 0; j < table.size(); ++j) {
      const bool expect = wave::signature_rejects(ref[j], cand, tol);
      ASSERT_EQ(table.rejects(j, prep), expect) << "pair " << j << "/" << c;
      ASSERT_EQ(table.rejects_one(j, cand, tol), expect);
      ASSERT_EQ(flags[j] != 0, expect);
      rejects += expect;
    }
  }
  // The fuzz must exercise both outcomes to mean anything.
  EXPECT_GT(rejects, 0);
  EXPECT_LT(rejects, kTableSize * kCandidates);
}

TEST(SigTable, ClearAndReuseKeepsAgreement) {
  std::mt19937_64 rng(31);
  const wave::DominanceInterval iv_a{0.0, 1.0};
  const wave::DominanceInterval iv_b{0.5, 2.0};
  SigTable table;
  // Fill against one interval, clear, refill against another: stale
  // interval state must not leak through clear().
  for (int i = 0; i < 8; ++i) {
    table.push_back(wave::make_signature(random_envelope(rng, 0.0, 1.0), iv_a));
  }
  table.clear();
  EXPECT_TRUE(table.empty());
  std::vector<wave::EnvelopeSignature> ref;
  for (int i = 0; i < 8; ++i) {
    const wave::EnvelopeSignature sig =
        wave::make_signature(random_envelope(rng, 0.5, 2.0), iv_b);
    table.push_back(sig);
    ref.push_back(sig);
  }
  const wave::EnvelopeSignature cand =
      wave::make_signature(random_envelope(rng, 0.5, 2.0), iv_b);
  const SigTable::Prepared prep = SigTable::prepare(cand, 1e-3);
  for (std::size_t j = 0; j < table.size(); ++j) {
    EXPECT_EQ(table.rejects(j, prep),
              wave::signature_rejects(ref[j], cand, 1e-3));
  }
}

// prune_dominated with the SoA pre-filter must keep exactly the candidates
// a filter-free reference prune keeps (same sets, same order).
TEST(SigTable, PruneMatchesExactOnlyReference) {
  std::mt19937_64 rng(37);
  const wave::DominanceInterval iv{0.0, 1.0};
  const double tol = 1e-6;
  std::vector<CandidateSet> list;
  for (int i = 0; i < 120; ++i) {
    CandidateSet s;
    s.envelope = random_envelope(rng, iv.lo, iv.hi);
    s.score = s.envelope.peak();
    s.members = {static_cast<layout::CapId>(i)};
    list.push_back(std::move(s));
  }

  // Reference: score-sorted greedy keep using only the exact check.
  std::vector<CandidateSet> ref = list;
  std::sort(ref.begin(), ref.end(), [](const CandidateSet& a,
                                       const CandidateSet& b) {
    return a.score > b.score;
  });
  std::vector<CandidateSet> ref_kept;
  for (CandidateSet& cand : ref) {
    bool dominated = false;
    for (const CandidateSet& k : ref_kept) {
      if (wave::dominates(k.envelope, cand.envelope, iv, tol)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) ref_kept.push_back(std::move(cand));
  }

  prune_dominated(list, iv, tol, nullptr);
  ASSERT_EQ(list.size(), ref_kept.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].members, ref_kept[i].members);
    EXPECT_TRUE(list[i].envelope.same_points(ref_kept[i].envelope));
  }
}

}  // namespace
}  // namespace tka::topk
