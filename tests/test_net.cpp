// Tests for the netlist substrate: cell library, construction invariants,
// validation, topological utilities and canonical builders.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/builder.hpp"
#include "net/cell_library.hpp"
#include "net/netlist.hpp"
#include "net/topo.hpp"
#include "util/error.hpp"

namespace tka::net {
namespace {

TEST(CellLibrary, DefaultLibraryHasCoreCells) {
  const CellLibrary& lib = CellLibrary::default_library();
  for (const char* name : {"INVX1", "BUFX1", "NAND2X1", "NOR2X1", "AND2X1",
                           "OR2X1", "XOR2X1", "NAND3X1", "NAND4X1"}) {
    EXPECT_TRUE(lib.contains(name)) << name;
  }
  EXPECT_THROW(lib.index_of("FANCY42"), Error);
}

TEST(CellLibrary, StrongerDriveHasLowerResistance) {
  const CellLibrary& lib = CellLibrary::default_library();
  EXPECT_LT(lib.cell(lib.index_of("INVX2")).drive_res_kohm,
            lib.cell(lib.index_of("INVX1")).drive_res_kohm);
  EXPECT_LT(lib.cell(lib.index_of("NAND2X2")).drive_res_kohm,
            lib.cell(lib.index_of("NAND2X1")).drive_res_kohm);
}

TEST(CellLibrary, CellsWithInputs) {
  const CellLibrary& lib = CellLibrary::default_library();
  for (size_t idx : lib.cells_with_inputs(2)) {
    EXPECT_EQ(lib.cell(idx).num_inputs, 2);
  }
  EXPECT_FALSE(lib.cells_with_inputs(1).empty());
  EXPECT_TRUE(lib.cells_with_inputs(7).empty());
}

TEST(CellFunc, TruthTables) {
  const bool ff[] = {false, false};
  const bool ft[] = {false, true};
  const bool tt[] = {true, true};
  EXPECT_FALSE(eval_cell(CellFunc::kAnd, ff));
  EXPECT_FALSE(eval_cell(CellFunc::kAnd, ft));
  EXPECT_TRUE(eval_cell(CellFunc::kAnd, tt));
  EXPECT_TRUE(eval_cell(CellFunc::kNand, ft));
  EXPECT_FALSE(eval_cell(CellFunc::kNand, tt));
  EXPECT_TRUE(eval_cell(CellFunc::kOr, ft));
  EXPECT_FALSE(eval_cell(CellFunc::kNor, ft));
  EXPECT_TRUE(eval_cell(CellFunc::kNor, ff));
  EXPECT_TRUE(eval_cell(CellFunc::kXor, ft));
  EXPECT_FALSE(eval_cell(CellFunc::kXor, tt));
  EXPECT_TRUE(eval_cell(CellFunc::kXnor, tt));
  const bool one[] = {true};
  EXPECT_TRUE(eval_cell(CellFunc::kBuf, one));
  EXPECT_FALSE(eval_cell(CellFunc::kInv, one));
}

TEST(CellFunc, InversionParity) {
  EXPECT_TRUE(is_inverting(CellFunc::kInv));
  EXPECT_TRUE(is_inverting(CellFunc::kNand));
  EXPECT_TRUE(is_inverting(CellFunc::kNor));
  EXPECT_TRUE(is_inverting(CellFunc::kXnor));
  EXPECT_FALSE(is_inverting(CellFunc::kBuf));
  EXPECT_FALSE(is_inverting(CellFunc::kAnd));
}

TEST(Netlist, BuildSmallCircuit) {
  const CellLibrary& lib = CellLibrary::default_library();
  Netlist nl(lib, "t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const NetId y = nl.add_gate(lib.index_of("NAND2X1"), {a, b}, "g0", "y");
  nl.mark_primary_output(y);
  nl.validate();

  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.net(y).driver, 0u);
  ASSERT_EQ(nl.net(a).fanouts.size(), 1u);
  EXPECT_EQ(nl.net(a).fanouts[0].gate, 0u);
  EXPECT_EQ(nl.net(a).fanouts[0].pin, 0);
  EXPECT_EQ(nl.net(b).fanouts[0].pin, 1);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.net_by_name("y"), y);
  EXPECT_TRUE(nl.has_net("a"));
  EXPECT_FALSE(nl.has_net("zz"));
  EXPECT_THROW(nl.net_by_name("zz"), Error);
}

TEST(Netlist, AddGateRejectsWrongFanin) {
  const CellLibrary& lib = CellLibrary::default_library();
  Netlist nl(lib);
  const NetId a = nl.add_primary_input("a");
  EXPECT_THROW(nl.add_gate(lib.index_of("NAND2X1"), {a}, "g"), Error);
}

TEST(Topo, TopologicalOrderRespectsEdges) {
  auto nl = make_c17();
  const std::vector<NetId> order = topological_nets(*nl);
  EXPECT_EQ(order.size(), nl->num_nets());
  std::vector<size_t> pos(nl->num_nets());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < nl->num_gates(); ++g) {
    for (NetId in : nl->gate(g).inputs) {
      EXPECT_LT(pos[in], pos[nl->gate(g).output]);
    }
  }
}

TEST(Topo, LevelsMonotone) {
  auto nl = make_c17();
  const std::vector<int> lv = net_levels(*nl);
  for (NetId n : nl->primary_inputs()) EXPECT_EQ(lv[n], 0);
  for (GateId g = 0; g < nl->num_gates(); ++g) {
    int max_in = 0;
    for (NetId in : nl->gate(g).inputs) max_in = std::max(max_in, lv[in]);
    EXPECT_EQ(lv[nl->gate(g).output], max_in + 1);
  }
}

TEST(Topo, FaninConeOfC17Output) {
  auto nl = make_c17();
  const NetId n22 = nl->net_by_name("N22");
  const std::vector<NetId> cone = fanin_cone(*nl, n22);
  // N22 = NAND(N10, N16); N10 = NAND(N1,N3); N16 = NAND(N2,N11); N11 =
  // NAND(N3,N6). Cone: N1,N2,N3,N6,N10,N11,N16 = 7 nets.
  EXPECT_EQ(cone.size(), 7u);
  EXPECT_TRUE(std::binary_search(cone.begin(), cone.end(), nl->net_by_name("N1")));
  EXPECT_FALSE(std::binary_search(cone.begin(), cone.end(), nl->net_by_name("N7")));
}

TEST(Topo, FanoutConeAndMembership) {
  auto nl = make_c17();
  const NetId n11 = nl->net_by_name("N11");
  const std::vector<NetId> cone = fanout_cone(*nl, n11);
  // N11 feeds N16 and N19; N16 feeds N22 and N23; N19 feeds N23.
  EXPECT_EQ(cone.size(), 4u);
  EXPECT_TRUE(in_fanin_cone(*nl, n11, nl->net_by_name("N23")));
  EXPECT_FALSE(in_fanin_cone(*nl, nl->net_by_name("N23"), n11));
}

TEST(Builder, ChainStructure) {
  auto nl = make_chain(5);
  nl->validate();
  EXPECT_EQ(nl->num_gates(), 5u);
  EXPECT_EQ(nl->num_nets(), 6u);
  EXPECT_EQ(nl->primary_outputs().size(), 1u);
  const std::vector<int> lv = net_levels(*nl);
  EXPECT_EQ(*std::max_element(lv.begin(), lv.end()), 5);
}

TEST(Builder, NandTreeStructure) {
  auto nl = make_nand_tree(3);
  nl->validate();
  EXPECT_EQ(nl->primary_inputs().size(), 8u);
  EXPECT_EQ(nl->num_gates(), 7u);
  EXPECT_EQ(nl->primary_outputs().size(), 1u);
}

TEST(Builder, C17IsValid) {
  auto nl = make_c17();
  nl->validate();
  EXPECT_EQ(nl->num_gates(), 6u);
  EXPECT_EQ(nl->primary_inputs().size(), 5u);
  EXPECT_EQ(nl->primary_outputs().size(), 2u);
}

}  // namespace
}  // namespace tka::net
