// Tests for the persistent AnalysisSession: cold runs must match the
// TopkEngine wrapper, and incremental what_if() queries must be
// bit-identical to a cold run on the edited design — at every thread count
// — while reusing the warm envelope caches outside the edit cone.
#include <gtest/gtest.h>

#include <vector>

#include "fixtures.hpp"
#include "gen/circuit_generator.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/obs.hpp"
#include "session/analysis_session.hpp"
#include "sta/delay_model.hpp"
#include "topk/topk_engine.hpp"
#include "util/assert.hpp"

namespace tka::session {
namespace {

using test::Fixture;

// The victim chain plus three aggressor chains of clearly distinct coupling
// strengths; long enough that an edit's cone is a small part of the design.
Fixture repair_fixture() {
  Fixture fx = test::make_parallel_chains(4, 4);
  test::couple(fx, "c0_n1", "c1_n1", 0.012);  // cap 0, strongest
  test::couple(fx, "c0_n2", "c2_n2", 0.006);  // cap 1
  test::couple(fx, "c0_n3", "c3_n3", 0.003);  // cap 2, weakest
  test::couple(fx, "c2_n1", "c3_n1", 0.004);  // cap 3, away from the victim
  return fx;
}

topk::TopkOptions options(const Fixture& fx, int k, topk::Mode mode,
                          int threads = 0) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = mode;
  opt.threads = threads;
  opt.iterative.sta = fx.sta_options();
  return opt;
}

// Applies the session edit's equivalent directly to a fixture.
void apply_to(Fixture& fx, const WhatIfEdit& edit) {
  for (layout::CapId cap : edit.zero_couplings) fx.parasitics.zero_coupling(cap);
  for (layout::CapId cap : edit.shield_couplings) {
    fx.parasitics.shield_coupling(cap);
  }
  for (const WhatIfEdit::Resize& rz : edit.resizes) {
    fx.netlist->resize_gate(rz.gate, rz.cell_index);
  }
}

topk::TopkResult cold_reference(const Fixture& fx,
                                const topk::TopkOptions& opt) {
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  noise::AnalyticCouplingCalculator calc(fx.parasitics, model);
  topk::TopkEngine engine(*fx.netlist, fx.parasitics, model, calc);
  return engine.run(opt);
}

// Bit-identical on everything the identity contract covers (stats, being
// wall-clock and work-scoped, are deliberately out of scope).
void expect_identical(const topk::TopkResult& a, const topk::TopkResult& b) {
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.baseline_delay, b.baseline_delay);
  EXPECT_EQ(a.reference_delay, b.reference_delay);
  EXPECT_EQ(a.estimated_delay, b.estimated_delay);
  EXPECT_EQ(a.evaluated_delay, b.evaluated_delay);
  EXPECT_EQ(a.set_by_k, b.set_by_k);
  EXPECT_EQ(a.estimated_delay_by_k, b.estimated_delay_by_k);
  EXPECT_EQ(a.finalists_by_k, b.finalists_by_k);
}

TEST(Session, ColdRunMatchesEngineWrapper) {
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    Fixture fx = repair_fixture();
    const topk::TopkOptions opt = options(fx, 3, mode);
    const topk::TopkResult engine_res = cold_reference(fx, opt);

    Fixture fx2 = repair_fixture();
    AnalysisSession s(*fx2.netlist, fx2.parasitics, {});
    expect_identical(s.run(opt), engine_res);
    EXPECT_TRUE(s.primed());
  }
}

TEST(Session, WhatIfZeroCouplingMatchesColdRun) {
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    Fixture fx = repair_fixture();
    const topk::TopkOptions opt = options(fx, 2, mode);
    AnalysisSession s(*fx.netlist, fx.parasitics, {});
    const topk::TopkResult cold = s.run(opt);

    // Repair the strongest coupling the cold run found.
    WhatIfEdit edit;
    ASSERT_FALSE(cold.members.empty());
    edit.zero_couplings = {cold.members.front()};
    const topk::TopkResult warm = s.what_if(edit);

    Fixture edited = repair_fixture();
    apply_to(edited, edit);
    expect_identical(warm, cold_reference(edited, opt));
  }
}

TEST(Session, WhatIfShieldAndResizeMatchesColdRun) {
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    Fixture fx = repair_fixture();
    const net::CellLibrary& lib = net::CellLibrary::default_library();
    const topk::TopkOptions opt = options(fx, 2, mode);
    AnalysisSession s(*fx.netlist, fx.parasitics, {});
    s.run(opt);

    WhatIfEdit edit;
    edit.shield_couplings = {1};
    // Upsize the victim's first driver to the stronger drive variant.
    const net::NetId vn = fx.netlist->net_by_name("c0_n0");
    edit.resizes = {{fx.netlist->net(vn).driver, lib.index_of("BUFX2")}};
    const topk::TopkResult warm = s.what_if(edit);

    Fixture edited = repair_fixture();
    apply_to(edited, edit);
    expect_identical(warm, cold_reference(edited, opt));
  }
}

TEST(Session, SequentialEditsStayIdentical) {
  Fixture fx = repair_fixture();
  const topk::TopkOptions opt = options(fx, 2, topk::Mode::kElimination);
  AnalysisSession s(*fx.netlist, fx.parasitics, {});
  s.run(opt);

  Fixture edited = repair_fixture();
  // A three-step repair loop: each edit builds on the previous design state.
  const WhatIfEdit steps[] = {{{0}, {}, {}}, {{}, {2}, {}}, {{3}, {}, {}}};
  for (const WhatIfEdit& edit : steps) {
    const topk::TopkResult warm = s.what_if(edit);
    apply_to(edited, edit);
    expect_identical(warm, cold_reference(edited, opt));
  }
}

TEST(Session, WhatIfIdenticalAcrossThreadCounts) {
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    WhatIfEdit edit;
    edit.zero_couplings = {0};
    Fixture edited = repair_fixture();
    apply_to(edited, edit);
    const topk::TopkResult reference =
        cold_reference(edited, options(edited, 2, mode, 1));

    for (int threads : {1, 2, 8}) {
      Fixture fx = repair_fixture();
      AnalysisSession s(*fx.netlist, fx.parasitics, {});
      s.run(options(fx, 2, mode, threads));
      expect_identical(s.what_if(edit), reference);
    }
  }
}

TEST(Session, WhatIfOnGeneratedCircuitMatchesColdRun) {
  gen::GeneratorParams params;
  params.name = "session_gen";
  params.num_gates = 40;
  params.target_couplings = 16;
  params.seed = 7;
  for (topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    gen::GeneratedCircuit a = gen::generate_circuit(params);
    topk::TopkOptions opt;
    opt.k = 2;
    opt.mode = mode;
    opt.iterative.sta = a.sta_options();

    AnalysisSession s(*a.netlist, a.parasitics, {});
    const topk::TopkResult cold = s.run(opt);
    ASSERT_FALSE(cold.members.empty());
    WhatIfEdit edit;
    edit.zero_couplings = {cold.members.front()};
    const topk::TopkResult warm = s.what_if(edit);

    gen::GeneratedCircuit b = gen::generate_circuit(params);
    opt.iterative.sta = b.sta_options();
    for (layout::CapId cap : edit.zero_couplings) b.parasitics.zero_coupling(cap);
    sta::DelayModel model(*b.netlist, b.parasitics);
    noise::AnalyticCouplingCalculator calc(b.parasitics, model);
    topk::TopkEngine engine(*b.netlist, b.parasitics, model, calc);
    expect_identical(warm, engine.run(opt));
  }
}

#ifndef TKA_OBS_DISABLED
TEST(Session, WhatIfReusesEnvelopeCacheOutsideEditCone) {
  Fixture fx = repair_fixture();
  const topk::TopkOptions opt = options(fx, 2, topk::Mode::kElimination, 1);
  obs::Counter& misses = obs::registry().counter("noise.envelope_cache_misses");
  obs::Counter& invalidated =
      obs::registry().counter("noise.envelope_cache_invalidated");

  AnalysisSession s(*fx.netlist, fx.parasitics, {});
  const std::uint64_t misses_before_cold = misses.value();
  s.run(opt);
  const std::uint64_t cold_misses = misses.value() - misses_before_cold;

  WhatIfEdit edit;
  edit.zero_couplings = {3};  // the coupling far from the victim chain
  const std::uint64_t misses_before_warm = misses.value();
  const std::uint64_t invalidated_before = invalidated.value();
  s.what_if(edit);
  const std::uint64_t warm_misses = misses.value() - misses_before_warm;

  // The edit cone touches only part of the design: the warm query must
  // invalidate something, but recompute strictly fewer envelopes than the
  // cold priming run did.
  EXPECT_GT(invalidated.value(), invalidated_before);
  EXPECT_GT(cold_misses, 0u);
  EXPECT_LT(warm_misses, cold_misses);
  EXPECT_GT(obs::registry().counter("topk.whatif_runs").value(), 0u);
  EXPECT_GT(obs::registry().counter("session.whatif_edits").value(), 0u);
}
#endif

TEST(Session, WhatIfPreconditionsAreChecked) {
  Fixture fx = repair_fixture();
  WhatIfEdit edit;
  edit.zero_couplings = {0};

  // Borrowing sessions cannot edit the design.
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  noise::AnalyticCouplingCalculator calc(fx.parasitics, model);
  AnalysisSession borrowing(*fx.netlist, fx.parasitics, model, calc, {});
  EXPECT_THROW(borrowing.what_if(edit), Error);

  // Unprimed sessions have no baseline to refresh.
  Fixture fx2 = repair_fixture();
  AnalysisSession unprimed(*fx2.netlist, fx2.parasitics, {});
  EXPECT_THROW(unprimed.what_if(edit), Error);

  // retain_candidates=false drops the candidate layers what_if needs.
  Fixture fx3 = repair_fixture();
  SessionOptions no_retain;
  no_retain.retain_candidates = false;
  AnalysisSession rolling(*fx3.netlist, fx3.parasitics, {}, no_retain);
  rolling.run(options(fx3, 2, topk::Mode::kAddition));
  EXPECT_THROW(rolling.what_if(edit), Error);
}

}  // namespace
}  // namespace tka::session
