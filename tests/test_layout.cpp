// Tests for geometry, placement, routing and parasitic extraction.
#include <gtest/gtest.h>

#include <set>

#include "layout/extractor.hpp"
#include "layout/geometry.hpp"
#include "layout/parasitics.hpp"
#include "layout/placer.hpp"
#include "layout/router.hpp"
#include "net/builder.hpp"
#include "net/topo.hpp"

namespace tka::layout {
namespace {

TEST(Geometry, SegmentConstructionNormalizes) {
  const Segment h = make_h(1.0, 5.0, 2.0);
  EXPECT_TRUE(h.horizontal());
  EXPECT_DOUBLE_EQ(h.x1, 2.0);
  EXPECT_DOUBLE_EQ(h.x2, 5.0);
  EXPECT_DOUBLE_EQ(h.length(), 3.0);
  const Segment v = make_v(0.0, 4.0, -1.0);
  EXPECT_TRUE(v.vertical());
  EXPECT_DOUBLE_EQ(v.y1, -1.0);
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
}

TEST(Geometry, ParallelRunOverlap) {
  const Segment a = make_h(0.0, 0.0, 10.0);
  const Segment b = make_h(2.0, 4.0, 14.0);
  const ParallelRun run = parallel_run(a, b);
  EXPECT_DOUBLE_EQ(run.overlap, 6.0);
  EXPECT_DOUBLE_EQ(run.distance, 2.0);
}

TEST(Geometry, NoOverlapWhenDisjointOrPerpendicular) {
  const Segment a = make_h(0.0, 0.0, 2.0);
  const Segment b = make_h(1.0, 3.0, 5.0);
  EXPECT_DOUBLE_EQ(parallel_run(a, b).overlap, 0.0);
  const Segment v = make_v(1.0, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(parallel_run(a, v).overlap, 0.0);
}

TEST(Parasitics, AccumulatesAndQueries) {
  Parasitics par(3);
  par.add_ground_cap(0, 0.01);
  par.add_ground_cap(0, 0.02);
  par.add_wire_res(1, 0.5);
  EXPECT_NEAR(par.ground_cap(0), 0.03, 1e-15);
  EXPECT_DOUBLE_EQ(par.wire_res(1), 0.5);

  const CapId c0 = par.add_coupling(0, 1, 0.005);
  const CapId c1 = par.add_coupling(1, 2, 0.002);
  EXPECT_EQ(par.num_couplings(), 2u);
  EXPECT_EQ(par.coupling(c0).other(0), 1u);
  EXPECT_EQ(par.coupling(c0).other(1), 0u);
  EXPECT_EQ(par.couplings_of(1).size(), 2u);
  EXPECT_NEAR(par.total_coupling_cap(1), 0.007, 1e-15);

  par.zero_coupling(c1);
  EXPECT_DOUBLE_EQ(par.coupling(c1).cap_pf, 0.0);
  EXPECT_NEAR(par.total_coupling_cap(1), 0.005, 1e-15);
}

TEST(Placer, DeterministicAndLevelOrdered) {
  auto nl = net::make_c17();
  PlacerOptions opt;
  opt.seed = 5;
  const Placement p1 = grid_place(*nl, opt);
  const Placement p2 = grid_place(*nl, opt);
  for (net::GateId g = 0; g < nl->num_gates(); ++g) {
    EXPECT_EQ(p1.gate(g).x, p2.gate(g).x);
    EXPECT_EQ(p1.gate(g).y, p2.gate(g).y);
  }
  // Gates of deeper levels sit further right (col_pitch >> jitter).
  const std::vector<int> lv = net::net_levels(*nl);
  for (net::GateId a = 0; a < nl->num_gates(); ++a) {
    for (net::GateId b = 0; b < nl->num_gates(); ++b) {
      if (lv[nl->gate(a).output] < lv[nl->gate(b).output]) {
        EXPECT_LT(p1.gate(a).x, p1.gate(b).x);
      }
    }
  }
}

TEST(Placer, PrimaryInputPadsLeftOfGates) {
  auto nl = net::make_c17();
  const Placement p = grid_place(*nl, PlacerOptions{});
  for (net::NetId n : nl->primary_inputs()) {
    for (net::GateId g = 0; g < nl->num_gates(); ++g) {
      EXPECT_LT(p.primary_input(n).x, p.gate(g).x);
    }
  }
}

TEST(Router, EveryNetRouted) {
  auto nl = net::make_c17();
  const Placement p = grid_place(*nl, PlacerOptions{});
  const std::vector<Route> routes = route_all(*nl, p);
  EXPECT_EQ(routes.size(), nl->num_nets());
  for (const Route& r : routes) {
    EXPECT_FALSE(r.segments.empty());
    EXPECT_GT(r.total_length(), 0.0);
  }
}

TEST(Router, LRouteReachesSink) {
  auto nl = net::make_chain(2);
  const Placement p = grid_place(*nl, PlacerOptions{});
  const std::vector<Route> routes = route_all(*nl, p);
  // The route of the PI net must touch the sink gate's location.
  const net::NetId pi = nl->primary_inputs().front();
  const net::GateId sink = nl->net(pi).fanouts.front().gate;
  const XY dst = p.gate(sink);
  bool touches = false;
  for (const Segment& s : routes[pi].segments) {
    if ((s.vertical() && s.x1 == dst.x && dst.y >= s.y1 - 1e-9 && dst.y <= s.y2 + 1e-9) ||
        (s.horizontal() && s.y1 == dst.y && dst.x >= s.x1 - 1e-9 && dst.x <= s.x2 + 1e-9)) {
      touches = true;
    }
  }
  EXPECT_TRUE(touches);
}

TEST(Extractor, WireRcScalesWithLength) {
  auto nl = net::make_chain(4);
  const Placement p = grid_place(*nl, PlacerOptions{});
  const std::vector<Route> routes = route_all(*nl, p);
  ExtractorOptions opt;
  const Parasitics par = extract(*nl, routes, opt);
  for (net::NetId n = 0; n < nl->num_nets(); ++n) {
    EXPECT_NEAR(par.ground_cap(n), routes[n].total_length() * opt.cap_per_um, 1e-12);
    EXPECT_NEAR(par.wire_res(n), routes[n].total_length() * opt.res_per_um, 1e-12);
  }
}

TEST(Extractor, CouplingsAreDistinctNetPairsWithPositiveCaps) {
  auto nl = net::make_nand_tree(4);
  const Placement p = grid_place(*nl, PlacerOptions{});
  const std::vector<Route> routes = route_all(*nl, p);
  const Parasitics par = extract(*nl, routes, ExtractorOptions{});
  EXPECT_GT(par.num_couplings(), 0u);
  std::set<std::pair<net::NetId, net::NetId>> seen;
  for (const CouplingCap& cc : par.couplings()) {
    EXPECT_NE(cc.net_a, cc.net_b);
    EXPECT_GT(cc.cap_pf, 0.0);
    const auto key = std::minmax(cc.net_a, cc.net_b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate pair " << cc.net_a << "," << cc.net_b;
  }
}

TEST(Extractor, MaxCouplingsKeepsLargest) {
  auto nl = net::make_nand_tree(4);
  const Placement p = grid_place(*nl, PlacerOptions{});
  const std::vector<Route> routes = route_all(*nl, p);
  const Parasitics full = extract(*nl, routes, ExtractorOptions{});
  ASSERT_GT(full.num_couplings(), 4u);

  ExtractorOptions capped_opt;
  capped_opt.max_couplings = 4;
  const Parasitics capped = extract(*nl, routes, capped_opt);
  EXPECT_EQ(capped.num_couplings(), 4u);
  // The kept caps are the 4 largest of the full extraction.
  std::vector<double> all_caps;
  for (const CouplingCap& cc : full.couplings()) all_caps.push_back(cc.cap_pf);
  std::sort(all_caps.rbegin(), all_caps.rend());
  double min_kept = 1e9;
  for (const CouplingCap& cc : capped.couplings()) min_kept = std::min(min_kept, cc.cap_pf);
  EXPECT_GE(min_kept, all_caps[3] - 1e-12);
}

TEST(Extractor, CloserNetsCoupleMore) {
  // Three parallel horizontal wires: net1 at distance 1 from net0, net2 at
  // distance 4. The closer pair must get the larger coupling cap.
  net::Netlist nl(net::CellLibrary::default_library(), "wires");
  const net::NetId n0 = nl.add_primary_input("w0");
  const net::NetId n1 = nl.add_primary_input("w1");
  const net::NetId n2 = nl.add_primary_input("w2");
  std::vector<Route> routes(3);
  routes[n0] = {n0, {make_h(0.0, 0.0, 20.0)}};
  routes[n1] = {n1, {make_h(1.0, 0.0, 20.0)}};
  routes[n2] = {n2, {make_h(5.0, 0.0, 20.0)}};
  const Parasitics par = extract(nl, routes, ExtractorOptions{});
  double cap01 = 0.0;
  double cap02 = 0.0;
  for (const CouplingCap& cc : par.couplings()) {
    const auto key = std::minmax(cc.net_a, cc.net_b);
    if (key == std::minmax(n0, n1)) cap01 = cc.cap_pf;
    if (key == std::minmax(n0, n2)) cap02 = cc.cap_pf;
  }
  EXPECT_GT(cap01, 0.0);
  EXPECT_GT(cap02, 0.0);
  EXPECT_GT(cap01, 2.0 * cap02);
}

TEST(Extractor, BeyondWindowNoCoupling) {
  net::Netlist nl(net::CellLibrary::default_library(), "wires");
  const net::NetId n0 = nl.add_primary_input("w0");
  const net::NetId n1 = nl.add_primary_input("w1");
  std::vector<Route> routes(2);
  routes[n0] = {n0, {make_h(0.0, 0.0, 20.0)}};
  routes[n1] = {n1, {make_h(50.0, 0.0, 20.0)}};  // 50um away
  const Parasitics par = extract(nl, routes, ExtractorOptions{});
  EXPECT_EQ(par.num_couplings(), 0u);
}

}  // namespace
}  // namespace tka::layout
