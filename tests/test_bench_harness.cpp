// Benchmark-harness substrate tests: repetition statistics, the BENCH
// JSON writer against the JSON reader (schema round-trip), the metric
// snapshot/delta API, and the bench_compare regression rules.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/bench_json.hpp"
#include "harness/compare.hpp"
#include "harness/harness.hpp"
#include "harness/stats.hpp"
#include "obs/obs.hpp"

namespace tka::bench {
namespace {

// ---------------------------------------------------------------- stats --

TEST(BenchStats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(summarize_samples({3.0, 1.0, 2.0}).median, 2.0);
  EXPECT_DOUBLE_EQ(summarize_samples({4.0, 1.0, 3.0, 2.0}).median, 2.5);
  EXPECT_DOUBLE_EQ(summarize_samples({7.0}).median, 7.0);
}

TEST(BenchStats, QuantilesInterpolateBetweenRanks) {
  // Sorted: 10, 20, 30, 40, 50. rank(q) = q * 4.
  const std::vector<double> s{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.5), 30.0);
  EXPECT_NEAR(quantile_sorted(s, 0.10), 14.0, 1e-12);  // rank 0.4
  EXPECT_NEAR(quantile_sorted(s, 0.90), 46.0, 1e-12);  // rank 3.6
  EXPECT_NEAR(quantile_sorted(s, 0.25), 20.0, 1e-12);  // rank 1.0
}

TEST(BenchStats, SummaryFields) {
  const TimeStats st = summarize_samples({2.0, 8.0, 4.0, 6.0});
  EXPECT_EQ(st.reps, 4u);
  EXPECT_DOUBLE_EQ(st.min, 2.0);
  EXPECT_DOUBLE_EQ(st.max, 8.0);
  EXPECT_DOUBLE_EQ(st.mean, 5.0);
  EXPECT_DOUBLE_EQ(st.median, 5.0);
  EXPECT_EQ(summarize_samples({}).reps, 0u);
}

// ----------------------------------------------------------- JSON reader --

TEST(BenchJson, ParsesScalarsArraysObjects) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(parse(R"({"a": 1.5, "b": [true, null, "x\nA"], "c": {"d": -2e3}})",
                    &v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.5);
  const json::Value* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_TRUE(b->array[1].is_null());
  EXPECT_EQ(b->array[2].string, "x\nA");
  EXPECT_DOUBLE_EQ(v.find("c")->number_or("d", 0.0), -2000.0);
}

TEST(BenchJson, RejectsMalformedInput) {
  json::Value v;
  std::string err;
  EXPECT_FALSE(parse("{", &v, &err));
  EXPECT_FALSE(parse("{\"a\": 01}", &v, &err));  // leading zero
  EXPECT_FALSE(parse("[1, 2,]", &v, &err));
  EXPECT_FALSE(parse("\"unterminated", &v, &err));
  EXPECT_FALSE(parse("{} trailing", &v, &err));
  EXPECT_FALSE(parse("{\"a\": nul}", &v, &err));
  EXPECT_FALSE(err.empty());
}

// --------------------------------------------------- writer/schema round --

HarnessConfig test_config() {
  HarnessConfig config;
  config.suite = "unit_suite";
  config.scale = 0;
  config.smoke = true;
  config.reps = 2;
  config.warmup = 0;
  config.threads = 1;
  return config;
}

std::vector<CaseResult> test_results() {
  CaseResult r;
  r.name = "case_a";
  r.time = summarize_samples({0.25, 0.75});
  r.values = {{"delay_k5", 2.25}, {"baseline_delay", 2.0}};
  r.counters = {{"topk.sets_generated", 123}, {"sta.runs", 4}};
  return {r};
}

TEST(BenchJsonSchema, WriterOutputParsesAndMatchesSchema) {
  const std::string text = render_bench_json(test_config(), test_results());
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;

  // Top-level schema: schema_version / suite / config / benchmarks.
  EXPECT_DOUBLE_EQ(doc.number_or("schema_version", -1.0), kBenchSchemaVersion);
  ASSERT_NE(doc.find("suite"), nullptr);
  EXPECT_EQ(doc.find("suite")->string, "unit_suite");
  const json::Value* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  for (const char* key : {"smoke", "scale", "reps", "warmup", "threads",
                          "obs_enabled"}) {
    EXPECT_NE(config->find(key), nullptr) << "config missing " << key;
  }
  EXPECT_TRUE(config->find("smoke")->boolean);
  EXPECT_DOUBLE_EQ(config->number_or("threads", -1.0), 1.0);

  const json::Value* benchmarks = doc.find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  ASSERT_TRUE(benchmarks->is_array());
  ASSERT_EQ(benchmarks->array.size(), 1u);
  const json::Value& b = benchmarks->array[0];
  EXPECT_EQ(b.find("name")->string, "case_a");
  const json::Value* time = b.find("time_s");
  ASSERT_NE(time, nullptr);
  for (const char* key : {"reps", "median", "p10", "p90", "min", "max",
                          "mean"}) {
    EXPECT_NE(time->find(key), nullptr) << "time_s missing " << key;
  }
  EXPECT_DOUBLE_EQ(time->number_or("median", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(b.find("values")->number_or("delay_k5", 0.0), 2.25);
  EXPECT_DOUBLE_EQ(b.find("counters")->number_or("topk.sets_generated", 0.0),
                   123.0);
}

TEST(BenchJsonSchema, EmptySuiteRendersValidDocument) {
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(render_bench_json(test_config(), {}), &doc, &err))
      << err;
  ASSERT_TRUE(doc.find("benchmarks")->is_array());
  EXPECT_TRUE(doc.find("benchmarks")->array.empty());
}

// ------------------------------------------------------ metric snapshots --

TEST(MetricsSnapshot, CapturesCounterDeltas) {
  obs::Counter& c = obs::registry().counter("test.bench_harness.counter");
  const obs::MetricsSnapshot before = obs::registry().snapshot();
  c.add(7);
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  const obs::MetricsSnapshot delta = obs::counters_delta(before, after);
#if TKA_OBS_ENABLED
  ASSERT_TRUE(delta.counters.count("test.bench_harness.counter"));
  EXPECT_EQ(delta.counters.at("test.bench_harness.counter"), 7u);
#else
  EXPECT_TRUE(delta.counters.empty());
#endif
}

// -------------------------------------------------------- bench_compare --

json::Value parse_doc(const std::string& text) {
  json::Value doc;
  std::string err;
  EXPECT_TRUE(json::parse(text, &doc, &err)) << err;
  return doc;
}

json::Value make_doc(double median, double delay, double sets) {
  CaseResult r;
  r.name = "i1";
  r.time = summarize_samples({median});
  r.values = {{"delay_k5", delay}};
  r.counters = {{"topk.sets_generated", static_cast<std::uint64_t>(sets)}};
  return parse_doc(render_bench_json(test_config(), {r}));
}

TEST(BenchCompare, IdenticalPairPasses) {
  const json::Value doc = make_doc(1.0, 2.25, 1000);
  const CompareResult res = compare_bench_documents(doc, doc, CompareOptions{});
  ASSERT_TRUE(res.usable()) << res.error;
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.benchmarks_compared, 1);
  EXPECT_GE(res.metrics_compared, 3);
}

TEST(BenchCompare, FlagsTwentyPercentSlowdown) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  const json::Value slow = make_doc(1.20, 2.25, 1000);
  const CompareResult res = compare_bench_documents(base, slow, CompareOptions{});
  ASSERT_TRUE(res.usable());
  ASSERT_EQ(res.regressions.size(), 1u);
  EXPECT_NE(res.regressions[0].find("time_s.median"), std::string::npos);
  // Speedups never regress.
  EXPECT_TRUE(compare_bench_documents(slow, base, CompareOptions{}).ok());
}

TEST(BenchCompare, FlagsValueDriftBothDirections) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  EXPECT_FALSE(compare_bench_documents(base, make_doc(1.0, 2.26, 1000),
                                       CompareOptions{})
                   .ok());
  EXPECT_FALSE(compare_bench_documents(base, make_doc(1.0, 2.24, 1000),
                                       CompareOptions{})
                   .ok());
}

TEST(BenchCompare, FlagsCounterGrowthButNotShrink) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  EXPECT_FALSE(compare_bench_documents(base, make_doc(1.0, 2.25, 1200),
                                       CompareOptions{})
                   .ok());
  EXPECT_TRUE(compare_bench_documents(base, make_doc(1.0, 2.25, 800),
                                      CompareOptions{})
                  .ok());
}

TEST(BenchCompare, MissingBenchmarkIsCoverageLoss) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  const json::Value empty = parse_doc(render_bench_json(test_config(), {}));
  const CompareResult res =
      compare_bench_documents(base, empty, CompareOptions{});
  ASSERT_TRUE(res.usable());
  ASSERT_EQ(res.regressions.size(), 1u);
  EXPECT_NE(res.regressions[0].find("coverage loss"), std::string::npos);
  // The reverse direction (new benchmark, no baseline) is only a note.
  EXPECT_TRUE(compare_bench_documents(empty, base, CompareOptions{}).ok());
}

TEST(BenchCompare, ThresholdsConfigurableAndDisablable) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  const json::Value slow = make_doc(3.0, 2.2, 9000);
  CompareOptions skip_all;
  skip_all.time_threshold = -1.0;
  skip_all.value_threshold = -1.0;
  skip_all.counter_threshold = -1.0;
  EXPECT_TRUE(compare_bench_documents(base, slow, skip_all).ok());

  CompareOptions loose;
  loose.time_threshold = 5.0;    // 500% allowed
  loose.value_threshold = 0.10;  // 10% drift allowed
  loose.counter_threshold = 10.0;
  EXPECT_TRUE(compare_bench_documents(base, slow, loose).ok());
}

TEST(BenchCompare, SchemaAndSuiteMismatchAreErrors) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  json::Value wrong_schema = parse_doc(
      R"({"schema_version": 999, "suite": "unit_suite", "benchmarks": []})");
  EXPECT_FALSE(compare_bench_documents(base, wrong_schema, CompareOptions{})
                   .usable());

  HarnessConfig other = test_config();
  other.suite = "another_suite";
  const json::Value other_doc = parse_doc(render_bench_json(other, {}));
  EXPECT_FALSE(
      compare_bench_documents(base, other_doc, CompareOptions{}).usable());

  HarnessConfig full = test_config();
  full.scale = 1;
  full.smoke = false;
  const json::Value full_doc = parse_doc(render_bench_json(full, {}));
  EXPECT_FALSE(
      compare_bench_documents(base, full_doc, CompareOptions{}).usable());
}

TEST(BenchCompare, ObsDisabledCandidateSkipsCounters) {
  const json::Value base = make_doc(1.0, 2.25, 1000);
  CaseResult r;
  r.name = "i1";
  r.time = summarize_samples({1.0});
  r.values = {{"delay_k5", 2.25}};
  const json::Value no_counters =
      parse_doc(render_bench_json(test_config(), {r}));
  const CompareResult res =
      compare_bench_documents(base, no_counters, CompareOptions{});
  ASSERT_TRUE(res.usable());
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.notes.size(), 1u);
  EXPECT_NE(res.notes[0].find("no counters"), std::string::npos);
}

}  // namespace
}  // namespace tka::bench
