// Property tests for the single-pass PWL merge kernels against naive
// reference implementations (the pre-rewrite merged_times + per-time
// value() pattern, retained here verbatim). The merge sweeps promise
// *bit-identical* results, so every comparison below is exact (==), not
// within-tolerance. Also checks that the envelope-signature pre-filter is
// conservative: a signature reject must imply the exact dominance check
// fails (docs/KERNELS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "topk/irredundant_list.hpp"
#include "util/rng.hpp"
#include "wave/envelope.hpp"
#include "wave/pwl.hpp"

namespace tka::wave {
namespace {

constexpr double kTimeEps = 1e-12;  // mirrors pwl.cpp

// ---------------------------------------------------------------------------
// Naive reference implementations (the seed's O(n log n) kernels).
// ---------------------------------------------------------------------------

std::vector<double> naive_merged_times(const Pwl& a, const Pwl& b) {
  std::vector<double> times;
  times.reserve(a.size() + b.size());
  for (const Point& p : a.points()) times.push_back(p.t);
  for (const Point& p : b.points()) times.push_back(p.t);
  std::sort(times.begin(), times.end());
  times.erase(
      std::unique(times.begin(), times.end(),
                  [](double x, double y) { return std::abs(x - y) < kTimeEps; }),
      times.end());
  return times;
}

Pwl naive_plus(const Pwl& a, const Pwl& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<Point> pts;
  const std::vector<double> times = naive_merged_times(a, b);
  pts.reserve(times.size());
  for (double t : times) pts.push_back({t, a.value(t) + b.value(t)});
  return Pwl(std::move(pts));
}

Pwl naive_sum(std::span<const Pwl* const> terms) {
  std::vector<double> times;
  for (const Pwl* w : terms) {
    for (const Point& p : w->points()) times.push_back(p.t);
  }
  if (times.empty()) return Pwl();
  std::sort(times.begin(), times.end());
  times.erase(
      std::unique(times.begin(), times.end(),
                  [](double x, double y) { return std::abs(x - y) < kTimeEps; }),
      times.end());
  std::vector<Point> pts;
  pts.reserve(times.size());
  for (double t : times) {
    double v = 0.0;
    for (const Pwl* w : terms) v += w->value(t);
    pts.push_back({t, v});
  }
  return Pwl(std::move(pts));
}

Pwl naive_upper_envelope(const Pwl& a, const Pwl& b) {
  if (a.empty()) return naive_upper_envelope(b, Pwl::constant(0.0));
  if (b.empty()) return naive_upper_envelope(a, Pwl::constant(0.0));
  const std::vector<double> times = naive_merged_times(a, b);
  std::vector<Point> pts;
  pts.reserve(times.size() * 2);
  for (size_t i = 0; i < times.size(); ++i) {
    const double t = times[i];
    const double va = a.value(t);
    const double vb = b.value(t);
    pts.push_back({t, std::max(va, vb)});
    if (i + 1 < times.size()) {
      const double tn = times[i + 1];
      const double va2 = a.value(tn);
      const double vb2 = b.value(tn);
      const double d0 = va - vb;
      const double d1 = va2 - vb2;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = t + f * (tn - t);
        if (tc > t + kTimeEps && tc < tn - kTimeEps) {
          pts.push_back({tc, a.value(tc)});
        }
      }
    }
  }
  return Pwl(std::move(pts));
}

Pwl naive_clamped(const Pwl& w, double lo, double hi) {
  if (w.empty()) {
    const double z = std::clamp(0.0, lo, hi);
    return z == 0.0 ? Pwl() : Pwl::constant(z);
  }
  const std::span<const Point> points = w.points();
  std::vector<Point> pts;
  pts.reserve(points.size() * 2);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    pts.push_back({p.t, std::clamp(p.v, lo, hi)});
    if (i + 1 == points.size()) break;
    const Point& q = points[i + 1];
    for (double level : {lo, hi}) {
      const double d0 = p.v - level;
      const double d1 = q.v - level;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = p.t + f * (q.t - p.t);
        if (tc > p.t + kTimeEps && tc < q.t - kTimeEps) pts.push_back({tc, level});
      }
    }
    // The seed's tail-sort of the (at most two) crossings just emitted.
    auto tail = pts.end();
    int inserted = 0;
    while (tail != pts.begin() && (tail - 1)->t > p.t && inserted < 3) {
      --tail;
      ++inserted;
    }
    std::sort(tail, pts.end(),
              [](const Point& x, const Point& y) { return x.t < y.t; });
  }
  return Pwl(std::move(pts));
}

bool naive_encapsulates(const Pwl& a, const Pwl& b, double t_lo, double t_hi,
                        double tol) {
  auto check = [&](double t) { return a.value(t) >= b.value(t) - tol; };
  if (!check(t_lo) || !check(t_hi)) return false;
  for (const std::span<const Point> src : {a.points(), b.points()}) {
    for (const Point& p : src) {
      if (p.t <= t_lo || p.t >= t_hi) continue;
      if (!check(p.t)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Random waveform generation, including near-kTimeEps breakpoint spacing so
// the eps-dedup path of the merge sweeps is exercised.
// ---------------------------------------------------------------------------

Pwl random_pwl(Rng& rng, int max_points) {
  const int n = static_cast<int>(rng.next_u64() % (max_points + 1));
  if (n == 0) return Pwl();
  std::vector<Point> pts;
  pts.reserve(n);
  double t = rng.next_double(-2.0, 2.0);
  for (int i = 0; i < n; ++i) {
    pts.push_back({t, rng.next_double(-1.0, 2.0)});
    // Mostly ordinary gaps; sometimes a gap straddling kTimeEps so merged
    // breakpoints from two waveforms land within eps of each other.
    switch (rng.next_u64() % 8) {
      case 0: t += 2e-12; break;               // just above eps
      case 1: t += 9e-13; break;               // just below eps (deduped)
      default: t += rng.next_double(0.01, 0.8); break;
    }
  }
  return Pwl(std::move(pts));
}

void expect_identical(const Pwl& got, const Pwl& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what << ": " << got.to_string()
                                     << " vs " << want.to_string();
  for (size_t i = 0; i < got.size(); ++i) {
    // Bit-identity: exact equality, not near-equality.
    EXPECT_EQ(got.points()[i].t, want.points()[i].t) << what << " @" << i;
    EXPECT_EQ(got.points()[i].v, want.points()[i].v) << what << " @" << i;
  }
}

// ---------------------------------------------------------------------------
// Merge-kernel properties.
// ---------------------------------------------------------------------------

TEST(PwlKernels, PlusMatchesNaive) {
  Rng rng(101);
  for (int it = 0; it < 2000; ++it) {
    const Pwl a = random_pwl(rng, 10);
    const Pwl b = random_pwl(rng, 10);
    expect_identical(a.plus(b), naive_plus(a, b), "plus");
  }
}

TEST(PwlKernels, MinusMatchesNaive) {
  Rng rng(102);
  for (int it = 0; it < 2000; ++it) {
    const Pwl a = random_pwl(rng, 10);
    const Pwl b = random_pwl(rng, 10);
    expect_identical(a.minus(b), naive_plus(a, b.scaled(-1.0)), "minus");
  }
}

TEST(PwlKernels, SumMatchesNaive) {
  Rng rng(103);
  for (int it = 0; it < 800; ++it) {
    const int k = static_cast<int>(rng.next_u64() % 8);
    std::vector<Pwl> storage;
    storage.reserve(k);
    for (int i = 0; i < k; ++i) storage.push_back(random_pwl(rng, 8));
    std::vector<const Pwl*> terms;
    for (const Pwl& w : storage) terms.push_back(&w);
    expect_identical(Pwl::sum(terms), naive_sum(terms), "sum");
  }
}

TEST(PwlKernels, UpperEnvelopeMatchesNaive) {
  Rng rng(104);
  for (int it = 0; it < 2000; ++it) {
    const Pwl a = random_pwl(rng, 10);
    const Pwl b = random_pwl(rng, 10);
    expect_identical(a.upper_envelope(b), naive_upper_envelope(a, b),
                     "upper_envelope");
  }
}

TEST(PwlKernels, ClampedMatchesNaive) {
  Rng rng(105);
  for (int it = 0; it < 2000; ++it) {
    const Pwl a = random_pwl(rng, 10);
    double lo = rng.next_double(-1.0, 1.0);
    double hi = rng.next_double(-1.0, 2.0);
    if (hi < lo) std::swap(lo, hi);
    expect_identical(a.clamped(lo, hi), naive_clamped(a, lo, hi), "clamped");
  }
}

TEST(PwlKernels, EncapsulatesMatchesNaive) {
  Rng rng(106);
  int agree_true = 0;
  for (int it = 0; it < 4000; ++it) {
    const Pwl a = random_pwl(rng, 10);
    // Bias towards near-dominating pairs so both outcomes are exercised.
    const Pwl b = (it % 2 == 0) ? random_pwl(rng, 10)
                                : a.scaled(rng.next_double(0.9, 1.1));
    double lo = rng.next_double(-2.0, 2.0);
    double hi = lo + rng.next_double(0.0, 6.0);
    const double tol = (it % 3 == 0) ? 1e-3 : 1e-9;
    const bool got = a.encapsulates(b, lo, hi, tol);
    EXPECT_EQ(got, naive_encapsulates(a, b, lo, hi, tol));
    agree_true += got ? 1 : 0;
  }
  EXPECT_GT(agree_true, 0);  // the property must be exercised in both branches
}

// ---------------------------------------------------------------------------
// Signature conservativeness: a reject must imply the exact check fails.
// ---------------------------------------------------------------------------

TEST(PwlKernels, SignatureRejectImpliesNotDominating) {
  Rng rng(107);
  int rejects = 0;
  for (int it = 0; it < 4000; ++it) {
    const Pwl a = random_pwl(rng, 12);
    const Pwl b = (it % 2 == 0) ? random_pwl(rng, 12)
                                : a.scaled(rng.next_double(0.8, 1.2));
    const double lo = rng.next_double(-2.0, 0.0);
    const DominanceInterval iv{lo, lo + rng.next_double(0.5, 6.0)};
    const EnvelopeSignature sa = make_signature(a, iv);
    const EnvelopeSignature sb = make_signature(b, iv);
    for (const double tol : {1e-9, 1e-6, 1e-3}) {
      if (signature_rejects(sa, sb, tol)) {
        ++rejects;
        EXPECT_FALSE(dominates(a, b, iv, tol))
            << "signature rejected a dominating pair: a=" << a.to_string()
            << " b=" << b.to_string() << " iv=[" << iv.lo << ", " << iv.hi
            << "] tol=" << tol;
      }
    }
  }
  EXPECT_GT(rejects, 0);  // the filter must actually fire on random data
}

TEST(PwlKernels, SignatureMatchesOnlyItsInterval) {
  const Pwl a({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  const DominanceInterval iv{0.0, 2.0};
  const EnvelopeSignature sig = make_signature(a, iv);
  EXPECT_TRUE(signature_matches(sig, iv));
  EXPECT_FALSE(signature_matches(sig, DominanceInterval{0.0, 3.0}));
  EXPECT_FALSE(signature_matches(sig, DominanceInterval{-1.0, 2.0}));
  EXPECT_FALSE(signature_matches(EnvelopeSignature{}, iv));
}

TEST(PwlKernels, SignatureInvalidNeverRejects) {
  const Pwl a({{0.0, 0.0}, {1.0, 1.0}});
  const DominanceInterval iv{0.0, 1.0};
  const EnvelopeSignature valid = make_signature(a, iv);
  const EnvelopeSignature invalid;
  EXPECT_FALSE(signature_rejects(invalid, valid, 1e-6));
  EXPECT_FALSE(signature_rejects(valid, invalid, 1e-6));
}

// ---------------------------------------------------------------------------
// Empty-waveform contract of last_time_at_or_below (the fixed dead branch).
// ---------------------------------------------------------------------------

TEST(PwlKernels, EmptyWaveformLastTimeAtOrBelowIsAlwaysNullopt) {
  const Pwl empty;
  // Empty == identically zero. level >= 0: the set {t : 0 <= level} is
  // unbounded above; level < 0: the set is empty. Both yield nullopt.
  EXPECT_EQ(empty.last_time_at_or_below(1.0), std::nullopt);
  EXPECT_EQ(empty.last_time_at_or_below(0.0), std::nullopt);
  EXPECT_EQ(empty.last_time_at_or_below(-1.0), std::nullopt);
}

// ---------------------------------------------------------------------------
// IList::best() incremental tracking matches a linear rescan.
// ---------------------------------------------------------------------------

const topk::CandidateSet* rescan_best(std::span<const topk::CandidateSet> sets) {
  const topk::CandidateSet* best = nullptr;
  for (const topk::CandidateSet& s : sets) {
    if (best == nullptr || s.score > best->score) best = &s;
  }
  return best;
}

TEST(PwlKernels, IListBestMatchesLinearRescan) {
  Rng rng(108);
  topk::IList list;
  for (int it = 0; it < 3000; ++it) {
    topk::CandidateSet s;
    // Small member universe so try_add frequently hits the replace path;
    // quantized scores so exact ties (and the lowest-index tie-break) occur.
    s.members = {static_cast<layout::CapId>(rng.next_u64() % 12)};
    s.score = static_cast<double>(rng.next_u64() % 16);
    list.try_add(std::move(s));
    ASSERT_FALSE(list.empty());
    EXPECT_EQ(&list.best(), rescan_best(list.sets()));
  }
  list.clear();
  EXPECT_TRUE(list.empty());
}

}  // namespace
}  // namespace tka::wave
