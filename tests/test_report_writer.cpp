// Tests for the JSON/CSV result exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "fixtures.hpp"
#include "io/report_writer.hpp"
#include "noise/coupling_calc.hpp"

namespace tka::io {
namespace {

using test::Fixture;

struct ReportHarness {
  Fixture fx;
  sta::DelayModel model;
  noise::AnalyticCouplingCalculator calc;
  noise::NoiseReport report;

  ReportHarness()
      : fx([] {
          Fixture f = test::make_parallel_chains(2, 2);
          test::couple(f, "c0_n1", "c1_n1", 0.008);
          return f;
        }()),
        model(*fx.netlist, fx.parasitics),
        calc(fx.parasitics, model),
        report(noise::analyze_iterative(
            *fx.netlist, fx.parasitics, model, calc,
            noise::CouplingMask::all(fx.parasitics.num_couplings()),
            [this] {
              noise::IterativeOptions it;
              it.sta = fx.sta_options();
              return it;
            }())) {}
};

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(NoiseReportJson, ContainsDelaysAndNoisyNets) {
  ReportHarness h;
  std::ostringstream os;
  write_noise_report_json(os, *h.fx.netlist, h.report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"design\": \"chains\""), std::string::npos);
  EXPECT_NE(json.find("\"noiseless_delay_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"converged\": true"), std::string::npos);
  // The coupled net shows up with its delay noise.
  EXPECT_NE(json.find("\"name\": \"c0_n1\""), std::string::npos);
  // Quiet nets are omitted by default...
  EXPECT_EQ(json.find("\"name\": \"c0_in\""), std::string::npos);
  // ...and included when asked.
  std::ostringstream os2;
  write_noise_report_json(os2, *h.fx.netlist, h.report, true);
  EXPECT_NE(os2.str().find("\"name\": \"c0_in\""), std::string::npos);
}

TEST(TopkJson, RoundTripsSetMembers) {
  ReportHarness h;
  topk::TopkEngine engine(*h.fx.netlist, h.fx.parasitics, h.model, h.calc);
  topk::TopkOptions opt;
  opt.k = 1;
  opt.iterative.sta = h.fx.sta_options();
  const topk::TopkResult res = engine.run(opt);

  std::ostringstream os;
  write_topk_result_json(os, *h.fx.netlist, h.fx.parasitics, res, 1);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"mode\": \"addition\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"net_a\": \"c0_n1\""), std::string::npos);
  EXPECT_NE(json.find("\"delay_by_k\": ["), std::string::npos);
}

TEST(TopkJson, StatsSectionPresent) {
  ReportHarness h;
  topk::TopkEngine engine(*h.fx.netlist, h.fx.parasitics, h.model, h.calc);
  topk::TopkOptions opt;
  opt.k = 2;
  opt.iterative.sta = h.fx.sta_options();
  const topk::TopkResult res = engine.run(opt);

  std::ostringstream os;
  write_topk_result_json(os, *h.fx.netlist, h.fx.parasitics, res, 2);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(json.find("\"sets_generated\": "), std::string::npos);
  EXPECT_NE(json.find("\"dominance_pruned\": "), std::string::npos);
  EXPECT_NE(json.find("\"beam_capped\": "), std::string::npos);
  EXPECT_NE(json.find("\"max_list_size\": "), std::string::npos);
  // One runtime sample per cardinality, comma-separated inside the array.
  const size_t arr = json.find("\"runtime_by_k_s\": [");
  ASSERT_NE(arr, std::string::npos);
  const size_t end = json.find(']', arr);
  ASSERT_NE(end, std::string::npos);
  const std::string values = json.substr(arr, end - arr);
  EXPECT_NE(values.find(", "), std::string::npos);  // two entries for k=2
}

TEST(TopkCsv, OneRowPerCardinality) {
  ReportHarness h;
  topk::TopkEngine engine(*h.fx.netlist, h.fx.parasitics, h.model, h.calc);
  topk::TopkOptions opt;
  opt.k = 3;
  opt.iterative.sta = h.fx.sta_options();
  const topk::TopkResult res = engine.run(opt);

  std::ostringstream os;
  write_topk_trail_csv(os, res);
  const std::string csv = os.str();
  // Header + 3 rows.
  size_t lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(csv.rfind("k,estimated_delay_ns,runtime_s", 0), 0u);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);
  EXPECT_NE(csv.find("\n3,"), std::string::npos);
}

}  // namespace
}  // namespace tka::io
