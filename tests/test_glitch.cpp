// Tests for functional (glitch) noise analysis.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/glitch.hpp"
#include "sta/analyzer.hpp"

namespace tka::noise {
namespace {

using test::Fixture;

struct GlitchHarness {
  Fixture fx;
  sta::DelayModel model;
  AnalyticCouplingCalculator calc;
  sta::StaResult sta;
  EnvelopeBuilder builder;

  explicit GlitchHarness(Fixture f)
      : fx(std::move(f)),
        model(*fx.netlist, fx.parasitics),
        calc(fx.parasitics, model),
        sta(sta::run_sta(*fx.netlist, model, fx.sta_options())),
        builder(*fx.netlist, fx.parasitics, calc, sta.windows) {}
};

TEST(Glitch, NoCouplingsNoGlitch) {
  GlitchHarness h(test::make_parallel_chains(2, 3));
  const GlitchReport rep = analyze_glitch(
      *h.fx.netlist, h.fx.parasitics, h.model, h.builder,
      CouplingMask::all(h.fx.parasitics.num_couplings()));
  EXPECT_DOUBLE_EQ(rep.worst_peak_v, 0.0);
  EXPECT_TRUE(rep.failing_nets.empty());
}

TEST(Glitch, CoupledPeakSumsAggressors) {
  Fixture fx = test::make_parallel_chains(3, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.006);
  test::couple(fx, "c0_n1", "c2_n1", 0.006);
  GlitchHarness h(std::move(fx));
  const net::NetId v = h.fx.netlist->net_by_name("c0_n1");
  const CouplingMask all = CouplingMask::all(h.fx.parasitics.num_couplings());
  const GlitchReport rep =
      analyze_glitch(*h.fx.netlist, h.fx.parasitics, h.model, h.builder, all);
  const double p0 = h.builder.pulse_shape(v, 0).peak;
  const double p1 = h.builder.pulse_shape(v, 1).peak;
  EXPECT_NEAR(rep.coupled_peak_v[v], p0 + p1, 1e-9);
}

TEST(Glitch, MaskExcludesAggressors) {
  Fixture fx = test::make_parallel_chains(2, 2);
  const layout::CapId cap = test::couple(fx, "c0_n1", "c1_n1", 0.006);
  GlitchHarness h(std::move(fx));
  CouplingMask none = CouplingMask::none(h.fx.parasitics.num_couplings());
  const GlitchReport off =
      analyze_glitch(*h.fx.netlist, h.fx.parasitics, h.model, h.builder, none);
  EXPECT_DOUBLE_EQ(off.worst_peak_v, 0.0);
  none.set(cap, true);
  const GlitchReport on =
      analyze_glitch(*h.fx.netlist, h.fx.parasitics, h.model, h.builder, none);
  EXPECT_GT(on.worst_peak_v, 0.0);
}

TEST(Glitch, SubThresholdGlitchDoesNotPropagate) {
  Fixture fx = test::make_parallel_chains(2, 3);
  test::couple(fx, "c0_n0", "c1_n0", 0.003);  // modest glitch at the head
  GlitchHarness h(std::move(fx));
  GlitchModelOptions opt;
  opt.threshold_frac = 0.9;  // nothing crosses this margin
  const GlitchReport rep = analyze_glitch(
      *h.fx.netlist, h.fx.parasitics, h.model, h.builder,
      CouplingMask::all(h.fx.parasitics.num_couplings()), opt);
  const net::NetId head = h.fx.netlist->net_by_name("c0_n0");
  const net::NetId tail = h.fx.netlist->net_by_name("c0_n2");
  EXPECT_GT(rep.propagated_peak_v[head], 0.0);
  EXPECT_DOUBLE_EQ(rep.propagated_peak_v[tail], 0.0);
}

TEST(Glitch, SuperThresholdGlitchAmplifies) {
  Fixture fx = test::make_parallel_chains(2, 3, 0.006);  // light loading
  test::couple(fx, "c0_n0", "c1_n0", 0.04);  // violent coupling
  GlitchHarness h(std::move(fx));
  GlitchModelOptions opt;
  opt.threshold_frac = 0.05;  // hair-trigger receivers
  opt.gain = 3.0;
  const GlitchReport rep = analyze_glitch(
      *h.fx.netlist, h.fx.parasitics, h.model, h.builder,
      CouplingMask::all(h.fx.parasitics.num_couplings()), opt);
  const net::NetId head = h.fx.netlist->net_by_name("c0_n0");
  const net::NetId next = h.fx.netlist->net_by_name("c0_n1");
  EXPECT_GT(rep.propagated_peak_v[next], 0.0);
  EXPECT_GT(rep.worst_peak_v, rep.coupled_peak_v[head] - 1e-9);
}

TEST(Glitch, FailingNetsRespectThreshold) {
  Fixture fx = test::make_parallel_chains(2, 2, 0.006);
  test::couple(fx, "c0_n1", "c1_n1", 0.05);
  GlitchHarness h(std::move(fx));
  GlitchModelOptions strict;
  strict.fail_frac = 0.05;
  GlitchModelOptions lax;
  lax.fail_frac = 0.99;
  const CouplingMask all = CouplingMask::all(h.fx.parasitics.num_couplings());
  const GlitchReport r1 = analyze_glitch(*h.fx.netlist, h.fx.parasitics, h.model,
                                         h.builder, all, strict);
  const GlitchReport r2 = analyze_glitch(*h.fx.netlist, h.fx.parasitics, h.model,
                                         h.builder, all, lax);
  EXPECT_GT(r1.failing_nets.size(), r2.failing_nets.size());
  EXPECT_TRUE(r2.failing_nets.empty());
}

TEST(Glitch, PeakClampedAtVdd) {
  Fixture fx = test::make_parallel_chains(4, 2, 0.004);
  test::couple(fx, "c0_n1", "c1_n1", 0.08);
  test::couple(fx, "c0_n1", "c2_n1", 0.08);
  test::couple(fx, "c0_n1", "c3_n1", 0.08);
  GlitchHarness h(std::move(fx));
  const GlitchReport rep = analyze_glitch(
      *h.fx.netlist, h.fx.parasitics, h.model, h.builder,
      CouplingMask::all(h.fx.parasitics.num_couplings()));
  EXPECT_LE(rep.worst_peak_v, h.model.options().vdd + 1e-12);
}

}  // namespace
}  // namespace tka::noise
