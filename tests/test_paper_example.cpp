// Reconstruction of the paper's worked example (Figures 6, 7 and 8):
// the dominance partial order over hand-shaped envelopes, the resulting
// irredundant lists, and the higher-cardinality growth pattern.
#include <gtest/gtest.h>

#include "topk/irredundant_list.hpp"
#include "topk/pseudo_aggressor.hpp"
#include "wave/envelope.hpp"

namespace tka::topk {
namespace {

// A trapezoid envelope: rise at t0, plateau [t0+0.1, t1], fall by t1+0.2.
wave::Pwl trap(double t0, double t1, double peak) {
  return wave::Pwl({{t0, 0.0}, {t0 + 0.1, peak}, {t1, peak}, {t1 + 0.2, 0.0}});
}

const wave::DominanceInterval kIv{0.0, 10.0};

// Figure 6: envelope D encloses C; A and B are mutually non-dominated.
TEST(PaperFigure6, DominanceClassification) {
  const wave::Pwl d = trap(1.0, 5.0, 0.5);
  const wave::Pwl c = trap(1.5, 4.0, 0.3);
  const wave::Pwl a = trap(0.5, 2.0, 0.4);  // early, mid peak
  const wave::Pwl b = trap(2.5, 6.0, 0.25); // late, low peak
  EXPECT_TRUE(wave::dominates(d, c, kIv));
  EXPECT_FALSE(wave::dominates(c, d, kIv));
  EXPECT_EQ(wave::compare(a, b, kIv), wave::DomOrder::kIncomparable);
}

// Figure 7's partial order at victim v1: a1 dominates a2, a3, a4.
struct Fig7 {
  // Victim v1's aggressors: a1 encloses all others.
  wave::Pwl a1 = trap(1.0, 6.0, 0.5);
  wave::Pwl a2 = trap(1.5, 4.0, 0.35);
  wave::Pwl a3 = trap(2.0, 5.0, 0.3);
  wave::Pwl a4 = trap(2.5, 5.5, 0.2);

  CandidateSet set(std::vector<layout::CapId> members, const wave::Pwl& env,
                   double score) const {
    CandidateSet s;
    s.members = std::move(members);
    s.envelope = env;
    s.score = score;
    return s;
  }
};

TEST(PaperFigure7, IrredundantList1KeepsOnlyA1) {
  Fig7 f;
  IList list;
  list.try_add(f.set({1}, f.a1, 0.40));
  list.try_add(f.set({2}, f.a2, 0.25));
  list.try_add(f.set({3}, f.a3, 0.20));
  list.try_add(f.set({4}, f.a4, 0.10));
  PruneStats stats;
  // No victim-cap seeds here: pure Figure-7 pruning.
  list.reduce(kIv, 1e-9, 0, true, &stats);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.best().members, (std::vector<layout::CapId>{1}));
  EXPECT_EQ(stats.removed_dominated, 3u);
}

TEST(PaperFigure7, ExtensionSeedsKeepPartnersWhenRequested) {
  // With the victim's caps supplied, each cap keeps an extension partner:
  // the best set NOT containing it — so pruning can never orphan a future
  // union (the soundness refinement documented in DESIGN.md).
  Fig7 f;
  IList list;
  list.try_add(f.set({1}, f.a1, 0.40));
  list.try_add(f.set({2}, f.a2, 0.25));
  const layout::CapId caps[] = {1, 2};
  list.reduce(kIv, 1e-9, 0, true, nullptr, caps);
  // {2} is dominated by {1}, but it is cap 1's best partner, so it stays.
  EXPECT_EQ(list.size(), 2u);
}

// Figure 8's growth: I-list_2 at v1 = extensions of (a1) with the other
// primaries, i.e. (a1,a2), (a1,a3), (a1,a4) — and any set without a1 is
// dominated by the same set with a weaker member replaced by a1.
TEST(PaperFigure8, CardinalityTwoGrowth) {
  Fig7 f;
  IList list2;
  auto combined = [&](const wave::Pwl& x, const wave::Pwl& y) {
    return x.plus(y);
  };
  list2.try_add(f.set({1, 2}, combined(f.a1, f.a2), 0.55));
  list2.try_add(f.set({1, 3}, combined(f.a1, f.a3), 0.50));
  list2.try_add(f.set({1, 4}, combined(f.a1, f.a4), 0.45));
  list2.try_add(f.set({2, 4}, combined(f.a2, f.a4), 0.30));  // Fig 8's example prune
  list2.try_add(f.set({3, 4}, combined(f.a3, f.a4), 0.28));
  list2.reduce(kIv, 1e-9, 0, true, nullptr);
  // (a2,a4) is dominated by (a1,a4) [a1 encloses a2], (a3,a4) by (a1,a4).
  EXPECT_EQ(list2.size(), 3u);
  for (const CandidateSet& s : list2.sets()) {
    EXPECT_TRUE(std::binary_search(s.members.begin(), s.members.end(), 1u))
        << "every surviving pair contains a1";
  }
}

// Figure 8, v2 side: a pseudo input aggressor from v1 joins v2's own
// primaries; the order-2 aggressor b12 (b1 with a widened window) dominates
// its order-1 counterpart.
TEST(PaperFigure8, HigherOrderAggressorDominatesBase) {
  // b1 at its base window vs b1 with the window widened by delay noise.
  const wave::Pwl b1 = trap(2.0, 4.0, 0.45);
  const wave::Pwl b12 = trap(2.0, 4.8, 0.45);  // same height, wider plateau
  EXPECT_TRUE(wave::dominates(b12, b1, kIv));
  EXPECT_FALSE(wave::dominates(b1, b12, kIv));
}

// Theorem 1 at the set level: P dominating Q implies P u {a} produces at
// least the delay noise of Q u {a} for every common extension a.
TEST(PaperTheorem1, ExtensionPreservesDominance) {
  Fig7 f;
  const wave::Pwl extension = trap(3.0, 7.0, 0.3);
  const wave::Pwl p_ext = f.a1.plus(extension);
  const wave::Pwl q_ext = f.a2.plus(extension);
  EXPECT_TRUE(wave::dominates(f.a1, f.a2, kIv));
  EXPECT_TRUE(wave::dominates(p_ext, q_ext, kIv));
}

}  // namespace
}  // namespace tka::topk
