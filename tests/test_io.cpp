// Tests for the .bench reader, SPEF-lite round-trip and DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "io/bench_reader.hpp"
#include "io/dot_writer.hpp"
#include "io/spef_lite.hpp"
#include "net/builder.hpp"
#include "net/topo.hpp"
#include "util/error.hpp"

namespace tka::io {
namespace {

const char* kC17Bench = R"(
# c17 (ISCAS-85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
)";

TEST(BenchReader, ParsesC17) {
  auto nl = read_bench_string(kC17Bench, "c17");
  nl->validate();
  EXPECT_EQ(nl->num_gates(), 6u);
  EXPECT_EQ(nl->primary_inputs().size(), 5u);
  EXPECT_EQ(nl->primary_outputs().size(), 2u);
  // Same structure as the hand-built version.
  auto ref = net::make_c17();
  EXPECT_EQ(nl->num_nets(), ref->num_nets());
}

TEST(BenchReader, OutOfOrderDefinitions) {
  auto nl = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, a2)
INPUT(a2)
)");
  nl->validate();
  EXPECT_EQ(nl->num_gates(), 2u);
}

TEST(BenchReader, DecomposesWideGates) {
  auto nl = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = NAND(a, b, c, d, e)
)");
  nl->validate();
  // 5-input NAND -> AND2 tree (4 gates) + final stage; must be > 1 gate and
  // functionally a 5-in NAND structure with one output.
  EXPECT_GT(nl->num_gates(), 1u);
  EXPECT_EQ(nl->primary_outputs().size(), 1u);
  EXPECT_TRUE(nl->has_net("y"));
}

TEST(BenchReader, XorChainDecomposition) {
  auto nl = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = XNOR(a, b, c)
)");
  nl->validate();
  EXPECT_TRUE(nl->has_net("y"));
}

TEST(BenchReader, DffBecomesTimingBoundary) {
  auto nl = read_bench_string(R"(
INPUT(clkin)
OUTPUT(q2)
q1 = DFF(d1)
d1 = NOT(clkin)
q2 = NOT(q1)
)");
  nl->validate();
  // q1 is a pseudo-PI; d1 is a timing endpoint (pseudo-PO).
  EXPECT_EQ(nl->primary_inputs().size(), 2u);
  const net::NetId d1 = nl->net_by_name("d1");
  EXPECT_TRUE(nl->net(d1).is_primary_output);
}

TEST(BenchReader, ErrorsCarryLineNumbers) {
  try {
    read_bench_string("INPUT(a)\nzzz = FROB(a)\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bench:2"), std::string::npos);
  }
}

TEST(BenchReader, UndefinedNetIsError) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n"), Error);
}

TEST(BenchReader, DuplicateNetIsError) {
  EXPECT_THROW(read_bench_string("INPUT(a)\na = NOT(a)\n"), Error);
}

TEST(BenchReader, CombinationalCycleIsError) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
x = AND(a, y)
y = NOT(x)
)"),
               Error);
}

TEST(SpefLite, RoundTripsParasitics) {
  auto nl = net::make_c17();
  layout::Parasitics par(nl->num_nets());
  par.add_ground_cap(0, 0.0123);
  par.add_wire_res(0, 0.456);
  par.add_ground_cap(3, 0.002);
  par.add_coupling(0, 3, 0.0077);
  par.add_coupling(2, 5, 0.0011);

  std::ostringstream os;
  write_spef_lite(os, *nl, par);
  std::istringstream is(os.str());
  const layout::Parasitics back = read_spef_lite(is, *nl);

  EXPECT_NEAR(back.ground_cap(0), 0.0123, 1e-12);
  EXPECT_NEAR(back.wire_res(0), 0.456, 1e-12);
  EXPECT_EQ(back.num_couplings(), 2u);
  EXPECT_NEAR(back.coupling(0).cap_pf, 0.0077, 1e-12);
  EXPECT_EQ(back.coupling(1).net_a, 2u);
}

TEST(SpefLite, ZeroedCouplingsOmitted) {
  auto nl = net::make_c17();
  layout::Parasitics par(nl->num_nets());
  const layout::CapId id = par.add_coupling(0, 1, 0.004);
  par.zero_coupling(id);
  std::ostringstream os;
  write_spef_lite(os, *nl, par);
  EXPECT_EQ(os.str().find("*CCAP"), std::string::npos);
}

TEST(SpefLite, RejectsUnknownNet) {
  auto nl = net::make_c17();
  std::istringstream is("*NET bogus 0.1 0.2\n");
  EXPECT_THROW(read_spef_lite(is, *nl), Error);
}

TEST(SpefLite, RejectsMalformedLine) {
  auto nl = net::make_c17();
  std::istringstream is("*NET N1 0.1\n");
  EXPECT_THROW(read_spef_lite(is, *nl), Error);
  std::istringstream is2("*WHAT x y z\n");
  EXPECT_THROW(read_spef_lite(is2, *nl), Error);
}

TEST(DotWriter, EmitsGatesNetsAndCouplings) {
  auto nl = net::make_c17();
  layout::Parasitics par(nl->num_nets());
  const layout::CapId hot = par.add_coupling(5, 7, 0.003);
  par.add_coupling(6, 8, 0.001);
  std::ostringstream os;
  const layout::CapId hl[] = {hot};
  write_dot(os, *nl, &par, hl);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("NAND2X1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_EQ(dot.find("color=red", dot.find("color=red") + 1), std::string::npos);
}

}  // namespace
}  // namespace tka::io
