// Tests for the structural-Verilog reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "io/verilog_lite.hpp"
#include "net/builder.hpp"
#include "net/topo.hpp"
#include "util/error.hpp"

namespace tka::io {
namespace {

TEST(Verilog, WriteThenReadRoundTripsC17) {
  auto original = net::make_c17();
  std::ostringstream os;
  write_verilog(os, *original);
  auto back = read_verilog_string(os.str());
  back->validate();
  EXPECT_EQ(back->name(), original->name());
  EXPECT_EQ(back->num_gates(), original->num_gates());
  EXPECT_EQ(back->num_nets(), original->num_nets());
  EXPECT_EQ(back->primary_inputs().size(), original->primary_inputs().size());
  EXPECT_EQ(back->primary_outputs().size(), original->primary_outputs().size());
  // Same structure: identical level profile.
  EXPECT_EQ(net::net_levels(*back), net::net_levels(*original));
}

TEST(Verilog, ParsesHandWrittenModule) {
  auto nl = read_verilog_string(R"(
// a comment
module half (a, b, s, c);
  input a, b;
  output s, c;
  XOR2X1 gx (.A(a), .B(b), .Y(s));
  AND2X1 ga (.A(a), .B(b), .Y(c));
endmodule
)");
  nl->validate();
  EXPECT_EQ(nl->name(), "half");
  EXPECT_EQ(nl->num_gates(), 2u);
  EXPECT_EQ(nl->primary_outputs().size(), 2u);
}

TEST(Verilog, OutOfOrderInstances) {
  auto nl = read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  wire w;
  INVX1 g1 (.A(w), .Y(y));
  INVX1 g0 (.A(a), .Y(w));
endmodule
)");
  nl->validate();
  EXPECT_EQ(nl->num_gates(), 2u);
}

TEST(Verilog, MultilineInstanceStatement) {
  auto nl = read_verilog_string(
      "module m (a, b, y);\n  input a, b;\n  output y;\n"
      "  NAND2X1 g0 (\n    .A(a),\n    .B(b),\n    .Y(y)\n  );\nendmodule\n");
  EXPECT_EQ(nl->num_gates(), 1u);
}

TEST(Verilog, UnknownCellIsError) {
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  MAGICX9 g (.A(a), .Y(y));
endmodule
)"),
               Error);
}

TEST(Verilog, MissingPinIsError) {
  EXPECT_THROW(read_verilog_string(R"(
module m (a, b, y);
  input a, b;
  output y;
  NAND2X1 g (.A(a), .Y(y));
endmodule
)"),
               Error);
}

TEST(Verilog, DoubleDriverIsError) {
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  INVX1 g0 (.A(a), .Y(y));
  INVX1 g1 (.A(a), .Y(y));
endmodule
)"),
               Error);
}

TEST(Verilog, UndrivenOutputIsError) {
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  wire w;
  INVX1 g0 (.A(a), .Y(w));
endmodule
)"),
               Error);
}

TEST(Verilog, CombinationalCycleIsError) {
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  wire w1, w2;
  NAND2X1 g0 (.A(a), .B(w2), .Y(w1));
  INVX1 g1 (.A(w1), .Y(w2));
  INVX1 g2 (.A(w1), .Y(y));
endmodule
)"),
               Error);
}

TEST(Verilog, PinNames) {
  EXPECT_EQ(input_pin_name(0), "A");
  EXPECT_EQ(input_pin_name(3), "D");
  EXPECT_THROW(input_pin_name(4), Error);
}

}  // namespace
}  // namespace tka::io
