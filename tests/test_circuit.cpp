// Tests for the MNA linear solver: LU correctness, RC transient behavior
// against closed-form solutions, and coupled-RC pulse characterization.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/coupled_rc.hpp"
#include "circuit/matrix.hpp"
#include "circuit/mna.hpp"
#include "circuit/transient.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wave/ramp.hpp"

namespace tka::circuit {
namespace {

TEST(Matrix, MultiplyAndAdd) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const std::vector<double> v = {1.0, 1.0};
  const std::vector<double> r = m.multiply(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
  Matrix s = m.plus(m.scaled(-1.0));
  EXPECT_DOUBLE_EQ(s.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 0.0);
}

TEST(LuSolver, SolvesKnownSystem) {
  Matrix m(3, 3);
  // [2 1 0; 1 3 1; 0 1 4] x = [3; 7; 13] -> x = [1; 1; 3]
  m.at(0, 0) = 2; m.at(0, 1) = 1;
  m.at(1, 0) = 1; m.at(1, 1) = 3; m.at(1, 2) = 1;
  m.at(2, 1) = 1; m.at(2, 2) = 4;
  LuSolver lu(m);
  const std::vector<double> x = lu.solve({3.0, 7.0, 13.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LuSolver, PivotsOnZeroDiagonal) {
  Matrix m(2, 2);
  m.at(0, 1) = 1.0;  // zero at (0,0) forces a row swap
  m.at(1, 0) = 1.0;
  LuSolver lu(m);
  const std::vector<double> x = lu.solve({2.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolver, ThrowsOnSingular) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 4.0;
  EXPECT_THROW(LuSolver{m}, Error);
}

TEST(LuSolver, RandomSystemsRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.next_below(8);
    Matrix m(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) m.at(r, c) = rng.next_double(-1.0, 1.0);
      m.at(r, r) += 4.0;  // diagonally dominant -> well conditioned
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.next_double(-2.0, 2.0);
    const std::vector<double> b = m.multiply(x_true);
    const std::vector<double> x = LuSolver(m).solve(b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// RC low-pass step response: v(t) = Vdd (1 - exp(-t/RC)).
TEST(Transient, RcStepMatchesClosedForm) {
  LinearCircuit ckt;
  const NodeId src = ckt.add_node("src");
  const NodeId out = ckt.add_node("out");
  const double r = 1.0;   // kOhm
  const double c = 0.5;   // pF -> tau = 0.5 ns
  ckt.add_vsource(src, wave::Pwl({{0.0, 0.0}, {0.001, 1.0}}));  // fast step
  ckt.add_resistor(src, out, r);
  ckt.add_capacitor(out, 0, c);

  TransientOptions opt;
  opt.t_end = 3.0;
  opt.step = 0.002;
  const TransientResult res = simulate(ckt, opt);
  const wave::Pwl v = res.waveform(out);
  for (double t = 0.2; t <= 2.5; t += 0.25) {
    const double expected = 1.0 - std::exp(-t / (r * c));
    EXPECT_NEAR(v.value(t), expected, 0.01) << "t=" << t;
  }
}

TEST(Transient, DcOperatingPointRespected) {
  LinearCircuit ckt;
  const NodeId src = ckt.add_node();
  const NodeId mid = ckt.add_node();
  ckt.add_vsource(src, wave::Pwl::constant(2.0));
  ckt.add_resistor(src, mid, 1.0);
  ckt.add_resistor(mid, 0, 1.0);
  ckt.add_capacitor(mid, 0, 0.1);
  TransientOptions opt;
  opt.t_end = 1.0;
  opt.step = 0.01;
  const TransientResult res = simulate(ckt, opt);
  // Divider: 1.0 V at all times (starts at DC).
  EXPECT_NEAR(res.waveform(mid).value(0.0), 1.0, 1e-9);
  EXPECT_NEAR(res.waveform(mid).value(0.9), 1.0, 1e-6);
}

TEST(Transient, ChargeConservationOnFloatingCap) {
  // Cap between two resistive dividers settles without oscillation
  // (trapezoidal integration is A-stable).
  LinearCircuit ckt;
  const NodeId src = ckt.add_node();
  const NodeId a = ckt.add_node();
  const NodeId b = ckt.add_node();
  ckt.add_vsource(src, wave::make_rising_ramp(0.5, 0.2, 1.0));
  ckt.add_resistor(src, a, 0.5);
  ckt.add_resistor(a, 0, 2.0);
  ckt.add_capacitor(a, b, 0.2);
  ckt.add_resistor(b, 0, 1.0);
  TransientOptions opt;
  opt.t_end = 5.0;
  opt.step = 0.005;
  const TransientResult res = simulate(ckt, opt);
  // b returns to ~0 after the coupling event.
  EXPECT_NEAR(res.waveform(b).value(4.8), 0.0, 1e-3);
  // a settles to the divider value 0.8.
  EXPECT_NEAR(res.waveform(a).value(4.8), 0.8, 1e-3);
}

TEST(CoupledRc, PulseIsPositiveAndReturnsToZero) {
  CoupledRcParams p;
  const wave::Pwl pulse = simulate_noise_pulse(p);
  EXPECT_GT(pulse.peak(), 0.0);
  EXPECT_GE(pulse.min_value(), -0.02);  // tiny undershoot tolerated
  EXPECT_NEAR(pulse.value(pulse.t_back()), 0.0, 1e-3);
}

TEST(CoupledRc, PeakScalesWithCouplingCap) {
  CoupledRcParams small;
  small.cc = 0.01;
  CoupledRcParams large = small;
  large.cc = 0.04;
  EXPECT_GT(simulate_noise_pulse(large).peak(), simulate_noise_pulse(small).peak() * 1.5);
}

TEST(CoupledRc, PeakDecreasesWithSlowerAggressor) {
  CoupledRcParams fast;
  fast.agg_trans = 0.05;
  CoupledRcParams slow = fast;
  slow.agg_trans = 0.8;
  EXPECT_GT(simulate_noise_pulse(fast).peak(), simulate_noise_pulse(slow).peak());
}

TEST(CoupledRc, PeakBoundedByChargeSharing) {
  CoupledRcParams p;
  p.cc = 0.05;
  const double cv = p.c1v + p.c2v + p.cc;
  const double bound = p.vdd * p.cc / cv;
  EXPECT_LE(simulate_noise_pulse(p).peak(), bound * 1.05);
}

TEST(CoupledRc, CharacterizeExtractsShape) {
  CoupledRcParams p;
  const wave::PulseShape shape = characterize_noise_pulse(p);
  EXPECT_GT(shape.peak, 0.0);
  EXPECT_GT(shape.rise, 0.0);
  EXPECT_GT(shape.tau, 0.0);
  // The synthetic pulse built from the shape should resemble the simulated
  // one in peak (same by construction) and rough width.
  const wave::Pwl sim = simulate_noise_pulse(p);
  EXPECT_NEAR(shape.peak, sim.peak(), 1e-9);
}

}  // namespace
}  // namespace tka::circuit
