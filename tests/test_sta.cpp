// Tests for the linear delay model and static timing analysis: load and
// delay computation, window propagation, LAT bumps, critical paths, slacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "layout/parasitics.hpp"
#include "net/builder.hpp"
#include "sta/analyzer.hpp"
#include "sta/critical_path.hpp"
#include "sta/delay_model.hpp"

namespace tka::sta {
namespace {

layout::Parasitics flat_parasitics(const net::Netlist& nl, double gcap = 0.01,
                                   double res = 0.1) {
  layout::Parasitics par(nl.num_nets());
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    par.add_ground_cap(n, gcap);
    par.add_wire_res(n, res);
  }
  return par;
}

TEST(DelayModel, LoadSumsComponents) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  const layout::CapId cc = par.add_coupling(nl->net_by_name("N10"),
                                            nl->net_by_name("N11"), 0.005);
  (void)cc;
  DelayModel model(*nl, par);
  const net::NetId n10 = nl->net_by_name("N10");
  // gcap + coupling + 2 fanin caps... N10 fans out to G22 only (1 pin) plus
  // driver self-load.
  const net::CellType& nand2 = nl->library().cell(nl->library().index_of("NAND2X1"));
  const double expected = 0.01 + 0.005 + nand2.input_cap_pf + nand2.output_cap_pf;
  EXPECT_NEAR(model.net_load_pf(n10), expected, 1e-12);
}

TEST(DelayModel, MillerFactorScalesCoupling) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  par.add_coupling(nl->net_by_name("N10"), nl->net_by_name("N11"), 0.005);
  DelayModelOptions opt;
  opt.miller_factor = 2.0;
  DelayModel doubled(*nl, par, opt);
  DelayModel plain(*nl, par);
  const net::NetId n10 = nl->net_by_name("N10");
  EXPECT_NEAR(doubled.net_load_pf(n10) - plain.net_load_pf(n10), 0.005, 1e-12);
}

TEST(DelayModel, DelayIncreasesWithLoad) {
  auto nl = net::make_chain(2);
  layout::Parasitics light = flat_parasitics(*nl, 0.005);
  layout::Parasitics heavy = flat_parasitics(*nl, 0.05);
  DelayModel ml(*nl, light);
  DelayModel mh(*nl, heavy);
  EXPECT_GT(mh.gate_delay_ns(0), ml.gate_delay_ns(0));
  EXPECT_GT(mh.gate_trans_ns(0), ml.gate_trans_ns(0));
}

TEST(DelayModel, TransitionFloored) {
  auto nl = net::make_chain(1);
  layout::Parasitics par(nl->num_nets());  // zero parasitics
  DelayModel model(*nl, par);
  EXPECT_GE(model.gate_trans_ns(0), model.options().min_trans_ns);
  EXPECT_GE(model.pi_trans_ns(nl->primary_inputs().front()),
            model.options().min_trans_ns);
}

TEST(Sta, ChainArrivalAccumulates) {
  auto nl = net::make_chain(5);
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  const StaResult res = run_sta(*nl, model);
  double expected = 0.0;
  net::NetId cur = nl->primary_inputs().front();
  EXPECT_DOUBLE_EQ(res.windows[cur].lat, 0.0);
  for (int g = 0; g < 5; ++g) {
    expected += res.gate_delay[static_cast<net::GateId>(g)];
  }
  EXPECT_NEAR(res.max_lat, expected, 1e-12);
  EXPECT_EQ(res.worst_po, nl->primary_outputs().front());
}

TEST(Sta, WindowsFromInputArrivals) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  StaOptions opt;
  opt.input_arrival = [&nl](net::NetId n) {
    InputArrival a;
    if (n == nl->net_by_name("N1")) {
      a.eat = 0.1;
      a.lat = 0.3;
    }
    return a;
  };
  const StaResult res = run_sta(*nl, model, opt);
  const TimingWindow& w1 = res.windows[nl->net_by_name("N1")];
  EXPECT_DOUBLE_EQ(w1.eat, 0.1);
  EXPECT_DOUBLE_EQ(w1.lat, 0.3);
  // N10 = NAND(N1, N3): eat from N3 (0), lat from N1 (0.3).
  const TimingWindow& w10 = res.windows[nl->net_by_name("N10")];
  const double d = res.gate_delay[nl->net(nl->net_by_name("N10")).driver];
  EXPECT_NEAR(w10.eat, 0.0 + d, 1e-12);
  EXPECT_NEAR(w10.lat, 0.3 + d, 1e-12);
  EXPECT_GT(w10.width(), 0.0);
}

TEST(Sta, LatBumpPropagatesDownstream) {
  auto nl = net::make_chain(4);
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  const StaResult base = run_sta(*nl, model);

  std::vector<double> bump(nl->num_nets(), 0.0);
  const net::NetId mid = nl->net_by_name("n1");
  bump[mid] = 0.25;
  const StaResult bumped = run_sta(*nl, model, {}, &bump);
  EXPECT_NEAR(bumped.windows[mid].lat, base.windows[mid].lat + 0.25, 1e-12);
  EXPECT_NEAR(bumped.max_lat, base.max_lat + 0.25, 1e-12);
  // EATs are untouched.
  for (net::NetId n = 0; n < nl->num_nets(); ++n) {
    EXPECT_DOUBLE_EQ(bumped.windows[n].eat, base.windows[n].eat);
  }
}

TEST(Sta, WindowOverlapPredicate) {
  TimingWindow a{0.0, 1.0, 0.1, 0.1};
  TimingWindow b{0.5, 2.0, 0.1, 0.1};
  TimingWindow c{1.5, 2.0, 0.1, 0.1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(CriticalPath, BacktracksWorstPath) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  StaOptions opt;
  opt.input_arrival = [&nl](net::NetId n) {
    InputArrival a;
    if (n == nl->net_by_name("N3")) a.lat = 0.5;  // make N3 clearly critical
    return a;
  };
  const StaResult res = run_sta(*nl, model, opt);
  const TimingPath path = critical_path(*nl, res);
  ASSERT_GE(path.nets.size(), 2u);
  EXPECT_EQ(path.nets.front(), nl->net_by_name("N3"));
  EXPECT_EQ(path.nets.back(), res.worst_po);
  EXPECT_NEAR(path.arrival, res.max_lat, 1e-12);
  // Consecutive nets connected through gates.
  for (size_t i = 1; i < path.nets.size(); ++i) {
    const net::Net& out = nl->net(path.nets[i]);
    ASSERT_NE(out.driver, net::kInvalidGate);
    const auto& ins = nl->gate(out.driver).inputs;
    EXPECT_NE(std::find(ins.begin(), ins.end(), path.nets[i - 1]), ins.end());
  }
}

TEST(CriticalPath, SlacksNonNegativeAndZeroOnCriticalPath) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  const StaResult res = run_sta(*nl, model);
  const std::vector<double> slack = net_slacks(*nl, res);
  const TimingPath path = critical_path(*nl, res);
  for (net::NetId n : path.nets) EXPECT_NEAR(slack[n], 0.0, 1e-9);
  for (net::NetId n = 0; n < nl->num_nets(); ++n) {
    if (std::isfinite(slack[n])) {
      EXPECT_GE(slack[n], -1e-9);
    }
  }
}

TEST(CriticalPath, NearCriticalSetGrowsWithThreshold) {
  auto nl = net::make_c17();
  layout::Parasitics par = flat_parasitics(*nl);
  DelayModel model(*nl, par);
  const StaResult res = run_sta(*nl, model);
  const auto tight = near_critical_nets(*nl, res, 0.0);
  const auto loose = near_critical_nets(*nl, res, 10.0);
  EXPECT_GE(loose.size(), tight.size());
  EXPECT_EQ(loose.size(), nl->num_nets());  // every net within 10ns slack
  EXPECT_FALSE(tight.empty());
}

}  // namespace
}  // namespace tka::sta
