// PointStore / pool storage tests: SBO <-> pool spill round-trips stay
// bit-identical to a plain heap vector, and the pool's byte accounting
// balances back to zero once every waveform is destroyed and the free
// lists are trimmed (the invariant the session relies on when it trims
// per query and publishes mem.wave_pool_* gauges).
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "wave/point_store.hpp"
#include "wave/pwl.hpp"

namespace tka::wave {
namespace {

TEST(PointStore, InlineThenSpillRoundTrip) {
  PointStore s;
  EXPECT_FALSE(s.spilled());
  EXPECT_EQ(s.heap_bytes(), 0u);
  // Fill to the inline capacity: no spill yet.
  for (std::size_t i = 0; i < PointStore::kInlineCapacity; ++i) {
    s.push_back({static_cast<double>(i), -static_cast<double>(i)});
  }
  EXPECT_FALSE(s.spilled());
  EXPECT_EQ(s.size(), PointStore::kInlineCapacity);
  // One more point forces the spill; contents must carry over exactly.
  s.push_back({100.0, -100.0});
  EXPECT_TRUE(s.spilled());
  EXPECT_GT(s.heap_bytes(), 0u);
  ASSERT_EQ(s.size(), PointStore::kInlineCapacity + 1);
  for (std::size_t i = 0; i < PointStore::kInlineCapacity; ++i) {
    EXPECT_EQ(s[i].t, static_cast<double>(i));
    EXPECT_EQ(s[i].v, -static_cast<double>(i));
  }
  EXPECT_EQ(s[PointStore::kInlineCapacity].t, 100.0);
}

// Fuzz PointStore against std::vector<Point> through the operations the
// kernels use (push_back, reserve, truncate, copy, move, assign). Every
// intermediate state must match the reference bit for bit, across both
// sides of the spill threshold.
TEST(PointStore, FuzzAgainstVectorReference) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  for (int round = 0; round < 200; ++round) {
    PointStore s;
    std::vector<Point> ref;
    const int ops = 1 + static_cast<int>(rng() % 60);
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 6) {
        case 0:
        case 1:
        case 2: {  // push_back (biased: growth crosses the spill boundary)
          const Point p{val(rng), val(rng)};
          s.push_back(p);
          ref.push_back(p);
          break;
        }
        case 3: {  // reserve must not disturb contents
          s.reserve(rng() % 128);
          break;
        }
        case 4: {  // truncate
          const std::size_t n = ref.empty() ? 0 : rng() % ref.size();
          s.truncate(n);
          ref.resize(n);
          break;
        }
        case 5: {  // copy + move round-trip through fresh stores
          PointStore copy = s;
          PointStore moved = std::move(copy);
          s = std::move(moved);
          break;
        }
      }
      ASSERT_EQ(s.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(s[i].t, ref[i].t);
        ASSERT_EQ(s[i].v, ref[i].v);
      }
    }
  }
}

TEST(PointStore, MoveStealsSpilledBlockWithoutCopy) {
  PointStore a;
  for (int i = 0; i < 100; ++i) a.push_back({i * 1.0, i * 2.0});
  ASSERT_TRUE(a.spilled());
  const Point* block = a.data();
  PointStore b = std::move(a);
  EXPECT_EQ(b.data(), block);  // pointer steal, not a copy
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_FALSE(a.spilled());
}

// Round-trip a Pwl through spill-inducing kernels and compare with the same
// computation done at inline-resident sizes: storage location must never
// change values.
TEST(PwlStorage, SpilledAndInlineComputeIdenticalValues) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> val(0.0, 1.0);
  for (int round = 0; round < 50; ++round) {
    std::vector<Point> pts;
    double t = 0.0;
    const int n = 3 + static_cast<int>(rng() % 40);  // spans the threshold
    for (int i = 0; i < n; ++i) {
      t += 0.01 + val(rng);
      pts.push_back({t, val(rng)});
    }
    const Pwl a(pts);
    const Pwl b = a.shifted(0.37).scaled(0.5);
    const Pwl sum = a.plus(b);
    const Pwl diff = a.minus(b);
    // plus/minus must agree with pointwise evaluation at every breakpoint.
    for (const Point& p : sum.points()) {
      ASSERT_EQ(p.v, a.value(p.t) + b.value(p.t));
    }
    ASSERT_TRUE(sum.minus(b).plus(b).same_points(sum));
    ASSERT_EQ(diff.size(), sum.size());
  }
}

// After every store is destroyed and the calling thread's free list is
// trimmed, the pool's balance returns to where it started: live bytes to
// the pre-test level and this thread's cache to zero. The session performs
// exactly this reset per query.
TEST(PoolAccounting, ZeroBalanceAfterTrim) {
  pool::trim_all(0);
  const pool::Stats before = pool::stats();
  {
    std::vector<Pwl> keep;
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> val(0.0, 1.0);
    for (int i = 0; i < 64; ++i) {
      std::vector<Point> pts;
      double t = 0.0;
      for (int j = 0; j < 40; ++j) {
        t += 0.02 + val(rng);
        pts.push_back({t, val(rng)});
      }
      keep.emplace_back(pts);
    }
    const pool::Stats during = pool::stats();
    EXPECT_GT(during.live_bytes, before.live_bytes);
    EXPECT_GT(during.alloc_calls, before.alloc_calls);
  }
  pool::trim_all(0);
  const pool::Stats after = pool::stats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(pool::thread_cached_bytes(), 0u);

#if TKA_OBS_ENABLED
  // The published gauges must mirror the balanced accounting.
  pool::publish_gauges();
  const double pool_gauge =
      obs::registry().gauge("mem.wave_pool_bytes").value();
  const double cached_gauge =
      obs::registry().gauge("mem.wave_pool_cached_bytes").value();
  EXPECT_EQ(cached_gauge, 0.0);
  EXPECT_EQ(pool_gauge, static_cast<double>(after.live_bytes));
#endif
}

// Released blocks park on the free list (cached bytes) and are reused by
// the next allocation of the same size class instead of hitting the heap.
TEST(PoolAccounting, FreeListReuseIsAHit) {
  pool::trim_all(0);
  const std::size_t cap = pool::round_capacity(100);
  Point* p = pool::alloc(cap);
  pool::release(p, cap);
  EXPECT_GT(pool::thread_cached_bytes(), 0u);
  const pool::Stats before = pool::stats();
  Point* q = pool::alloc(cap);
  const pool::Stats after = pool::stats();
  EXPECT_EQ(q, p);  // same block back
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  pool::release(q, cap);
  pool::trim_all(0);
}

}  // namespace
}  // namespace tka::wave
