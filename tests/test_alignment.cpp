// Tests for the exact worst-case alignment search and its relationship to
// the trapezoidal-envelope bound (the paper's §2 foundation: the envelope
// must bound every admissible alignment).
#include <gtest/gtest.h>

#include "noise/alignment.hpp"
#include "noise/noise_analyzer.hpp"
#include "util/rng.hpp"
#include "wave/envelope.hpp"
#include "wave/ramp.hpp"

namespace tka::noise {
namespace {

TEST(Alignment, EmptyAggressorsNoNoise) {
  const AlignmentResult res = worst_alignment({}, 1.0, 0.1, 1.2);
  EXPECT_DOUBLE_EQ(res.delay_noise, 0.0);
  EXPECT_TRUE(res.starts.empty());
}

TEST(Alignment, SingleAggressorPrefersLateAlignment) {
  // A pulse can slide over [0.2, 1.2]; the victim switches at t50=1.3. The
  // worst start is near the late edge (pulse overlapping the transition).
  AlignedAggressor a{{0.4, 0.05, 0.2}, 0.2, 1.2};
  const AlignmentResult res = worst_alignment({a}, 1.3, 0.1, 1.2);
  EXPECT_GT(res.delay_noise, 0.0);
  ASSERT_EQ(res.starts.size(), 1u);
  EXPECT_GT(res.starts[0], 0.9);
}

TEST(Alignment, DegenerateWindowIsFixed) {
  AlignedAggressor a{{0.4, 0.05, 0.2}, 0.7, 0.7};
  const AlignmentResult res = worst_alignment({a}, 0.8, 0.1, 1.2);
  ASSERT_EQ(res.starts.size(), 1u);
  EXPECT_DOUBLE_EQ(res.starts[0], 0.7);
}

TEST(Alignment, ExplicitAlignmentEvaluation) {
  AlignedAggressor a{{0.5, 0.05, 0.2}, 0.0, 2.0};
  // Pulse far before the transition: no noise.
  EXPECT_DOUBLE_EQ(
      delay_noise_at_alignment({a}, {0.0}, 5.0, 0.1, 1.2), 0.0);
  // Pulse overlapping the transition: noise.
  EXPECT_GT(delay_noise_at_alignment({a}, {4.9}, 5.0, 0.1, 1.2), 0.0);
}

TEST(Alignment, TwoAggressorsBeatOneWhenStacked) {
  AlignedAggressor a{{0.35, 0.05, 0.2}, 0.5, 1.5};
  AlignedAggressor b = a;
  const AlignmentResult one = worst_alignment({a}, 1.6, 0.1, 1.2);
  const AlignmentResult two = worst_alignment({a, b}, 1.6, 0.1, 1.2);
  EXPECT_GT(two.delay_noise, one.delay_noise);
}

TEST(Alignment, CoordinateDescentHandlesManyAggressors) {
  std::vector<AlignedAggressor> aggs;
  for (int i = 0; i < 6; ++i) {
    aggs.push_back({{0.15, 0.05, 0.15}, 0.2 * i, 0.2 * i + 1.0});
  }
  AlignmentOptions opt;
  opt.max_exhaustive = 3;  // force the descent path
  const AlignmentResult res = worst_alignment(aggs, 1.4, 0.1, 1.2, opt);
  EXPECT_GT(res.delay_noise, 0.0);
  ASSERT_EQ(res.starts.size(), 6u);
  for (size_t i = 0; i < aggs.size(); ++i) {
    EXPECT_GE(res.starts[i], aggs[i].start_min - 1e-12);
    EXPECT_LE(res.starts[i], aggs[i].start_max + 1e-12);
  }
}

// Property: the trapezoidal envelope's delay noise upper-bounds the exact
// worst alignment for any (random) configuration.
class EnvelopeBoundsAlignment : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopeBoundsAlignment, EnvelopeIsUpperBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const double vdd = 1.2;
  for (int trial = 0; trial < 10; ++trial) {
    const int num_aggs = 1 + static_cast<int>(rng.next_below(3));
    std::vector<AlignedAggressor> aggs;
    std::vector<wave::Pwl> envelopes;
    std::vector<const wave::Pwl*> terms;
    for (int i = 0; i < num_aggs; ++i) {
      AlignedAggressor a;
      a.shape = {rng.next_double(0.1, 0.5), rng.next_double(0.03, 0.2),
                 rng.next_double(0.1, 0.4)};
      a.start_min = rng.next_double(0.0, 1.5);
      a.start_max = a.start_min + rng.next_double(0.0, 1.0);
      envelopes.push_back(
          wave::make_trapezoidal_envelope(a.shape, a.start_min, a.start_max));
      aggs.push_back(a);
    }
    for (const wave::Pwl& e : envelopes) terms.push_back(&e);
    const wave::Pwl combined = wave::Pwl::sum(terms);

    const double victim_t50 = rng.next_double(0.5, 2.5);
    const double victim_trans = rng.next_double(0.05, 0.3);
    const wave::Pwl vic = wave::make_rising_ramp(victim_t50, victim_trans, vdd);
    const double bound = delay_noise(vic, combined, vdd, victim_t50);

    const AlignmentResult exact =
        worst_alignment(aggs, victim_t50, victim_trans, vdd);
    EXPECT_GE(bound + 1e-9, exact.delay_noise)
        << "trial " << trial << ": envelope bound violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeBoundsAlignment, ::testing::Range(1, 7));

}  // namespace
}  // namespace tka::noise
