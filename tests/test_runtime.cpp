// Tests for the parallel execution runtime: thread pool (futures, exception
// propagation, deterministic parallel_for, nested inlining, shutdown
// draining), the level-wavefront scheduler, and thread-count resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/circuit_generator.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/wavefront.hpp"

namespace tka::runtime {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::atomic<int> ran{0};
  auto f = pool.submit([&]() { ran.store(1); });
  // No workers: the task completed before submit returned.
  EXPECT_EQ(ran.load(), 1);
  f.get();
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ParallelForDeterministicPerIndexResults) {
  std::vector<std::uint64_t> serial(777);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = i * i + 17;
  for (std::size_t threads : {2u, 5u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(serial.size(), 0);
    pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = i * i + 17; });
    EXPECT_EQ(out, serial) << threads << " threads";
  }
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 99) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The pool is still usable after a failed loop.
  std::atomic<std::size_t> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10u);
}

TEST(ThreadPool, ParallelForRethrowsLowestChunkException) {
  ThreadPool pool(4);
  // Every index throws its own value; the first (lowest-index) chunk's
  // exception is the one that surfaces.
  try {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, MaxLanesOneRunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;  // unsynchronized: inline means safe
  pool.parallel_for(0, 20, [&](std::size_t i) { order.push_back(i); },
                    /*max_lanes=*/1);
  std::vector<std::size_t> expect(20);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, OnPoolThreadFlag) {
  EXPECT_FALSE(on_pool_thread());
  ThreadPool pool(2);
  auto f = pool.submit([]() { return on_pool_thread(); });
  EXPECT_TRUE(f.get());
  EXPECT_FALSE(on_pool_thread());
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  // A nested loop issued from a pool worker must not wait on the same
  // pool (deadlock); it degrades to inline execution. The outer chunk
  // that runs on the calling thread is allowed to fan its inner loop out,
  // so the inner body writes per-index slots like any parallel client.
  std::vector<std::uint64_t> inner(8 * 100, 0);
  std::vector<std::uint64_t> sums(8, 0);
  pool.parallel_for(0, sums.size(), [&](std::size_t outer) {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      inner[outer * 100 + i] = i + outer;
    });
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < 100; ++i) local += inner[outer * 100 + i];
    sums[outer] = local;
  });
  for (std::size_t outer = 0; outer < sums.size(); ++outer) {
    EXPECT_EQ(sums[outer], 4950u + 100u * outer);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }  // ~ThreadPool: pending tasks complete before the workers join
  EXPECT_EQ(done.load(), 16);
}

TEST(Runtime, ResolveThreadsPrecedence) {
  const char* saved = std::getenv("TKA_THREADS");
  const std::string saved_value = saved ? saved : "";

  setenv("TKA_THREADS", "3", 1);
  EXPECT_EQ(resolve_threads(5), 5);  // explicit request wins
  EXPECT_EQ(resolve_threads(0), 3);  // then the environment
  setenv("TKA_THREADS", "not-a-number", 1);
  EXPECT_GE(resolve_threads(0), 1);  // garbage ignored -> hardware
  unsetenv("TKA_THREADS");
  EXPECT_GE(resolve_threads(0), 1);  // hardware concurrency, at least 1

  if (saved != nullptr) setenv("TKA_THREADS", saved_value.c_str(), 1);
}

TEST(Runtime, SharedPoolGrowsAndCapsFanout) {
  // pool(n) serves n lanes with the caller as one of them: n - 1 workers.
  ThreadPool& small = pool(2);
  EXPECT_GE(small.size(), 1u);
  ThreadPool& big = pool(6);
  EXPECT_GE(big.size(), 5u);
  // A later, smaller request reuses the grown pool; parallel_for caps the
  // fan-out instead of shrinking it. Just exercise the path.
  std::vector<int> hits(64, 0);
  runtime::parallel_for(2, 0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Wavefront, PartitionsNetsByLevel) {
  gen::GeneratorParams p;
  p.name = "wavefront";
  p.num_gates = 80;
  p.target_couplings = 150;
  p.seed = 7;
  const gen::GeneratedCircuit ckt = gen::generate_circuit(p);
  const net::Netlist& nl = *ckt.netlist;

  const Wavefront wf(nl);
  EXPECT_EQ(wf.num_nets(), nl.num_nets());
  ASSERT_GE(wf.num_levels(), 1u);

  // Every net appears in exactly one level, consistent with level_of().
  std::vector<int> seen(nl.num_nets(), 0);
  std::size_t total = 0;
  for (std::size_t lv = 0; lv < wf.num_levels(); ++lv) {
    net::NetId last = 0;
    bool first = true;
    for (net::NetId n : wf.level(lv)) {
      EXPECT_EQ(wf.level_of(n), static_cast<int>(lv));
      seen[n] += 1;
      ++total;
      if (!first) {
        EXPECT_LT(last, n) << "levels must ascend by net id";
      }
      last = n;
      first = false;
    }
  }
  EXPECT_EQ(total, nl.num_nets());
  for (net::NetId n = 0; n < nl.num_nets(); ++n) EXPECT_EQ(seen[n], 1) << n;

  // Fanins always sit at strictly lower levels: the property every
  // wavefront consumer relies on.
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    const net::Net& nn = nl.net(n);
    if (nn.driver == net::kInvalidGate) {
      EXPECT_EQ(wf.level_of(n), 0);
      continue;
    }
    for (net::NetId in : nl.gate(nn.driver).inputs) {
      EXPECT_LT(wf.level_of(in), wf.level_of(n));
    }
  }
}

TEST(Wavefront, FilterLevelReadsFlagsAtCallTime) {
  gen::GeneratorParams p;
  p.name = "filter_level";
  p.num_gates = 80;
  p.target_couplings = 150;
  p.seed = 7;
  const gen::GeneratedCircuit ckt = gen::generate_circuit(p);
  const net::Netlist& nl = *ckt.netlist;
  const Wavefront wf(nl);

  // Flag every third net; each level's batch must be exactly its flagged
  // subset, preserving the level's ascending-id order.
  std::vector<char> flags(nl.num_nets(), 0);
  for (net::NetId n = 0; n < nl.num_nets(); n += 3) flags[n] = 1;
  std::vector<net::NetId> batch;
  for (std::size_t lv = 0; lv < wf.num_levels(); ++lv) {
    filter_level(wf, lv, flags, &batch);
    std::vector<net::NetId> expect;
    for (net::NetId n : wf.level(lv)) {
      if (flags[n]) expect.push_back(n);
    }
    EXPECT_EQ(batch, expect) << "level " << lv;
  }

  // Flags set while earlier levels execute are visible to later levels —
  // the property the session's change-driven marking relies on.
  flags.assign(nl.num_nets(), 0);
  ASSERT_GE(wf.num_levels(), 2u);
  filter_level(wf, wf.num_levels() - 1, flags, &batch);
  EXPECT_TRUE(batch.empty());
  for (net::NetId n : wf.level(wf.num_levels() - 1)) flags[n] = 1;
  filter_level(wf, wf.num_levels() - 1, flags, &batch);
  EXPECT_EQ(batch.size(), wf.level(wf.num_levels() - 1).size());
}

}  // namespace
}  // namespace tka::runtime
