// Tests for the observability layer: metric semantics, span nesting, trace
// JSON well-formedness (validated with a real round-trip parse) and the
// engine's metric population. With TKA_OBS_DISABLED the same file instead
// proves every hook is a no-op.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fixtures.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/obs.hpp"
#include "topk/topk_engine.hpp"

namespace tka::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough to round-trip-validate the
// trace and metrics emitters (objects, arrays, strings with escapes,
// numbers, booleans, null). Parse failures surface as test failures.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const { return object.count(key) != 0; }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(Json* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool parse_value(Json* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->kind = Json::Kind::kString; return parse_string(&out->string);
      case 't': out->kind = Json::Kind::kBool; out->boolean = true;
                return literal("true");
      case 'f': out->kind = Json::Kind::kBool; out->boolean = false;
                return literal("false");
      case 'n': out->kind = Json::Kind::kNull; return literal("null");
      default:  return parse_number(out);
    }
  }
  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            pos_ += 4;
            out->push_back('?');  // codepoint value irrelevant for these tests
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool parse_number(Json* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return false;
    }
    out->kind = Json::Kind::kNumber;
    return true;
  }
  bool parse_array(Json* out) {
    out->kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      Json elem;
      skip_ws();
      if (!parse_value(&elem)) return false;
      out->array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool parse_object(Json* out) {
    out->kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Json parse_or_fail(const std::string& text) {
  Json value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.parse(&value)) << "invalid JSON:\n" << text;
  return value;
}

// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().enable(false);
    tracer().clear();
    registry().reset();
  }
  void TearDown() override {
    tracer().enable(false);
    tracer().clear();
    registry().reset();
  }
};

#if TKA_OBS_ENABLED

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter& c = registry().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same object.
  EXPECT_EQ(&registry().counter("test.counter"), &c);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);  // reference survives reset
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge& g = registry().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(ObsTest, HistogramCountsSumAndBuckets) {
  Histogram& h = registry().histogram("test.hist", 1.0, 1024.0);
  h.observe(0.5);     // below lo -> bucket 0
  h.observe(1.0);     // == lo -> bucket 0
  h.observe(100.0);
  h.observe(1e9);     // above hi -> overflow (+inf) bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 100.0 + 1e9);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 1u);
  std::uint64_t total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.bucket_count(i);
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(h.bucket_upper(i), h.bucket_upper(i + 1));  // monotone bounds
    }
  }
  EXPECT_EQ(total, h.count());
  EXPECT_TRUE(std::isinf(h.bucket_upper(Histogram::kNumBuckets - 1)));
}

TEST_F(ObsTest, SpanNestingAndSummary) {
  tracer().enable(true);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  EXPECT_EQ(tracer().num_events(), 3u);
  const std::vector<SpanSummary> rows = tracer().summarize();
  ASSERT_EQ(rows.size(), 2u);
  // std::map order: "outer" then "outer/inner".
  EXPECT_EQ(rows[0].path, "outer");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[0].depth, 0u);
  EXPECT_EQ(rows[1].path, "outer/inner");
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_EQ(rows[1].depth, 1u);
  // Self time excludes children; totals nest.
  EXPECT_GE(rows[0].total_s, rows[1].total_s);
  EXPECT_LE(rows[0].self_s, rows[0].total_s);
  EXPECT_GE(rows[1].self_s, 0.0);
}

TEST_F(ObsTest, SpansDisabledRecordNothing) {
  {
    ScopedSpan span("ignored");
    EXPECT_FALSE(span.recording());
  }
  EXPECT_EQ(tracer().num_events(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrips) {
  tracer().enable(true);
  {
    ScopedSpan outer("phase \"one\"");  // exercises escaping
    outer.arg("k", static_cast<std::int64_t>(3)).arg("mode", "addition");
    ScopedSpan inner("child");
  }
  std::ostringstream os;
  tracer().write_chrome_json(os);
  const Json doc = parse_or_fail(os.str());
  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  ASSERT_TRUE(doc.has("traceEvents"));
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::kArray);
  ASSERT_EQ(events.array.size(), 2u);
  bool saw_outer = false;
  for (const Json& ev : events.array) {
    ASSERT_EQ(ev.kind, Json::Kind::kObject);
    EXPECT_EQ(ev.at("ph").string, "X");
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
    ASSERT_TRUE(ev.has("args"));
    if (ev.at("name").string == "phase \"one\"") {
      saw_outer = true;
      EXPECT_EQ(ev.at("args").at("k").number, 3.0);
      EXPECT_EQ(ev.at("args").at("mode").string, "addition");
    }
  }
  EXPECT_TRUE(saw_outer);
}

TEST_F(ObsTest, ClearInvalidatesOpenSpans) {
  tracer().enable(true);
  {
    ScopedSpan span("outlived");
    tracer().clear();
  }  // end_span with a stale generation must be dropped, not crash
  EXPECT_EQ(tracer().num_events(), 0u);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  registry().counter("test.counter").add(7);
  registry().gauge("test.gauge").set(2.5);
  registry().histogram("test.hist", 1.0, 10.0).observe(3.0);
  tracer().enable(true);
  { ScopedSpan span("solo"); }
  std::ostringstream os;
  write_metrics_json(os);
  const Json doc = parse_or_fail(os.str());
  EXPECT_EQ(doc.at("counters").at("test.counter").number, 7.0);
  EXPECT_EQ(doc.at("gauges").at("test.gauge").number, 2.5);
  const Json& hist = doc.at("histograms").at("test.hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("sum").number, 3.0);
  ASSERT_EQ(hist.at("buckets").kind, Json::Kind::kArray);
  EXPECT_EQ(hist.at("buckets").array.size(), 1u);
  const Json& spans = doc.at("spans");
  ASSERT_EQ(spans.kind, Json::Kind::kArray);
  ASSERT_EQ(spans.array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("path").string, "solo");
  EXPECT_EQ(spans.array[0].at("count").number, 1.0);
}

TEST_F(ObsTest, EngineRunPopulatesExpectedMetrics) {
  tracer().enable(true);
  test::Fixture fx = test::make_parallel_chains(2, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.008);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  noise::AnalyticCouplingCalculator calc(fx.parasitics, model);
  topk::TopkEngine engine(*fx.netlist, fx.parasitics, model, calc);
  topk::TopkOptions opt;
  opt.k = 2;
  opt.iterative.sta = fx.sta_options();
  const topk::TopkResult res = engine.run(opt);

  // Registry counters the acceptance criteria name.
  EXPECT_GT(registry().counter("topk.sets_generated").value(), 0u);
  EXPECT_EQ(registry().counter("topk.sets_generated").value(),
            res.stats.sets_generated);
  EXPECT_EQ(registry().counter("topk.runs").value(), 1u);
  EXPECT_GT(registry().counter("noise.fixpoint_runs").value(), 0u);
  EXPECT_GT(registry().counter("noise.fixpoint_iterations").value(), 0u);
  EXPECT_GT(registry().counter("sta.runs").value(), 0u);
  EXPECT_GT(registry().histogram("topk.ilist_size", 1.0, 65536.0).count(), 0u);

  // Per-cardinality spans and gauges.
  const std::vector<SpanSummary> rows = tracer().summarize();
  auto has_path_suffix = [&](const std::string& suffix) {
    for (const SpanSummary& row : rows) {
      if (row.path.size() >= suffix.size() &&
          row.path.compare(row.path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_path_suffix("topk.run"));
  EXPECT_TRUE(has_path_suffix("topk.baseline"));
  EXPECT_TRUE(has_path_suffix("topk.cardinality.1"));
  EXPECT_TRUE(has_path_suffix("topk.cardinality.2"));
  EXPECT_TRUE(has_path_suffix("noise.fixpoint"));
  EXPECT_TRUE(has_path_suffix("sta.run"));
  EXPECT_GT(registry().gauge("topk.cardinality_runtime_s.k1").value(), 0.0);
  EXPECT_GT(registry().gauge("topk.runtime_s").value(), 0.0);

  // TopkStats mirrors the registry (single clock, single source).
  EXPECT_GT(res.stats.runtime_s, 0.0);
  ASSERT_EQ(res.stats.runtime_by_k.size(), 2u);
  EXPECT_LE(res.stats.runtime_by_k[0], res.stats.runtime_by_k[1]);
  EXPECT_LE(res.stats.runtime_by_k[1], res.stats.runtime_s);

  // The whole metrics document stays valid JSON with the engine data in it.
  std::ostringstream os;
  write_metrics_json(os);
  const Json doc = parse_or_fail(os.str());
  EXPECT_TRUE(doc.at("counters").has("topk.sets_generated"));
  EXPECT_TRUE(doc.at("counters").has("topk.dominance_pruned"));
  EXPECT_TRUE(doc.at("counters").has("noise.fixpoint_iterations"));
  EXPECT_TRUE(doc.at("histograms").has("topk.ilist_size"));
}

TEST_F(ObsTest, RegisterCoreMetricsCreatesCatalog) {
  register_core_metrics();
  std::ostringstream os;
  write_metrics_json(os);
  const Json doc = parse_or_fail(os.str());
  // The catalog guarantees well-known names exist even before any run —
  // including the transient histogram, which only fills when the MNA
  // solver is exercised.
  EXPECT_TRUE(doc.at("counters").has("topk.sets_generated"));
  EXPECT_TRUE(doc.at("counters").has("topk.whatif_runs"));
  EXPECT_TRUE(doc.at("counters").has("session.whatif_edits"));
  EXPECT_TRUE(doc.at("gauges").has("session.dirty_victims"));
  EXPECT_TRUE(doc.at("counters").has("transient.solves"));
  EXPECT_TRUE(doc.at("histograms").has("transient.solve_seconds"));
  EXPECT_EQ(doc.at("histograms").at("transient.solve_seconds").at("count").number,
            0.0);
}

#else  // !TKA_OBS_ENABLED — prove the compile-out path is a true no-op.

TEST_F(ObsTest, DisabledHooksAreNoOps) {
  Counter& c = registry().counter("test.counter");
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  registry().gauge("test.gauge").set(3.0);
  EXPECT_EQ(registry().gauge("test.gauge").value(), 0.0);
  registry().histogram("test.hist").observe(1.0);
  EXPECT_EQ(registry().histogram("test.hist").count(), 0u);

  tracer().enable(true);
  {
    ScopedSpan span("ignored");
    EXPECT_FALSE(span.recording());
    span.arg("k", static_cast<std::int64_t>(1));
  }
  EXPECT_EQ(tracer().num_events(), 0u);
  EXPECT_FALSE(tracer().enabled());
}

TEST_F(ObsTest, DisabledEmittersStayValidJson) {
  std::ostringstream trace_os;
  tracer().write_chrome_json(trace_os);
  const Json trace = parse_or_fail(trace_os.str());
  EXPECT_TRUE(trace.at("traceEvents").array.empty());

  std::ostringstream metrics_os;
  write_metrics_json(metrics_os);
  const Json metrics = parse_or_fail(metrics_os.str());
  EXPECT_TRUE(metrics.at("counters").object.empty());
  EXPECT_TRUE(metrics.at("spans").array.empty());
}

TEST_F(ObsTest, DisabledEngineStillTimes) {
  test::Fixture fx = test::make_parallel_chains(2, 2);
  test::couple(fx, "c0_n1", "c1_n1", 0.008);
  sta::DelayModel model(*fx.netlist, fx.parasitics);
  noise::AnalyticCouplingCalculator calc(fx.parasitics, model);
  topk::TopkEngine engine(*fx.netlist, fx.parasitics, model, calc);
  topk::TopkOptions opt;
  opt.k = 2;
  opt.iterative.sta = fx.sta_options();
  const topk::TopkResult res = engine.run(opt);
  // Counter-derived fields read 0, but timing (obs clock) still works.
  EXPECT_EQ(res.stats.sets_generated, 0u);
  EXPECT_GT(res.stats.runtime_s, 0.0);
  EXPECT_EQ(res.stats.runtime_by_k.size(), 2u);
}

#endif  // TKA_OBS_ENABLED

}  // namespace
}  // namespace tka::obs
