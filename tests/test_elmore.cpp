// Tests for per-sink Elmore wire delays.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/circuit_generator.hpp"
#include "layout/extractor.hpp"
#include "layout/placer.hpp"
#include "layout/router.hpp"
#include "net/builder.hpp"
#include "sta/elmore.hpp"

namespace tka::sta {
namespace {

struct ElmoreSetup {
  std::unique_ptr<net::Netlist> nl;
  layout::Placement placement;
  std::vector<layout::Route> routes;
  layout::ExtractorOptions ex;
  layout::Parasitics par{0};
  std::unique_ptr<DelayModel> model;

  explicit ElmoreSetup(std::unique_ptr<net::Netlist> netlist)
      : nl(std::move(netlist)),
        placement(layout::grid_place(*nl, {})),
        routes(layout::route_all(*nl, placement)) {
    par = layout::extract(*nl, routes, ex);
    model = std::make_unique<DelayModel>(*nl, par);
  }
};

TEST(Elmore, RouterRecordsPerSinkSegments) {
  ElmoreSetup s(net::make_c17());
  for (net::NetId n = 0; n < s.nl->num_nets(); ++n) {
    const layout::Route& r = s.routes[n];
    EXPECT_EQ(r.sinks.size(), s.nl->net(n).fanouts.size());
    // Flat segment list covers exactly the per-sink segments.
    size_t total = 0;
    for (const layout::SinkSegments& sk : r.sinks) total += sk.segments.size();
    if (!r.sinks.empty()) EXPECT_EQ(r.segments.size(), total);
  }
}

TEST(Elmore, DelaysPositiveAndFiniteForAllSinks) {
  ElmoreSetup s(net::make_c17());
  const auto delays = elmore_sink_delays(*s.nl, *s.model, s.routes, s.ex);
  for (net::NetId n = 0; n < s.nl->num_nets(); ++n) {
    EXPECT_EQ(delays[n].size(), s.nl->net(n).fanouts.size());
    for (const SinkDelay& d : delays[n]) {
      EXPECT_GT(d.wire_delay_ns, 0.0);
      EXPECT_LT(d.wire_delay_ns, 10.0);
    }
  }
}

TEST(Elmore, FartherSinkHasLargerDelay) {
  // A fanout-heavy net: the sink with the longest route must have the
  // largest Elmore delay (common term is shared; wire term grows with
  // distance).
  gen::GeneratorParams p;
  p.num_gates = 60;
  p.seed = 23;
  const gen::GeneratedCircuit c = gen::generate_circuit(p);
  const layout::Placement placement = layout::grid_place(*c.netlist, {});
  const auto routes = layout::route_all(*c.netlist, placement);
  layout::ExtractorOptions ex;
  DelayModel model(*c.netlist, c.parasitics);
  const auto delays = elmore_sink_delays(*c.netlist, model, routes, ex);

  // Compare sink pairs with equal pin caps (different sink cells load the
  // wire differently, which can outweigh a short length difference).
  int multi_fanout_checked = 0;
  for (net::NetId n = 0; n < c.netlist->num_nets(); ++n) {
    const auto& sinks = routes[n].sinks;
    for (size_t i = 0; i < sinks.size(); ++i) {
      for (size_t j = 0; j < sinks.size(); ++j) {
        const double cap_i = c.netlist->cell_of(sinks[i].pin.gate).input_cap_pf;
        const double cap_j = c.netlist->cell_of(sinks[j].pin.gate).input_cap_pf;
        if (cap_i != cap_j) continue;
        if (sinks[i].length() > sinks[j].length() + 1.0) {
          EXPECT_GE(delays[n][i].wire_delay_ns, delays[n][j].wire_delay_ns)
              << "net " << n;
          ++multi_fanout_checked;
        }
      }
    }
  }
  EXPECT_GT(multi_fanout_checked, 0);
}

TEST(Elmore, CommonTermDominatedByDriverCharge) {
  // For a single short sink, the Elmore delay is close to Rdrv * Cload.
  ElmoreSetup s(net::make_chain(2));
  const auto delays = elmore_sink_delays(*s.nl, *s.model, s.routes, s.ex);
  const net::NetId pi = s.nl->primary_inputs().front();
  ASSERT_EQ(delays[pi].size(), 1u);
  const double common = s.model->driver_res_kohm(pi) * s.model->net_load_pf(pi);
  EXPECT_GT(delays[pi][0].wire_delay_ns, common);
  EXPECT_LT(delays[pi][0].wire_delay_ns, 1.5 * common + 0.01);
}

TEST(Elmore, WorstSinkSelection) {
  ElmoreSetup s(net::make_c17());
  const auto delays = elmore_sink_delays(*s.nl, *s.model, s.routes, s.ex);
  const std::vector<double> worst = worst_sink_delay(delays, s.nl->num_nets());
  for (net::NetId n = 0; n < s.nl->num_nets(); ++n) {
    double expect = 0.0;
    for (const SinkDelay& d : delays[n]) expect = std::max(expect, d.wire_delay_ns);
    EXPECT_DOUBLE_EQ(worst[n], expect);
  }
}

}  // namespace
}  // namespace tka::sta
