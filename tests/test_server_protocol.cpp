// Tests for the `tka serve` wire layer and serving semantics: frame codec
// round-trips, malformed-frame rejection (including a deterministic fuzz
// sweep), request parsing and typed errors, admission control, graceful
// drain, and the bit-identity contract — N parallel clients must receive
// byte-identical responses to a serial one-shot run of the same queries.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "server/client.hpp"
#include "server/frame.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "session/analysis_session.hpp"
#include "topk/topk_engine.hpp"

namespace tka::server {
namespace {

using test::Fixture;

// ---------------------------------------------------------------- framing

TEST(Frame, RoundTripSingle) {
  const std::string payload = "{\"id\": 1, \"op\": \"ping\"}";
  const std::string framed = encode_frame(payload);
  ASSERT_EQ(framed.size(), payload.size() + 4);

  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  std::string out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.finish(), FrameDecoder::Status::kNeedMore);
}

TEST(Frame, RoundTripManyAndEmpty) {
  const std::vector<std::string> payloads = {"", "a", std::string(4096, 'x'),
                                             "{\"k\": 1}"};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  for (const std::string& p : payloads) {
    std::string out;
    ASSERT_EQ(dec.next(&out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out, p);
  }
  std::string out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore);
}

TEST(Frame, ByteAtATimeDelivery) {
  const std::string payload = "{\"op\": \"list\"}";
  const std::string framed = encode_frame(payload);
  FrameDecoder dec;
  std::string out;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    dec.feed(framed.data() + i, 1);
    if (i + 1 < framed.size()) {
      EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore);
    }
  }
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, payload);
}

TEST(Frame, OversizedPrefixIsError) {
  // Length prefix far beyond the configured maximum.
  const unsigned char bytes[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder dec(1024);
  dec.feed(bytes, 4);
  std::string out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
  EXPECT_NE(dec.error().find("oversized"), std::string::npos);
  // Once broken, stays broken.
  const std::string ok = encode_frame("x");
  dec.feed(ok.data(), ok.size());
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
}

TEST(Frame, TruncatedPayloadAtEofIsError) {
  const std::string framed = encode_frame("hello world");
  FrameDecoder dec;
  dec.feed(framed.data(), framed.size() - 3);  // cut mid-payload
  std::string out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.finish(), FrameDecoder::Status::kError);
  EXPECT_NE(dec.error().find("truncated"), std::string::npos);
}

TEST(Frame, TruncatedPrefixAtEofIsError) {
  const std::string framed = encode_frame("x");
  FrameDecoder dec;
  dec.feed(framed.data(), 2);  // half the length prefix
  EXPECT_EQ(dec.finish(), FrameDecoder::Status::kError);
}

// Deterministic fuzz: random byte streams, random chunking, and corrupted
// valid frames must never crash or hand out a frame that was not sent; the
// decoder must land in kNeedMore (plausible prefix of a huge frame) or
// kError, never an invented payload.
TEST(Frame, FuzzedStreamsNeverCrash) {
  std::mt19937 rng(20260807);
  for (int iter = 0; iter < 500; ++iter) {
    std::string stream;
    const bool start_valid = (rng() % 2) == 0;
    std::string sent;
    if (start_valid) {
      sent.assign(rng() % 64, static_cast<char>('a' + rng() % 26));
      stream = encode_frame(sent);
    }
    const std::size_t junk = rng() % 32;
    for (std::size_t i = 0; i < junk; ++i) {
      stream.push_back(static_cast<char>(rng() % 256));
    }
    FrameDecoder dec(4096);
    std::size_t off = 0;
    std::vector<std::string> got;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng() % 7, stream.size() - off);
      dec.feed(stream.data() + off, n);
      off += n;
      std::string out;
      while (dec.next(&out) == FrameDecoder::Status::kFrame) {
        got.push_back(out);
      }
    }
    dec.finish();
    // The only guaranteed-decodable frame is the valid one at the start.
    if (start_valid) {
      ASSERT_GE(got.size(), 1u) << "iter " << iter;
      EXPECT_EQ(got.front(), sent) << "iter " << iter;
    }
  }
}

// ---------------------------------------------------------------- parsing

TEST(Protocol, ParseRejectsInvalidJson) {
  Request req;
  ErrorCode code;
  std::string msg;
  EXPECT_FALSE(parse_request("not json at all {", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kParseError);
  EXPECT_FALSE(parse_request("", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kParseError);
}

TEST(Protocol, ParseRejectsBadShapes) {
  Request req;
  ErrorCode code;
  std::string msg;
  // Valid JSON, missing/invalid op.
  EXPECT_FALSE(parse_request("{\"id\": 1}", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  EXPECT_FALSE(parse_request("{\"op\": 7}", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // Bad k.
  EXPECT_FALSE(parse_request("{\"op\": \"topk\", \"k\": -2}", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  EXPECT_FALSE(
      parse_request("{\"op\": \"topk\", \"k\": \"five\"}", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // Bad mode.
  EXPECT_FALSE(parse_request("{\"op\": \"topk\", \"mode\": \"sideways\"}", &req,
                             &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // what_if with no edit.
  EXPECT_FALSE(parse_request("{\"op\": \"what_if\"}", &req, &code, &msg));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
}

TEST(Protocol, ParseAcceptsFullWhatIf) {
  Request req;
  ErrorCode code;
  std::string msg;
  ASSERT_TRUE(parse_request(
      "{\"id\": 42, \"op\": \"what_if\", \"design\": \"d\", \"k\": 7, "
      "\"mode\": \"add\", \"zero\": [1, 2], \"shield\": [3], "
      "\"resize\": [{\"gate\": 0, \"cell\": 1}]}",
      &req, &code, &msg))
      << msg;
  EXPECT_EQ(req.id, 42u);
  EXPECT_EQ(req.op, "what_if");
  EXPECT_EQ(req.design, "d");
  EXPECT_EQ(req.k, 7);
  EXPECT_EQ(req.mode, topk::Mode::kAddition);
  ASSERT_EQ(req.edit.zero_couplings.size(), 2u);
  ASSERT_EQ(req.edit.shield_couplings.size(), 1u);
  ASSERT_EQ(req.edit.resizes.size(), 1u);
  EXPECT_EQ(req.edit.resizes[0].cell_index, 1u);
}

TEST(Protocol, ResponseShapes) {
  const std::string err =
      make_error_response(9, ErrorCode::kOverloaded, "queue full");
  EXPECT_NE(err.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(err.find("\"overloaded\""), std::string::npos);
  const std::string ok = make_ok_response(9, 3, "\"pong\": true");
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(ok.find("\"epoch\": 3"), std::string::npos);
}

// ---------------------------------------------------- serving end to end

Fixture server_fixture() {
  Fixture fx = test::make_parallel_chains(4, 4);
  test::couple(fx, "c0_n1", "c1_n1", 0.012);
  test::couple(fx, "c0_n2", "c2_n2", 0.006);
  test::couple(fx, "c0_n3", "c3_n3", 0.003);
  test::couple(fx, "c2_n1", "c3_n1", 0.004);
  test::set_arrival(fx, "c1_in", 0.02, 0.02);
  return fx;
}

topk::TopkOptions fixture_options(const Fixture& fx, int k) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = topk::Mode::kElimination;
  opt.iterative.sta = fx.sta_options();
  return opt;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  int port = 0;
};

LiveServer start_server(const Fixture& fx, const ShardOptions& shard_opt,
                        int k) {
  LiveServer ls;
  ServerOptions opt;
  opt.tcp_port = 0;  // ephemeral
  ls.server = std::make_unique<Server>(opt);
  std::string error;
  EXPECT_TRUE(ls.server->add_design(
      "fx", std::make_unique<net::Netlist>(*fx.netlist),
      layout::Parasitics(fx.parasitics), shard_opt, fixture_options(fx, k),
      &error))
      << error;
  EXPECT_TRUE(ls.server->start(&error)) << error;
  ls.port = ls.server->tcp_port();
  return ls;
}

TEST(Serve, PingListAndUnknownOp) {
  const Fixture fx = server_fixture();
  LiveServer ls = start_server(fx, ShardOptions{}, 3);
  Client c;
  std::string error, resp;
  ASSERT_TRUE(c.connect_tcp("127.0.0.1", ls.port, &error)) << error;

  ASSERT_TRUE(c.call("{\"id\": 1, \"op\": \"ping\"}", &resp, &error)) << error;
  EXPECT_EQ(resp, make_ok_response(1, 0, "\"pong\": true"));

  ASSERT_TRUE(c.call("{\"id\": 2, \"op\": \"list\"}", &resp, &error)) << error;
  EXPECT_NE(resp.find("\"fx\""), std::string::npos);

  ASSERT_TRUE(c.call("{\"id\": 3, \"op\": \"frobnicate\"}", &resp, &error));
  EXPECT_NE(resp.find("\"unknown_op\""), std::string::npos);

  ASSERT_TRUE(c.call("{\"id\": 4, \"op\": \"topk\", \"design\": \"nope\"}",
                     &resp, &error));
  EXPECT_NE(resp.find("\"unknown_design\""), std::string::npos);

  ASSERT_TRUE(c.call("this is not json", &resp, &error));
  EXPECT_NE(resp.find("\"parse_error\""), std::string::npos);
}

// N parallel clients, mixed k — every response must be byte-identical to
// the expected payload computed serially from a local session through the
// same renderer. This is the server's core contract.
TEST(Serve, ParallelClientsBitIdenticalToOneShot) {
  const Fixture fx = server_fixture();
  const std::vector<int> ks = {2, 3};

  std::map<int, std::string> rendered;
  for (int k : ks) {
    session::AnalysisSession local(
        *fx.netlist, fx.parasitics, {},
        session::SessionOptions{.retain_candidates = false});
    topk::TopkOptions opt = fixture_options(fx, k);
    opt.threads = 1;
    const topk::TopkResult res = local.run(opt);
    rendered[k] = render_topk_result(local.netlist(), local.parasitics(), res, k);
  }

  ShardOptions shard_opt;
  shard_opt.workers = 2;
  shard_opt.queue_cap = 64;
  LiveServer ls = start_server(fx, shard_opt, ks[0]);

  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      std::string error, resp;
      if (!client.connect_tcp("127.0.0.1", ls.port, &error)) {
        ++failures[c];
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const int seq = c * kPerClient + i;
        const int k = ks[static_cast<std::size_t>(seq) % ks.size()];
        const std::string req =
            "{\"id\": " + std::to_string(seq) +
            ", \"op\": \"topk\", \"k\": " + std::to_string(k) +
            ", \"mode\": \"elim\"}";
        if (!client.call(req, &resp, &error) ||
            resp != make_ok_response(static_cast<std::uint64_t>(seq), 0,
                                     "\"result\": " + rendered[k])) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

// what_if commits advance the epoch and must match a local warm session
// driven with the same edits; a later read observes the committed state.
TEST(Serve, WhatIfCommitMatchesLocalSession) {
  const Fixture fx = server_fixture();
  const int k = 3;
  LiveServer ls = start_server(fx, ShardOptions{}, k);

  session::AnalysisSession writer(
      *fx.netlist, fx.parasitics, {},
      session::SessionOptions{.retain_candidates = true});
  topk::TopkOptions opt = fixture_options(fx, k);
  opt.threads = 1;
  writer.run(opt);

  Client c;
  std::string error, resp;
  ASSERT_TRUE(c.connect_tcp("127.0.0.1", ls.port, &error)) << error;

  session::WhatIfEdit edit;
  edit.zero_couplings = {0};
  const topk::TopkResult want = writer.what_if(edit);
  ASSERT_TRUE(c.call(
      "{\"id\": 5, \"op\": \"what_if\", \"zero\": [0], \"k\": 3, "
      "\"mode\": \"elim\"}",
      &resp, &error))
      << error;
  EXPECT_EQ(resp, make_ok_response(
                      5, 1,
                      "\"result\": " + render_topk_result(writer.netlist(),
                                                          writer.parasitics(),
                                                          want, k)));

  // A read after the commit serves epoch 1.
  ASSERT_TRUE(c.call("{\"id\": 6, \"op\": \"topk\", \"k\": 3}", &resp, &error));
  EXPECT_NE(resp.find("\"epoch\": 1"), std::string::npos);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);

  // Out-of-range edit ids are a typed bad_request, not an engine crash,
  // and do not advance the epoch.
  ASSERT_TRUE(c.call(
      "{\"id\": 7, \"op\": \"what_if\", \"zero\": [99999]}", &resp, &error));
  EXPECT_NE(resp.find("\"bad_request\""), std::string::npos);
  ASSERT_TRUE(c.call("{\"id\": 8, \"op\": \"topk\", \"k\": 3}", &resp, &error));
  EXPECT_NE(resp.find("\"epoch\": 1"), std::string::npos);
}

// queue_cap = 0 refuses every enqueue: the server must answer with the
// typed `overloaded` error rather than hanging or dropping the frame.
TEST(Serve, OverloadedIsTypedError) {
  const Fixture fx = server_fixture();
  ShardOptions shard_opt;
  shard_opt.queue_cap = 0;
  LiveServer ls = start_server(fx, shard_opt, 2);
  Client c;
  std::string error, resp;
  ASSERT_TRUE(c.connect_tcp("127.0.0.1", ls.port, &error)) << error;
  ASSERT_TRUE(c.call("{\"id\": 1, \"op\": \"topk\", \"k\": 2}", &resp, &error));
  EXPECT_NE(resp.find("\"overloaded\""), std::string::npos);
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
}

// Graceful drain: shutdown completes with clients connected, is idempotent,
// and the listeners stop accepting afterwards.
TEST(Serve, GracefulDrain) {
  const Fixture fx = server_fixture();
  LiveServer ls = start_server(fx, ShardOptions{}, 2);
  Client c;
  std::string error, resp;
  ASSERT_TRUE(c.connect_tcp("127.0.0.1", ls.port, &error)) << error;
  ASSERT_TRUE(c.call("{\"id\": 1, \"op\": \"topk\", \"k\": 2}", &resp, &error));
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);

  ls.server->request_shutdown();
  ls.server->request_shutdown();  // idempotent
  ls.server->wait();
  EXPECT_TRUE(ls.server->draining());

  Client late;
  EXPECT_FALSE(late.connect_tcp("127.0.0.1", ls.port, &error));
}

}  // namespace
}  // namespace tka::server
