// serve_load — service latency and throughput of the `tka serve` path
// (docs/SERVER.md), measured in-process against a real Server over TCP.
//
// Storm cases drive a shared read-only server at 1, 4 and 8 concurrent
// closed-loop clients (plus 16 at scale >= 1); a commit case exercises the
// what_if path (serial epoch advances, then a concurrent read storm at the
// final epoch). Every response the server produces is string-compared
// against the expected payload built locally from the same protocol
// helpers plus a local AnalysisSession — the bit-identity contract
// (protocol.hpp) means a correct server matches byte for byte, at any
// client count. `match` (a gated value) is 1.0 only when every response
// matched.
//
// The scale tier (--scale >= 1) adds `commit_mix`: a committer advances
// the epoch *while* reader storms run. A reader cannot know which epoch
// will answer it, so each response is validated by parsing its epoch
// stamp, checking the stamps a connection observes never go backwards
// (snapshot isolation: the head only advances), and byte-comparing the
// payload against the expected render precomputed for that exact epoch
// from a local warm writer chain. The scale tier has its own committed
// baseline (bench/baselines/scale/) gated with a tight peak-RSS
// threshold — shared COW snapshots are the point of the serving design,
// so the footprint is a first-class result there.
//
// Throughput and latency percentiles are machine- and load-dependent, so
// they land in the telemetry section (Reporter::telemetry): bench_compare
// surfaces them as informational notes, never regressions. The gated
// values are the deterministic ones — match flags, request counts and the
// per-k / per-epoch delays from the local session.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "channel.hpp"
#include "common.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "session/analysis_session.hpp"

using namespace tka;
using bench::Channel;
using bench::channel_options;
using bench::make_channel;

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct StormOutcome {
  long completed = 0;
  long mismatches = 0;
  long transport_failures = 0;
  double elapsed_s = 0.0;
  std::vector<double> lat_s;  // sorted on return

  double qps() const {
    return elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  }
};

/// Drives `clients` closed-loop connections, `per_client` requests each.
/// `request`/`expected` map a global sequence number (deterministic per
/// client: c*per_client + i) to the payload to send and the exact response
/// payload the server must produce.
StormOutcome run_storm(int port, int clients, int per_client,
                       const std::function<std::string(long)>& request,
                       const std::function<std::string(long)>& expected) {
  std::vector<StormOutcome> per(static_cast<std::size_t>(clients));
  const std::int64_t t0 = obs::now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      StormOutcome& st = per[static_cast<std::size_t>(c)];
      server::Client client;
      std::string error;
      if (!client.connect_tcp("127.0.0.1", port, &error)) {
        ++st.transport_failures;
        return;
      }
      for (int i = 0; i < per_client; ++i) {
        const long seq = static_cast<long>(c) * per_client + i;
        const std::int64_t sent = obs::now_ns();
        std::string resp;
        if (!client.call(request(seq), &resp, &error)) {
          ++st.transport_failures;
          return;
        }
        st.lat_s.push_back(obs::ns_to_seconds(obs::now_ns() - sent));
        ++st.completed;
        if (resp != expected(seq)) {
          if (st.mismatches == 0) {
            std::fprintf(stderr,
                         "serve_load: MISMATCH seq %ld\n  got:  %.200s\n"
                         "  want: %.200s\n",
                         seq, resp.c_str(), expected(seq).c_str());
          }
          ++st.mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  StormOutcome merged;
  merged.elapsed_s = obs::ns_to_seconds(obs::now_ns() - t0);
  for (StormOutcome& st : per) {
    merged.completed += st.completed;
    merged.mismatches += st.mismatches;
    merged.transport_failures += st.transport_failures;
    merged.lat_s.insert(merged.lat_s.end(), st.lat_s.begin(), st.lat_s.end());
  }
  std::sort(merged.lat_s.begin(), merged.lat_s.end());
  return merged;
}

std::string topk_request(long seq, int k) {
  return str::format(
      "{\"id\": %ld, \"op\": \"topk\", \"k\": %d, \"mode\": \"elim\"}", seq, k);
}

/// Extracts the epoch stamp from a response payload ("\"epoch\": N");
/// -1 when malformed. The commit_mix readers use it to select which
/// per-epoch expected render a response must match byte for byte.
long parse_epoch(const std::string& resp) {
  const std::string key = "\"epoch\": ";
  const std::size_t pos = resp.find(key);
  if (pos == std::string::npos) return -1;
  std::size_t i = pos + key.size();
  if (i >= resp.size() || resp[i] < '0' || resp[i] > '9') return -1;
  long v = 0;
  for (; i < resp.size() && resp[i] >= '0' && resp[i] <= '9'; ++i) {
    v = v * 10 + (resp[i] - '0');
  }
  return v;
}

/// Serving-side split and snapshot footprint, read from the in-process
/// metrics registry: where an admitted request spends its time (queueing
/// vs executing, cumulative across the suite's cases) and what the
/// snapshot chain costs. Telemetry only — machine-dependent, and zero
/// with TKA_OBS_DISABLED. tools/perf_report renders these as the serving
/// section.
void report_serving_telemetry(bench::Reporter& r) {
  obs::MetricsRegistry& reg = obs::registry();
  r.telemetry("queue_wait_p50_ms",
              reg.histogram("server.queue_wait_s").stats().p50 * 1e3);
  r.telemetry("exec_p50_ms",
              reg.histogram("server.latency.topk_s").stats().p50 * 1e3);
  r.telemetry("snapshots_live", reg.gauge("server.snapshots_live").value());
  r.telemetry("snapshot_bytes_shared",
              reg.gauge("server.snapshot_bytes_shared").value());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "serve_load");
  const bool smoke_sized = bench::scale() == 0;

  // Design and workload sizes. The channel is small enough that a single
  // query is milliseconds — the bench measures serving overhead and queue
  // behavior, not engine throughput on big designs (parallel_scaling owns
  // that).
  const int groups = smoke_sized ? 4 : 8;
  const int chains = smoke_sized ? 3 : 4;
  const int depth = smoke_sized ? 8 : 10;
  const std::vector<int> ks = smoke_sized ? std::vector<int>{3, 5}
                                          : std::vector<int>{4, 8};
  const int per_client = smoke_sized ? 4 : 6;
  const int commits = smoke_sized ? 3 : 5;

  const Channel ch = make_channel(groups, chains, depth);
  const sta::DelayModelOptions model_opt;  // defaults, same as the server's

  // The serving contract fixes query_threads = 1 (concurrency comes from
  // workers, not intra-query threads); the local expected-response sessions
  // pin the same so identity is checked against the exact serving config.
  server::ShardOptions shard_opt;
  shard_opt.workers = 2;
  shard_opt.queue_cap = 64;
  shard_opt.query_threads = 1;

  std::printf("serve_load: channel %dx%dx%d (%zu caps), k in {%d,%d}, "
              "%d requests/client\n",
              groups, chains, depth, ch.parasitics.num_couplings(), ks[0],
              ks[1], per_client);

  // ---- Epoch-0 read storms: one shared server, clients = 1 / 4 / 8 ----
  // Expected responses are computed once from a local session; the request
  // id is the global sequence number, so every expected payload is a pure
  // function of seq.
  std::map<int, std::string> rendered;  // k -> rendered result object
  std::map<int, double> delay_by_k;
  {
    session::AnalysisSession local(*ch.netlist, ch.parasitics, model_opt,
                                   session::SessionOptions{
                                       .retain_candidates = false});
    for (int k : ks) {
      topk::TopkOptions opt = channel_options(ch, k);
      opt.threads = shard_opt.query_threads;
      const topk::TopkResult res = local.run(opt);
      rendered[k] = server::render_topk_result(local.netlist(),
                                               local.parasitics(), res, k);
      delay_by_k[k] = res.evaluated_delay;
    }
  }

  server::ServerOptions srv_opt;
  srv_opt.tcp_port = 0;  // ephemeral: no port collisions across CI jobs
  server::Server srv(srv_opt);
  std::string error;
  if (!srv.add_design("channel", std::make_unique<net::Netlist>(*ch.netlist),
                      layout::Parasitics(ch.parasitics), shard_opt,
                      channel_options(ch, ks[0]), &error) ||
      !srv.start(&error)) {
    std::fprintf(stderr, "serve_load: server setup: %s\n", error.c_str());
    return 1;
  }
  const int port = srv.tcp_port();

  auto storm_request = [&](long seq) {
    return topk_request(seq, ks[static_cast<std::size_t>(seq) % ks.size()]);
  };
  auto storm_expected = [&](long seq) {
    const int k = ks[static_cast<std::size_t>(seq) % ks.size()];
    return server::make_ok_response(static_cast<std::uint64_t>(seq), 0,
                                    "\"result\": " + rendered[k]);
  };

  struct Row {
    std::string name;
    int clients = 0;
    StormOutcome out;
  };
  std::vector<Row> rows;

  const std::vector<int> storm_clients =
      smoke_sized ? std::vector<int>{1, 4, 8} : std::vector<int>{1, 4, 8, 16};
  for (int clients : storm_clients) {
    const std::string name = str::format("storm_c%d", clients);
    Row row{name, clients, {}};
    const bool ran = h.run_case(name, [&](bench::Reporter& r) {
      row.out = run_storm(port, clients, per_client, storm_request,
                          storm_expected);
      const bool clean = row.out.mismatches == 0 &&
                         row.out.transport_failures == 0 &&
                         row.out.completed ==
                             static_cast<long>(clients) * per_client;
      r.value("match", clean ? 1.0 : 0.0);
      r.value("requests", static_cast<double>(row.out.completed));
      for (int k : ks) {
        r.value(str::format("delay_k%d", k), delay_by_k[k]);
      }
      r.telemetry("qps", row.out.qps());
      r.telemetry("p50_ms", percentile(row.out.lat_s, 0.50) * 1e3);
      r.telemetry("p99_ms", percentile(row.out.lat_s, 0.99) * 1e3);
      report_serving_telemetry(r);
    });
    if (ran) rows.push_back(row);
  }
  srv.request_shutdown();
  srv.wait();

  // ---- what_if commit path: serial epoch advances + read storm at the
  // final epoch. A commit mutates the shard, so each rep gets a fresh
  // server; the expected chain comes from a warm local session driven with
  // the same edits (the writer path), the post-edit storm from a fresh
  // local session on the edited design (the replica path).
  Row commit_row{"whatif_commits", 4, {}};
  std::vector<double> commit_lat_ms;
  const bool commit_ran = h.run_case("whatif_commits", [&](bench::Reporter& r) {
    const int kq = ks[0];
    server::Server wsrv(srv_opt);
    std::string err;
    if (!wsrv.add_design("channel", std::make_unique<net::Netlist>(*ch.netlist),
                         layout::Parasitics(ch.parasitics), shard_opt,
                         channel_options(ch, kq), &err) ||
        !wsrv.start(&err)) {
      std::fprintf(stderr, "serve_load: server setup: %s\n", err.c_str());
      r.value("match", 0.0);
      return;
    }

    // The expected writer chain: prime once, then one what_if per edit —
    // exactly what the shard's warm writer session does.
    session::AnalysisSession writer(*ch.netlist, ch.parasitics, model_opt,
                                    session::SessionOptions{
                                        .retain_candidates = true});
    topk::TopkOptions wopt = channel_options(ch, kq);
    wopt.threads = shard_opt.query_threads;
    const topk::TopkResult primed = writer.run(wopt);
    r.value("delay_epoch0", primed.evaluated_delay);

    const std::size_t num_caps = ch.parasitics.num_couplings();
    server::Client client;
    std::string cerr_msg;
    bool clean = client.connect_tcp("127.0.0.1", wsrv.tcp_port(), &cerr_msg);

    commit_lat_ms.clear();
    std::vector<layout::CapId> shielded;
    for (int e = 0; clean && e < commits; ++e) {
      const layout::CapId cap =
          static_cast<layout::CapId>((static_cast<std::size_t>(e) * 7) %
                                     num_caps);
      shielded.push_back(cap);
      session::WhatIfEdit edit;
      edit.shield_couplings = {cap};
      const topk::TopkResult want = writer.what_if(edit);
      const std::string expected = server::make_ok_response(
          static_cast<std::uint64_t>(1000 + e),
          static_cast<std::uint64_t>(e + 1),
          "\"result\": " + server::render_topk_result(
                               writer.netlist(), writer.parasitics(), want,
                               kq));
      const std::string req = str::format(
          "{\"id\": %d, \"op\": \"what_if\", \"shield\": [%u], \"k\": %d, "
          "\"mode\": \"elim\"}",
          1000 + e, static_cast<unsigned>(cap), kq);
      const std::int64_t sent = obs::now_ns();
      std::string resp;
      if (!client.call(req, &resp, &cerr_msg)) {
        clean = false;
        break;
      }
      commit_lat_ms.push_back(obs::ns_to_seconds(obs::now_ns() - sent) * 1e3);
      if (resp != expected) {
        std::fprintf(stderr,
                     "serve_load: commit %d MISMATCH\n  got:  %.200s\n"
                     "  want: %.200s\n",
                     e, resp.c_str(), expected.c_str());
        clean = false;
        break;
      }
      r.value(str::format("delay_epoch%d", e + 1), want.evaluated_delay);
    }
    client.close();

    // Replica-path expectation at the final epoch: base + all edits, fresh
    // one-shot session (what sync_replica builds for readers).
    net::Netlist edited_nl(*ch.netlist);
    layout::Parasitics edited_par(ch.parasitics);
    for (layout::CapId cap : shielded) edited_par.shield_coupling(cap);
    session::AnalysisSession reader(std::move(edited_nl),
                                    std::move(edited_par), model_opt,
                                    session::SessionOptions{
                                        .retain_candidates = false});
    topk::TopkOptions ropt = channel_options(ch, kq);
    ropt.threads = shard_opt.query_threads;
    const topk::TopkResult after = reader.run(ropt);
    const std::string after_rendered = server::render_topk_result(
        reader.netlist(), reader.parasitics(), after, kq);
    r.value("delay_final", after.evaluated_delay);

    commit_row.out = run_storm(
        wsrv.tcp_port(), commit_row.clients, per_client,
        [&](long seq) { return topk_request(seq, kq); },
        [&](long seq) {
          return server::make_ok_response(
              static_cast<std::uint64_t>(seq),
              static_cast<std::uint64_t>(commits),
              "\"result\": " + after_rendered);
        });
    clean = clean && commit_row.out.mismatches == 0 &&
            commit_row.out.transport_failures == 0 &&
            commit_row.out.completed ==
                static_cast<long>(commit_row.clients) * per_client;
    r.value("match", clean ? 1.0 : 0.0);
    r.value("commits", static_cast<double>(commits));
    std::sort(commit_lat_ms.begin(), commit_lat_ms.end());
    r.telemetry("commit_p50_ms", percentile(commit_lat_ms, 0.50));
    r.telemetry("qps", commit_row.out.qps());
    r.telemetry("p50_ms", percentile(commit_row.out.lat_s, 0.50) * 1e3);
    r.telemetry("p99_ms", percentile(commit_row.out.lat_s, 0.99) * 1e3);
    report_serving_telemetry(r);

    wsrv.request_shutdown();
    wsrv.wait();
  });
  if (commit_ran) rows.push_back(commit_row);

  // ---- Scale tier: concurrent commit mix. The committer advances the
  // epoch while the reader storm runs, so a reader cannot predict which
  // epoch answers it — but whatever epoch the server stamps, the payload
  // must be byte-identical to the expected render precomputed for that
  // epoch from a local warm writer chain, and the stamps one connection
  // observes must never go backwards (a closed-loop client's next request
  // pins the head at or past its previous answer's epoch). Readers keep
  // reading until the commits land, so the storm always spans the whole
  // commit window; a read issued after the last commit's response must be
  // stamped with the final epoch (the head never moves again), which makes
  // the end state deterministic even though the interleaving is not.
  if (!smoke_sized) {
    const int mix_commits = 6;
    const int mix_readers = 8;
    const int mix_per_client = 12;  // minimum reads per client
    Row mix_row{"commit_mix", mix_readers, {}};
    const bool mix_ran = h.run_case("commit_mix", [&](bench::Reporter& r) {
      const int kq = ks[0];
      server::Server msrv(srv_opt);
      std::string err;
      if (!msrv.add_design("channel",
                           std::make_unique<net::Netlist>(*ch.netlist),
                           layout::Parasitics(ch.parasitics), shard_opt,
                           channel_options(ch, kq), &err) ||
          !msrv.start(&err)) {
        std::fprintf(stderr, "serve_load: server setup: %s\n", err.c_str());
        r.value("match", 0.0);
        return;
      }

      // Expected "result" fragment per epoch, from the same prime +
      // what_if replay the shard's warm writer performs.
      session::AnalysisSession writer(*ch.netlist, ch.parasitics, model_opt,
                                      session::SessionOptions{
                                          .retain_candidates = true});
      topk::TopkOptions wopt = channel_options(ch, kq);
      wopt.threads = shard_opt.query_threads;
      const topk::TopkResult primed = writer.run(wopt);
      r.value("delay_epoch0", primed.evaluated_delay);
      std::vector<std::string> result_at;  // epoch -> "result" fragment
      result_at.push_back("\"result\": " +
                          server::render_topk_result(writer.netlist(),
                                                     writer.parasitics(),
                                                     primed, kq));
      const std::size_t num_caps = ch.parasitics.num_couplings();
      std::vector<layout::CapId> mix_caps;
      for (int e = 0; e < mix_commits; ++e) {
        const layout::CapId cap = static_cast<layout::CapId>(
            (static_cast<std::size_t>(e) * 11 + 3) % num_caps);
        mix_caps.push_back(cap);
        session::WhatIfEdit edit;
        edit.shield_couplings = {cap};
        const topk::TopkResult want = writer.what_if(edit);
        result_at.push_back("\"result\": " +
                            server::render_topk_result(writer.netlist(),
                                                       writer.parasitics(),
                                                       want, kq));
        r.value(str::format("delay_epoch%d", e + 1), want.evaluated_delay);
      }

      const int mport = msrv.tcp_port();
      std::atomic<long> mismatches{0};
      std::atomic<long> transport{0};
      std::atomic<bool> commits_done{false};
      std::vector<StormOutcome> per(static_cast<std::size_t>(mix_readers));
      std::vector<long> final_epoch(static_cast<std::size_t>(mix_readers), -1);
      std::vector<double> commit_ms;
      const std::int64_t t0 = obs::now_ns();

      std::thread committer([&] {
        server::Client cc;
        std::string cerr_msg;
        bool ok = cc.connect_tcp("127.0.0.1", mport, &cerr_msg);
        for (int e = 0; ok && e < mix_commits; ++e) {
          const std::string req = str::format(
              "{\"id\": %d, \"op\": \"what_if\", \"shield\": [%u], "
              "\"k\": %d, \"mode\": \"elim\"}",
              5000 + e,
              static_cast<unsigned>(mix_caps[static_cast<std::size_t>(e)]),
              kq);
          const std::string expected = server::make_ok_response(
              static_cast<std::uint64_t>(5000 + e),
              static_cast<std::uint64_t>(e + 1),
              result_at[static_cast<std::size_t>(e + 1)]);
          const std::int64_t sent = obs::now_ns();
          std::string resp;
          if (!cc.call(req, &resp, &cerr_msg)) {
            ok = false;
            break;
          }
          commit_ms.push_back(obs::ns_to_seconds(obs::now_ns() - sent) * 1e3);
          if (resp != expected) {
            std::fprintf(stderr,
                         "serve_load: commit_mix commit %d MISMATCH\n"
                         "  got:  %.200s\n  want: %.200s\n",
                         e, resp.c_str(), expected.c_str());
            ++mismatches;
          }
        }
        if (!ok) ++transport;
        // Every commit's response arrived, so every publish happened
        // before this store: a read issued from here on pins the final
        // head and must be stamped mix_commits.
        commits_done.store(true, std::memory_order_release);
      });

      std::vector<std::thread> readers;
      readers.reserve(static_cast<std::size_t>(mix_readers));
      for (int c = 0; c < mix_readers; ++c) {
        readers.emplace_back([&, c] {
          StormOutcome& st = per[static_cast<std::size_t>(c)];
          server::Client client;
          std::string cerr_msg;
          if (!client.connect_tcp("127.0.0.1", mport, &cerr_msg)) {
            ++transport;
            return;
          }
          long last_epoch = 0;
          for (int i = 0;; ++i) {
            const bool done = commits_done.load(std::memory_order_acquire);
            const long seq = 100000 + static_cast<long>(c) * 100000 + i;
            const std::int64_t sent = obs::now_ns();
            std::string resp;
            if (!client.call(topk_request(seq, kq), &resp, &cerr_msg)) {
              ++transport;
              return;
            }
            st.lat_s.push_back(obs::ns_to_seconds(obs::now_ns() - sent));
            ++st.completed;
            const long epoch = parse_epoch(resp);
            const bool in_range = epoch >= last_epoch &&
                                  epoch <= mix_commits &&
                                  (!done || epoch == mix_commits);
            const std::string expected =
                in_range ? server::make_ok_response(
                               static_cast<std::uint64_t>(seq),
                               static_cast<std::uint64_t>(epoch),
                               result_at[static_cast<std::size_t>(epoch)])
                         : std::string();
            if (!in_range || resp != expected) {
              if (mismatches.fetch_add(1) == 0) {
                std::fprintf(stderr,
                             "serve_load: commit_mix read seq %ld MISMATCH "
                             "(epoch %ld, last %ld, done %d)\n"
                             "  got:  %.200s\n",
                             seq, epoch, last_epoch, static_cast<int>(done),
                             resp.c_str());
              }
            }
            last_epoch = epoch < last_epoch ? last_epoch : epoch;
            if (done && i + 1 >= mix_per_client) break;
          }
          final_epoch[static_cast<std::size_t>(c)] = last_epoch;
        });
      }
      committer.join();
      for (std::thread& t : readers) t.join();

      StormOutcome merged;
      merged.elapsed_s = obs::ns_to_seconds(obs::now_ns() - t0);
      for (StormOutcome& st : per) {
        merged.completed += st.completed;
        merged.lat_s.insert(merged.lat_s.end(), st.lat_s.begin(),
                            st.lat_s.end());
      }
      std::sort(merged.lat_s.begin(), merged.lat_s.end());
      merged.mismatches = mismatches.load();
      merged.transport_failures = transport.load();
      mix_row.out = merged;

      // Deterministic end state: every reader's last read ran after the
      // final commit, so it must have been stamped with the final epoch.
      bool converged = true;
      for (long e : final_epoch) converged = converged && e == mix_commits;

      const bool clean =
          converged && merged.mismatches == 0 &&
          merged.transport_failures == 0 &&
          merged.completed >= static_cast<long>(mix_readers) * mix_per_client;
      r.value("match", clean ? 1.0 : 0.0);
      r.value("final_epoch", static_cast<double>(mix_commits));
      r.value("commits", static_cast<double>(mix_commits));
      // The read count depends on how the storm interleaved with the
      // commits (readers run until the commits land), so it is telemetry,
      // not a gated value.
      r.telemetry("requests", static_cast<double>(merged.completed));
      std::sort(commit_ms.begin(), commit_ms.end());
      r.telemetry("commit_p50_ms", percentile(commit_ms, 0.50));
      r.telemetry("qps", merged.qps());
      r.telemetry("p50_ms", percentile(merged.lat_s, 0.50) * 1e3);
      r.telemetry("p99_ms", percentile(merged.lat_s, 0.99) * 1e3);
      report_serving_telemetry(r);

      msrv.request_shutdown();
      msrv.wait();
    });
    if (mix_ran) rows.push_back(mix_row);
  }

  std::printf("\n%-16s %8s %9s %10s %9s %9s %6s\n", "case", "clients",
              "requests", "qps", "p50(ms)", "p99(ms)", "match");
  for (const Row& row : rows) {
    std::printf("%-16s %8d %9ld %10.1f %9.2f %9.2f %6s\n", row.name.c_str(),
                row.clients, row.out.completed, row.out.qps(),
                percentile(row.out.lat_s, 0.50) * 1e3,
                percentile(row.out.lat_s, 0.99) * 1e3,
                row.out.mismatches == 0 && row.out.transport_failures == 0
                    ? "yes"
                    : "NO");
  }
  std::printf("\nExpected: match = yes everywhere (every served response "
              "byte-identical to the\nlocal one-shot expectation); qps "
              "plateaus once clients exceed shard workers.\n");
  std::fflush(stdout);
  return h.finish();
}
