// Ablation: analytic (closed-form) vs simulation-backed (MNA coupled-RC)
// noise-pulse characterization, and the false-aggressor prefilter.
//
// The paper's engineering decision (§2) is to use the linear framework for
// runtime; this bench quantifies what that costs in pulse accuracy on real
// couplings and what the prefilter saves.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "circuit/coupled_rc.hpp"
#include "common.hpp"
#include "noise/aggressor_filter.hpp"
#include "noise/envelope_builder.hpp"

using namespace tka;

int main() {
  bench::obs_begin();
  std::printf("Ablation: coupling calculators and false-aggressor filter\n\n");

  // --- Pulse accuracy: analytic vs MNA on every coupling of i1. ---
  bench::Design d = bench::build_design("i1");
  noise::SimCouplingCalculator sim(*d.circuit.netlist, d.circuit.parasitics,
                                   *d.model);
  const sta::StaResult sta_res =
      sta::run_sta(*d.circuit.netlist, *d.model, d.circuit.sta_options());

  std::vector<double> ratios;
  Timer t_ana;
  double ana_time = 0.0;
  double sim_time = 0.0;
  for (layout::CapId id = 0; id < d.circuit.parasitics.num_couplings(); ++id) {
    const layout::CouplingCap& cc = d.circuit.parasitics.coupling(id);
    const net::NetId victim = cc.net_a;
    const net::NetId agg = cc.net_b;
    const double tr = sta_res.windows[agg].trans_late;
    Timer t;
    const double pa = d.calc->pulse(victim, id, tr).peak;
    ana_time += t.seconds();
    t.reset();
    const double ps = sim.pulse(victim, id, tr).peak;
    sim_time += t.seconds();
    if (ps > 1e-6) ratios.push_back(pa / ps);
  }
  std::sort(ratios.begin(), ratios.end());
  const double med = ratios[ratios.size() / 2];
  std::printf("i1 pulse peaks over %zu couplings: analytic/simulated ratio "
              "median=%.2f p10=%.2f p90=%.2f\n",
              ratios.size(), med, ratios[ratios.size() / 10],
              ratios[9 * ratios.size() / 10]);
  std::printf("characterization time: analytic %.4fs vs MNA %.3fs (%.0fx)\n\n",
              ana_time, sim_time, sim_time / std::max(ana_time, 1e-6));

  // --- False-aggressor filter effect. ---
  for (const char* name : {"i1", "i3", "i5"}) {
    bench::Design dd = bench::build_design(name);
    noise::EnvelopeBuilder builder(
        *dd.circuit.netlist, dd.circuit.parasitics, *dd.calc,
        sta::run_sta(*dd.circuit.netlist, *dd.model, dd.circuit.sta_options())
            .windows);
    // The builder must outlive the filter's window reference; recompute STA
    // windows locally for the report.
    const sta::StaResult sr =
        sta::run_sta(*dd.circuit.netlist, *dd.model, dd.circuit.sta_options());
    noise::EnvelopeBuilder b2(*dd.circuit.netlist, dd.circuit.parasitics,
                              *dd.calc, sr.windows);
    noise::NoiseAnalyzer analyzer(*dd.circuit.netlist, dd.circuit.parasitics,
                                  *dd.model);
    Timer t;
    noise::AggressorFilter filter(*dd.circuit.netlist, dd.circuit.parasitics,
                                  analyzer, b2, {});
    std::printf("%-4s filter: %zu of %zu (victim,cap) sides pruned (%.1f%%) "
                "in %.3fs\n",
                name, filter.num_filtered(), filter.num_sides(),
                100.0 * filter.num_filtered() / filter.num_sides(), t.seconds());

    const int k = 8;
    for (bool use_filter : {true, false}) {
      topk::TopkOptions opt = bench::engine_options(dd, k, topk::Mode::kAddition);
      opt.use_filter = use_filter;
      Timer rt;
      const topk::TopkResult res = dd.engine->run(opt);
      std::printf("  filter=%-3s k=%d: est delay=%.4f runtime=%.3fs sets=%zu\n",
                  use_filter ? "on" : "off", k, res.estimated_delay, rt.seconds(),
                  res.stats.sets_generated);
    }
    std::fflush(stdout);
  }
  // --- Linear vs non-linear victim holder (the paper's future work). ---
  std::printf("\nNon-linear holding device vs linear small-signal model "
              "(coupled-RC template):\n");
  std::printf("%10s %12s %12s %10s\n", "Cc (pF)", "linear (V)", "sq-law (V)",
              "ratio");
  for (double cc : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    circuit::CoupledRcParams p;
    p.cc = cc;
    p.agg_trans = 0.05;
    const double lin = circuit::simulate_noise_pulse(p).peak();
    const double nl = circuit::simulate_noise_pulse_nonlinear(p, 0.5 * p.vdd).peak();
    std::printf("%10.3f %12.4f %12.4f %9.2fx\n", cc, lin, nl, nl / lin);
  }

  std::printf("\nExpected shape: closed-form peaks within ~2x of simulation at "
              ">100x lower cost; the\nfilter prunes a large share of sides "
              "without changing the found delay; the square-law\nholder "
              "matches the linear model for small glitches and exceeds it as "
              "the glitch grows\n(the device weakens off its bias point) — "
              "the accuracy gap motivating ref [9]-style\nnon-linear models.\n");
  bench::obs_finish();
  return 0;
}
