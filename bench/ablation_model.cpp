// Ablation: analytic (closed-form) vs simulation-backed (MNA coupled-RC)
// noise-pulse characterization, and the false-aggressor prefilter.
//
// The paper's engineering decision (§2) is to use the linear framework for
// runtime; this bench quantifies what that costs in pulse accuracy on real
// couplings and what the prefilter saves.
//
// Harness cases: pulse_accuracy (analytic-vs-MNA ratios over every i1
// coupling), filter/<ckt> (prefilter pruning + engine effect), and
// nonlinear_holder (linear vs square-law glitch peaks).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "circuit/coupled_rc.hpp"
#include "common.hpp"
#include "noise/aggressor_filter.hpp"
#include "noise/envelope_builder.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "ablation_model");
  std::printf("Ablation: coupling calculators and false-aggressor filter\n\n");

  // --- Pulse accuracy: analytic vs MNA on every coupling of i1. ---
  {
    bench::Design d = bench::build_design("i1");
    noise::SimCouplingCalculator sim(*d.circuit.netlist, d.circuit.parasitics,
                                     *d.model);
    const sta::StaResult sta_res =
        sta::run_sta(*d.circuit.netlist, *d.model, d.circuit.sta_options());

    std::vector<double> ratios;
    double ana_time = 0.0, sim_time = 0.0;
    const bool ran = h.run_case("pulse_accuracy", [&](bench::Reporter& r) {
      ratios.clear();
      ana_time = sim_time = 0.0;
      for (layout::CapId id = 0; id < d.circuit.parasitics.num_couplings();
           ++id) {
        const layout::CouplingCap& cc = d.circuit.parasitics.coupling(id);
        const net::NetId victim = cc.net_a;
        const net::NetId agg = cc.net_b;
        const double tr = sta_res.windows[agg].trans_late;
        Timer t;
        const double pa = d.calc->pulse(victim, id, tr).peak;
        ana_time += t.seconds();
        t.reset();
        const double ps = sim.pulse(victim, id, tr).peak;
        sim_time += t.seconds();
        if (ps > 1e-6) ratios.push_back(pa / ps);
      }
      std::sort(ratios.begin(), ratios.end());
      r.value("couplings_compared", static_cast<double>(ratios.size()));
      r.value("ratio_median", ratios[ratios.size() / 2]);
      r.value("ratio_p10", ratios[ratios.size() / 10]);
      r.value("ratio_p90", ratios[9 * ratios.size() / 10]);
    });
    if (ran) {
      std::printf("i1 pulse peaks over %zu couplings: analytic/simulated ratio "
                  "median=%.2f p10=%.2f p90=%.2f\n",
                  ratios.size(), ratios[ratios.size() / 2],
                  ratios[ratios.size() / 10], ratios[9 * ratios.size() / 10]);
      std::printf("characterization time: analytic %.4fs vs MNA %.3fs (%.0fx)\n\n",
                  ana_time, sim_time, sim_time / std::max(ana_time, 1e-6));
    }
  }

  // --- False-aggressor filter effect. ---
  const std::vector<std::string> filter_circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i1"}
                          : std::vector<std::string>{"i1", "i3", "i5"};
  for (const std::string& name : filter_circuits) {
    bench::Design dd = bench::build_design(name);
    const sta::StaResult sr =
        sta::run_sta(*dd.circuit.netlist, *dd.model, dd.circuit.sta_options());
    noise::EnvelopeBuilder builder(*dd.circuit.netlist, dd.circuit.parasitics,
                                   *dd.calc, sr.windows);
    noise::NoiseAnalyzer analyzer(*dd.circuit.netlist, dd.circuit.parasitics,
                                  *dd.model);
    const int k = 8;
    size_t filtered = 0, sides = 0;
    double est_on = 0.0, est_off = 0.0;
    const bool ran = h.run_case("filter/" + name, [&](bench::Reporter& r) {
      noise::AggressorFilter filter(*dd.circuit.netlist, dd.circuit.parasitics,
                                    analyzer, builder, {});
      filtered = filter.num_filtered();
      sides = filter.num_sides();
      r.value("sides_pruned", static_cast<double>(filtered));
      r.value("sides_total", static_cast<double>(sides));
      for (bool use_filter : {true, false}) {
        topk::TopkOptions opt =
            bench::engine_options(dd, k, topk::Mode::kAddition);
        opt.use_filter = use_filter;
        const topk::TopkResult res = dd.engine->run(opt);
        (use_filter ? est_on : est_off) = res.estimated_delay;
        r.value(use_filter ? "est_delay_filter_on" : "est_delay_filter_off",
                res.estimated_delay);
      }
    });
    if (!ran) continue;
    std::printf("%-4s filter: %zu of %zu (victim,cap) sides pruned (%.1f%%)\n",
                name.c_str(), filtered, sides, 100.0 * filtered / sides);
    std::printf("  est delay k=%d: filter on %.4f / off %.4f\n", k, est_on,
                est_off);
    std::fflush(stdout);
  }

  // --- Linear vs non-linear victim holder (the paper's future work). ---
  {
    std::vector<std::pair<double, double>> rows;  // (cc, lin), ratio via values
    std::vector<double> ratios;
    const bool ran = h.run_case("nonlinear_holder", [&](bench::Reporter& r) {
      rows.clear();
      ratios.clear();
      for (double cc : {0.005, 0.01, 0.02, 0.04, 0.08}) {
        circuit::CoupledRcParams p;
        p.cc = cc;
        p.agg_trans = 0.05;
        const double lin = circuit::simulate_noise_pulse(p).peak();
        const double nl =
            circuit::simulate_noise_pulse_nonlinear(p, 0.5 * p.vdd).peak();
        rows.emplace_back(cc, lin);
        ratios.push_back(nl / lin);
        r.value(str::format("sqlaw_ratio_cc%g", cc), nl / lin);
      }
    });
    if (ran) {
      std::printf("\nNon-linear holding device vs linear small-signal model "
                  "(coupled-RC template):\n");
      std::printf("%10s %12s %10s\n", "Cc (pF)", "linear (V)", "ratio");
      for (size_t i = 0; i < rows.size(); ++i) {
        std::printf("%10.3f %12.4f %9.2fx\n", rows[i].first, rows[i].second,
                    ratios[i]);
      }
    }
  }

  std::printf("\nExpected shape: closed-form peaks within ~2x of simulation at "
              ">100x lower cost; the\nfilter prunes a large share of sides "
              "without changing the found delay; the square-law\nholder "
              "matches the linear model for small glitches and exceeds it as "
              "the glitch grows\n(the device weakens off its bias point) — "
              "the accuracy gap motivating ref [9]-style\nnon-linear models.\n");
  return h.finish();
}
