// Ablation: value of dominance pruning (paper §3.2).
//
// Runs the addition engine with the Pareto reduction enabled vs disabled.
// With pruning off, only the beam cap contains list growth; on an
// unbounded-beam run the list explosion is visible directly. Dominance is
// exactness-preserving, so the chosen sets should not get better when it
// is disabled.
//
// Harness cases: <ckt>/dominance_{on,off} for the bounded-beam sweep plus
// i1_beam0/dominance_{on,off} for the unbounded demonstration.
#include <cstdio>

#include "common.hpp"

using namespace tka;

namespace {

void run_circuit(bench::Harness& h, const std::string& name, int k, size_t beam,
                 const std::string& case_prefix) {
  bench::Design d = bench::build_design(name);
  for (bool dominance : {true, false}) {
    topk::TopkResult res;
    double delay = 0.0;
    const std::string case_name =
        case_prefix + (dominance ? "/dominance_on" : "/dominance_off");
    const bool ran = h.run_case(case_name, [&](bench::Reporter& r) {
      topk::TopkOptions opt = bench::engine_options(d, k, topk::Mode::kAddition);
      opt.use_dominance = dominance;
      opt.beam_cap = beam;
      res = d.engine->run(opt);
      delay = bench::evaluate(d, res.members, topk::Mode::kAddition);
      r.value("delay", delay);
      r.value("sets_generated", static_cast<double>(res.stats.sets_generated));
      r.value("max_list_size", static_cast<double>(res.stats.max_list_size));
      r.value("pruned_dominated",
              static_cast<double>(res.stats.prune.removed_dominated));
    });
    if (!ran) continue;
    std::printf("%-4s k=%2d beam=%3zu dominance=%-3s | delay=%.4f "
                "sets=%9zu max_list=%6zu pruned_dom=%9zu\n",
                name.c_str(), k, beam, dominance ? "on" : "off", delay,
                res.stats.sets_generated, res.stats.max_list_size,
                res.stats.prune.removed_dominated);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "ablation_dominance");
  std::printf("Ablation: dominance pruning on/off (addition mode)\n\n");
  const int k = bench::scale() == 0 ? 6 : 10;
  const std::vector<std::string> circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i1", "i2"}
                          : std::vector<std::string>{"i1", "i2", "i3"};
  // Bounded beam: dominance halves the candidate generation downstream
  // (compare `sets=`), though with a tight beam the beam alone is already
  // a strong limiter.
  for (const std::string& name : circuits) run_circuit(h, name, k, 24, name);
  // Unbounded beam on the smallest circuit: this is where dominance is
  // structural — without it the lists explode to the emergency cap.
  std::printf("\nUnbounded beam (i1): list growth without dominance\n");
  run_circuit(h, "i1", 3, 0, "i1_beam0");
  std::printf("\nExpected shape: comparable delays; with dominance the "
              "I-lists stay small (paper §3.2),\nwithout it and without a "
              "beam they explode (bounded only by the emergency cap).\n");
  return h.finish();
}
