// Ablation: value of dominance pruning (paper §3.2).
//
// Runs the addition engine with the Pareto reduction enabled vs disabled.
// With pruning off, only the beam cap contains list growth; on an
// unbounded-beam run the list explosion is visible directly. Dominance is
// exactness-preserving, so the chosen sets should not get better when it
// is disabled.
#include <cstdio>

#include "common.hpp"

using namespace tka;

namespace {

void run_circuit(const std::string& name, int k, size_t beam) {
  bench::Design d = bench::build_design(name);
  for (bool dominance : {true, false}) {
    topk::TopkOptions opt = bench::engine_options(d, k, topk::Mode::kAddition);
    opt.use_dominance = dominance;
    opt.beam_cap = beam;
    Timer t;
    const topk::TopkResult res = d.engine->run(opt);
    const double runtime = t.seconds();
    const double delay = bench::evaluate(d, res.members, topk::Mode::kAddition);
    std::printf("%-4s k=%2d beam=%3zu dominance=%-3s | delay=%.4f runtime=%7.3fs "
                "sets=%9zu max_list=%6zu pruned_dom=%9zu\n",
                name.c_str(), k, beam, dominance ? "on" : "off", delay, runtime,
                res.stats.sets_generated, res.stats.max_list_size,
                res.stats.prune.removed_dominated);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  bench::obs_begin();
  std::printf("Ablation: dominance pruning on/off (addition mode)\n\n");
  const int k = bench::scale() == 0 ? 6 : 10;
  // Bounded beam: dominance halves the candidate generation downstream
  // (compare `sets=`), though with a tight beam the beam alone is already
  // a strong limiter.
  for (const char* name : {"i1", "i2", "i3"}) run_circuit(name, k, 24);
  // Unbounded beam on the smallest circuit: this is where dominance is
  // structural — without it the lists explode to the emergency cap.
  std::printf("\nUnbounded beam (i1): list growth without dominance\n");
  run_circuit("i1", 3, 0);
  std::printf("\nExpected shape: comparable delays; with dominance the "
              "I-lists stay small (paper §3.2),\nwithout it and without a "
              "beam they explode (bounded only by the emergency cap).\n");
  bench::obs_finish();
  return 0;
}
