#include "harness/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/signal_flush.hpp"
#include "runtime/runtime.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"
#include "wave/point_store.hpp"

namespace tka::bench {
namespace {

// The live harness, for active_scale(). A bench binary constructs exactly
// one Harness at the top of main, so plain globals suffice.
const Harness* g_active = nullptr;

[[noreturn]] void usage(const std::string& suite, int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: %s [options]\n"
      "  --smoke          smoke tier (scale 0, 1 rep, no warmup)\n"
      "  --scale N        bench scale 0|1|2 (default: TKA_BENCH_SCALE or 1)\n"
      "  --reps N         timed repetitions per case (default 3)\n"
      "  --warmup N       untimed warmup runs per case (default 1)\n"
      "  --threads N      worker threads (default: TKA_THREADS or hardware)\n"
      "  --out FILE       JSON result path (default BENCH_%s.json)\n"
      "  --filter SUBSTR  only run cases whose name contains SUBSTR\n"
      "  --list           print case names, run nothing\n"
      "  --metrics-out FILE    periodic JSONL metric snapshots\n"
      "  --metrics-interval MS snapshot period (default 500)\n"
      "  --help           this text\n",
      suite.c_str(), suite.c_str());
  std::exit(exit_code);
}

int env_scale() {
  const char* env = std::getenv("TKA_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int s = std::atoi(env);
  return s < 0 ? 0 : (s > 2 ? 2 : s);
}

bool parse_int(const char* s, int* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) { return str::format("%.9g", v); }

}  // namespace

void Reporter::value(std::string_view name, double v) {
  for (auto& [k, existing] : values_) {
    if (k == name) {
      existing = v;
      return;
    }
  }
  values_.emplace_back(std::string(name), v);
}

void Reporter::telemetry(std::string_view name, double v) {
  for (auto& [k, existing] : telemetry_) {
    if (k == name) {
      existing = v;
      return;
    }
  }
  telemetry_.emplace_back(std::string(name), v);
}

Harness::Harness(int argc, char* const* argv, std::string suite) {
  config_.suite = std::move(suite);
  config_.scale = env_scale();
  bool reps_given = false;
  bool warmup_given = false;
  bool scale_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
        usage(config_.suite, 2);
      }
      return argv[++i];
    };
    int v = 0;
    if (arg == "--help" || arg == "-h") {
      usage(config_.suite, 0);
    } else if (arg == "--smoke") {
      config_.smoke = true;
    } else if (arg == "--scale") {
      if (!parse_int(next(), &v) || v < 0 || v > 2) usage(config_.suite, 2);
      config_.scale = v;
      scale_given = true;
    } else if (arg == "--reps") {
      if (!parse_int(next(), &v) || v < 1) usage(config_.suite, 2);
      config_.reps = v;
      reps_given = true;
    } else if (arg == "--warmup") {
      if (!parse_int(next(), &v) || v < 0) usage(config_.suite, 2);
      config_.warmup = v;
      warmup_given = true;
    } else if (arg == "--threads") {
      if (!parse_int(next(), &v) || v < 1) usage(config_.suite, 2);
      config_.threads = v;
    } else if (arg == "--out") {
      config_.out_path = next();
    } else if (arg == "--filter") {
      config_.filter = next();
    } else if (arg == "--list") {
      config_.list_only = true;
    } else if (arg == "--metrics-out") {
      config_.metrics_out = next();
    } else if (arg == "--metrics-interval") {
      if (!parse_int(next(), &v) || v < 1) usage(config_.suite, 2);
      config_.metrics_interval_ms = v;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                   std::string(arg).c_str());
      usage(config_.suite, 2);
    }
  }

  if (config_.smoke) {
    if (!scale_given) config_.scale = 0;
    if (!reps_given) config_.reps = 1;
    if (!warmup_given) config_.warmup = 0;
  }
  if (config_.out_path.empty()) {
    config_.out_path = "BENCH_" + config_.suite + ".json";
  }
  if (config_.threads > 0) {
    // Export so every layer (engine sweeps, fixpoints, bench evaluations)
    // resolves the same count without threading an option everywhere.
    setenv("TKA_THREADS", str::format("%d", config_.threads).c_str(), 1);
  }

  if (const char* lvl = std::getenv("TKA_LOG")) {
    log::Level level;
    if (log::parse_level(lvl, &level)) log::set_level(level);
  }
  // Counters are always captured (cheap relaxed atomics); the span tracer
  // only runs when a trace/metrics dump was requested.
  obs::register_core_metrics();
  if (std::getenv("TKA_BENCH_TRACE") != nullptr ||
      std::getenv("TKA_BENCH_METRICS") != nullptr) {
    obs::tracer().enable(true);
  }
  if (!config_.metrics_out.empty() && !config_.list_only) {
    metrics_sink_ = std::make_unique<obs::MetricsFileSink>(
        config_.metrics_out, config_.metrics_interval_ms);
    if (!metrics_sink_->ok()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   config_.metrics_out.c_str());
      std::exit(2);
    }
  }
  // A Ctrl-C mid-suite still flushes the JSONL sink's final record and the
  // trace/metrics dumps — partial observability beats none on a run that
  // took minutes to get where it was.
  if (metrics_sink_ != nullptr || obs::tracer().enabled()) {
    obs::install_signal_flush();
    obs::add_flush_hook([this] {
      if (metrics_sink_) metrics_sink_->stop();
      if (const char* path = std::getenv("TKA_BENCH_TRACE")) {
        std::ofstream tout(path);
        if (tout) obs::tracer().write_chrome_json(tout);
      }
      if (const char* path = std::getenv("TKA_BENCH_METRICS")) {
        std::ofstream mout(path);
        if (mout) {
          obs::run_collectors();
          obs::write_metrics_json(mout);
        }
      }
    });
  }
  g_active = this;
}

int Harness::threads() const { return runtime::resolve_threads(config_.threads); }

bool Harness::run_case(const std::string& name,
                       const std::function<void(Reporter&)>& fn) {
  if (!config_.filter.empty() && name.find(config_.filter) == std::string::npos) {
    return false;
  }
  if (config_.list_only) {
    listed_.push_back(name);
    std::printf("%s\n", name.c_str());
    return false;
  }

  CaseResult result;
  result.name = name;
  for (int w = 0; w < config_.warmup; ++w) {
    Reporter scratch;
    fn(scratch);
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.reps));
  Reporter reporter;
  for (int r = 0; r < config_.reps; ++r) {
    const obs::MetricsSnapshot before = obs::registry().snapshot();
    const std::vector<runtime::LaneCounters> lanes_before =
        runtime::lane_snapshot();
    Timer t;
    {
#if TKA_OBS_ENABLED
      // Book the whole timed rep as exec on the calling lane so even
      // suites that never fan out (pure-serial kernels) report per-thread
      // utilization. Nested pool scopes still attribute exactly: a
      // parallel_for barrier inside the rep books barrier-wait, not exec
      // (LaneSlot::push credits the enclosing phase).
      runtime::telemetry::LaneSlot& lane =
          runtime::telemetry::this_lane(/*worker=*/false);
      runtime::telemetry::PhaseScope exec(lane,
                                          runtime::telemetry::Phase::kExec);
      lane.tasks.fetch_add(1, std::memory_order_relaxed);
#endif
      fn(reporter);
    }
    samples.push_back(t.seconds());
    const obs::MetricsSnapshot delta =
        obs::counters_delta(before, obs::registry().snapshot());
    // Keep the last rep's increments: with any warmup they are the
    // steady-state (caches hot) counts; zero-delta names are dropped.
    result.counters.clear();
    for (const auto& [cname, cdelta] : delta.counters) {
      if (cdelta > 0) result.counters.emplace(cname, cdelta);
    }
    // Per-thread attribution over the same rep. Lanes that did nothing
    // (threads of an earlier, larger pool; long-dead workers) are dropped.
    result.lanes.clear();
    const std::vector<runtime::LaneCounters> lane_d =
        runtime::lane_delta(lanes_before, runtime::lane_snapshot());
    for (std::size_t li = 0; li < lane_d.size(); ++li) {
      const runtime::LaneCounters& l = lane_d[li];
      if (l.exec_ns + l.queue_idle_ns + l.barrier_wait_ns == 0) continue;
      LaneUsage u;
      u.lane = static_cast<int>(li);
      u.worker = l.worker;
      u.exec_s = obs::ns_to_seconds(static_cast<std::int64_t>(l.exec_ns));
      u.exec_cpu_s =
          obs::ns_to_seconds(static_cast<std::int64_t>(l.exec_cpu_ns));
      u.queue_idle_s =
          obs::ns_to_seconds(static_cast<std::int64_t>(l.queue_idle_ns));
      u.barrier_wait_s =
          obs::ns_to_seconds(static_cast<std::int64_t>(l.barrier_wait_ns));
      u.wall_s = obs::ns_to_seconds(static_cast<std::int64_t>(l.wall_ns));
      u.utilization = u.wall_s > 0.0 ? u.exec_s / u.wall_s : 0.0;
      u.tasks = l.tasks;
      u.steals = l.steals;
      result.lanes.push_back(u);
    }
  }
  // RSS readings stay available even with TKA_OBS_DISABLED (plain /proc
  // reads); VmHWM is the kernel-maintained process peak.
  result.rss_bytes = obs::current_rss_bytes();
  result.peak_rss_bytes = obs::peak_rss_bytes();
  {
    const wave::pool::Stats pstats = wave::pool::stats();
    result.wave_pool_bytes = pstats.live_bytes + pstats.cached_bytes;
  }
  result.time = summarize_samples(std::move(samples));
  result.values = std::move(reporter.values_);
  result.telemetry = std::move(reporter.telemetry_);
  results_.push_back(std::move(result));
  return true;
}

std::string render_bench_json(const HarnessConfig& config,
                              const std::vector<CaseResult>& results) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
  out << "  \"suite\": \"" << json_escape(config.suite) << "\",\n";
  out << "  \"config\": {\n";
  out << "    \"smoke\": " << (config.smoke ? "true" : "false") << ",\n";
  out << "    \"scale\": " << config.scale << ",\n";
  out << "    \"reps\": " << config.reps << ",\n";
  out << "    \"warmup\": " << config.warmup << ",\n";
  out << "    \"threads\": " << runtime::resolve_threads(config.threads) << ",\n";
  out << "    \"obs_enabled\": " << (TKA_OBS_ENABLED ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"benchmarks\": [";
  bool first_case = true;
  for (const CaseResult& r : results) {
    out << (first_case ? "\n" : ",\n");
    first_case = false;
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"time_s\": {\"reps\": " << r.time.reps
        << ", \"median\": " << num(r.time.median) << ", \"p10\": "
        << num(r.time.p10) << ", \"p90\": " << num(r.time.p90)
        << ", \"min\": " << num(r.time.min) << ", \"max\": " << num(r.time.max)
        << ", \"mean\": " << num(r.time.mean) << "},\n";
    out << "      \"values\": {";
    bool first = true;
    for (const auto& [name, v] : r.values) {
      out << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << num(v);
      first = false;
    }
    out << "},\n      \"telemetry\": {";
    first = true;
    for (const auto& [name, v] : r.telemetry) {
      out << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << num(v);
      first = false;
    }
    out << "},\n      \"counters\": {";
    first = true;
    for (const auto& [name, v] : r.counters) {
      out << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << v;
      first = false;
    }
    out << "},\n      \"memory\": {\"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"rss_bytes\": " << r.rss_bytes
        << ", \"wave_pool_bytes\": " << r.wave_pool_bytes << "},\n";
    out << "      \"lanes\": [";
    first = true;
    for (const LaneUsage& l : r.lanes) {
      out << (first ? "" : ", ") << "{\"lane\": " << l.lane << ", \"worker\": "
          << (l.worker ? "true" : "false") << ", \"exec_s\": " << num(l.exec_s)
          << ", \"exec_cpu_s\": " << num(l.exec_cpu_s)
          << ", \"queue_idle_s\": " << num(l.queue_idle_s)
          << ", \"barrier_wait_s\": " << num(l.barrier_wait_s)
          << ", \"wall_s\": " << num(l.wall_s)
          << ", \"utilization\": " << num(l.utilization)
          << ", \"tasks\": " << l.tasks << ", \"steals\": " << l.steals
          << "}";
      first = false;
    }
    out << "]\n    }";
  }
  out << (first_case ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

int Harness::finish() {
  if (finished_) return 0;
  finished_ = true;
  g_active = nullptr;
  if (config_.list_only) return 0;

  std::printf("\n-- %s: %zu case%s, median over %d rep%s (threads=%d, "
              "scale=%d%s) --\n",
              config_.suite.c_str(), results_.size(),
              results_.size() == 1 ? "" : "s", config_.reps,
              config_.reps == 1 ? "" : "s", threads(), config_.scale,
              config_.smoke ? ", smoke" : "");
  for (const CaseResult& r : results_) {
    std::printf("  %-28s %10.4fs  [p10 %.4f, p90 %.4f]\n", r.name.c_str(),
                r.time.median, r.time.p10, r.time.p90);
  }
  if (!results_.empty() && results_.back().peak_rss_bytes > 0) {
    std::printf("  peak rss: %.1f MiB\n",
                static_cast<double>(results_.back().peak_rss_bytes) /
                    (1024.0 * 1024.0));
  }

  std::ofstream out(config_.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config_.out_path.c_str());
    return 1;
  }
  out << render_bench_json(config_, results_);
  out.close();
  std::fprintf(stderr, "wrote %s\n", config_.out_path.c_str());

  if (const char* path = std::getenv("TKA_BENCH_TRACE")) {
    std::ofstream tout(path);
    if (tout) {
      obs::tracer().write_chrome_json(tout);
      std::fprintf(stderr, "wrote trace %s\n", path);
    }
  }
  if (const char* path = std::getenv("TKA_BENCH_METRICS")) {
    std::ofstream mout(path);
    if (mout) {
      // Refresh derived gauges (runtime.*, mem.rss*) before the dump.
      obs::run_collectors();
      obs::write_metrics_json(mout);
      std::fprintf(stderr, "wrote metrics %s\n", path);
    }
  }
  if (metrics_sink_ != nullptr) {
    metrics_sink_->stop();  // writes the final JSONL record
    std::fprintf(stderr, "wrote metrics snapshots %s (%llu records)\n",
                 config_.metrics_out.c_str(),
                 static_cast<unsigned long long>(metrics_sink_->records()));
  }
  return 0;
}

int active_scale() {
  if (g_active != nullptr) return g_active->scale();
  return env_scale();
}

}  // namespace tka::bench
