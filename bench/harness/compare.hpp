// Regression comparison between two BENCH_*.json documents (a committed
// baseline vs a fresh run). Library form of tools/bench_compare so tests
// can drive it directly.
//
// Per-metric-class relative thresholds; a negative threshold disables the
// class entirely:
//   time      fail when candidate median exceeds baseline median by more
//             than `time_threshold` (relative; speedups always pass)
//   values    fail when a value drifts from the baseline by more than
//             `value_threshold` in either direction (results are
//             deterministic; any drift is a behavior change)
//   counters  fail when a counter grows by more than `counter_threshold`
//             (relative; decreases — less work — always pass)
//   memory    fail when memory.peak_rss_bytes grows by more than
//             `memory_threshold` (relative; decreases always pass). The
//             default is loose — RSS depends on allocator and machine —
//             but catches footprint blowups. A candidate without a
//             positive peak (non-Linux build) only rates a note.
// A benchmark present in the baseline but missing from the candidate is a
// regression (coverage loss); extra candidate benchmarks are noted only.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"

namespace tka::bench {

struct CompareOptions {
  double time_threshold = 0.15;
  double value_threshold = 1e-6;
  double counter_threshold = 0.10;
  double memory_threshold = 0.35;
};

struct CompareResult {
  /// Hard errors (unreadable file, schema mismatch, different suites or
  /// scales). When set, the comparison did not run; exit code 2.
  std::string error;
  int benchmarks_compared = 0;
  int metrics_compared = 0;
  std::vector<std::string> regressions;
  std::vector<std::string> notes;

  bool usable() const { return error.empty(); }
  bool ok() const { return usable() && regressions.empty(); }
};

/// Compares two parsed BENCH documents.
CompareResult compare_bench_documents(const json::Value& base,
                                      const json::Value& candidate,
                                      const CompareOptions& opt);

/// Loads, compares and reports `base_path` vs `candidate_path`, writing a
/// human-readable report to `out`. Returns the process exit code:
/// 0 = no regression, 1 = regression, 2 = unusable input.
int compare_bench_files(const std::string& base_path,
                        const std::string& candidate_path,
                        const CompareOptions& opt, std::ostream& out);

}  // namespace tka::bench
