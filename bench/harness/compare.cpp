#include "harness/compare.hpp"

#include <cmath>
#include <ostream>

#include "harness/harness.hpp"
#include "util/string_util.hpp"

namespace tka::bench {
namespace {

const json::Value* find_benchmark(const json::Value& doc, const std::string& name) {
  const json::Value* arr = doc.find("benchmarks");
  if (arr == nullptr || !arr->is_array()) return nullptr;
  for (const json::Value& b : arr->array) {
    const json::Value* n = b.find("name");
    if (n != nullptr && n->is_string() && n->string == name) return &b;
  }
  return nullptr;
}

/// Relative growth of `cand` over `base`, guarding tiny baselines.
double rel_increase(double base, double cand) {
  const double denom = std::max(std::abs(base), 1e-12);
  return (cand - base) / denom;
}

void compare_one(const std::string& name, const json::Value& base,
                 const json::Value& cand, const CompareOptions& opt,
                 CompareResult* result) {
  // --- time ---
  if (opt.time_threshold >= 0.0) {
    const json::Value* bt = base.find("time_s");
    const json::Value* ct = cand.find("time_s");
    if (bt != nullptr && ct != nullptr) {
      const double bm = bt->number_or("median", 0.0);
      const double cm = ct->number_or("median", 0.0);
      if (bm > 0.0) {
        ++result->metrics_compared;
        const double rel = rel_increase(bm, cm);
        if (rel > opt.time_threshold) {
          result->regressions.push_back(str::format(
              "%s: time_s.median %.6g -> %.6g (+%.1f%%, threshold +%.1f%%)",
              name.c_str(), bm, cm, 100.0 * rel, 100.0 * opt.time_threshold));
        }
      }
    }
  }

  // --- values ---
  if (opt.value_threshold >= 0.0) {
    const json::Value* bv = base.find("values");
    const json::Value* cv = cand.find("values");
    if (bv != nullptr && bv->is_object()) {
      for (const auto& [key, bval] : bv->object) {
        if (!bval.is_number()) continue;
        const json::Value* cval = cv != nullptr ? cv->find(key) : nullptr;
        if (cval == nullptr || !cval->is_number()) {
          result->regressions.push_back(str::format(
              "%s: value '%s' missing from candidate", name.c_str(), key.c_str()));
          continue;
        }
        ++result->metrics_compared;
        const double drift = std::abs(rel_increase(bval.number, cval->number));
        if (drift > opt.value_threshold) {
          result->regressions.push_back(str::format(
              "%s: value '%s' %.9g -> %.9g (drift %.3g, threshold %.3g)",
              name.c_str(), key.c_str(), bval.number, cval->number, drift,
              opt.value_threshold));
        }
      }
    }
  }

  // --- telemetry (notes only) ---
  // Runtime observations (qps, latency percentiles) are machine- and
  // load-dependent; surface the comparison for a human but never gate.
  {
    const json::Value* bt = base.find("telemetry");
    const json::Value* ct = cand.find("telemetry");
    if (bt != nullptr && bt->is_object()) {
      for (const auto& [key, bval] : bt->object) {
        if (!bval.is_number()) continue;
        const json::Value* cval = ct != nullptr ? ct->find(key) : nullptr;
        if (cval == nullptr || !cval->is_number()) continue;
        const double rel = rel_increase(bval.number, cval->number);
        result->notes.push_back(str::format(
            "%s: telemetry '%s' %.6g -> %.6g (%+.1f%%, informational)",
            name.c_str(), key.c_str(), bval.number, cval->number,
            100.0 * rel));
      }
    }
  }

  // --- counters ---
  if (opt.counter_threshold >= 0.0) {
    const json::Value* bc = base.find("counters");
    const json::Value* cc = cand.find("counters");
    const bool base_has = bc != nullptr && bc->is_object() && !bc->object.empty();
    const bool cand_has = cc != nullptr && cc->is_object() && !cc->object.empty();
    if (base_has && !cand_has) {
      // An obs-disabled build records no counters at all; that is a build
      // configuration difference, not a perf regression.
      result->notes.push_back(name + ": candidate has no counters, skipping");
    } else if (base_has) {
      for (const auto& [key, bval] : bc->object) {
        if (!bval.is_number()) continue;
        const double cval = cc->number_or(key, 0.0);
        ++result->metrics_compared;
        const double rel = rel_increase(bval.number, cval);
        if (rel > opt.counter_threshold) {
          result->regressions.push_back(str::format(
              "%s: counter '%s' %.0f -> %.0f (+%.1f%%, threshold +%.1f%%)",
              name.c_str(), key.c_str(), bval.number, cval, 100.0 * rel,
              100.0 * opt.counter_threshold));
        }
      }
    }
  }

  // --- memory ---
  if (opt.memory_threshold >= 0.0) {
    const json::Value* bm = base.find("memory");
    const json::Value* cm = cand.find("memory");
    const double bpeak = bm != nullptr ? bm->number_or("peak_rss_bytes", 0.0) : 0.0;
    if (bpeak > 0.0) {
      const double cpeak =
          cm != nullptr ? cm->number_or("peak_rss_bytes", 0.0) : 0.0;
      if (cpeak <= 0.0) {
        // RSS readings come from /proc; a platform without them is a build
        // environment difference, not a footprint regression.
        result->notes.push_back(name +
                                ": candidate has no peak_rss_bytes, skipping");
      } else {
        ++result->metrics_compared;
        const double rel = rel_increase(bpeak, cpeak);
        if (rel > opt.memory_threshold) {
          result->regressions.push_back(str::format(
              "%s: memory.peak_rss_bytes %.0f -> %.0f (+%.1f%%, threshold "
              "+%.1f%%)",
              name.c_str(), bpeak, cpeak, 100.0 * rel,
              100.0 * opt.memory_threshold));
        }
      }
    }
  }
}

}  // namespace

CompareResult compare_bench_documents(const json::Value& base,
                                      const json::Value& candidate,
                                      const CompareOptions& opt) {
  CompareResult result;

  const double base_schema = base.number_or("schema_version", -1.0);
  const double cand_schema = candidate.number_or("schema_version", -1.0);
  if (base_schema != kBenchSchemaVersion || cand_schema != kBenchSchemaVersion) {
    result.error = str::format(
        "schema_version mismatch: baseline %g, candidate %g, tool expects %d",
        base_schema, cand_schema, kBenchSchemaVersion);
    return result;
  }

  const json::Value* bs = base.find("suite");
  const json::Value* cs = candidate.find("suite");
  if (bs == nullptr || cs == nullptr || !bs->is_string() || !cs->is_string() ||
      bs->string != cs->string) {
    result.error = "suite mismatch: these files are from different benchmarks";
    return result;
  }

  // Different scales (or smoke vs full) time different workloads; comparing
  // them is a usage error. Thread counts may differ on purpose (the CI
  // scaling check), so that only rates a note.
  const json::Value* bcfg = base.find("config");
  const json::Value* ccfg = candidate.find("config");
  if (bcfg != nullptr && ccfg != nullptr) {
    if (bcfg->number_or("scale", -1.0) != ccfg->number_or("scale", -1.0)) {
      result.error = "config.scale mismatch: runs measured different workloads";
      return result;
    }
    const double bt = bcfg->number_or("threads", -1.0);
    const double ct = ccfg->number_or("threads", -1.0);
    if (bt != ct) {
      result.notes.push_back(
          str::format("thread counts differ (%g vs %g); values must still "
                      "match (bit-identical contract), counters and times "
                      "may not",
                      bt, ct));
    }
  }

  const json::Value* barr = base.find("benchmarks");
  if (barr == nullptr || !barr->is_array()) {
    result.error = "baseline has no benchmarks array";
    return result;
  }
  for (const json::Value& b : barr->array) {
    const json::Value* n = b.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const json::Value* c = find_benchmark(candidate, n->string);
    if (c == nullptr) {
      result.regressions.push_back(n->string +
                                   ": missing from candidate (coverage loss)");
      continue;
    }
    ++result.benchmarks_compared;
    compare_one(n->string, b, *c, opt, &result);
  }
  const json::Value* carr = candidate.find("benchmarks");
  if (carr != nullptr && carr->is_array()) {
    for (const json::Value& c : carr->array) {
      const json::Value* n = c.find("name");
      if (n != nullptr && n->is_string() &&
          find_benchmark(base, n->string) == nullptr) {
        result.notes.push_back(n->string + ": new in candidate (no baseline)");
      }
    }
  }
  return result;
}

int compare_bench_files(const std::string& base_path,
                        const std::string& candidate_path,
                        const CompareOptions& opt, std::ostream& out) {
  json::Value base, candidate;
  std::string error;
  if (!json::parse_file(base_path, &base, &error)) {
    out << "bench_compare: " << error << "\n";
    return 2;
  }
  if (!json::parse_file(candidate_path, &candidate, &error)) {
    out << "bench_compare: " << error << "\n";
    return 2;
  }
  const CompareResult result = compare_bench_documents(base, candidate, opt);
  if (!result.usable()) {
    out << "bench_compare: " << result.error << "\n";
    return 2;
  }
  for (const std::string& note : result.notes) out << "note: " << note << "\n";
  for (const std::string& reg : result.regressions) {
    out << "REGRESSION: " << reg << "\n";
  }
  out << "bench_compare: " << base_path << " vs " << candidate_path << ": "
      << result.benchmarks_compared << " benchmarks, "
      << result.metrics_compared << " metrics compared, "
      << result.regressions.size() << " regression"
      << (result.regressions.size() == 1 ? "" : "s") << "\n";
  return result.ok() ? 0 : 1;
}

}  // namespace tka::bench
