// The benchmark harness: one object per bench binary (= one *suite*) that
// owns CLI parsing, the warmup/repetition loop, per-rep timing, metric
// counter capture, and the machine-readable BENCH_<suite>.json emission.
//
// Usage in a bench main:
//
//   int main(int argc, char** argv) {
//     bench::Harness h(argc, argv, "table2_addition");
//     for (const std::string& name : bench::suite_circuits()) {
//       Design d = build_design(name);          // setup, untimed
//       h.run_case(name, [&](bench::Reporter& r) {
//         ... timed work ...
//         r.value("delay_k5", delay);           // deterministic results
//       });
//       ... print the human-readable table row ...
//     }
//     return h.finish();                        // writes the JSON
//   }
//
// Common flags (every suite accepts them):
//   --smoke            smoke tier: scale 0, reps 1, warmup 0 (each still
//                      overridable by an explicit --scale/--reps/--warmup)
//   --scale N          0 quick / 1 default / 2 full (default: TKA_BENCH_SCALE)
//   --reps N           timed repetitions per case (default 3; smoke 1)
//   --warmup N         untimed warmup runs per case (default 1; smoke 0)
//   --threads N        worker threads (exports TKA_THREADS so every layer
//                      resolves the same count; 1 = exact serial)
//   --out FILE         result path (default BENCH_<suite>.json in the cwd)
//   --filter SUBSTR    only run cases whose name contains SUBSTR
//   --list             print case names without running them
// Environment: TKA_BENCH_SCALE, TKA_THREADS, TKA_LOG, TKA_BENCH_TRACE,
// TKA_BENCH_METRICS keep working exactly as before (flags win over env).
//
// The JSON schema is versioned (kBenchSchemaVersion) and documented
// field-by-field in docs/BENCHMARKING.md; tools/bench_compare diffs two
// such files and gates on regressions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/stats.hpp"

namespace tka::bench {

/// Version of the BENCH_*.json layout. Bump on any incompatible change
/// and document the migration in docs/BENCHMARKING.md.
inline constexpr int kBenchSchemaVersion = 1;

/// Parsed harness configuration (CLI flags over environment defaults).
struct HarnessConfig {
  std::string suite;
  int scale = 1;
  bool smoke = false;
  int reps = 3;
  int warmup = 1;
  int threads = 0;  ///< 0 = TKA_THREADS / hardware; >0 explicit
  std::string out_path;
  std::string filter;
  bool list_only = false;
};

/// Handed to the case body each repetition; collects named scalar results
/// (delays, set sizes, speedups...). Values land in the JSON and are
/// diffed by bench_compare with a tight threshold, so report only
/// deterministic quantities — never wall-clock readings (the harness
/// times the body itself).
class Reporter {
 public:
  /// Records `name` = `v` for the current case (last write wins, both
  /// within a rep and across reps).
  void value(std::string_view name, double v);

 private:
  friend class Harness;
  std::vector<std::pair<std::string, double>> values_;
};

/// One case's outcome: timing summary over the reps, reported values, and
/// the metric-counter increments observed during the last timed rep.
struct CaseResult {
  std::string name;
  TimeStats time;
  std::vector<std::pair<std::string, double>> values;
  std::map<std::string, std::uint64_t> counters;
};

class Harness {
 public:
  /// Parses flags (printing usage and exiting on `--help` or bad input),
  /// applies TKA_LOG, arms the tracer when TKA_BENCH_TRACE/_METRICS are
  /// set, and exports `--threads` via TKA_THREADS.
  Harness(int argc, char* const* argv, std::string suite);

  const HarnessConfig& config() const { return config_; }

  /// Bench scale for sizing work (0/1/2). Free-standing bench::scale()
  /// (common.hpp) reports the same value once a Harness exists.
  int scale() const { return config_.scale; }

  /// The resolved worker count case bodies should pass to engine options
  /// (0 means "library default", which the harness already pinned via
  /// TKA_THREADS when --threads was given).
  int threads() const;

  /// Runs one case: `warmup` untimed runs, then `reps` timed runs with
  /// metric snapshots around each. Skipped silently when the name fails
  /// --filter; only recorded when --list is active. Returns true when the
  /// body actually ran (so callers know whether their captured locals
  /// hold results to print).
  bool run_case(const std::string& name, const std::function<void(Reporter&)>& fn);

  /// Completed case results so far (filter-passing, non-list runs only).
  const std::vector<CaseResult>& results() const { return results_; }

  /// Writes the JSON document (and any TKA_BENCH_TRACE/_METRICS files),
  /// prints the per-case summary, and returns the process exit code.
  int finish();

 private:
  HarnessConfig config_;
  std::vector<CaseResult> results_;
  std::vector<std::string> listed_;
  bool finished_ = false;
};

/// Writes `results` as a schema-versioned BENCH JSON document. Exposed
/// separately so tests can exercise the writer without a Harness.
std::string render_bench_json(const HarnessConfig& config,
                              const std::vector<CaseResult>& results);

/// Currently-active scale: the live Harness's --scale/--smoke if one
/// exists, else TKA_BENCH_SCALE, else 1. Clamped to [0, 2].
int active_scale();

}  // namespace tka::bench
