// The benchmark harness: one object per bench binary (= one *suite*) that
// owns CLI parsing, the warmup/repetition loop, per-rep timing, metric
// counter capture, and the machine-readable BENCH_<suite>.json emission.
//
// Usage in a bench main:
//
//   int main(int argc, char** argv) {
//     bench::Harness h(argc, argv, "table2_addition");
//     for (const std::string& name : bench::suite_circuits()) {
//       Design d = build_design(name);          // setup, untimed
//       h.run_case(name, [&](bench::Reporter& r) {
//         ... timed work ...
//         r.value("delay_k5", delay);           // deterministic results
//       });
//       ... print the human-readable table row ...
//     }
//     return h.finish();                        // writes the JSON
//   }
//
// Common flags (every suite accepts them):
//   --smoke            smoke tier: scale 0, reps 1, warmup 0 (each still
//                      overridable by an explicit --scale/--reps/--warmup)
//   --scale N          0 quick / 1 default / 2 full (default: TKA_BENCH_SCALE)
//   --reps N           timed repetitions per case (default 3; smoke 1)
//   --warmup N         untimed warmup runs per case (default 1; smoke 0)
//   --threads N        worker threads (exports TKA_THREADS so every layer
//                      resolves the same count; 1 = exact serial)
//   --out FILE         result path (default BENCH_<suite>.json in the cwd)
//   --filter SUBSTR    only run cases whose name contains SUBSTR
//   --list             print case names without running them
//   --metrics-out FILE periodic JSONL metric snapshots (docs/OBSERVABILITY.md)
//   --metrics-interval MS
//                      snapshot period for --metrics-out (default 500)
// Environment: TKA_BENCH_SCALE, TKA_THREADS, TKA_LOG, TKA_BENCH_TRACE,
// TKA_BENCH_METRICS keep working exactly as before (flags win over env).
//
// The JSON schema is versioned (kBenchSchemaVersion) and documented
// field-by-field in docs/BENCHMARKING.md; tools/bench_compare diffs two
// such files and gates on regressions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/stats.hpp"
#include "obs/export.hpp"

namespace tka::bench {

/// Version of the BENCH_*.json layout. Bump on any incompatible change
/// and document the migration in docs/BENCHMARKING.md.
inline constexpr int kBenchSchemaVersion = 1;

/// Parsed harness configuration (CLI flags over environment defaults).
struct HarnessConfig {
  std::string suite;
  int scale = 1;
  bool smoke = false;
  int reps = 3;
  int warmup = 1;
  int threads = 0;  ///< 0 = TKA_THREADS / hardware; >0 explicit
  std::string out_path;
  std::string filter;
  bool list_only = false;
  std::string metrics_out;        ///< JSONL snapshot sink path ("" = off)
  int metrics_interval_ms = 500;  ///< snapshot period for metrics_out
};

/// Handed to the case body each repetition; collects named scalar results
/// (delays, set sizes, speedups...). Values land in the JSON and are
/// diffed by bench_compare with a tight threshold, so report only
/// deterministic quantities — never wall-clock readings (the harness
/// times the body itself).
class Reporter {
 public:
  /// Records `name` = `v` for the current case (last write wins, both
  /// within a rep and across reps).
  void value(std::string_view name, double v);

  /// Records a *nondeterministic* runtime observation (throughput, latency
  /// percentiles...) for the current case. Telemetry lands in its own JSON
  /// section and is reported by bench_compare as informational notes only —
  /// never a regression — so suites measuring service behavior (qps, p99)
  /// can record it without tripping the tight `values` gate.
  void telemetry(std::string_view name, double v);

 private:
  friend class Harness;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, double>> telemetry_;
};

/// One execution lane's activity during a case's last timed rep (from
/// runtime::lane_delta; empty with TKA_OBS_DISABLED). `utilization` is
/// exec_s / wall_s over the rep.
struct LaneUsage {
  int lane = 0;
  bool worker = false;
  double exec_s = 0.0;
  /// CPU time actually consumed during exec segments; exec_s - exec_cpu_s
  /// is the involuntary stall (runnable but preempted) — the signature of
  /// more threads than cores.
  double exec_cpu_s = 0.0;
  double queue_idle_s = 0.0;
  double barrier_wait_s = 0.0;
  double wall_s = 0.0;
  double utilization = 0.0;
  std::uint64_t tasks = 0;
  /// Task-graph tasks this lane stole from another lane's deque. Zero on
  /// static parallel_for work; informational (never gated — steal counts
  /// depend on thread count and timing).
  std::uint64_t steals = 0;
};

/// One case's outcome: timing summary over the reps, reported values, the
/// metric-counter increments observed during the last timed rep, plus
/// memory (RSS) readings and per-lane runtime attribution. `counters` and
/// `values` stay bit-identical across thread counts and obs configurations;
/// the memory and lane fields are environment-dependent telemetry and are
/// gated loosely (or skipped) by bench_compare.
struct CaseResult {
  std::string name;
  TimeStats time;
  std::vector<std::pair<std::string, double>> values;
  /// Nondeterministic observations (Reporter::telemetry); notes-only in
  /// bench_compare.
  std::vector<std::pair<std::string, double>> telemetry;
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t peak_rss_bytes = 0;  ///< process VmHWM after the case
  std::uint64_t rss_bytes = 0;       ///< process VmRSS after the case
  /// wave point-pool occupancy (live + free-list bytes) after the case;
  /// additive field, absent from pre-pool BENCH files.
  std::uint64_t wave_pool_bytes = 0;
  std::vector<LaneUsage> lanes;
};

class Harness {
 public:
  /// Parses flags (printing usage and exiting on `--help` or bad input),
  /// applies TKA_LOG, arms the tracer when TKA_BENCH_TRACE/_METRICS are
  /// set, and exports `--threads` via TKA_THREADS.
  Harness(int argc, char* const* argv, std::string suite);

  const HarnessConfig& config() const { return config_; }

  /// Bench scale for sizing work (0/1/2). Free-standing bench::scale()
  /// (common.hpp) reports the same value once a Harness exists.
  int scale() const { return config_.scale; }

  /// The resolved worker count case bodies should pass to engine options
  /// (0 means "library default", which the harness already pinned via
  /// TKA_THREADS when --threads was given).
  int threads() const;

  /// Runs one case: `warmup` untimed runs, then `reps` timed runs with
  /// metric snapshots around each. Skipped silently when the name fails
  /// --filter; only recorded when --list is active. Returns true when the
  /// body actually ran (so callers know whether their captured locals
  /// hold results to print).
  bool run_case(const std::string& name, const std::function<void(Reporter&)>& fn);

  /// Completed case results so far (filter-passing, non-list runs only).
  const std::vector<CaseResult>& results() const { return results_; }

  /// Writes the JSON document (and any TKA_BENCH_TRACE/_METRICS files),
  /// prints the per-case summary, and returns the process exit code.
  int finish();

 private:
  HarnessConfig config_;
  std::vector<CaseResult> results_;
  std::vector<std::string> listed_;
  std::unique_ptr<obs::MetricsFileSink> metrics_sink_;  // --metrics-out
  bool finished_ = false;
};

/// Writes `results` as a schema-versioned BENCH JSON document. Exposed
/// separately so tests can exercise the writer without a Harness.
std::string render_bench_json(const HarnessConfig& config,
                              const std::vector<CaseResult>& results);

/// Currently-active scale: the live Harness's --scale/--smoke if one
/// exists, else TKA_BENCH_SCALE, else 1. Clamped to [0, 2].
int active_scale();

}  // namespace tka::bench
