// The BENCH_*.json reader. The parser itself lives in util/json.hpp (it is
// shared with the analysis server's wire protocol and perf tooling); this
// header keeps the historical tka::bench::json spelling alive for the bench
// tools and tests.
#pragma once

#include "util/json.hpp"

namespace tka::bench {
namespace json = tka::util::json;
}  // namespace tka::bench
