// Repetition statistics for the benchmark harness: quantiles over the
// per-rep wall-clock samples. Header-only so tools and tests can use the
// same math without linking the harness runtime.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace tka::bench {

/// Summary of one benchmark's timed repetitions, in seconds.
struct TimeStats {
  std::size_t reps = 0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Quantile `q` in [0, 1] of an ascending-sorted sample vector, by linear
/// interpolation between closest ranks: rank = q * (n - 1). This is the
/// common "type 7" estimator (numpy default); q = 0.5 is the textbook
/// median for both odd and even n.
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

/// Full summary of a sample vector (unsorted input; copied internally).
inline TimeStats summarize_samples(std::vector<double> samples) {
  TimeStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.reps = samples.size();
  s.median = quantile_sorted(samples, 0.5);
  s.p10 = quantile_sorted(samples, 0.10);
  s.p90 = quantile_sorted(samples, 0.90);
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

}  // namespace tka::bench
