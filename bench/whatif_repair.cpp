// What-if repair loop: incremental session queries vs cold re-runs.
//
// The workload is the noise-repair loop a router or ECO flow runs: analyze,
// fix the worst coupling the report names (decouple it), re-analyze, repeat.
// The circuit models the setting that loop lives in — a routing channel of
// parallel buffer chains, segmented into independent groups (separate
// routing regions): chains couple to their neighbors within a group, never
// across groups. A repair therefore perturbs one group's cone while every
// other group's windows are bit-for-bit unchanged — the locality the
// session's change-driven invalidation exists to exploit. Each case plays
// the same N-step loop twice on identical designs —
//
//   cold:    a fresh TopkEngine::run after every edit (the pre-session
//            workflow: everything recomputed from scratch), and
//   session: one priming AnalysisSession::run, then one what_if per edit
//            (baseline refreshed incrementally, only the edit group's
//            victims re-enumerated).
//
// The two paths must agree bit-for-bit at every step (`match` = 1); the
// reported delays come from the session path and gate the regression
// baseline. The per-query speedup (cold run time / what_if time, priming
// excluded on the session side) is printed and summarized in
// `query_speedup`; only the deterministic values and counters gate.
#include <cstdio>
#include <memory>
#include <string>

#include "channel.hpp"
#include "common.hpp"
#include "session/analysis_session.hpp"

using namespace tka;
using bench::Channel;
using bench::channel_options;
using bench::make_channel;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "whatif_repair");
  const int k = bench::scale() == 0 ? 6 : 10;
  const int steps = bench::scale() == 0 ? 5 : 8;
  struct Spec {
    std::string name;
    int groups, chains, depth;
  };
  const std::vector<Spec> specs =
      bench::scale() == 0
          ? std::vector<Spec>{{"chan8x4", 8, 4, 10}, {"chan12x4", 12, 4, 12}}
          : std::vector<Spec>{{"chan8x4", 8, 4, 10},
                              {"chan12x4", 12, 4, 12},
                              {"chan16x5", 16, 5, 14},
                              {"chan24x5", 24, 5, 16}};

  std::printf("What-if repair loop: %d decoupling steps, top-%d elimination "
              "per step\n", steps, k);

  struct Row {
    std::string name;
    double cold_s, warm_s, speedup;
    bool all_match;
  };
  std::vector<Row> rows;

  for (const Spec& spec : specs) {
    Row row{spec.name, 0.0, 0.0, 0.0, true};
    const bool ran = h.run_case(spec.name, [&](bench::Reporter& r) {
      // Cold path: the engine mutates nothing, so one design serves all
      // steps — each edit lands in the parasitics, each run() recomputes
      // the world from scratch.
      Channel cold = make_channel(spec.groups, spec.chains, spec.depth);
      sta::DelayModel cold_model(*cold.netlist, cold.parasitics);
      noise::AnalyticCouplingCalculator cold_calc(cold.parasitics, cold_model);
      topk::TopkEngine engine(*cold.netlist, cold.parasitics, cold_model,
                              cold_calc);
      const topk::TopkOptions opt = channel_options(cold, k);

      Timer cold_timer;
      std::vector<topk::TopkResult> cold_res;
      cold_res.push_back(engine.run(opt));
      for (int s = 0; s < steps; ++s) {
        cold.parasitics.zero_coupling(cold_res.back().members.front());
        cold_res.push_back(engine.run(opt));
      }
      row.cold_s = cold_timer.seconds();

      // Session path: same spec, private editable copies, one priming run;
      // only the what_if queries are timed against the cold re-runs.
      Channel base = make_channel(spec.groups, spec.chains, spec.depth);
      const topk::TopkOptions sopt = channel_options(base, k);
      session::AnalysisSession session(*base.netlist, base.parasitics, {});
      std::vector<topk::TopkResult> warm_res;
      warm_res.push_back(session.run(sopt));
      Timer warm_timer;
      for (int s = 0; s < steps; ++s) {
        session::WhatIfEdit edit;
        edit.zero_couplings = {warm_res.back().members.front()};
        warm_res.push_back(session.what_if(edit));
      }
      row.warm_s = warm_timer.seconds();
      // Per-query comparison: N what_if queries vs N cold re-runs (the
      // first cold run is the shared starting point both paths pay once).
      const double cold_requery_s = row.cold_s * steps / (steps + 1);
      row.speedup = row.warm_s > 0.0 ? cold_requery_s / row.warm_s : 0.0;

      // Identity gate: the warm trajectory must be the cold one, exactly.
      row.all_match = true;
      for (int s = 0; s <= steps; ++s) {
        row.all_match = row.all_match &&
                        warm_res[s].members == cold_res[s].members &&
                        warm_res[s].evaluated_delay == cold_res[s].evaluated_delay;
      }
      r.value("match", row.all_match ? 1.0 : 0.0);
      for (int s = 0; s <= steps; ++s) {
        r.value(str::format("delay_step%d", s), warm_res[s].evaluated_delay);
      }
      r.value("repaired_delta",
              warm_res.front().evaluated_delay - warm_res.back().evaluated_delay);
    });
    if (ran) rows.push_back(row);
  }

  std::printf("\n%10s %12s %12s %10s %7s\n", "ckt", "cold(s)", "session(s)",
              "speedup", "match");
  for (const Row& row : rows) {
    std::printf("%10s %12.3f %12.3f %9.1fx %7s\n", row.name.c_str(),
                row.cold_s, row.warm_s, row.speedup, row.all_match ? "yes" : "NO");
  }
  std::printf("\nExpected: what_if >= 5x over a cold re-run on the smoke "
              "circuits (a repair\nperturbs one channel group of many), "
              "match = yes everywhere (bit-identical\ncontract).\n");
  std::fflush(stdout);
  return h.finish();
}
