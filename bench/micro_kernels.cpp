// Micro kernels for the computational primitives: PWL algebra, envelope
// construction, delay-noise superposition, dominance checks, LU solve and
// the coupled-RC characterization.
//
// Each case runs a fixed iteration count per timed rep (so medians are
// comparable across runs and tiers) and folds every result into a
// checksum reported as a value — which both defeats dead-code elimination
// and gives bench_compare a deterministic output to diff.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "circuit/coupled_rc.hpp"
#include "common.hpp"
#include "noise/noise_analyzer.hpp"
#include "topk/dominance.hpp"
#include "topk/sig_table.hpp"
#include "util/rng.hpp"
#include "wave/envelope.hpp"
#include "wave/pulse.hpp"
#include "wave/ramp.hpp"

namespace {

using namespace tka;

wave::Pwl random_envelope(Rng& rng) {
  wave::PulseShape s{rng.next_double(0.05, 0.4), rng.next_double(0.02, 0.2),
                     rng.next_double(0.05, 0.5)};
  const double eat = rng.next_double(0.0, 2.0);
  return wave::make_trapezoidal_envelope(s, eat, eat + rng.next_double(0.0, 1.5));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "micro_kernels");
  std::printf("Micro kernels (fixed iteration counts per rep)\n");

  h.run_case("pwl_plus", [](bench::Reporter& r) {
    Rng rng(1);
    const wave::Pwl a = random_envelope(rng);
    const wave::Pwl b = random_envelope(rng);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += a.plus(b).peak();
    r.value("checksum", sum);
  });

  h.run_case("pwl_minus", [](bench::Reporter& r) {
    Rng rng(21);
    const wave::Pwl a = random_envelope(rng);
    const wave::Pwl b = random_envelope(rng);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += a.minus(b).peak();
    r.value("checksum", sum);
  });

  // Fold 32 envelopes one plus() at a time: the left operand grows, so the
  // merge sweep runs at the sizes the engine actually sees when building
  // candidate envelopes incrementally.
  h.run_case("pwl_plus_chain/32", [](bench::Reporter& r) {
    Rng rng(22);
    std::vector<wave::Pwl> envs;
    for (int i = 0; i < 32; ++i) envs.push_back(random_envelope(rng));
    double sum = 0.0;
    for (int i = 0; i < 500; ++i) {
      wave::Pwl acc = envs[0];
      for (int j = 1; j < 32; ++j) acc = acc.plus(envs[j]);
      sum += acc.peak();
    }
    r.value("checksum", sum);
  });

  h.run_case("pwl_clamp", [](bench::Reporter& r) {
    Rng rng(23);
    const wave::Pwl a = random_envelope(rng);
    const wave::Pwl b = random_envelope(rng);
    const wave::Pwl big = a.plus(b);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += big.clamped(0.05, 0.3).peak();
    r.value("checksum", sum);
  });

  for (const int n : {4, 16, 64}) {
    h.run_case(str::format("pwl_sum_many/%d", n), [n](bench::Reporter& r) {
      Rng rng(2);
      std::vector<wave::Pwl> envs;
      std::vector<const wave::Pwl*> terms;
      for (int i = 0; i < n; ++i) envs.push_back(random_envelope(rng));
      for (const wave::Pwl& e : envs) terms.push_back(&e);
      double sum = 0.0;
      for (int i = 0; i < 2000; ++i) sum += wave::Pwl::sum(terms).peak();
      r.value("checksum", sum);
    });
  }

  h.run_case("pwl_upper_envelope", [](bench::Reporter& r) {
    Rng rng(3);
    const wave::Pwl a = random_envelope(rng);
    const wave::Pwl b = random_envelope(rng);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += a.upper_envelope(b).peak();
    r.value("checksum", sum);
  });

  h.run_case("pwl_simplify", [](bench::Reporter& r) {
    Rng rng(4);
    std::vector<wave::Pwl> envs;
    std::vector<const wave::Pwl*> terms;
    for (int i = 0; i < 32; ++i) envs.push_back(random_envelope(rng));
    for (const wave::Pwl& e : envs) terms.push_back(&e);
    const wave::Pwl big = wave::Pwl::sum(terms);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
      sum += static_cast<double>(big.simplified(1e-3).size());
    }
    r.value("checksum", sum);
  });

  h.run_case("trapezoidal_envelope", [](bench::Reporter& r) {
    const wave::PulseShape s{0.3, 0.05, 0.2};
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i) {
      sum += wave::make_trapezoidal_envelope(s, 1.0, 2.5).peak();
    }
    r.value("checksum", sum);
  });

  h.run_case("delay_noise", [](bench::Reporter& r) {
    Rng rng(5);
    const wave::Pwl vic = wave::make_rising_ramp(2.0, 0.1, 1.2);
    const wave::Pwl env = random_envelope(rng);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += noise::delay_noise(vic, env, 1.2, 2.0);
    r.value("checksum", sum);
  });

  h.run_case("dominance_check", [](bench::Reporter& r) {
    Rng rng(6);
    const wave::Pwl a = random_envelope(rng);
    const wave::Pwl b = random_envelope(rng);
    const wave::DominanceInterval iv{0.0, 6.0};
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += wave::dominates(a, b, iv) ? 1 : 0;
    r.value("checksum", static_cast<double>(hits));
  });

  // Linear encapsulation co-walk on many-breakpoint envelopes (the sizes
  // dominance checks see after candidate envelopes have been summed up).
  h.run_case("pwl_encapsulates", [](bench::Reporter& r) {
    Rng rng(24);
    std::vector<wave::Pwl> envs;
    std::vector<const wave::Pwl*> terms;
    for (int i = 0; i < 16; ++i) envs.push_back(random_envelope(rng));
    for (const wave::Pwl& e : envs) terms.push_back(&e);
    const wave::Pwl big_a = wave::Pwl::sum(terms);
    const wave::Pwl big_b = big_a.scaled(0.98).shifted(0.01);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      hits += big_a.encapsulates(big_b, 0.0, 6.0, 1e-6) ? 1 : 0;
    }
    r.value("checksum", static_cast<double>(hits));
  });

  for (const int n : {16, 64, 256}) {
    h.run_case(str::format("prune_dominated/%d", n), [n](bench::Reporter& r) {
      Rng rng(7);
      const wave::DominanceInterval iv{0.0, 6.0};
      std::vector<topk::CandidateSet> base;
      for (int i = 0; i < n; ++i) {
        topk::CandidateSet s;
        s.members = {static_cast<layout::CapId>(i)};
        s.envelope = random_envelope(rng);
        s.score = rng.next_double();
        base.push_back(std::move(s));
      }
      const int iters = 4096 / n;
      double survivors = 0.0;
      for (int i = 0; i < iters; ++i) {
        std::vector<topk::CandidateSet> work = base;
        topk::prune_dominated(work, iv, 1e-9, nullptr);
        survivors += static_cast<double>(work.size());
      }
      r.value("checksum", survivors);
    });
  }

  // Same workload with signatures attached up front, the way CandidateStage
  // delivers sets to the prune: measures the pre-filtered path the engine
  // takes (prune_dominated/* above pays the in-call signature backfill).
  h.run_case("prune_dominated_presig/256", [](bench::Reporter& r) {
    Rng rng(7);
    const wave::DominanceInterval iv{0.0, 6.0};
    std::vector<topk::CandidateSet> base;
    for (int i = 0; i < 256; ++i) {
      topk::CandidateSet s;
      s.members = {static_cast<layout::CapId>(i)};
      s.envelope = random_envelope(rng);
      s.score = rng.next_double();
      s.sig = wave::make_signature(s.envelope, iv);
      base.push_back(std::move(s));
    }
    double survivors = 0.0;
    for (int i = 0; i < 16; ++i) {
      std::vector<topk::CandidateSet> work = base;
      topk::prune_dominated(work, iv, 1e-9, nullptr);
      survivors += static_cast<double>(work.size());
    }
    r.value("checksum", survivors);
  });

  // Packed-column signature sweep at engine scale: one prepared candidate
  // against a 4096-entry SoA table per iteration. Isolates the SigTable
  // compare kernel (no sort, no envelope co-walk) the prune's hot loop
  // runs per candidate.
  h.run_case("prune_dominated_soa/4096", [](bench::Reporter& r) {
    Rng rng(9);
    const wave::DominanceInterval iv{0.0, 6.0};
    topk::SigTable table;
    table.reserve(4096);
    std::vector<wave::EnvelopeSignature> cands;
    for (int i = 0; i < 4096; ++i) {
      table.push_back(wave::make_signature(random_envelope(rng), iv));
    }
    for (int i = 0; i < 64; ++i) {
      cands.push_back(wave::make_signature(random_envelope(rng), iv));
    }
    std::vector<std::uint8_t> flags(table.size());
    double rejects = 0.0;
    for (int i = 0; i < 200; ++i) {
      const wave::EnvelopeSignature& cand = cands[i % cands.size()];
      table.rejects_batch(cand, 1e-9, flags.data());
      for (std::uint8_t f : flags) rejects += f;
    }
    r.value("checksum", rejects);
  });

  // Allocation churn across the small-buffer spill boundary: build and
  // drop waveforms of 4..64 points, the construct/destroy pattern the
  // candidate stage runs per generated set. Times the storage layer —
  // inline buffer, pool hit path, block recycling — rather than the
  // merge arithmetic.
  h.run_case("pwl_alloc_churn", [](bench::Reporter& r) {
    Rng rng(10);
    std::vector<wave::Point> pts;
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i) {
      const int n = 4 + static_cast<int>(rng.next_double(0.0, 60.0));
      pts.clear();
      double t = 0.0;
      for (int j = 0; j < n; ++j) {
        t += 0.01 + rng.next_double(0.0, 0.1);
        pts.push_back({t, rng.next_double()});
      }
      const wave::Pwl w(pts);
      sum += w.peak() + static_cast<double>(w.size());
    }
    r.value("checksum", sum);
  });

  for (const size_t n : {6u, 12u, 24u}) {
    h.run_case(str::format("lu_solve/%zu", n), [n](bench::Reporter& r) {
      Rng rng(8);
      circuit::Matrix m(n, n);
      for (size_t row = 0; row < n; ++row) {
        for (size_t c = 0; c < n; ++c) m.at(row, c) = rng.next_double(-1.0, 1.0);
        m.at(row, row) += 5.0;
      }
      const std::vector<double> b(n, 1.0);
      const int iters = static_cast<int>(12000 / n);
      double sum = 0.0;
      for (int i = 0; i < iters; ++i) {
        circuit::LuSolver lu(m);
        sum += lu.solve(b)[0];
      }
      r.value("checksum", sum);
    });
  }

  h.run_case("coupled_rc_characterization", [](bench::Reporter& r) {
    circuit::CoupledRcParams p;
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) {
      sum += circuit::characterize_noise_pulse(p).peak;
    }
    r.value("checksum", sum);
  });

  return h.finish();
}
