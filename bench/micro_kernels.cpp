// google-benchmark micro kernels for the computational primitives: PWL
// algebra, envelope construction, delay-noise superposition, dominance
// checks, LU solve and the transient step.
#include <benchmark/benchmark.h>

#include "circuit/coupled_rc.hpp"
#include "circuit/transient.hpp"
#include "noise/noise_analyzer.hpp"
#include "topk/dominance.hpp"
#include "util/rng.hpp"
#include "wave/envelope.hpp"
#include "wave/pulse.hpp"
#include "wave/ramp.hpp"

namespace {

using namespace tka;

wave::Pwl random_envelope(Rng& rng) {
  wave::PulseShape s{rng.next_double(0.05, 0.4), rng.next_double(0.02, 0.2),
                     rng.next_double(0.05, 0.5)};
  const double eat = rng.next_double(0.0, 2.0);
  return wave::make_trapezoidal_envelope(s, eat, eat + rng.next_double(0.0, 1.5));
}

void BM_PwlPlus(benchmark::State& state) {
  Rng rng(1);
  wave::Pwl a = random_envelope(rng);
  wave::Pwl b = random_envelope(rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.plus(b));
}
BENCHMARK(BM_PwlPlus);

void BM_PwlSumMany(benchmark::State& state) {
  Rng rng(2);
  std::vector<wave::Pwl> envs;
  std::vector<const wave::Pwl*> terms;
  for (int i = 0; i < state.range(0); ++i) envs.push_back(random_envelope(rng));
  for (const wave::Pwl& e : envs) terms.push_back(&e);
  for (auto _ : state) benchmark::DoNotOptimize(wave::Pwl::sum(terms));
}
BENCHMARK(BM_PwlSumMany)->Arg(4)->Arg(16)->Arg(64);

void BM_PwlUpperEnvelope(benchmark::State& state) {
  Rng rng(3);
  wave::Pwl a = random_envelope(rng);
  wave::Pwl b = random_envelope(rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.upper_envelope(b));
}
BENCHMARK(BM_PwlUpperEnvelope);

void BM_PwlSimplify(benchmark::State& state) {
  Rng rng(4);
  std::vector<const wave::Pwl*> terms;
  std::vector<wave::Pwl> envs;
  for (int i = 0; i < 32; ++i) envs.push_back(random_envelope(rng));
  for (const wave::Pwl& e : envs) terms.push_back(&e);
  const wave::Pwl big = wave::Pwl::sum(terms);
  for (auto _ : state) benchmark::DoNotOptimize(big.simplified(1e-3));
}
BENCHMARK(BM_PwlSimplify);

void BM_TrapezoidalEnvelope(benchmark::State& state) {
  wave::PulseShape s{0.3, 0.05, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wave::make_trapezoidal_envelope(s, 1.0, 2.5));
  }
}
BENCHMARK(BM_TrapezoidalEnvelope);

void BM_DelayNoise(benchmark::State& state) {
  Rng rng(5);
  const wave::Pwl vic = wave::make_rising_ramp(2.0, 0.1, 1.2);
  const wave::Pwl env = random_envelope(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise::delay_noise(vic, env, 1.2, 2.0));
  }
}
BENCHMARK(BM_DelayNoise);

void BM_DominanceCheck(benchmark::State& state) {
  Rng rng(6);
  const wave::Pwl a = random_envelope(rng);
  const wave::Pwl b = random_envelope(rng);
  const wave::DominanceInterval iv{0.0, 6.0};
  for (auto _ : state) benchmark::DoNotOptimize(wave::dominates(a, b, iv));
}
BENCHMARK(BM_DominanceCheck);

void BM_PruneDominated(benchmark::State& state) {
  Rng rng(7);
  const wave::DominanceInterval iv{0.0, 6.0};
  std::vector<topk::CandidateSet> base;
  for (int i = 0; i < state.range(0); ++i) {
    topk::CandidateSet s;
    s.members = {static_cast<layout::CapId>(i)};
    s.envelope = random_envelope(rng);
    s.score = rng.next_double();
    base.push_back(std::move(s));
  }
  for (auto _ : state) {
    std::vector<topk::CandidateSet> work = base;
    topk::prune_dominated(work, iv, 1e-9, nullptr);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_PruneDominated)->Arg(16)->Arg(64)->Arg(256);

void BM_LuSolve(benchmark::State& state) {
  Rng rng(8);
  const size_t n = static_cast<size_t>(state.range(0));
  circuit::Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m.at(r, c) = rng.next_double(-1.0, 1.0);
    m.at(r, r) += 5.0;
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    circuit::LuSolver lu(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(6)->Arg(12)->Arg(24);

void BM_CoupledRcCharacterization(benchmark::State& state) {
  circuit::CoupledRcParams p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::characterize_noise_pulse(p));
  }
}
BENCHMARK(BM_CoupledRcCharacterization);

}  // namespace

BENCHMARK_MAIN();
