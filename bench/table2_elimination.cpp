// Reproduces the paper's Table 2 *elimination* experiment: for each
// benchmark circuit, the circuit delay after fixing (removing) the top-k
// aggressor elimination set, plus the algorithm runtime, for k = 5..50.
//
// Semantics note (see DESIGN.md §3): elimination starts from the
// all-aggressor delay and falls toward the no-aggressor delay as k grows —
// matching the numbers the paper prints under its "(a)" label (the two
// table captions in the paper are swapped).
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main() {
  bench::obs_begin();
  const std::vector<int> ks = bench::suite_k_columns();
  const int max_k = bench::suite_max_k();

  std::printf("Table 2 (elimination): circuit delay after fixing the top-k "
              "elimination set\n\n");
  std::printf("%-4s %6s %6s %6s | %9s", "ckt", "gates", "nets", "ccaps",
              "all agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf(" %9s | runtime(s):", "no agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf("\n");

  for (const std::string& name : bench::suite_circuits()) {
    bench::Design d = bench::build_design(name);
    topk::TopkOptions opt =
        bench::engine_options(d, max_k, topk::Mode::kElimination);
    const topk::TopkResult res = d.engine->run(opt);

    std::printf("%-4s %6zu %6zu %6zu | %9.4f", name.c_str(),
                d.circuit.netlist->num_gates(), d.circuit.netlist->num_nets(),
                d.circuit.parasitics.num_couplings(), res.baseline_delay);
    double running = res.baseline_delay;
    for (int k : ks) {
      running = bench::evaluate_at_k(d, res, k, topk::Mode::kElimination, running);
      std::printf(" %10.4f", running);
    }
    std::printf(" %9.4f |            ", res.reference_delay);
    for (int k : ks) {
      std::printf(" %10.3f", res.stats.runtime_by_k[static_cast<size_t>(k) - 1]);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): delay falls from the all-aggressor "
              "baseline toward the no-aggressor\ndelay as k grows; fixing the "
              "first few couplings buys the largest improvement.\n");
  bench::obs_finish();
  return 0;
}
