// Reproduces the paper's Table 2 *elimination* experiment: for each
// benchmark circuit, the circuit delay after fixing (removing) the top-k
// aggressor elimination set, plus the algorithm runtime, for k = 5..50.
//
// Semantics note (see DESIGN.md §3): elimination starts from the
// all-aggressor delay and falls toward the no-aggressor delay as k grows —
// matching the numbers the paper prints under its "(a)" label (the two
// table captions in the paper are swapped).
//
// Shared driver: bench::run_table2 (common.hpp). Harness flags and the
// BENCH_table2_elimination.json schema: docs/BENCHMARKING.md.
#include "common.hpp"

int main(int argc, char** argv) {
  return tka::bench::run_table2(argc, argv, tka::topk::Mode::kElimination);
}
