// Ablation: pseudo-aggressor propagation (paper §3.1).
//
// With pseudo aggressors disabled, the engine only sees each victim's own
// primary couplings: delay noise accumulated along the victim's fanin cone
// is invisible, so the chosen top-k addition sets achieve less circuit
// delay. Also compares full-I-list propagation vs the winner-only variant
// of the paper's pseudo-code step 5.
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main() {
  bench::obs_begin();
  std::printf("Ablation: pseudo input aggressors (addition mode)\n\n");
  const int k = bench::scale() == 0 ? 6 : 10;

  for (const char* name : {"i1", "i2", "i3", "i4"}) {
    bench::Design d = bench::build_design(name);
    struct Config {
      const char* label;
      bool use_pseudo;
      bool full_ilist;
    };
    for (const Config& cfg : {Config{"pseudo off          ", false, true},
                              Config{"pseudo winner-only  ", true, false},
                              Config{"pseudo full I-list  ", true, true}}) {
      topk::TopkOptions opt = bench::engine_options(d, k, topk::Mode::kAddition);
      opt.use_pseudo = cfg.use_pseudo;
      opt.propagate_full_ilist = cfg.full_ilist;
      Timer t;
      const topk::TopkResult res = d.engine->run(opt);
      const double runtime = t.seconds();
      const double delay = bench::evaluate(d, res.members, topk::Mode::kAddition);
      std::printf("%-4s k=%2d %s | delay=%.4f (found noise %.4f) runtime=%7.3fs\n",
                  name, k, cfg.label, delay, delay - res.baseline_delay, runtime);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: full I-list >= winner-only >= pseudo-off in "
              "discovered delay noise;\npseudo-off misses every cross-stage "
              "aggressor combination.\n");
  bench::obs_finish();
  return 0;
}
