// Ablation: pseudo-aggressor propagation (paper §3.1).
//
// With pseudo aggressors disabled, the engine only sees each victim's own
// primary couplings: delay noise accumulated along the victim's fanin cone
// is invisible, so the chosen top-k addition sets achieve less circuit
// delay. Also compares full-I-list propagation vs the winner-only variant
// of the paper's pseudo-code step 5.
//
// Harness cases: <ckt>/{pseudo_off,winner_only,full_ilist}; values are the
// achieved circuit delay and the discovered delay noise.
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "ablation_pseudo");
  std::printf("Ablation: pseudo input aggressors (addition mode)\n\n");
  const int k = bench::scale() == 0 ? 6 : 10;
  const std::vector<std::string> circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i1", "i2"}
                          : std::vector<std::string>{"i1", "i2", "i3", "i4"};

  for (const std::string& name : circuits) {
    bench::Design d = bench::build_design(name);
    struct Config {
      const char* case_suffix;
      const char* label;
      bool use_pseudo;
      bool full_ilist;
    };
    for (const Config& cfg :
         {Config{"pseudo_off", "pseudo off          ", false, true},
          Config{"winner_only", "pseudo winner-only  ", true, false},
          Config{"full_ilist", "pseudo full I-list  ", true, true}}) {
      double delay = 0.0, noise = 0.0;
      const bool ran = h.run_case(name + "/" + cfg.case_suffix,
                                  [&](bench::Reporter& r) {
        topk::TopkOptions opt =
            bench::engine_options(d, k, topk::Mode::kAddition);
        opt.use_pseudo = cfg.use_pseudo;
        opt.propagate_full_ilist = cfg.full_ilist;
        const topk::TopkResult res = d.engine->run(opt);
        delay = bench::evaluate(d, res.members, topk::Mode::kAddition);
        noise = delay - res.baseline_delay;
        r.value("delay", delay);
        r.value("found_noise", noise);
      });
      if (!ran) continue;
      std::printf("%-4s k=%2d %s | delay=%.4f (found noise %.4f)\n",
                  name.c_str(), k, cfg.label, delay, noise);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: full I-list >= winner-only >= pseudo-off in "
              "discovered delay noise;\npseudo-off misses every cross-stage "
              "aggressor combination.\n");
  return h.finish();
}
