// Parallel scaling of the top-k engine (docs/PARALLELISM.md): the same
// addition-mode run at 1, 2 and 4 worker threads. Times track wall-clock
// speedup; the reported delays must be bit-identical across thread counts
// (the runtime's core contract), so the delay values double as a
// determinism gate — bench_compare across two files at *any* thread
// configuration must find identical delays.
//
// Harness cases: <ckt>/t<threads>. The explicit per-case thread count
// overrides --threads/TKA_THREADS for the engine run (resolution order,
// runtime/runtime.hpp).
//
// Besides speedup, each row reports *where the lanes spent the rep*: the
// per-lane utilization (exec / wall) and the pooled wait share
// (barrier-wait + queue-idle over total lane wall). On a host with fewer
// cores than threads the wait share is the whole story — tools/perf_report
// turns the same lane records (in BENCH_parallel_scaling.json) into the
// full diagnosis.
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "parallel_scaling");
  const std::vector<int> thread_counts =
      bench::scale() == 0 ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const std::vector<std::string> circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i2"}
                          : std::vector<std::string>{"i2", "i5"};
  const int k = bench::scale() == 0 ? 8 : 20;

  std::printf("Parallel scaling: engine run (addition, k=%d) per thread "
              "count\n\n", k);

  for (const std::string& name : circuits) {
    bench::Design d = bench::build_design(name);
    double serial_median = 0.0;
    for (const int threads : thread_counts) {
      double delay = 0.0, estimated = 0.0;
      const bool ran = h.run_case(str::format("%s/t%d", name.c_str(), threads),
                                  [&](bench::Reporter& r) {
        topk::TopkOptions opt =
            bench::engine_options(d, k, topk::Mode::kAddition);
        opt.threads = threads;
        opt.iterative.threads = threads;
        opt.reevaluate = true;  // the final fixpoint is a parallel phase too
        const topk::TopkResult res = d.engine->run(opt);
        delay = res.evaluated_delay;
        estimated = res.estimated_delay;
        r.value("evaluated_delay", delay);
        r.value("estimated_delay", estimated);
      });
      if (!ran) continue;
      const bench::CaseResult& cr = h.results().back();
      const double median = cr.time.median;
      if (threads == 1) serial_median = median;
      std::printf("%-4s threads=%d: delay=%.6f median=%.3fs speedup=%.2fx\n",
                  name.c_str(), threads, delay, median,
                  serial_median > 0.0 ? serial_median / median : 1.0);
      double wall = 0.0, wait = 0.0;
      for (const bench::LaneUsage& lane : cr.lanes) {
        // Stall = exec wall minus CPU actually burned: the lane was
        // runnable but preempted. Counts as waiting alongside the
        // explicit barrier/idle parks.
        const double stall = lane.exec_s > lane.exec_cpu_s
                                 ? lane.exec_s - lane.exec_cpu_s
                                 : 0.0;
        wall += lane.wall_s;
        wait += lane.barrier_wait_s + lane.queue_idle_s + stall;
        std::printf("       lane %d (%s): util=%.0f%% exec=%.3fs "
                    "(cpu %.3fs) barrier=%.3fs idle=%.3fs tasks=%llu\n",
                    lane.lane, lane.worker ? "worker" : "caller",
                    100.0 * lane.utilization, lane.exec_s, lane.exec_cpu_s,
                    lane.barrier_wait_s, lane.queue_idle_s,
                    static_cast<unsigned long long>(lane.tasks));
      }
      if (wall > 0.0) {
        std::printf("       wait share: %.0f%% of %.3fs lane-seconds "
                    "(barrier+idle+preempted)\n", 100.0 * wait / wall, wall);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: identical delays at every thread count "
              "(bit-identical contract);\nspeedup tracks physical cores — "
              "flat on a single-core host.\n");
  return h.finish();
}
