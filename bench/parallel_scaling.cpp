// Parallel scaling of the top-k engine (docs/PARALLELISM.md): the same
// addition-mode run at 1, 2 and 4 worker threads. Times track wall-clock
// speedup; the reported delays must be bit-identical across thread counts
// (the runtime's core contract), so the delay values double as a
// determinism gate — bench_compare across two files at *any* thread
// configuration must find identical delays.
//
// Harness cases: <ckt>/t<threads>. The explicit per-case thread count
// overrides --threads/TKA_THREADS for the engine run (resolution order,
// runtime/runtime.hpp).
//
// Besides speedup, each row reports *where the lanes spent the rep*: the
// per-lane utilization (exec / wall), the steal count (task-graph tasks a
// lane took from another lane's deque — the work-stealing runtime keeping
// lanes busy across levels, docs/SCHEDULER.md) and the pooled wait share
// (barrier-wait + queue-idle over total lane wall). On a host with fewer
// cores than threads the wait share is the whole story — tools/perf_report
// turns the same lane records (in BENCH_parallel_scaling.json) into the
// full diagnosis. Steal totals also land in the telemetry section
// (notes-only in bench_compare: they depend on thread count and timing).
#include <cstdio>

#include "common.hpp"
#include "runtime/telemetry.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "parallel_scaling");
  // Smoke mirrors the committed baseline cases; the scale tier runs the
  // larger circuits up to 8 threads so the speedup curve joins the
  // long-run trajectory.
  const std::vector<int> thread_counts = bench::scale() == 0
                                             ? std::vector<int>{1, 2}
                                             : std::vector<int>{1, 2, 4, 8};
  const std::vector<std::string> circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i2"}
                          : std::vector<std::string>{"i2", "i5", "i10"};
  const int k = bench::scale() == 0 ? 8 : 20;

  std::printf("Parallel scaling: engine run (addition, k=%d) per thread "
              "count\n\n", k);

  for (const std::string& name : circuits) {
    bench::Design d = bench::build_design(name);
    double serial_median = 0.0;
    for (const int threads : thread_counts) {
      double delay = 0.0, estimated = 0.0;
      const bool ran = h.run_case(str::format("%s/t%d", name.c_str(), threads),
                                  [&](bench::Reporter& r) {
        topk::TopkOptions opt =
            bench::engine_options(d, k, topk::Mode::kAddition);
        opt.threads = threads;
        opt.iterative.threads = threads;
        opt.reevaluate = true;  // the final fixpoint is a parallel phase too
        const std::vector<runtime::LaneCounters> before =
            runtime::lane_snapshot();
        const topk::TopkResult res = d.engine->run(opt);
        delay = res.evaluated_delay;
        estimated = res.estimated_delay;
        r.value("evaluated_delay", delay);
        r.value("estimated_delay", estimated);
        // Steal total over this rep (telemetry, not a gated value: stealing
        // is schedule-dependent by design while the delays above are not).
        std::uint64_t steals = 0;
        for (const runtime::LaneCounters& l :
             runtime::lane_delta(before, runtime::lane_snapshot())) {
          steals += l.steals;
        }
        r.telemetry("steals", static_cast<double>(steals));
      });
      if (!ran) continue;
      const bench::CaseResult& cr = h.results().back();
      const double median = cr.time.median;
      if (threads == 1) serial_median = median;
      std::printf("%-4s threads=%d: delay=%.6f median=%.3fs speedup=%.2fx\n",
                  name.c_str(), threads, delay, median,
                  serial_median > 0.0 ? serial_median / median : 1.0);
      double wall = 0.0, wait = 0.0;
      std::uint64_t case_steals = 0;
      for (const bench::LaneUsage& lane : cr.lanes) {
        // Stall = exec wall minus CPU actually burned: the lane was
        // runnable but preempted. Counts as waiting alongside the
        // explicit barrier/idle parks.
        const double stall = lane.exec_s > lane.exec_cpu_s
                                 ? lane.exec_s - lane.exec_cpu_s
                                 : 0.0;
        wall += lane.wall_s;
        wait += lane.barrier_wait_s + lane.queue_idle_s + stall;
        std::printf("       lane %d (%s): util=%.0f%% exec=%.3fs "
                    "(cpu %.3fs) barrier=%.3fs idle=%.3fs tasks=%llu "
                    "steals=%llu\n",
                    lane.lane, lane.worker ? "worker" : "caller",
                    100.0 * lane.utilization, lane.exec_s, lane.exec_cpu_s,
                    lane.barrier_wait_s, lane.queue_idle_s,
                    static_cast<unsigned long long>(lane.tasks),
                    static_cast<unsigned long long>(lane.steals));
        case_steals += lane.steals;
      }
      if (wall > 0.0) {
        std::printf("       wait share: %.0f%% of %.3fs lane-seconds "
                    "(barrier+idle+preempted), steals=%llu\n",
                    100.0 * wait / wall, wall,
                    static_cast<unsigned long long>(case_steals));
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: identical delays at every thread count "
              "(bit-identical contract);\nspeedup tracks physical cores — "
              "flat on a single-core host.\n");
  return h.finish();
}
