// Reproduces the paper's Table 2 *addition* experiment: for each benchmark
// circuit, the circuit delay when only the top-k aggressor addition set is
// active, plus the algorithm runtime, for k = 5..50.
//
// Semantics note (see DESIGN.md §3): per the definitions in the paper's
// §1/§3.4, the addition curve starts at the no-aggressor delay and rises
// toward the all-aggressor delay as k grows — matching the numbers the
// paper prints under the "(b)" label (its two table captions are swapped).
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main() {
  bench::obs_begin();
  const std::vector<int> ks = bench::suite_k_columns();
  const int max_k = bench::suite_max_k();

  std::printf("Table 2 (addition): circuit delay with only the top-k addition "
              "set active\n\n");
  std::printf("%-4s %6s %6s %6s | %9s", "ckt", "gates", "nets", "ccaps",
              "no agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf(" %9s | runtime(s):", "all agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf("\n");

  for (const std::string& name : bench::suite_circuits()) {
    bench::Design d = bench::build_design(name);
    topk::TopkOptions opt = bench::engine_options(d, max_k, topk::Mode::kAddition);
    const topk::TopkResult res = d.engine->run(opt);

    std::printf("%-4s %6zu %6zu %6zu | %9.4f", name.c_str(),
                d.circuit.netlist->num_gates(), d.circuit.netlist->num_nets(),
                d.circuit.parasitics.num_couplings(), res.baseline_delay);
    double running = res.baseline_delay;
    for (int k : ks) {
      running = bench::evaluate_at_k(d, res, k, topk::Mode::kAddition, running);
      std::printf(" %10.4f", running);
    }
    std::printf(" %9.4f |            ", res.reference_delay);
    for (int k : ks) {
      std::printf(" %10.3f", res.stats.runtime_by_k[static_cast<size_t>(k) - 1]);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): delay rises from the no-aggressor "
              "baseline toward the all-aggressor\ndelay as k grows; runtime "
              "grows mildly (sub-exponentially) with k and with circuit "
              "size.\n");
  bench::obs_finish();
  return 0;
}
