// Reproduces the paper's Table 2 *addition* experiment: for each benchmark
// circuit, the circuit delay when only the top-k aggressor addition set is
// active, plus the algorithm runtime, for k = 5..50.
//
// Semantics note (see DESIGN.md §3): per the definitions in the paper's
// §1/§3.4, the addition curve starts at the no-aggressor delay and rises
// toward the all-aggressor delay as k grows — matching the numbers the
// paper prints under the "(b)" label (its two table captions are swapped).
//
// Shared driver: bench::run_table2 (common.hpp). Harness flags and the
// BENCH_table2_addition.json schema: docs/BENCHMARKING.md.
#include "common.hpp"

int main(int argc, char** argv) {
  return tka::bench::run_table2(argc, argv, tka::topk::Mode::kAddition);
}
