// Reproduces Figure 10: convergence of the top-k addition and elimination
// circuit delays toward each other as k grows (circuits i1 and i10).
//
// One engine run per (circuit, mode) at the maximum k yields the whole
// curve; each reported point is the honest re-evaluated circuit delay with
// that cardinality's winning set applied.
//
// Harness cases: one per circuit covering both modes; values are the two
// curves (add_k<k> / elim_k<k>) plus the endpoint delays.
#include <cstdio>

#include "common.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "fig10_convergence");
  const int max_k = bench::scale() == 0 ? 25 : 75;
  const int step = bench::scale() == 0 ? 4 : 5;
  const std::vector<std::string> circuits =
      bench::scale() == 0 ? std::vector<std::string>{"i1"}
                          : std::vector<std::string>{"i1", "i10"};

  std::printf("Figure 10: top-k addition vs elimination delay convergence "
              "(k = 1..%d)\n", max_k);

  for (const std::string& name : circuits) {
    bench::Design d = bench::build_design(name);
    struct Point {
      int k;
      double add, elim;
    };
    std::vector<Point> curve;
    double no_agg = 0.0, all_agg = 0.0;
    const bool ran = h.run_case(name, [&](bench::Reporter& r) {
      const topk::TopkResult add = d.engine->run(
          bench::engine_options(d, max_k, topk::Mode::kAddition));
      const topk::TopkResult elim = d.engine->run(
          bench::engine_options(d, max_k, topk::Mode::kElimination));
      no_agg = add.baseline_delay;
      all_agg = elim.baseline_delay;
      r.value("no_aggressor_delay", no_agg);
      r.value("all_aggressor_delay", all_agg);
      curve.clear();
      double run_a = add.baseline_delay;
      double run_e = elim.baseline_delay;
      for (int k = 1; k <= max_k; k += (k == 1 ? step - 1 : step)) {
        run_a = bench::evaluate_at_k(d, add, k, topk::Mode::kAddition, run_a);
        run_e = bench::evaluate_at_k(d, elim, k, topk::Mode::kElimination, run_e);
        curve.push_back({k, run_a, run_e});
        r.value(str::format("add_k%d", k), run_a);
        r.value(str::format("elim_k%d", k), run_e);
      }
    });
    if (!ran) continue;

    std::printf("\n%s: no-aggressor delay %.4f ns, all-aggressor delay %.4f "
                "ns\n", name.c_str(), no_agg, all_agg);
    std::printf("%6s %14s %16s\n", "k", "addition(ns)", "elimination(ns)");
    for (const Point& p : curve) {
      std::printf("%6d %14.4f %16.4f\n", p.k, p.add, p.elim);
    }
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): the addition curve rises from the "
              "no-aggressor delay, the\nelimination curve falls from the "
              "all-aggressor delay, and the two approach each\nother as k "
              "grows.\n");
  return h.finish();
}
