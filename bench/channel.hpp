// A hand-built routing-channel design shared by the bench suites that need
// a deterministic, editable circuit (bench/whatif_repair, bench/serve_load):
// parallel BUFX1 chains in independent groups, explicit parasitics and
// staggered arrivals — no placer/extractor randomness.
//
// Lifetime note: channel_options() wires the returned TopkOptions to the
// Channel's arrival table by pointer (via sta_options()). The Channel must
// outlive every engine, session or server that was handed those options.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"
#include "sta/analyzer.hpp"
#include "topk/topk_engine.hpp"

namespace tka::bench {

/// A hand-built channel design: explicit parasitics and arrivals, no
/// placer/extractor randomness.
struct Channel {
  std::unique_ptr<net::Netlist> netlist;
  layout::Parasitics parasitics{0};
  std::vector<sta::InputArrival> arrivals;  // by net id

  sta::StaOptions sta_options() const {
    sta::StaOptions opt;
    const std::vector<sta::InputArrival>* table = &arrivals;
    opt.input_arrival = [table](net::NetId n) {
      return n < table->size() ? (*table)[n] : sta::InputArrival{};
    };
    return opt;
  }
};

/// `groups` independent regions of `chains` parallel BUFX1 chains, `depth`
/// gates deep. Neighboring chains of one group couple at three stages with
/// deterministically varied strengths; group 0 carries the strongest
/// coupling so the first repair target is unambiguous. PI arrivals are
/// staggered per chain for timing-window diversity.
inline Channel make_channel(int groups, int chains, int depth) {
  Channel ch;
  const net::CellLibrary& lib = net::CellLibrary::default_library();
  ch.netlist = std::make_unique<net::Netlist>(lib, "channel");
  const std::size_t buf = lib.index_of("BUFX1");
  std::vector<std::vector<std::vector<net::NetId>>> nets(groups);
  for (int g = 0; g < groups; ++g) {
    nets[g].resize(chains);
    for (int c = 0; c < chains; ++c) {
      const std::string stem = "g" + std::to_string(g) + "c" + std::to_string(c);
      net::NetId cur = ch.netlist->add_primary_input(stem + "_in");
      for (int i = 0; i < depth; ++i) {
        cur = ch.netlist->add_gate(buf, {cur}, stem + "_g" + std::to_string(i),
                                   stem + "_n" + std::to_string(i));
        nets[g][c].push_back(cur);
      }
      ch.netlist->mark_primary_output(cur);
    }
  }
  ch.parasitics = layout::Parasitics(ch.netlist->num_nets());
  for (net::NetId n = 0; n < ch.netlist->num_nets(); ++n) {
    ch.parasitics.add_ground_cap(n, 0.010);
    ch.parasitics.add_wire_res(n, 0.05);
  }
  const int stages[3] = {1, depth / 2, depth - 2};
  for (int g = 0; g < groups; ++g) {
    for (int c = 0; c + 1 < chains; ++c) {
      for (int s : stages) {
        double cap = 0.003 + 0.0015 * ((g * 7 + c * 5 + s) % 5);
        if (g == 0 && c == 0 && s == depth / 2) cap = 0.014;
        ch.parasitics.add_coupling(nets[g][c][s], nets[g][c + 1][s], cap);
      }
    }
  }
  ch.arrivals.assign(ch.netlist->num_nets(), sta::InputArrival{});
  for (int g = 0; g < groups; ++g) {
    for (int c = 0; c < chains; ++c) {
      const net::NetId pi =
          ch.netlist->net_by_name("g" + std::to_string(g) + "c" +
                                  std::to_string(c) + "_in");
      const double lat = 0.02 * ((g * 5 + c * 3) % 7);
      ch.arrivals[pi] = {lat, lat};
    }
  }
  return ch;
}

/// Engine/session options for a channel design (see the lifetime note at
/// the top of this header: `ch` must outlive users of the result).
inline topk::TopkOptions channel_options(const Channel& ch, int k) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = topk::Mode::kElimination;
  opt.iterative.sta = ch.sta_options();
  opt.beam_cap = 32;
  opt.reevaluate = true;  // the repair loop reports honest delays
  return opt;
}

}  // namespace tka::bench
