// Shared suite construction and engine presets for the bench binaries.
// The repetition loop, CLI flags, observability hookup and JSON results
// live in harness/harness.hpp — every bench main constructs a
// bench::Harness first and drives its cases through Harness::run_case.
//
// Scale (from --smoke / --scale, falling back to TKA_BENCH_SCALE):
//   0 = quick   (small circuits, small k; CI-friendly — the smoke tier)
//   1 = default (full i1..i10 suite, k up to 50)
//   2 = full    (larger beams, closer to exhaustive settings)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/benchmark_suite.hpp"
#include "harness/harness.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "sta/analyzer.hpp"
#include "topk/topk_engine.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace tka::bench {

/// Bench scale: the live Harness's setting, else TKA_BENCH_SCALE, else 1.
inline int scale() { return active_scale(); }

/// Circuits to run at the current scale.
inline std::vector<std::string> suite_circuits() {
  if (scale() == 0) return {"i1", "i2", "i3", "i4"};
  return {"i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10"};
}

/// Max cardinality for the Table-2 style sweeps.
inline int suite_max_k() { return scale() == 0 ? 20 : 50; }

/// The k columns reported (paper: 5,10,20,30,40,50).
inline std::vector<int> suite_k_columns() {
  if (scale() == 0) return {5, 10, 15, 20};
  return {5, 10, 20, 30, 40, 50};
}

/// A built design plus everything the engine needs.
struct Design {
  gen::GeneratedCircuit circuit;
  std::unique_ptr<sta::DelayModel> model;
  std::unique_ptr<noise::AnalyticCouplingCalculator> calc;
  std::unique_ptr<topk::TopkEngine> engine;
  double noiseless_delay = 0.0;
};

inline Design build_design(const std::string& name) {
  Design d;
  d.circuit = gen::build_benchmark(gen::benchmark_spec(name));
  d.model = std::make_unique<sta::DelayModel>(*d.circuit.netlist, d.circuit.parasitics);
  d.calc = std::make_unique<noise::AnalyticCouplingCalculator>(d.circuit.parasitics,
                                                               *d.model);
  d.engine = std::make_unique<topk::TopkEngine>(*d.circuit.netlist,
                                                d.circuit.parasitics, *d.model,
                                                *d.calc);
  const sta::StaResult base =
      sta::run_sta(*d.circuit.netlist, *d.model, d.circuit.sta_options());
  d.noiseless_delay = base.max_lat;
  return d;
}

/// Engine preset scaled to the circuit: exact settings on small designs,
/// beam + near-critical restriction on large ones.
inline topk::TopkOptions engine_options(const Design& d, int k, topk::Mode mode) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = mode;
  opt.iterative.sta = d.circuit.sta_options();
  const size_t caps = d.circuit.parasitics.num_couplings();
  if (caps > 5000) {
    opt.beam_cap = scale() == 2 ? 24 : 12;
    opt.max_primary_per_victim = 10;
    opt.victim_slack_threshold = 0.10 * d.noiseless_delay;
  } else if (caps > 800) {
    opt.beam_cap = scale() == 2 ? 32 : 16;
    opt.max_primary_per_victim = 12;
    opt.victim_slack_threshold = 0.20 * d.noiseless_delay;
  } else {
    opt.beam_cap = scale() == 2 ? 64 : 32;
  }
  opt.reevaluate = false;  // benches evaluate the k-points they report
  return opt;
}

/// Circuit delay with exactly/all-but `members` active, via the fixpoint.
inline double evaluate(const Design& d, const std::vector<layout::CapId>& members,
                       topk::Mode mode) {
  noise::IterativeOptions it;
  it.sta = d.circuit.sta_options();
  return d.engine->evaluate_set(members, mode, it);
}

/// Exact delay at cardinality k: evaluates the winner plus the stored
/// runner-up finalists and keeps the true best (the engine's estimator
/// ranks conservatively, especially in elimination mode). A k-set can
/// always extend a better (k-1)-set with one more coupling, so the result
/// is clamped monotone against `running` (pass the previous column's value,
/// or the baseline for the first column).
inline double evaluate_at_k(const Design& d, const topk::TopkResult& res, int k,
                            topk::Mode mode, double running) {
  const size_t idx = static_cast<size_t>(k) - 1;
  const bool addition = (mode == topk::Mode::kAddition);
  // Dedup the winner + finalists in order, then evaluate the fixpoints in
  // parallel (each one serial inside) and reduce in candidate order — the
  // reported delay is identical for any TKA_THREADS.
  std::vector<const std::vector<layout::CapId>*> cands;
  auto consider = [&](const std::vector<layout::CapId>& members) {
    if (members.empty()) return;
    for (const auto* seen : cands) {
      if (*seen == members) return;
    }
    cands.push_back(&members);
  };
  consider(res.set_by_k[idx]);
  for (const auto& members : res.finalists_by_k[idx]) consider(members);

  noise::IterativeOptions it;
  it.sta = d.circuit.sta_options();
  it.threads = 1;
  std::vector<double> delays(cands.size(), 0.0);
  runtime::parallel_for(0, 0, cands.size(), [&](size_t ci) {
    delays[ci] = d.engine->evaluate_set(*cands[ci], mode, it);
  });
  double best = running;
  for (double delay : delays) {
    if (addition ? delay > best : delay < best) best = delay;
  }
  return best;
}

inline const char* mode_name(topk::Mode mode) {
  return mode == topk::Mode::kAddition ? "addition" : "elimination";
}

/// Shared Table-2 driver: the addition and elimination benches differ only
/// in engine mode and header strings. One harness case per circuit; the
/// timed body is the engine run plus the exact per-column re-evaluations.
/// Values recorded per case: delay_k<k> for each reported column plus the
/// two endpoint delays and the list-growth statistics.
inline int run_table2(int argc, char* const* argv, topk::Mode mode) {
  const bool addition = (mode == topk::Mode::kAddition);
  Harness h(argc, argv,
            addition ? "table2_addition" : "table2_elimination");
  const std::vector<int> ks = suite_k_columns();
  const int max_k = suite_max_k();

  std::printf("Table 2 (%s): circuit delay %s the top-k %s set\n\n",
              mode_name(mode), addition ? "with only" : "after fixing",
              mode_name(mode));
  std::printf("%-4s %6s %6s %6s | %9s", "ckt", "gates", "nets", "ccaps",
              addition ? "no agg" : "all agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf(" %9s | runtime(s):", addition ? "all agg" : "no agg");
  for (int k : ks) std::printf(" %8s%-2d", "k=", k);
  std::printf("\n");

  for (const std::string& name : suite_circuits()) {
    Design d = build_design(name);
    topk::TopkResult res;
    std::vector<double> delays;
    const bool ran = h.run_case(name, [&](Reporter& r) {
      topk::TopkOptions opt = engine_options(d, max_k, mode);
      res = d.engine->run(opt);
      delays.clear();
      double running = res.baseline_delay;
      for (int k : ks) {
        running = evaluate_at_k(d, res, k, mode, running);
        delays.push_back(running);
        r.value(str::format("delay_k%d", k), running);
      }
      r.value("baseline_delay", res.baseline_delay);
      r.value("reference_delay", res.reference_delay);
      r.value("sets_generated", static_cast<double>(res.stats.sets_generated));
      r.value("max_list_size", static_cast<double>(res.stats.max_list_size));
    });
    if (!ran) continue;

    std::printf("%-4s %6zu %6zu %6zu | %9.4f", name.c_str(),
                d.circuit.netlist->num_gates(), d.circuit.netlist->num_nets(),
                d.circuit.parasitics.num_couplings(), res.baseline_delay);
    for (double delay : delays) std::printf(" %10.4f", delay);
    std::printf(" %9.4f |            ", res.reference_delay);
    for (int k : ks) {
      std::printf(" %10.3f", res.stats.runtime_by_k[static_cast<size_t>(k) - 1]);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  if (addition) {
    std::printf("\nExpected shape (paper): delay rises from the no-aggressor "
                "baseline toward the all-aggressor\ndelay as k grows; runtime "
                "grows mildly (sub-exponentially) with k and with circuit "
                "size.\n");
  } else {
    std::printf("\nExpected shape (paper): delay falls from the all-aggressor "
                "baseline toward the no-aggressor\ndelay as k grows; fixing "
                "the first few couplings buys the largest improvement.\n");
  }
  return h.finish();
}

}  // namespace tka::bench
