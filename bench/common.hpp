// Shared bench harness: scale control, suite construction, engine presets
// and table formatting.
//
// TKA_BENCH_SCALE environment variable:
//   0 = quick   (small circuits, small k; CI-friendly)
//   1 = default (full i1..i10 suite, k up to 50)
//   2 = full    (larger beams, closer to exhaustive settings)
// Observability (same registry/tracer the library and CLI use):
//   TKA_LOG=debug|info|warn|error|off   log threshold
//   TKA_BENCH_TRACE=FILE.json           record spans, write a Chrome trace
//   TKA_BENCH_METRICS=FILE.json         write metrics + span summary JSON
// Parallelism:
//   TKA_THREADS=N   worker threads for the engine sweeps, fixpoints and the
//                   harness's own candidate evaluations (default: hardware
//                   concurrency; results are identical for any N — see
//                   docs/PARALLELISM.md)
// Call bench::obs_begin() first thing in main() and bench::obs_finish()
// before returning; per-phase engine breakdowns then come for free.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gen/benchmark_suite.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "sta/analyzer.hpp"
#include "topk/topk_engine.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace tka::bench {

/// Applies TKA_LOG and arms the tracer when TKA_BENCH_TRACE or
/// TKA_BENCH_METRICS names an output file.
inline void obs_begin() {
  if (const char* lvl = std::getenv("TKA_LOG")) {
    log::Level level;
    if (log::parse_level(lvl, &level)) log::set_level(level);
  }
  if (std::getenv("TKA_BENCH_TRACE") != nullptr ||
      std::getenv("TKA_BENCH_METRICS") != nullptr) {
    obs::register_core_metrics();
    obs::tracer().enable(true);
  }
}

/// Writes the files requested via the environment (no-op otherwise).
inline void obs_finish() {
  if (const char* path = std::getenv("TKA_BENCH_TRACE")) {
    std::ofstream out(path);
    if (out) {
      obs::tracer().write_chrome_json(out);
      std::fprintf(stderr, "wrote trace %s\n", path);
    }
  }
  if (const char* path = std::getenv("TKA_BENCH_METRICS")) {
    std::ofstream out(path);
    if (out) {
      obs::write_metrics_json(out);
      std::fprintf(stderr, "wrote metrics %s\n", path);
    }
  }
}

inline int scale() {
  const char* env = std::getenv("TKA_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int s = std::atoi(env);
  return s < 0 ? 0 : (s > 2 ? 2 : s);
}

/// Circuits to run at the current scale.
inline std::vector<std::string> suite_circuits() {
  if (scale() == 0) return {"i1", "i2", "i3", "i4"};
  return {"i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10"};
}

/// Max cardinality for the Table-2 style sweeps.
inline int suite_max_k() { return scale() == 0 ? 20 : 50; }

/// The k columns reported (paper: 5,10,20,30,40,50).
inline std::vector<int> suite_k_columns() {
  if (scale() == 0) return {5, 10, 15, 20};
  return {5, 10, 20, 30, 40, 50};
}

/// A built design plus everything the engine needs.
struct Design {
  gen::GeneratedCircuit circuit;
  std::unique_ptr<sta::DelayModel> model;
  std::unique_ptr<noise::AnalyticCouplingCalculator> calc;
  std::unique_ptr<topk::TopkEngine> engine;
  double noiseless_delay = 0.0;
};

inline Design build_design(const std::string& name) {
  Design d;
  d.circuit = gen::build_benchmark(gen::benchmark_spec(name));
  d.model = std::make_unique<sta::DelayModel>(*d.circuit.netlist, d.circuit.parasitics);
  d.calc = std::make_unique<noise::AnalyticCouplingCalculator>(d.circuit.parasitics,
                                                               *d.model);
  d.engine = std::make_unique<topk::TopkEngine>(*d.circuit.netlist,
                                                d.circuit.parasitics, *d.model,
                                                *d.calc);
  const sta::StaResult base =
      sta::run_sta(*d.circuit.netlist, *d.model, d.circuit.sta_options());
  d.noiseless_delay = base.max_lat;
  return d;
}

/// Engine preset scaled to the circuit: exact settings on small designs,
/// beam + near-critical restriction on large ones.
inline topk::TopkOptions engine_options(const Design& d, int k, topk::Mode mode) {
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = mode;
  opt.iterative.sta = d.circuit.sta_options();
  const size_t caps = d.circuit.parasitics.num_couplings();
  if (caps > 5000) {
    opt.beam_cap = scale() == 2 ? 24 : 12;
    opt.max_primary_per_victim = 10;
    opt.victim_slack_threshold = 0.10 * d.noiseless_delay;
  } else if (caps > 800) {
    opt.beam_cap = scale() == 2 ? 32 : 16;
    opt.max_primary_per_victim = 12;
    opt.victim_slack_threshold = 0.20 * d.noiseless_delay;
  } else {
    opt.beam_cap = scale() == 2 ? 64 : 32;
  }
  opt.reevaluate = false;  // benches evaluate the k-points they report
  return opt;
}

/// Circuit delay with exactly/all-but `members` active, via the fixpoint.
inline double evaluate(const Design& d, const std::vector<layout::CapId>& members,
                       topk::Mode mode) {
  noise::IterativeOptions it;
  it.sta = d.circuit.sta_options();
  return d.engine->evaluate_set(members, mode, it);
}

/// Exact delay at cardinality k: evaluates the winner plus the stored
/// runner-up finalists and keeps the true best (the engine's estimator
/// ranks conservatively, especially in elimination mode). A k-set can
/// always extend a better (k-1)-set with one more coupling, so the result
/// is clamped monotone against `running` (pass the previous column's value,
/// or the baseline for the first column).
inline double evaluate_at_k(const Design& d, const topk::TopkResult& res, int k,
                            topk::Mode mode, double running) {
  const size_t idx = static_cast<size_t>(k) - 1;
  const bool addition = (mode == topk::Mode::kAddition);
  // Dedup the winner + finalists in order, then evaluate the fixpoints in
  // parallel (each one serial inside) and reduce in candidate order — the
  // reported delay is identical for any TKA_THREADS.
  std::vector<const std::vector<layout::CapId>*> cands;
  auto consider = [&](const std::vector<layout::CapId>& members) {
    if (members.empty()) return;
    for (const auto* seen : cands) {
      if (*seen == members) return;
    }
    cands.push_back(&members);
  };
  consider(res.set_by_k[idx]);
  for (const auto& members : res.finalists_by_k[idx]) consider(members);

  noise::IterativeOptions it;
  it.sta = d.circuit.sta_options();
  it.threads = 1;
  std::vector<double> delays(cands.size(), 0.0);
  runtime::parallel_for(0, 0, cands.size(), [&](size_t ci) {
    delays[ci] = d.engine->evaluate_set(*cands[ci], mode, it);
  });
  double best = running;
  for (double delay : delays) {
    if (addition ? delay > best : delay < best) best = delay;
  }
  return best;
}

inline const char* mode_name(topk::Mode mode) {
  return mode == topk::Mode::kAddition ? "addition" : "elimination";
}

}  // namespace tka::bench
