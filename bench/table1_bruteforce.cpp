// Reproduces Table 1: validation of the proposed top-k algorithm against
// brute-force enumeration (elimination mode), including the brute-force
// runtime explosion beyond k = 3.
//
// The paper ran the comparison on a small benchmark with a 1800 s cap and
// saw (a) identical circuit delays for k <= 3 and (b) brute force failing
// to finish k = 4. We use a trimmed i1 (its largest couplings only) so the
// combinatorial blow-up happens at the same k with a friendlier timeout.
//
// Harness cases: one per k. Recorded values are the *proposed* delays
// (always) and the brute-force delays only for k small enough that the
// enumeration is guaranteed to finish inside the timeout on any machine —
// whether brute force beats a wall clock at larger k is machine-dependent
// and must not flap a regression gate (docs/BENCHMARKING.md).
#include <cstdio>

#include "common.hpp"
#include "topk/brute_force.hpp"

using namespace tka;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "table1_bruteforce");
  const bool smoke = bench::scale() == 0;
  const int max_k = smoke ? 3 : 5;
  const int max_bf_value_k = smoke ? 2 : 4;
  const double timeout_s = smoke ? 10.0 : 60.0;

  // Trimmed i1: keep the 36 largest couplings so C(r, k) stays printable.
  gen::GeneratorParams params;
  params.name = "i1t";
  params.num_gates = gen::benchmark_spec("i1").gates;
  params.seed = gen::benchmark_spec("i1").seed;
  params.target_couplings = 36;
  params.single_sink = true;  // the paper's single "sink node" formulation
  gen::GeneratedCircuit ckt = gen::generate_circuit(params);
  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);

  std::printf("Table 1: proposed vs brute force (elimination), circuit %s\n",
              params.name.c_str());
  std::printf("  gates=%zu nets=%zu couplings=%zu, brute-force timeout=%.0fs\n\n",
              ckt.netlist->num_gates(), ckt.netlist->num_nets(),
              ckt.parasitics.num_couplings(), timeout_s);
  std::printf("%3s | %-24s | %-24s | %s\n", "k", "brute force", "proposed",
              "speedup");
  std::printf("%3s | %10s %12s | %10s %12s |\n", "", "delay(ns)", "runtime(s)",
              "delay(ns)", "runtime(s)");
  std::printf("----+-------------------------+-------------------------+--------\n");

  for (int k = 1; k <= max_k; ++k) {
    topk::TopkResult res;
    std::optional<topk::BruteForceResult> bf;
    double proposed_s = 0.0;
    const bool ran = h.run_case(str::format("k%d", k), [&](bench::Reporter& r) {
      topk::TopkOptions opt;
      opt.k = k;
      opt.mode = topk::Mode::kElimination;
      opt.beam_cap = 0;    // exact enumeration
      opt.rerank_top = 64; // generous exact re-ranking for the validation
      opt.iterative.sta = ckt.sta_options();
      Timer t;
      res = engine.run(opt);
      proposed_s = t.seconds();
      r.value("proposed_delay", res.evaluated_delay);

      topk::BruteForceOptions bf_opt;
      bf_opt.k = k;
      bf_opt.mode = topk::Mode::kElimination;
      bf_opt.timeout_s = timeout_s;
      bf_opt.iterative.sta = ckt.sta_options();
      bf = topk::brute_force_topk(*ckt.netlist, ckt.parasitics, model, calc,
                                  bf_opt);
      if (k <= max_bf_value_k && bf.has_value() && !bf->timed_out) {
        r.value("bf_delay", bf->delay);
        r.value("delay_gap", res.evaluated_delay - bf->delay);
      }
    });
    if (!ran) continue;

    if (bf.has_value() && !bf->timed_out) {
      std::printf("%3d | %10.4f %12.3f | %10.4f %12.3f | %6.1fx\n", k, bf->delay,
                  bf->runtime_s, res.evaluated_delay, proposed_s,
                  bf->runtime_s / std::max(proposed_s, 1e-4));
    } else {
      std::printf("%3d | %10s %12s | %10.4f %12.3f | %6s\n", k, "-",
                  "timeout", res.evaluated_delay, proposed_s, "-");
    }
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): identical delays for k <= 3; brute "
              "force times out as k grows;\n~2 orders of magnitude speedup "
              "where both finish.\n");
  return h.finish();
}
