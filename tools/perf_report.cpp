// perf_report: offline analysis over the telemetry artifacts the bench
// harness and the tka CLI emit (docs/OBSERVABILITY.md).
//
//   perf_report [--bench BENCH_<suite>.json] [--metrics METRICS.json]
//               [--jsonl SNAPSHOTS.jsonl] [--trace TRACE.json]
//               [--wait-threshold PCT] [--top N]
//
// Sections (each input is optional; at least one is required):
//   --bench    per-case parallel efficiency from the recorded lane usage:
//              utilization per lane, pooled wait share, peak RSS. Waiting
//              counts barrier-wait, queue-idle, AND the exec stall
//              (exec_s - exec_cpu_s: wall the thread spent runnable but
//              preempted), so an oversubscribed host cannot hide
//              contention inside stretched exec segments. Cases whose
//              wait share meets --wait-threshold (default 40%) are
//              flagged — the "threads without cores" pathology
//              parallel_scaling exhibits on small hosts. A healthy host
//              runs near 0%.
//   --metrics  tka --metrics / TKA_BENCH_METRICS document: top spans by
//              self time (the per-stage critical path) and the runtime.*
//              wait-site gauges.
//   --jsonl    --metrics-out snapshot stream: record count, time span, RSS
//              timeline min/peak/final.
//   --trace    Chrome trace-event JSON (--trace / TKA_BENCH_TRACE): per-tid
//              busy time from merged span intervals vs the trace's span.
//
// Exit codes: 0 = report printed, 2 = usage error or unreadable input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"

namespace {

using tka::bench::json::Value;

[[noreturn]] void usage(int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: perf_report [--bench BENCH.json] [--metrics M.json]\n"
               "                   [--jsonl SNAPSHOTS.jsonl] [--trace T.json]\n"
               "                   [--wait-threshold PCT]  flag threshold, "
               "default 40\n"
               "                   [--top N]               rows per ranking, "
               "default 10\n"
               "at least one input file is required\n");
  std::exit(exit_code);
}

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "perf_report: %s\n", msg.c_str());
  std::exit(2);
}

Value load_json(const std::string& path) {
  Value doc;
  std::string error;
  if (!tka::bench::json::parse_file(path, &doc, &error)) fail(error);
  return doc;
}

double mib(double bytes) { return bytes / (1024.0 * 1024.0); }

// ---------------------------------------------------------------- bench ---

void report_bench(const std::string& path, double wait_threshold_pct) {
  const Value doc = load_json(path);
  const Value* suite = doc.find("suite");
  const Value* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    fail(path + ": no benchmarks array (not a BENCH_*.json?)");
  }
  std::printf("=== bench: %s (suite %s, threads %g) ===\n", path.c_str(),
              suite != nullptr && suite->is_string() ? suite->string.c_str()
                                                     : "?",
              doc.find("config") != nullptr
                  ? doc.find("config")->number_or("threads", 0.0)
                  : 0.0);
  // Older BENCH files (earlier schema revisions of version 1) predate the
  // memory, lanes and telemetry sections; each is reported when present and
  // skipped — never an error — when absent.
  bool any_lanes = false;
  bool any_memory = false;
  bool any_pool = false;
  for (const Value& b : benchmarks->array) {
    const Value* name = b.find("name");
    const std::string label =
        name != nullptr && name->is_string() ? name->string : "?";
    const double median =
        b.find("time_s") != nullptr ? b.find("time_s")->number_or("median", 0.0)
                                    : 0.0;
    std::printf("%-24s median %8.3fs", label.c_str(), median);
    const Value* memory = b.find("memory");
    if (memory != nullptr && memory->is_object()) {
      any_memory = true;
      std::printf("  peak rss %7.1f MiB",
                  mib(memory->number_or("peak_rss_bytes", 0.0)));
      // Allocation/arena column: wave-pool occupancy (live + free-listed
      // blocks) at case end, and its share of the resident set. Absent on
      // pre-arena BENCH files, which simply don't get the column.
      if (memory->find("wave_pool_bytes") != nullptr) {
        any_pool = true;
        const double pool = memory->number_or("wave_pool_bytes", 0.0);
        const double rss = memory->number_or("rss_bytes", 0.0);
        std::printf("  wave pool %7.1f KiB (%4.1f%% of rss)", pool / 1024.0,
                    rss > 0.0 ? 100.0 * pool / rss : 0.0);
      }
    }
    std::printf("\n");
    const Value* telemetry = b.find("telemetry");
    if (telemetry != nullptr && telemetry->is_object() &&
        !telemetry->object.empty()) {
      std::printf("    telemetry:");
      for (const auto& [key, tv] : telemetry->object) {
        if (tv.is_number()) std::printf(" %s=%.4g", key.c_str(), tv.number);
      }
      std::printf("\n");
    }
    const Value* lanes = b.find("lanes");
    if (lanes == nullptr || !lanes->is_array() || lanes->array.empty()) {
      continue;
    }
    any_lanes = true;
    double cpu = 0.0, wait = 0.0, wall = 0.0, max_wall = 0.0;
    for (const Value& lane : lanes->array) {
      const double lexec = lane.number_or("exec_s", 0.0);
      // Pre-CPU-telemetry records lack exec_cpu_s; treating cpu == exec
      // keeps their stall at zero instead of reading exec as all-stall.
      const double lcpu = lane.number_or("exec_cpu_s", lexec);
      // Stall: exec wall the thread spent runnable-but-preempted. Waiting
      // in every form — parked on the queue, blocked at a barrier, or
      // descheduled mid-chunk — counts against the case.
      const double lstall = lexec > lcpu ? lexec - lcpu : 0.0;
      const double lwait = lane.number_or("barrier_wait_s", 0.0) +
                           lane.number_or("queue_idle_s", 0.0) + lstall;
      const double lwall = lane.number_or("wall_s", 0.0);
      cpu += lcpu;
      wait += lwait;
      wall += lwall;
      max_wall = std::max(max_wall, lwall);
      // Pre-task-graph records lack "steals"; default 0 like exec_cpu_s.
      std::printf("    lane %2.0f (%s)  util %3.0f%%  exec %7.3fs  "
                  "cpu %7.3fs  barrier %7.3fs  idle %7.3fs  tasks %.0f  "
                  "steals %.0f\n",
                  lane.number_or("lane", 0.0),
                  lane.find("worker") != nullptr && lane.find("worker")->boolean
                      ? "worker"
                      : "caller",
                  100.0 * lane.number_or("utilization", 0.0), lexec, lcpu,
                  lane.number_or("barrier_wait_s", 0.0),
                  lane.number_or("queue_idle_s", 0.0),
                  lane.number_or("tasks", 0.0),
                  lane.number_or("steals", 0.0));
    }
    const std::size_t n = lanes->array.size();
    // Efficiency over CPU actually burned: stretched-but-preempted exec
    // does not count as parallel progress.
    const double efficiency =
        max_wall > 0.0 ? cpu / (static_cast<double>(n) * max_wall) : 0.0;
    const double wait_share = wall > 0.0 ? 100.0 * wait / wall : 0.0;
    std::printf("    parallel efficiency %.0f%% over %zu lane(s); wait share "
                "%.0f%% of %.3f lane-seconds%s\n",
                100.0 * efficiency, n, wait_share, wall,
                wait_share >= wait_threshold_pct
                    ? "  << FLAT SCALING: lanes mostly waiting, add cores or "
                      "drop threads"
                    : "");
  }
  if (!any_memory) {
    std::printf("(no memory records — obs-disabled build or pre-telemetry "
                "baseline)\n");
  } else if (!any_pool) {
    std::printf("(no allocation records — pre-arena baseline)\n");
  }
  if (!any_lanes) {
    std::printf("(no lane records — obs-disabled build or pre-telemetry "
                "baseline)\n");
  }

  // Serving section: cases that carry service telemetry (the serve_load
  // suite). Splits a request's life into queue wait vs execution and shows
  // what the snapshot chain costs vs shares. Pre-snapshot BENCH files lack
  // the split/snapshot keys and get "-" columns; files with no service
  // telemetry at all simply don't get the section.
  bool serving_header = false;
  for (const Value& b : benchmarks->array) {
    const Value* telemetry = b.find("telemetry");
    if (telemetry == nullptr || !telemetry->is_object() ||
        telemetry->find("qps") == nullptr) {
      continue;
    }
    if (!serving_header) {
      serving_header = true;
      std::printf("serving:\n");
      std::printf("  %-16s %10s %9s %9s %11s %10s %12s\n", "case", "qps",
                  "p50(ms)", "p99(ms)", "qwait50(ms)", "exec50(ms)",
                  "shared(KiB)");
    }
    const Value* name = b.find("name");
    const bool has_split = telemetry->find("queue_wait_p50_ms") != nullptr;
    const bool has_snap = telemetry->find("snapshot_bytes_shared") != nullptr;
    std::printf("  %-16s %10.1f %9.3f %9.3f",
                name != nullptr && name->is_string() ? name->string.c_str()
                                                     : "?",
                telemetry->number_or("qps", 0.0),
                telemetry->number_or("p50_ms", 0.0),
                telemetry->number_or("p99_ms", 0.0));
    if (has_split) {
      std::printf(" %11.4f %10.4f",
                  telemetry->number_or("queue_wait_p50_ms", 0.0),
                  telemetry->number_or("exec_p50_ms", 0.0));
    } else {
      std::printf(" %11s %10s", "-", "-");
    }
    if (has_snap) {
      std::printf(" %12.1f",
                  telemetry->number_or("snapshot_bytes_shared", 0.0) / 1024.0);
    } else {
      std::printf(" %12s", "-");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// -------------------------------------------------------------- metrics ---

void report_metrics(const std::string& path, int top) {
  const Value doc = load_json(path);
  std::printf("=== metrics: %s ===\n", path.c_str());

  const Value* spans = doc.find("spans");
  if (spans != nullptr && spans->is_array() && !spans->array.empty()) {
    // Self time ranks the stages of the pipeline by where wall-clock
    // actually went — the per-stage critical path.
    std::vector<const Value*> rows;
    rows.reserve(spans->array.size());
    for (const Value& s : spans->array) rows.push_back(&s);
    std::stable_sort(rows.begin(), rows.end(), [](const Value* a, const Value* b) {
      return a->number_or("self_s", 0.0) > b->number_or("self_s", 0.0);
    });
    std::printf("top spans by self time:\n");
    std::printf("  %-52s %8s %10s %10s\n", "path", "count", "self", "total");
    const std::size_t limit =
        std::min(rows.size(), static_cast<std::size_t>(top));
    for (std::size_t i = 0; i < limit; ++i) {
      const Value* n = rows[i]->find("path");
      std::printf("  %-52s %8.0f %9.4fs %9.4fs\n",
                  n != nullptr && n->is_string() ? n->string.c_str() : "?",
                  rows[i]->number_or("count", 0.0),
                  rows[i]->number_or("self_s", 0.0),
                  rows[i]->number_or("total_s", 0.0));
    }
  } else {
    std::printf("(no span records — run with --trace/--metrics enabled)\n");
  }

  const Value* gauges = doc.find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    const double exec = gauges->number_or("runtime.exec_s", 0.0);
    const double barrier = gauges->number_or("runtime.barrier_wait_s", 0.0);
    const double idle = gauges->number_or("runtime.queue_idle_s", 0.0);
    const double busy_total = exec + barrier + idle;
    if (busy_total > 0.0) {
      std::printf("wait sites (process lifetime, all lanes):\n");
      std::printf("  executing    %9.4fs (%.0f%%)\n", exec,
                  100.0 * exec / busy_total);
      std::printf("  barrier-wait %9.4fs (%.0f%%)\n", barrier,
                  100.0 * barrier / busy_total);
      std::printf("  queue-idle   %9.4fs (%.0f%%)\n", idle,
                  100.0 * idle / busy_total);
    }
    const double rss_peak = gauges->number_or("mem.rss_peak_bytes", 0.0);
    if (rss_peak > 0.0) {
      std::printf("memory: rss %.1f MiB, peak %.1f MiB, envelope cache %.2f "
                  "MiB, candidate tables %.2f MiB, what-if memo %.2f MiB\n",
                  mib(gauges->number_or("mem.rss_bytes", 0.0)), mib(rss_peak),
                  mib(gauges->number_or("mem.envelope_cache_bytes", 0.0)),
                  mib(gauges->number_or("mem.candidate_tables_bytes", 0.0)),
                  mib(gauges->number_or("mem.whatif_memo_bytes", 0.0)));
    }
  }
  std::printf("\n");
}

// ---------------------------------------------------------------- jsonl ---

void report_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path + ": cannot open");
  std::printf("=== snapshots: %s ===\n", path.c_str());
  std::string line;
  std::size_t records = 0;
  double t_first = 0.0, t_last = 0.0;
  double rss_min = 0.0, rss_max = 0.0, rss_final = 0.0;
  // Arena-vs-RSS timeline: the wave-pool occupancy gauge rides in the
  // snapshot gauges once the arena-backed storage is in the binary.
  // Pre-arena streams simply never set any_pool.
  bool any_pool = false;
  double pool_max = 0.0, pool_final = 0.0, pool_max_rss_share = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Value rec;
    std::string error;
    if (!tka::bench::json::parse(line, &rec, &error)) {
      fail(path + ": bad JSONL record: " + error);
    }
    const double t = rec.number_or("t_s", 0.0);
    const double rss = rec.number_or("rss_bytes", 0.0);
    if (records == 0) {
      t_first = t;
      rss_min = rss_max = rss;
    }
    t_last = t;
    rss_final = rss;
    rss_min = std::min(rss_min, rss);
    rss_max = std::max(rss_max, rss);
    const Value* gauges = rec.find("gauges");
    if (gauges != nullptr && gauges->is_object() &&
        gauges->find("mem.wave_pool_bytes") != nullptr) {
      any_pool = true;
      const double pool = gauges->number_or("mem.wave_pool_bytes", 0.0);
      pool_max = std::max(pool_max, pool);
      pool_final = pool;
      if (rss > 0.0) {
        pool_max_rss_share = std::max(pool_max_rss_share, pool / rss);
      }
    }
    ++records;
  }
  if (records == 0) fail(path + ": no snapshot records");
  std::printf("%zu records over %.3fs; rss min %.1f MiB, peak %.1f MiB, "
              "final %.1f MiB\n",
              records, t_last - t_first, mib(rss_min), mib(rss_max),
              mib(rss_final));
  if (any_pool) {
    std::printf("allocation: wave pool peak %.1f KiB (%.2f%% of rss), "
                "final %.1f KiB\n",
                pool_max / 1024.0, 100.0 * pool_max_rss_share,
                pool_final / 1024.0);
  } else {
    std::printf("(no wave-pool gauge — pre-arena snapshot stream)\n");
  }
  std::printf("\n");
}

// ---------------------------------------------------------------- trace ---

void report_trace(const std::string& path, int top) {
  const Value doc = load_json(path);
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail(path + ": no traceEvents array (not a Chrome trace?)");
  }
  std::printf("=== trace: %s ===\n", path.c_str());
  struct Lane {
    std::vector<std::pair<double, double>> intervals;  // [start, end) in us
  };
  std::map<int, Lane> lanes;
  std::map<std::string, double> by_name;  // total us per span name
  for (const Value& ev : events->array) {
    const Value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string != "X") continue;
    const double ts = ev.number_or("ts", 0.0);
    const double dur = ev.number_or("dur", 0.0);
    const int tid = static_cast<int>(ev.number_or("tid", 0.0));
    lanes[tid].intervals.emplace_back(ts, ts + dur);
    const Value* n = ev.find("name");
    if (n != nullptr && n->is_string()) by_name[n->string] += dur;
  }
  if (lanes.empty()) fail(path + ": no complete spans in trace");
  double span_begin = 0.0, span_end = 0.0;
  bool have_span = false;
  for (auto& [tid, lane] : lanes) {
    for (const auto& [s, e] : lane.intervals) {
      if (!have_span) {
        span_begin = s;
        span_end = e;
        have_span = true;
      }
      span_begin = std::min(span_begin, s);
      span_end = std::max(span_end, e);
    }
  }
  const double span_us = span_end - span_begin;
  std::printf("per-thread busy time (merged spans over %.3fs trace):\n",
              span_us * 1e-6);
  for (auto& [tid, lane] : lanes) {
    // Nested spans overlap on one tid; merging the intervals yields the
    // time the thread was inside *any* span (= busy).
    std::sort(lane.intervals.begin(), lane.intervals.end());
    double busy = 0.0, cur_s = 0.0, cur_e = -1.0;
    for (const auto& [s, e] : lane.intervals) {
      if (e <= cur_e) continue;
      if (s > cur_e) {
        if (cur_e > cur_s) busy += cur_e - cur_s;
        cur_s = s;
      }
      cur_e = e;
    }
    if (cur_e > cur_s) busy += cur_e - cur_s;
    std::printf("  tid %2d: busy %8.3fs (%3.0f%% of trace span), %zu spans\n",
                tid, busy * 1e-6, span_us > 0.0 ? 100.0 * busy / span_us : 0.0,
                lane.intervals.size());
  }
  std::vector<std::pair<std::string, double>> ranked(by_name.begin(),
                                                     by_name.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top span names by total time:\n");
  const std::size_t limit =
      std::min(ranked.size(), static_cast<std::size_t>(top));
  for (std::size_t i = 0; i < limit; ++i) {
    std::printf("  %-52s %9.4fs\n", ranked[i].first.c_str(),
                ranked[i].second * 1e-6);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_path, metrics_path, jsonl_path, trace_path;
  double wait_threshold_pct = 40.0;
  int top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--bench") {
      bench_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--wait-threshold") {
      wait_threshold_pct = std::atof(next());
    } else if (arg == "--top") {
      top = std::atoi(next());
      if (top <= 0) usage(2);
    } else {
      usage(2);
    }
  }
  if (bench_path.empty() && metrics_path.empty() && jsonl_path.empty() &&
      trace_path.empty()) {
    usage(2);
  }
  if (!bench_path.empty()) report_bench(bench_path, wait_threshold_pct);
  if (!metrics_path.empty()) report_metrics(metrics_path, top);
  if (!jsonl_path.empty()) report_jsonl(jsonl_path);
  if (!trace_path.empty()) report_trace(trace_path, top);
  return 0;
}
