// bench_compare: regression gate over two BENCH_*.json files.
//
//   bench_compare BASELINE CANDIDATE [options]
//     --time-threshold F     max relative median-time growth (default 0.15;
//                            negative disables time comparison)
//     --value-threshold F    max relative value drift, either direction
//                            (default 1e-6; negative disables)
//     --counter-threshold F  max relative counter growth (default 0.10;
//                            negative disables)
//     --memory-threshold F   max relative peak-RSS growth (default 0.35;
//                            negative disables)
//     --skip-time | --skip-values | --skip-counters | --skip-memory
//                            shorthand for a negative threshold
//
// Exit codes: 0 = no regression, 1 = regression found, 2 = unusable input
// (missing file, parse failure, schema/suite/scale mismatch, bad usage).
// CI runs this against the committed baselines in bench/baselines/; see
// docs/BENCHMARKING.md for the policy on which classes gate where.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/compare.hpp"

namespace {

[[noreturn]] void usage(int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: bench_compare BASELINE.json CANDIDATE.json\n"
               "  --time-threshold F     default 0.15 (relative; <0 skips)\n"
               "  --value-threshold F    default 1e-6 (relative; <0 skips)\n"
               "  --counter-threshold F  default 0.10 (relative; <0 skips)\n"
               "  --memory-threshold F   default 0.35 (relative; <0 skips)\n"
               "  --skip-time --skip-values --skip-counters --skip-memory\n");
  std::exit(exit_code);
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  tka::bench::CompareOptions opt;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    double v = 0.0;
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--time-threshold") {
      if (!parse_double(next(), &v)) usage(2);
      opt.time_threshold = v;
    } else if (arg == "--value-threshold") {
      if (!parse_double(next(), &v)) usage(2);
      opt.value_threshold = v;
    } else if (arg == "--counter-threshold") {
      if (!parse_double(next(), &v)) usage(2);
      opt.counter_threshold = v;
    } else if (arg == "--memory-threshold") {
      if (!parse_double(next(), &v)) usage(2);
      opt.memory_threshold = v;
    } else if (arg == "--skip-time") {
      opt.time_threshold = -1.0;
    } else if (arg == "--skip-values") {
      opt.value_threshold = -1.0;
    } else if (arg == "--skip-counters") {
      opt.counter_threshold = -1.0;
    } else if (arg == "--skip-memory") {
      opt.memory_threshold = -1.0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option %s\n",
                   std::string(arg).c_str());
      usage(2);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) usage(2);
  return tka::bench::compare_bench_files(paths[0], paths[1], opt, std::cout);
}
