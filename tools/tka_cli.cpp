// tka — command-line front end for the library.
//
//   tka analyze  <netlist> [--spef F] [--clock T] noise-aware timing report
//                                                 (+ violations vs clock T)
//   tka topk     <netlist> [--spef F] [-k N] [--mode add|elim]
//                [--out F.json|F.csv]             top-k aggressor set
//   tka whatif   <netlist> [--spef F] [-k N] [-n N] [--mode add|elim]
//                                                 N-step what-if repair loop
//                                                 over a warm AnalysisSession
//   tka glitch   <netlist> [--spef F]            functional-noise report
//   tka paths    <netlist> [--spef F] [-n N]     worst timing paths
//   tka convert  <netlist> --out F.v|F.bench|F.dot
//   tka serve    [--port N] [--unix PATH] [--design NAME=FILE[,SPEF]]...
//                [--workers N] [--queue-cap N] [--query-threads N]
//                [--prom-out F]                long-lived analysis server
//                                              (protocol: docs/SERVER.md)
//
// Flags shared by every command:
//   --threads N           worker threads for analyze/topk (0 = auto: the
//                         TKA_THREADS env var, then hardware concurrency;
//                         1 = serial; results are identical for any N)
//   --trace FILE.json     record spans; write Chrome trace-event JSON
//                         (open in chrome://tracing or ui.perfetto.dev)
//   --metrics FILE.json   write the metrics registry + span summary JSON
//   --metrics-out FILE    periodic JSONL metric snapshots while the command
//                         runs, plus an RSS sampler (docs/OBSERVABILITY.md)
//   --metrics-interval MS snapshot period for --metrics-out (default 500)
//   --log-level LEVEL     debug|info|warn|error|off (default warn)
//
// <netlist> is a .bench or .v file (by extension). Without --spef,
// parasitics are synthesized with the built-in placer/router/extractor.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "io/bench_reader.hpp"
#include "io/dot_writer.hpp"
#include "io/report_writer.hpp"
#include "io/spef_lite.hpp"
#include "io/verilog_lite.hpp"
#include "layout/extractor.hpp"
#include "layout/placer.hpp"
#include "layout/router.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/envelope_builder.hpp"
#include "noise/glitch.hpp"
#include "noise/iterative.hpp"
#include "noise/violations.hpp"
#include "obs/obs.hpp"
#include "obs/signal_flush.hpp"
#include "server/server.hpp"
#include "session/analysis_session.hpp"
#include "sta/path_enum.hpp"
#include "topk/topk_engine.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

using namespace tka;

namespace {

struct Args {
  std::string command;
  std::string netlist_path;
  std::string spef_path;
  std::string out_path;
  std::string trace_path;    // --trace: Chrome trace-event JSON
  std::string metrics_path;  // --metrics: registry + span summary JSON
  std::string metrics_out;   // --metrics-out: periodic JSONL snapshots
  int metrics_interval_ms = 500;
  int k = 10;
  int num_paths = 5;
  int threads = 0;  // --threads: 0 = auto (TKA_THREADS, then hw concurrency)
  double clock_ns = 0.0;  // 0 = unconstrained
  topk::Mode mode = topk::Mode::kElimination;

  // serve
  int serve_port = -1;               // --port (-1 = no TCP listener)
  std::string serve_unix;            // --unix socket path
  std::vector<std::string> designs;  // --design NAME=FILE[,SPEF]
  int serve_workers = 1;             // --workers per design shard
  int serve_queue_cap = 32;          // --queue-cap admission bound
  int serve_query_threads = 1;       // --query-threads inside each query
  std::string prom_out;              // --prom-out Prometheus text file
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tka <analyze|topk|whatif|glitch|paths|convert> <netlist> "
               "[--spef F] [--clock T] [-k N] [--mode add|elim] [-n N] "
               "[--threads N] [--out F] [--trace F.json] [--metrics F.json] "
               "[--metrics-out F.jsonl] [--metrics-interval MS] "
               "[--log-level debug|info|warn|error|off]\n"
               "       tka serve [--port N] [--unix PATH] "
               "[--design NAME=FILE[,SPEF]]... [--workers N] [--queue-cap N] "
               "[--query-threads N] [--prom-out F] [common flags]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) usage();
  args.command = argv[1];
  int first_flag = 2;
  if (args.command != "serve") {
    // Every other command takes the netlist as its positional argument.
    if (argc < 3) usage();
    args.netlist_path = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--spef") {
      args.spef_path = next();
    } else if (a == "--trace") {
      args.trace_path = next();
    } else if (a == "--metrics") {
      args.metrics_path = next();
    } else if (a == "--metrics-out") {
      args.metrics_out = next();
    } else if (a == "--metrics-interval") {
      args.metrics_interval_ms = std::atoi(next().c_str());
      if (args.metrics_interval_ms <= 0) usage();
    } else if (a == "--log-level") {
      log::Level level;
      if (!log::parse_level(next(), &level)) usage();
      log::set_level(level);
    } else if (a == "-k") {
      args.k = std::atoi(next().c_str());
    } else if (a == "-n") {
      args.num_paths = std::atoi(next().c_str());
    } else if (a == "--threads") {
      args.threads = std::atoi(next().c_str());
      if (args.threads < 0) usage();
    } else if (a == "--out") {
      args.out_path = next();
    } else if (a == "--clock") {
      args.clock_ns = std::atof(next().c_str());
    } else if (a == "--mode") {
      const std::string m = next();
      if (m == "add") {
        args.mode = topk::Mode::kAddition;
      } else if (m == "elim") {
        args.mode = topk::Mode::kElimination;
      } else {
        usage();
      }
    } else if (a == "--port") {
      args.serve_port = std::atoi(next().c_str());
      if (args.serve_port < 0 || args.serve_port > 65535) usage();
    } else if (a == "--unix") {
      args.serve_unix = next();
    } else if (a == "--design") {
      args.designs.push_back(next());
    } else if (a == "--workers") {
      args.serve_workers = std::atoi(next().c_str());
      if (args.serve_workers < 1) usage();
    } else if (a == "--queue-cap") {
      args.serve_queue_cap = std::atoi(next().c_str());
      if (args.serve_queue_cap < 1) usage();
    } else if (a == "--query-threads") {
      args.serve_query_threads = std::atoi(next().c_str());
      if (args.serve_query_threads < 1) usage();
    } else if (a == "--prom-out") {
      args.prom_out = next();
    } else {
      usage();
    }
  }
  return args;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::unique_ptr<net::Netlist> load_netlist(const std::string& path) {
  if (ends_with(path, ".v")) return io::read_verilog_file(path);
  return io::read_bench_file(path);
}

layout::Parasitics load_or_extract(const Args& args, const net::Netlist& nl) {
  if (!args.spef_path.empty()) return io::read_spef_lite_file(args.spef_path, nl);
  const layout::Placement placement = layout::grid_place(nl, {});
  const std::vector<layout::Route> routes = layout::route_all(nl, placement);
  return layout::extract(nl, routes, {});
}

int cmd_analyze(const Args& args) {
  auto nl = load_netlist(args.netlist_path);
  const layout::Parasitics par = load_or_extract(args, *nl);
  sta::DelayModel model(*nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  noise::IterativeOptions iter_opt;
  iter_opt.threads = args.threads;
  const noise::NoiseReport rep =
      noise::analyze_iterative(*nl, par, model, calc,
                               noise::CouplingMask::all(par.num_couplings()),
                               iter_opt);
  std::printf("design        : %s\n", nl->name().c_str());
  std::printf("gates / nets  : %zu / %zu\n", nl->num_gates(), nl->num_nets());
  std::printf("couplings     : %zu\n", par.num_couplings());
  std::printf("noiseless     : %.4f ns\n", rep.noiseless_delay);
  std::printf("with noise    : %.4f ns  (+%.1f%%)\n", rep.noisy_delay,
              100.0 * (rep.noisy_delay / rep.noiseless_delay - 1.0));
  std::printf("iterations    : %d (%s)\n", rep.iterations,
              rep.converged ? "converged" : "NOT converged");
  if (args.clock_ns > 0.0) {
    const noise::ConstraintReport cr =
        noise::check_constraints(*nl, rep, args.clock_ns);
    std::printf("clock         : %.4f ns, worst slack %.4f ns, %zu "
                "violation(s), TNS %.4f ns\n",
                cr.clock_period_ns, cr.worst_slack_ns, cr.violations.size(),
                cr.total_negative_slack_ns);
    for (const noise::Violation& v : cr.violations) {
      std::printf("  VIOLATION %-20s arrival %.4f slack %.4f\n",
                  nl->net(v.endpoint).name.c_str(), v.arrival_ns, v.slack_ns);
    }
  }
  return 0;
}

int cmd_topk(const Args& args) {
  auto nl = load_netlist(args.netlist_path);
  const layout::Parasitics par = load_or_extract(args, *nl);
  sta::DelayModel model(*nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  topk::TopkEngine engine(*nl, par, model, calc);
  topk::TopkOptions opt;
  opt.k = args.k;
  opt.mode = args.mode;
  opt.threads = args.threads;
  const topk::TopkResult res = engine.run(opt);
  std::printf("top-%d %s set (baseline %.4f ns -> %.4f ns):\n", args.k,
              args.mode == topk::Mode::kAddition ? "addition" : "elimination",
              res.baseline_delay, res.evaluated_delay);
  for (layout::CapId id : res.members) {
    const layout::CouplingCap& cc = par.coupling(id);
    std::printf("  %-20s ~ %-20s %8.5f pF\n", nl->net(cc.net_a).name.c_str(),
                nl->net(cc.net_b).name.c_str(), cc.cap_pf);
  }
  std::printf("engine: %.3f s (%d thread%s), %zu candidate sets, max list %zu\n",
              res.stats.runtime_s, res.stats.threads,
              res.stats.threads == 1 ? "" : "s", res.stats.sets_generated,
              res.stats.max_list_size);
  if (!args.out_path.empty()) {
    std::ofstream out(args.out_path);
    TKA_CHECK(static_cast<bool>(out), "topk: cannot open --out file");
    if (ends_with(args.out_path, ".csv")) {
      io::write_topk_trail_csv(out, res);
    } else {
      io::write_topk_result_json(out, *nl, par, res, args.k);
    }
    std::printf("wrote %s\n", args.out_path.c_str());
  }
  return 0;
}

// The repair loop the session's what_if exists for: analyze, decouple the
// worst coupling the top-k report names, re-ask incrementally, repeat -n
// times. The priming run is the only cold analysis; every subsequent query
// reuses the session's baseline fixpoints and memoized candidate lists.
int cmd_whatif(const Args& args) {
  auto nl = load_netlist(args.netlist_path);
  layout::Parasitics par = load_or_extract(args, *nl);
  session::AnalysisSession session(*nl, std::move(par), sta::DelayModelOptions{});
  topk::TopkOptions opt;
  opt.k = args.k;
  opt.mode = args.mode;
  opt.threads = args.threads;

  topk::TopkResult res = session.run(opt);
  std::printf("%-5s %-20s %-20s %10s %12s %9s\n", "step", "victim", "aggressor",
              "cap(pF)", "delay(ns)", "query(s)");
  std::printf("%-5s %-20s %-20s %10s %12.4f %8.3fs\n", "prime", "-", "-", "-",
              res.evaluated_delay, res.stats.runtime_s);
  for (int step = 1; step <= args.num_paths; ++step) {
    if (res.members.empty()) {
      std::printf("nothing left to repair after %d step(s)\n", step - 1);
      break;
    }
    const layout::CapId worst = res.members.front();
    const layout::CouplingCap cc = session.parasitics().coupling(worst);
    session::WhatIfEdit edit;
    edit.zero_couplings = {worst};
    res = session.what_if(edit);
    std::printf("%-5d %-20s %-20s %10.5f %12.4f %8.3fs\n", step,
                session.netlist().net(cc.net_a).name.c_str(),
                session.netlist().net(cc.net_b).name.c_str(), cc.cap_pf,
                res.evaluated_delay, res.stats.runtime_s);
  }
  std::printf("remaining top-%d %s set:\n", args.k,
              args.mode == topk::Mode::kAddition ? "addition" : "elimination");
  for (layout::CapId id : res.members) {
    const layout::CouplingCap& cc = session.parasitics().coupling(id);
    std::printf("  %-20s ~ %-20s %8.5f pF\n",
                session.netlist().net(cc.net_a).name.c_str(),
                session.netlist().net(cc.net_b).name.c_str(), cc.cap_pf);
  }
  return 0;
}

int cmd_glitch(const Args& args) {
  auto nl = load_netlist(args.netlist_path);
  const layout::Parasitics par = load_or_extract(args, *nl);
  sta::DelayModel model(*nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  const sta::StaResult sta_res = sta::run_sta(*nl, model);
  noise::EnvelopeBuilder builder(*nl, par, calc, sta_res.windows);
  const noise::GlitchReport rep = noise::analyze_glitch(
      *nl, par, model, builder, noise::CouplingMask::all(par.num_couplings()));
  std::printf("worst glitch  : %.3f V on %s\n", rep.worst_peak_v,
              rep.worst_net == net::kInvalidNet
                  ? "-"
                  : nl->net(rep.worst_net).name.c_str());
  std::printf("failing nets  : %zu\n", rep.failing_nets.size());
  for (net::NetId n : rep.failing_nets) {
    std::printf("  %-20s coupled %.3f V propagated %.3f V\n",
                nl->net(n).name.c_str(), rep.coupled_peak_v[n],
                rep.propagated_peak_v[n]);
  }
  return 0;
}

int cmd_paths(const Args& args) {
  auto nl = load_netlist(args.netlist_path);
  const layout::Parasitics par = load_or_extract(args, *nl);
  sta::DelayModel model(*nl, par);
  const sta::StaResult sta_res = sta::run_sta(*nl, model);
  const auto paths =
      sta::k_worst_paths(*nl, sta_res, static_cast<size_t>(args.num_paths));
  for (size_t i = 0; i < paths.size(); ++i) {
    std::printf("#%zu  %.4f ns :", i + 1, paths[i].arrival);
    for (net::NetId n : paths[i].nets) std::printf(" %s", nl->net(n).name.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_convert(const Args& args) {
  TKA_CHECK(!args.out_path.empty(), "convert: --out required");
  auto nl = load_netlist(args.netlist_path);
  if (ends_with(args.out_path, ".v")) {
    io::write_verilog_file(args.out_path, *nl);
  } else if (ends_with(args.out_path, ".dot")) {
    std::ofstream out(args.out_path);
    TKA_CHECK(static_cast<bool>(out), "convert: cannot open output");
    io::write_dot(out, *nl);
  } else {
    throw Error("convert: unsupported output format for '" + args.out_path + "'");
  }
  std::printf("wrote %s\n", args.out_path.c_str());
  return 0;
}

// Analysis-as-a-service (docs/SERVER.md): load designs once, serve
// concurrent topk/what_if queries over TCP and/or a unix socket until
// SIGTERM/SIGINT triggers a graceful drain. With neither --port nor --unix,
// listens on an ephemeral TCP port (printed on the "listening" line so
// scripts can pick it up).
int cmd_serve(const Args& args) {
  obs::register_core_metrics();
  server::ServerOptions sopt;
  sopt.tcp_port = args.serve_port;
  sopt.unix_path = args.serve_unix;
  if (sopt.tcp_port < 0 && sopt.unix_path.empty()) sopt.tcp_port = 0;
  sopt.default_shard.workers = args.serve_workers;
  sopt.default_shard.queue_cap =
      static_cast<std::size_t>(args.serve_queue_cap);
  sopt.default_shard.query_threads = args.serve_query_threads;
  server::Server srv(sopt);

  for (const std::string& spec : args.designs) {
    const std::size_t eq = spec.find('=');
    TKA_CHECK(eq != std::string::npos && eq > 0,
              "serve: --design expects NAME=FILE[,SPEF]");
    const std::string name = spec.substr(0, eq);
    std::string file = spec.substr(eq + 1);
    std::string spef;
    if (const std::size_t comma = file.find(','); comma != std::string::npos) {
      spef = file.substr(comma + 1);
      file = file.substr(0, comma);
    }
    std::string error;
    if (!srv.load_design(name, file, spef, &error)) {
      throw Error("serve: cannot load '" + name + "': " + error);
    }
    std::printf("loaded design '%s' from %s\n", name.c_str(), file.c_str());
  }

  std::string error;
  if (!srv.start(&error)) throw Error("serve: " + error);
  if (srv.tcp_port() >= 0) {
    std::printf("listening on 127.0.0.1:%d\n", srv.tcp_port());
  }
  if (!args.serve_unix.empty()) {
    std::printf("listening on unix:%s\n", args.serve_unix.c_str());
  }
  std::printf("ready\n");
  std::fflush(stdout);

  // First signal: graceful drain (in-flight queries finish and respond).
  // Second signal: the default flush-and-exit path, which still writes the
  // --prom-out dump via the hook below.
  if (!args.prom_out.empty()) {
    obs::add_flush_hook([path = args.prom_out] {
      std::ofstream out(path);
      if (out) obs::write_prometheus_text(out);
    });
  }
  obs::install_signal_flush();
  obs::set_graceful_delegate([&srv](int) { srv.request_shutdown(); });
  srv.wait();
  obs::set_graceful_delegate({});

  if (!args.prom_out.empty()) {
    std::ofstream out(args.prom_out);
    TKA_CHECK(static_cast<bool>(out), "serve: cannot open --prom-out file");
    obs::write_prometheus_text(out);
    std::printf("wrote %s\n", args.prom_out.c_str());
  }
  std::printf("drained\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (!args.trace_path.empty() || !args.metrics_path.empty()) {
      obs::register_core_metrics();
      obs::tracer().enable(true);
    }
    std::unique_ptr<obs::MetricsFileSink> sink;
    std::unique_ptr<obs::RssSampler> rss;
    if (!args.metrics_out.empty()) {
      obs::register_core_metrics();
      sink = std::make_unique<obs::MetricsFileSink>(args.metrics_out,
                                                    args.metrics_interval_ms);
      TKA_CHECK(sink->ok(), "cannot open --metrics-out file");
      // Drive the mem.rss_* gauges so the snapshot timeline shows the
      // footprint, not just the counters.
      rss = std::make_unique<obs::RssSampler>(args.metrics_interval_ms);
    }
    // An interrupted run still flushes its observability artifacts: the
    // JSONL sink's final record, the trace and the metrics dump (all
    // idempotent, so a clean exit path re-running them is harmless).
    if (sink != nullptr || !args.trace_path.empty() ||
        !args.metrics_path.empty()) {
      obs::install_signal_flush();
      obs::add_flush_hook([&args, &sink, &rss] {
        if (rss) rss->stop();
        if (sink) sink->stop();
        if (!args.trace_path.empty()) {
          std::ofstream out(args.trace_path);
          if (out) obs::tracer().write_chrome_json(out);
        }
        if (!args.metrics_path.empty()) {
          obs::run_collectors();
          std::ofstream out(args.metrics_path);
          if (out) obs::write_metrics_json(out);
        }
      });
    }
    int rc = -1;
    if (args.command == "analyze") rc = cmd_analyze(args);
    else if (args.command == "topk") rc = cmd_topk(args);
    else if (args.command == "whatif") rc = cmd_whatif(args);
    else if (args.command == "glitch") rc = cmd_glitch(args);
    else if (args.command == "paths") rc = cmd_paths(args);
    else if (args.command == "convert") rc = cmd_convert(args);
    else if (args.command == "serve") rc = cmd_serve(args);
    else usage();
    if (!args.trace_path.empty()) {
      std::ofstream out(args.trace_path);
      TKA_CHECK(static_cast<bool>(out), "cannot open --trace file");
      obs::tracer().write_chrome_json(out);
      std::printf("wrote %s\n", args.trace_path.c_str());
    }
    if (rss) rss->stop();
    if (sink) {
      sink->stop();
      std::printf("wrote %s (%llu snapshot records)\n", args.metrics_out.c_str(),
                  static_cast<unsigned long long>(sink->records()));
    }
    if (!args.metrics_path.empty()) {
      obs::run_collectors();
      std::ofstream out(args.metrics_path);
      TKA_CHECK(static_cast<bool>(out), "cannot open --metrics file");
      obs::write_metrics_json(out);
      std::printf("wrote %s\n", args.metrics_path.c_str());
    }
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "tka: %s\n", e.what());
    return 1;
  }
}
