#!/usr/bin/env python3
"""Docs link and code-path checker.

Validates, for every markdown file in docs/ plus README.md:

  * intra-repo markdown links — `[text](path)` and `[text](path#anchor)`
    where the path is relative (not http/https/mailto) — resolve to a file
    that exists, and the #anchor (if any) matches a heading in the target
    (GitHub slug rules: lowercase, punctuation stripped, spaces to dashes);
  * backtick code-path references that look like repo paths — `src/...`,
    `bench/...`, `tests/...`, `tools/...`, `docs/...`, `examples/...` —
    name files or directories that actually exist, so prose never drifts
    behind a rename.

Trailing location suffixes in code refs (`src/foo.cpp:123`, `src/foo.hpp`
inside a longer phrase) are handled; glob-ish refs containing `*` or `<`
placeholders are skipped. Exits nonzero listing every broken ref.

Run from the repo root (CI does):  python3 tools/check_docs_links.py
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Backticked tokens that start with one of these are checked as paths.
CODE_PATH_PREFIXES = ("src/", "bench/", "tests/", "tools/", "docs/",
                      "examples/", ".github/")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_REF = re.compile(r"`([^`]+)`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading):
    """GitHub's anchor slug: strip punctuation, lowercase, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip()
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        content = f.read()
    slugs = {}
    out = set()
    for m in HEADING.finditer(content):
        slug = github_slug(m.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def expand_braces(ref):
    """`src/wave/envelope.{hpp,cpp}` -> both concrete paths."""
    m = re.match(r"^(.*)\{([^}]*)\}(.*)$", ref)
    if not m:
        return [ref]
    return [m.group(1) + alt + m.group(3) for alt in m.group(2).split(",")]


def path_exists(ref):
    """True when `ref` names a committed path, or a built binary whose
    source sits next to it (`tools/bench_compare` -> bench_compare.cpp)."""
    full = os.path.join(REPO, ref)
    if os.path.exists(full):
        return True
    if not os.path.splitext(ref)[1]:
        return any(os.path.exists(full + ext) for ext in (".cpp", ".py"))
    return False


def check_file(md_path, errors):
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    rel = os.path.relpath(md_path, REPO)
    md_dir = os.path.dirname(md_path)

    for lineno, line in enumerate(content.splitlines(), 1):
        for m in MD_LINK.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, anchor = target.partition("#")
            if not path:  # same-file anchor
                dest = md_path
            else:
                dest = os.path.normpath(os.path.join(md_dir, path))
            if not os.path.exists(dest):
                errors.append(f"{rel}:{lineno}: broken link `{target}` "
                              f"(no such file {os.path.relpath(dest, REPO)})")
                continue
            if anchor and dest.endswith(".md"):
                if anchor not in anchors_of(dest):
                    errors.append(f"{rel}:{lineno}: broken anchor "
                                  f"`{target}` (no heading slugs to "
                                  f"`#{anchor}` in "
                                  f"{os.path.relpath(dest, REPO)})")

        for m in CODE_REF.finditer(line):
            ref = m.group(1).strip()
            if not ref.startswith(CODE_PATH_PREFIXES):
                continue
            if any(c in ref for c in "*<>$ "):  # glob/placeholder/prose
                continue
            ref = ref.rstrip("/").split(":")[0]  # drop :lineno suffix
            for expanded in expand_braces(ref):
                if not path_exists(expanded):
                    errors.append(f"{rel}:{lineno}: stale code ref "
                                  f"`{expanded}` (no such path)")


def main():
    targets = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md"):
            targets.append(os.path.join(docs, name))

    errors = []
    for path in targets:
        check_file(path, errors)

    if errors:
        print(f"check_docs_links: {len(errors)} broken reference(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_docs_links: {len(targets)} files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
