// tka_load — load generator for a running `tka serve` daemon
// (docs/SERVER.md).
//
//   tka_load (--port N [--host H] | --unix PATH) [--design NAME]
//            [--clients N] [--duration S | --requests N] [--rate QPS]
//            [-k N] [--mode add|elim] [--whatif-every N] [--whatif-caps N]
//            [--reconnect-every N] [--out F.json] [--quiet]
//
// Two driving disciplines:
//   - Closed loop (default): each client connection issues back-to-back
//     queries; offered load tracks service capacity. Measures the server's
//     sustainable throughput and per-query service latency.
//   - Open loop (--rate QPS > 0): requests fire on a fixed global schedule
//     regardless of completions, spread round-robin over the client
//     connections. Latency is measured from the *scheduled* send time, so
//     queueing delay under overload is charged to the server rather than
//     silently absorbed (no coordinated omission).
//
// Every Nth request (--whatif-every) is a what_if commit (a shield edit on
// a rotating coupling id) instead of a read-only topk, exercising the
// epoch/commit path under concurrency. Default 0 = topk only.
//
// Connections are pooled: each client stream opens one connection up front
// and reuses it for every request, so the measured window contains no
// handshakes. Connect times are measured and reported separately (stdout
// and the JSON's connect_s block) — request latency percentiles never mix
// in handshake cost. --reconnect-every N tears the connection down every N
// requests to quantify that handshake cost explicitly; a stream whose
// connection dies mid-run reconnects once (counted under reconnects)
// before giving up.
//
// Output: human summary on stdout plus an optional machine JSON (--out)
// with qps, latency percentiles and per-error-code counts. Exits nonzero
// on any transport failure or when zero requests completed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "server/client.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

using namespace tka;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string unix_path;
  std::string design;
  int clients = 4;
  double duration_s = 10.0;
  long requests = 0;  // total request budget (0 = duration-driven)
  double rate = 0.0;  // open-loop arrival rate in qps (0 = closed loop)
  int k = 5;
  std::string mode = "elim";
  long whatif_every = 0;
  int whatif_caps = 8;
  long reconnect_every = 0;  // 0 = one pooled connection per stream
  std::string out_path;
  bool quiet = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tka_load (--port N [--host H] | --unix PATH) [--design NAME] "
      "[--clients N] [--duration S | --requests N] [--rate QPS] [-k N] "
      "[--mode add|elim] [--whatif-every N] [--whatif-caps N] "
      "[--reconnect-every N] [--out F.json] [--quiet]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--host") args.host = next();
    else if (a == "--port") args.port = std::atoi(next().c_str());
    else if (a == "--unix") args.unix_path = next();
    else if (a == "--design") args.design = next();
    else if (a == "--clients") args.clients = std::atoi(next().c_str());
    else if (a == "--duration") args.duration_s = std::atof(next().c_str());
    else if (a == "--requests") args.requests = std::atol(next().c_str());
    else if (a == "--rate") args.rate = std::atof(next().c_str());
    else if (a == "-k") args.k = std::atoi(next().c_str());
    else if (a == "--mode") args.mode = next();
    else if (a == "--whatif-every") args.whatif_every = std::atol(next().c_str());
    else if (a == "--whatif-caps") args.whatif_caps = std::atoi(next().c_str());
    else if (a == "--reconnect-every") args.reconnect_every = std::atol(next().c_str());
    else if (a == "--out") args.out_path = next();
    else if (a == "--quiet") args.quiet = true;
    else usage();
  }
  if ((args.port < 0) == args.unix_path.empty()) usage();  // exactly one
  if (args.clients < 1 || args.k < 1 || args.whatif_caps < 1 ||
      args.reconnect_every < 0) {
    usage();
  }
  if (args.mode != "add" && args.mode != "elim") usage();
  return args;
}

std::string make_query(const Args& args, long seq) {
  std::string req = str::format("{\"id\": %ld, \"op\": ", seq);
  const bool whatif =
      args.whatif_every > 0 && seq % args.whatif_every == args.whatif_every - 1;
  if (whatif) {
    req += str::format("\"what_if\", \"shield\": [%ld]",
                       seq % args.whatif_caps);
  } else {
    req += "\"topk\"";
  }
  req += str::format(", \"k\": %d, \"mode\": \"%s\"", args.k,
                     args.mode.c_str());
  if (!args.design.empty()) {
    req += str::format(", \"design\": \"%s\"", args.design.c_str());
  }
  req += "}";
  return req;
}

struct WorkerStats {
  std::vector<double> latencies_s;
  std::vector<double> connects_s;  // handshake times, kept out of latencies
  long ok = 0;
  std::map<std::string, long> errors;  // protocol error code -> count
  long transport_failures = 0;
  long reconnects = 0;
};

/// Error code of a response payload ("" when ok). Malformed payloads count
/// as protocol errors too.
std::string response_error_code(const std::string& payload) {
  util::json::Value doc;
  std::string err;
  if (!util::json::parse(payload, &doc, &err)) return "unparseable_response";
  const util::json::Value* ok = doc.find("ok");
  if (ok == nullptr || !ok->is_bool()) return "unparseable_response";
  if (ok->boolean) return "";
  if (const util::json::Value* e = doc.find("error")) {
    if (const util::json::Value* code = e->find("code");
        code != nullptr && code->is_string()) {
      return code->string;
    }
  }
  return "unknown_error";
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::vector<WorkerStats> stats(static_cast<std::size_t>(args.clients));

  // Timed (re)connect of one pooled stream; handshake cost lands in
  // connects_s, never in the request latency percentiles.
  const auto connect_client = [&args](server::Client& c, WorkerStats& st,
                                      std::string* error) {
    c.close();
    const std::int64_t t = obs::now_ns();
    const bool ok = args.unix_path.empty()
                        ? c.connect_tcp(args.host, args.port, error)
                        : c.connect_unix(args.unix_path, error);
    if (ok) st.connects_s.push_back(obs::ns_to_seconds(obs::now_ns() - t));
    return ok;
  };

  // Connect every client up front so a bad address fails fast and the
  // measured window contains no handshakes.
  std::vector<server::Client> clients(static_cast<std::size_t>(args.clients));
  for (int w = 0; w < args.clients; ++w) {
    std::string error;
    if (!connect_client(clients[static_cast<std::size_t>(w)],
                        stats[static_cast<std::size_t>(w)], &error)) {
      std::fprintf(stderr, "tka_load: connect: %s\n", error.c_str());
      return 1;
    }
  }

  const std::int64_t t0 = obs::now_ns();
  const std::int64_t deadline =
      t0 + static_cast<std::int64_t>(args.duration_s * 1e9);
  std::atomic<long> ticket{0};
  const long budget = args.requests > 0 ? args.requests
                                        : std::numeric_limits<long>::max();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(args.clients));
  for (int w = 0; w < args.clients; ++w) {
    threads.emplace_back([&, w] {
      server::Client& client = clients[static_cast<std::size_t>(w)];
      WorkerStats& st = stats[static_cast<std::size_t>(w)];
      long stream_requests = 0;
      while (true) {
        const long seq = ticket.fetch_add(1, std::memory_order_relaxed);
        if (seq >= budget) return;
        std::int64_t scheduled = obs::now_ns();
        if (args.rate > 0.0) {
          // Open loop: request `seq` fires at t0 + seq/rate, come what may.
          scheduled = t0 + static_cast<std::int64_t>(
                               static_cast<double>(seq) / args.rate * 1e9);
          if (scheduled >= deadline) return;
          while (obs::now_ns() < scheduled) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        } else if (scheduled >= deadline) {
          return;
        }
        if (args.reconnect_every > 0 && stream_requests > 0 &&
            stream_requests % args.reconnect_every == 0) {
          std::string error;
          if (!connect_client(client, st, &error)) {
            ++st.transport_failures;
            return;
          }
        }
        ++stream_requests;
        const std::string req = make_query(args, seq);
        std::string resp, error;
        if (!client.call(req, &resp, &error)) {
          // The connection died mid-run; reconnect once and retry the
          // request before declaring the stream dead.
          ++st.reconnects;
          if (!connect_client(client, st, &error) ||
              !client.call(req, &resp, &error)) {
            ++st.transport_failures;
            return;  // this stream is dead; let the others finish
          }
        }
        st.latencies_s.push_back(
            obs::ns_to_seconds(obs::now_ns() - scheduled));
        const std::string code = response_error_code(resp);
        if (code.empty()) ++st.ok;
        else ++st.errors[code];
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = obs::ns_to_seconds(obs::now_ns() - t0);

  // Merge.
  std::vector<double> lat, connects;
  long ok = 0, transport = 0, reconnects = 0;
  std::map<std::string, long> errors;
  for (const WorkerStats& st : stats) {
    lat.insert(lat.end(), st.latencies_s.begin(), st.latencies_s.end());
    connects.insert(connects.end(), st.connects_s.begin(),
                    st.connects_s.end());
    ok += st.ok;
    transport += st.transport_failures;
    reconnects += st.reconnects;
    for (const auto& [code, n] : st.errors) errors[code] += n;
  }
  std::sort(lat.begin(), lat.end());
  std::sort(connects.begin(), connects.end());
  const long completed = static_cast<long>(lat.size());
  const double qps =
      elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  const double p50 = percentile(lat, 0.50);
  const double p90 = percentile(lat, 0.90);
  const double p99 = percentile(lat, 0.99);
  const double max = lat.empty() ? 0.0 : lat.back();
  const double conn_p50 = percentile(connects, 0.50);
  const double conn_max = connects.empty() ? 0.0 : connects.back();

  if (!args.quiet) {
    std::printf("clients %d  %s  elapsed %.2fs\n", args.clients,
                args.rate > 0.0
                    ? str::format("open-loop %.1f qps offered", args.rate).c_str()
                    : "closed-loop",
                elapsed_s);
    std::printf("completed %ld (ok %ld, rejected %ld, transport failures %ld)\n",
                completed, ok, completed - ok, transport);
    std::printf("throughput %.2f qps\n", qps);
    std::printf("latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
                p50 * 1e3, p90 * 1e3, p99 * 1e3, max * 1e3);
    std::printf("connects %zu (p50 %.2fms max %.2fms, reconnects %ld) — "
                "excluded from latency\n",
                connects.size(), conn_p50 * 1e3, conn_max * 1e3, reconnects);
    for (const auto& [code, n] : errors) {
      std::printf("  error %-16s %ld\n", code.c_str(), n);
    }
  }

  if (!args.out_path.empty()) {
    std::ofstream out(args.out_path);
    if (!out) {
      std::fprintf(stderr, "tka_load: cannot open %s\n",
                   args.out_path.c_str());
      return 1;
    }
    out << str::format(
        "{\"clients\": %d, \"rate_qps\": %.17g, \"elapsed_s\": %.17g, "
        "\"completed\": %ld, \"ok\": %ld, \"transport_failures\": %ld, "
        "\"qps\": %.17g, \"latency_s\": {\"p50\": %.17g, \"p90\": %.17g, "
        "\"p99\": %.17g, \"max\": %.17g}, \"connect_s\": {\"count\": %zu, "
        "\"p50\": %.17g, \"max\": %.17g}, \"reconnects\": %ld, "
        "\"errors\": {",
        args.clients, args.rate, elapsed_s, completed, ok, transport, qps,
        p50, p90, p99, max, connects.size(), conn_p50, conn_max, reconnects);
    bool first = true;
    for (const auto& [code, n] : errors) {
      out << str::format("%s\"%s\": %ld", first ? "" : ", ", code.c_str(), n);
      first = false;
    }
    out << "}}\n";
    std::printf("wrote %s\n", args.out_path.c_str());
  }
  return (transport > 0 || completed == 0) ? 1 : 0;
}
