// The `tka serve` daemon core: listeners, connection handling, dispatch
// (docs/SERVER.md).
//
// Designs load once into a registry of per-design Shards (each a worker
// pool over private design replicas); queries from any number of
// connections fan into the shards' bounded queues. The server owns only
// transport and routing — consistency and admission live in Shard.
//
// Connections are thread-per-connection (the expensive part of a request is
// the analysis, not the socket), frames are length-prefixed JSON
// (server/frame.hpp), and responses may interleave across a connection in
// completion order — clients match on the echoed request id.
//
// Shutdown: request_shutdown() (idempotent, signal-safe caller side) stops
// the listeners, flips every new query to the typed `draining` error,
// drains the shard queues, then unblocks and joins the connection threads.
// In-flight queries always get their response before the socket closes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/shard.hpp"
#include "server/socket_util.hpp"

namespace tka::server {

struct ServerOptions {
  /// TCP listener on 127.0.0.1 (0 = ephemeral, -1 = no TCP listener).
  int tcp_port = -1;
  /// Unix-domain socket path ("" = no unix listener).
  std::string unix_path;
  /// Shard shape for designs loaded over the wire (`load` op); add_design
  /// callers pass their own.
  ShardOptions default_shard;
  /// Options template for `load`-ed designs' queries.
  topk::TopkOptions default_topk;
  sta::DelayModelOptions model;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a design before or after start(). Fails (returns false with
  /// *error) on a duplicate name.
  bool add_design(const std::string& name, std::unique_ptr<net::Netlist> nl,
                  layout::Parasitics par, const ShardOptions& shard_opt,
                  const topk::TopkOptions& base_opt, std::string* error);

  /// Loads a design from disk (same loaders and synthesized-parasitics
  /// fallback as the CLI) under the server's default options.
  bool load_design(const std::string& name, const std::string& netlist_path,
                   const std::string& spef_path, std::string* error);

  /// Binds the configured listeners and starts accepting. Returns false
  /// with *error when a bind fails.
  bool start(std::string* error);

  /// The bound TCP port (after start(); useful with tcp_port = 0).
  int tcp_port() const { return tcp_port_; }

  /// Graceful drain; safe to call from any thread, more than once. Returns
  /// immediately — wait() observes completion.
  void request_shutdown();

  /// Blocks until request_shutdown() was called and the drain finished.
  void wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    Fd fd;
    std::mutex write_mu;  ///< frames must not interleave mid-write
  };

  void accept_loop(int listen_fd);
  void connection_loop(std::shared_ptr<Connection> conn, std::uint64_t id);
  /// Parses and dispatches one frame payload. Responses go out through
  /// `conn` (possibly from a shard worker thread, later).
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void send_payload(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  std::shared_ptr<Shard> find_shard(const std::string& name);
  std::string handle_list();

  ServerOptions opt_;
  int tcp_port_ = -1;

  Fd tcp_listen_;
  Fd unix_listen_;
  std::vector<std::thread> accept_threads_;

  std::mutex designs_mu_;
  std::map<std::string, std::shared_ptr<Shard>> designs_;

  std::mutex conns_mu_;
  std::map<std::uint64_t, std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  std::uint64_t next_conn_id_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  std::condition_variable shutdown_cv_;
};

}  // namespace tka::server
