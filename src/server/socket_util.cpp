#include "server/socket_util.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/string_util.hpp"

namespace tka::server {
namespace {

std::string errno_msg(const char* what) {
  return str::format("%s: %s", what, std::strerror(errno));
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(int port, int* bound_port, std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_msg("socket");
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = errno_msg("bind");
    return {};
  }
  if (::listen(fd.get(), 64) != 0) {
    *error = errno_msg("listen");
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      *error = errno_msg("getsockname");
      return {};
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

Fd listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = str::format("unix socket path too long (%zu bytes, max %zu)",
                         path.size(), sizeof(addr.sun_path) - 1);
    return {};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_msg("socket");
    return {};
  }
  ::unlink(path.c_str());  // drop a stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = errno_msg("bind");
    return {};
  }
  if (::listen(fd.get(), 64) != 0) {
    *error = errno_msg("listen");
    return {};
  }
  return fd;
}

Fd connect_tcp(const std::string& host, int port, std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_msg("socket");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = str::format("invalid IPv4 address '%s'", host.c_str());
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = errno_msg("connect");
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Fd connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = str::format("unix socket path too long (%zu bytes, max %zu)",
                         path.size(), sizeof(addr.sun_path) - 1);
    return {};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_msg("socket");
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = errno_msg("connect");
    return {};
  }
  return fd;
}

bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

long read_some(int fd, void* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::read(fd, buf, n);
    if (r < 0 && errno == EINTR) continue;
    return static_cast<long>(r);
  }
}

}  // namespace tka::server
