// Blocking client for the `tka serve` wire protocol, shared by the load
// generator (tools/tka_load), the latency bench (bench/serve_load) and the
// protocol tests. One connection, synchronous call() — callers that want
// concurrency open one client per thread.
#pragma once

#include <string>

#include "server/frame.hpp"
#include "server/socket_util.hpp"

namespace tka::server {

class Client {
 public:
  Client() = default;

  /// Connect to 127.0.0.1:`port` or to a unix socket path.
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connect_unix(const std::string& path, std::string* error);
  bool connected() const { return fd_.valid(); }
  void close() { fd_ = Fd(); }

  /// Sends one request payload and blocks for one response payload.
  /// Responses arrive in completion order, but a single synchronous caller
  /// never has more than one in flight, so pairing is trivial.
  bool call(const std::string& request, std::string* response,
            std::string* error);

  /// One half each, for pipelined use (N sends, then N receives).
  bool send(const std::string& request, std::string* error);
  bool receive(std::string* response, std::string* error);

 private:
  Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace tka::server
