#include "server/frame.hpp"

#include "util/string_util.hpp"

namespace tka::server {

std::string encode_frame(std::string_view payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload);
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (broken_ || n == 0) return;
  compact();
  buffer_.append(static_cast<const char*>(data), n);
}

FrameDecoder::Status FrameDecoder::fail(const std::string& what) {
  broken_ = true;
  if (error_.empty()) error_ = what;
  return Status::kError;
}

void FrameDecoder::compact() {
  // Reclaim handed-out bytes once they dominate the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameDecoder::Status FrameDecoder::next(std::string* payload) {
  if (broken_) return Status::kError;
  if (buffered() < 4) return Status::kNeedMore;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint64_t len = (static_cast<std::uint64_t>(p[0]) << 24) |
                            (static_cast<std::uint64_t>(p[1]) << 16) |
                            (static_cast<std::uint64_t>(p[2]) << 8) |
                            static_cast<std::uint64_t>(p[3]);
  if (len > max_frame_bytes_) {
    return fail(str::format("oversized frame: length prefix %llu exceeds the "
                            "%zu-byte limit",
                            static_cast<unsigned long long>(len),
                            max_frame_bytes_));
  }
  if (buffered() < 4 + len) return Status::kNeedMore;
  payload->assign(buffer_, consumed_ + 4, static_cast<std::size_t>(len));
  consumed_ += 4 + static_cast<std::size_t>(len);
  compact();
  return Status::kFrame;
}

FrameDecoder::Status FrameDecoder::finish() {
  if (broken_) return Status::kError;
  if (buffered() == 0) return Status::kNeedMore;
  return fail(str::format("truncated frame: stream ended with %zu buffered "
                          "byte(s) of an unfinished frame",
                          buffered()));
}

}  // namespace tka::server
