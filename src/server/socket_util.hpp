// Thin POSIX socket helpers shared by the server, the client library and
// the load generator: listen/connect on TCP (IPv4 loopback by default) and
// unix-domain sockets, plus EINTR-safe full reads/writes.
//
// Everything returns -1 / false with errno preserved on failure; callers
// format their own error messages. No global state, no signals masked —
// SIGPIPE is avoided per-call with MSG_NOSIGNAL.
#pragma once

#include <cstddef>
#include <string>

namespace tka::server {

/// RAII file descriptor (close-on-destroy, movable).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (port 0 = ephemeral). On success returns the
/// listening fd and stores the bound port in *bound_port.
Fd listen_tcp(int port, int* bound_port, std::string* error);

/// Listens on a unix-domain socket at `path` (any stale socket file is
/// unlinked first).
Fd listen_unix(const std::string& path, std::string* error);

Fd connect_tcp(const std::string& host, int port, std::string* error);
Fd connect_unix(const std::string& path, std::string* error);

/// Writes all `n` bytes, retrying on EINTR/short writes. SIGPIPE-safe.
bool write_all(int fd, const void* data, std::size_t n);

/// Reads up to `n` bytes once (retrying EINTR). Returns bytes read, 0 at
/// EOF, -1 on error.
long read_some(int fd, void* buf, std::size_t n);

}  // namespace tka::server
