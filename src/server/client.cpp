#include "server/client.hpp"

#include <cerrno>
#include <cstring>

#include "util/string_util.hpp"

namespace tka::server {

bool Client::connect_tcp(const std::string& host, int port,
                         std::string* error) {
  fd_ = server::connect_tcp(host, port, error);
  decoder_ = FrameDecoder();
  return fd_.valid();
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  fd_ = server::connect_unix(path, error);
  decoder_ = FrameDecoder();
  return fd_.valid();
}

bool Client::send(const std::string& request, std::string* error) {
  const std::string frame = encode_frame(request);
  if (!write_all(fd_.get(), frame.data(), frame.size())) {
    *error = str::format("send: %s", std::strerror(errno));
    return false;
  }
  return true;
}

bool Client::receive(std::string* response, std::string* error) {
  char buf[65536];
  while (true) {
    switch (decoder_.next(response)) {
      case FrameDecoder::Status::kFrame:
        return true;
      case FrameDecoder::Status::kError:
        *error = decoder_.error();
        return false;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    const long n = read_some(fd_.get(), buf, sizeof(buf));
    if (n < 0) {
      *error = str::format("recv: %s", std::strerror(errno));
      return false;
    }
    if (n == 0) {
      *error = decoder_.finish() == FrameDecoder::Status::kError
                   ? decoder_.error()
                   : "connection closed by server";
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

bool Client::call(const std::string& request, std::string* response,
                  std::string* error) {
  return send(request, error) && receive(response, error);
}

}  // namespace tka::server
