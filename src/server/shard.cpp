#include "server/shard.hpp"

#include <exception>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace tka::server {

Shard::Shard(std::string name, std::unique_ptr<net::Netlist> nl,
             layout::Parasitics par, const sta::DelayModelOptions& model_opt,
             const topk::TopkOptions& base_opt, const ShardOptions& opt)
    : name_(std::move(name)),
      model_opt_(model_opt),
      base_opt_(base_opt),
      opt_(opt),
      head_(session::DesignSnapshot::make_base(std::move(*nl), std::move(par),
                                               model_opt)) {
  const int n = opt_.workers < 1 ? 1 : opt_.workers;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Shard::~Shard() { join(); }

bool Shard::submit(Request req, Respond respond) {
  const std::int64_t now = obs::now_ns();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!accepting_ || queue_.size() >= opt_.queue_cap) return false;
    queue_.push_back(Job{std::move(req), std::move(respond), now});
    depth = queue_.size();
  }
  obs::registry().gauge("server.queue_depth." + name_)
      .set(static_cast<double>(depth));
  queue_cv_.notify_one();
  return true;
}

void Shard::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    accepting_ = false;
  }
  queue_cv_.notify_all();
}

void Shard::join() {
  begin_drain();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers released their sessions (and snapshot pins) on exit; drop the
  // warm writer too so only the head snapshot stays live after drain.
  {
    std::lock_guard<std::mutex> writer_lock(writer_mu_);
    writer_.reset();
  }
  session::DesignSnapshot::publish_gauges();
}

std::uint64_t Shard::epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return head_->epoch();
}

std::size_t Shard::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

std::shared_ptr<const session::DesignSnapshot> Shard::head() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return head_;
}

void Shard::worker_loop() {
  WorkerState ws;
  std::vector<Job> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // draining and drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (batch.front().req.op != "what_if") {
        // Coalesce the run of compatible reads queued behind this one.
        // Stop at the first what_if (or incompatible read) so committed
        // edits keep their admission-order position.
        const Request& first = batch.front().req;
        while (!queue_.empty() && batch.size() < opt_.coalesce_max) {
          const Request& next = queue_.front().req;
          if (next.op == "what_if" || next.k != first.k ||
              next.mode != first.mode) {
            break;
          }
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      obs::registry().gauge("server.queue_depth." + name_)
          .set(static_cast<double>(queue_.size()));
    }
    if (batch.size() > 1) {
      obs::registry().counter("server.coalesced_batches").add();
      obs::registry().counter("server.coalesced_reads").add(batch.size() - 1);
    }
    serve_batch(ws, batch);
  }
}

void Shard::serve_batch(WorkerState& ws, std::vector<Job>& batch) {
  const std::int64_t start = obs::now_ns();
  obs::Histogram& queue_wait = obs::registry().histogram("server.queue_wait_s");
  for (const Job& job : batch) {
    queue_wait.observe(obs::ns_to_seconds(start - job.enqueued_ns));
  }

  const bool is_what_if = batch.front().req.op == "what_if";
  std::uint64_t epoch = 0;
  std::string extra;   // shared "result": {...} fragment for topk batches
  std::string error;   // whole response (what_if / failure), single job
  try {
    if (is_what_if) {
      error = serve_what_if(batch.front().req, &epoch);
    } else {
      extra = topk_result_extra(ws, batch.front().req.k,
                                batch.front().req.mode, &epoch);
    }
  } catch (const std::exception& e) {
    for (Job& job : batch) {
      obs::registry().counter("server.responses_error").add();
      job.respond(
          make_error_response(job.req.id, ErrorCode::kInternal, e.what()));
    }
    return;
  }

  obs::Histogram& latency = obs::registry().histogram(
      is_what_if ? "server.latency.whatif_s" : "server.latency.topk_s");
  for (Job& job : batch) {
    std::string response = is_what_if
                               ? std::move(error)
                               : make_ok_response(job.req.id, epoch, extra);
    const bool ok = response.find("\"ok\": true") != std::string::npos;
    obs::registry()
        .counter(ok ? "server.responses_ok" : "server.responses_error")
        .add();
    latency.observe(obs::ns_to_seconds(obs::now_ns() - start));
    job.respond(std::move(response));
  }
}

std::string Shard::topk_result_extra(WorkerState& ws, int k, topk::Mode mode,
                                     std::uint64_t* epoch_out) {
  // Pin the head and copy the log tail the warm session has not applied.
  std::shared_ptr<const session::DesignSnapshot> head;
  std::vector<session::WhatIfEdit> pending;
  const bool warm = ws.session != nullptr && ws.k == k && ws.mode == mode;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    head = head_;
    if (warm && ws.epoch < head_->epoch()) {
      pending.assign(
          edit_log_.begin() + static_cast<std::ptrdiff_t>(ws.epoch),
          edit_log_.end());
    }
  }
  const std::uint64_t epoch = head->epoch();
  *epoch_out = epoch;

  std::string extra;
  if (cache_lookup(epoch, k, mode, &extra)) {
    obs::registry().counter("server.result_cache_hits").add();
    return extra;
  }
  obs::registry().counter("server.result_cache_misses").add();

  topk::TopkOptions opt = base_opt_;
  opt.k = k;
  opt.mode = mode;
  opt.threads = opt_.query_threads;

  topk::TopkResult result;
  if (warm && ws.epoch == epoch) {
    // Current design, same options, cache evicted: recompute on the warm
    // session (run() is a cold query but reuses the session's storage).
    result = ws.session->run(opt);
  } else if (warm && !pending.empty() &&
             pending.size() <= opt_.max_replay_edits) {
    // Warm rebase: replay the committed tail through what_if. Each replay
    // is bit-identical to a cold run at that epoch (the session contract),
    // so the final replay's result *is* the answer at the head epoch.
    obs::registry().counter("server.session_rebases").add();
    obs::registry().counter("server.replayed_edits").add(pending.size());
    for (const session::WhatIfEdit& edit : pending) {
      result = ws.session->what_if(edit);
    }
    ws.epoch = epoch;
  } else {
    // No session, k/mode change, or a tail too long to replay: rebuild
    // from the pinned snapshot. COW copies make this O(chunk table), not
    // O(design); retained candidates keep what_if replay available.
    obs::registry().counter("server.session_rebuilds").add();
    ws.session = std::make_unique<session::AnalysisSession>(
        head, session::SessionOptions{.retain_candidates = true});
    result = ws.session->run(opt);
    ws.epoch = epoch;
    ws.k = k;
    ws.mode = mode;
  }

  extra = "\"result\": " + render_topk_result(ws.session->netlist(),
                                              ws.session->parasitics(), result,
                                              k);
  cache_insert(epoch, k, mode, extra);
  return extra;
}

std::string Shard::serve_what_if(const Request& req,
                                 std::uint64_t* epoch_out) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  std::string bad;
  if (!validate_edit(req.edit, &bad)) {
    *epoch_out = epoch();
    return make_error_response(req.id, ErrorCode::kBadRequest, bad);
  }
  if (writer_ == nullptr || writer_k_ != req.k || writer_mode_ != req.mode) {
    // (Re)base the warm writer on the head snapshot. Only the writer
    // advances the head and only under writer_mu_, so its design equals
    // the committed state by construction.
    writer_ = std::make_unique<session::AnalysisSession>(
        head(), session::SessionOptions{.retain_candidates = true});
    topk::TopkOptions opt = base_opt_;
    opt.k = req.k;
    opt.mode = req.mode;
    opt.threads = opt_.query_threads;
    writer_->run(opt);  // priming query; what_if reuses these options
    writer_k_ = req.k;
    writer_mode_ = req.mode;
  }
  const topk::TopkResult result = writer_->what_if(req.edit);
  std::uint64_t new_epoch = 0;
  {
    // Commit: publish the COW successor snapshot. It becomes visible to
    // readers only after the writer applied the edit successfully.
    std::lock_guard<std::mutex> lock(state_mu_);
    edit_log_.push_back(req.edit);
    head_ = head_->apply(req.edit);
    new_epoch = head_->epoch();
  }
  obs::registry().counter("server.snapshot_publishes").add();
  *epoch_out = new_epoch;
  return make_ok_response(
      req.id, new_epoch,
      "\"result\": " + render_topk_result(writer_->netlist(),
                                          writer_->parasitics(), result,
                                          req.k));
}

bool Shard::validate_edit(const session::WhatIfEdit& edit,
                          std::string* message) {
  const std::shared_ptr<const session::DesignSnapshot> snap = head();
  const std::size_t num_caps = snap->parasitics().num_couplings();
  const std::size_t num_gates = snap->netlist().num_gates();
  const std::size_t num_cells = snap->netlist().library().size();
  for (layout::CapId id : edit.zero_couplings) {
    if (id >= num_caps) {
      *message = str::format("zero: coupling id %u out of range (%zu caps)",
                             static_cast<unsigned>(id), num_caps);
      return false;
    }
  }
  for (layout::CapId id : edit.shield_couplings) {
    if (id >= num_caps) {
      *message = str::format("shield: coupling id %u out of range (%zu caps)",
                             static_cast<unsigned>(id), num_caps);
      return false;
    }
  }
  for (const session::WhatIfEdit::Resize& r : edit.resizes) {
    if (r.gate >= num_gates) {
      *message = str::format("resize: gate id %u out of range (%zu gates)",
                             static_cast<unsigned>(r.gate), num_gates);
      return false;
    }
    if (r.cell_index >= num_cells) {
      *message = str::format("resize: cell index %zu out of range (%zu cells)",
                             r.cell_index, num_cells);
      return false;
    }
  }
  return true;
}

bool Shard::cache_lookup(std::uint64_t epoch, int k, topk::Mode mode,
                         std::string* extra) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const CacheEntry& e : result_cache_) {
    if (e.epoch == epoch && e.k == k && e.mode == mode) {
      *extra = e.extra;
      return true;
    }
  }
  return false;
}

void Shard::cache_insert(std::uint64_t epoch, int k, topk::Mode mode,
                         std::string extra) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const CacheEntry& e : result_cache_) {
    if (e.epoch == epoch && e.k == k && e.mode == mode) return;  // racer won
  }
  result_cache_.push_back(CacheEntry{epoch, k, mode, std::move(extra)});
  while (result_cache_.size() > opt_.result_cache_cap) {
    result_cache_.pop_front();
  }
}

}  // namespace tka::server
