#include "server/shard.hpp"

#include <exception>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace tka::server {
namespace {

/// Applies one committed edit to a replica's private design copy — the same
/// three primitive operations AnalysisSession::what_if performs on its own
/// copies, so a replica that replayed the log holds exactly the design the
/// writer session holds.
void apply_edit(net::Netlist& nl, layout::Parasitics& par,
                const session::WhatIfEdit& edit) {
  for (layout::CapId id : edit.zero_couplings) par.zero_coupling(id);
  for (layout::CapId id : edit.shield_couplings) par.shield_coupling(id);
  for (const session::WhatIfEdit::Resize& r : edit.resizes) {
    nl.resize_gate(r.gate, r.cell_index);
  }
}

}  // namespace

Shard::Shard(std::string name, std::unique_ptr<net::Netlist> nl,
             layout::Parasitics par, const sta::DelayModelOptions& model_opt,
             const topk::TopkOptions& base_opt, const ShardOptions& opt)
    : name_(std::move(name)),
      model_opt_(model_opt),
      base_opt_(base_opt),
      opt_(opt),
      base_nl_(std::move(nl)),
      base_par_(std::make_unique<layout::Parasitics>(std::move(par))) {
  const int n = opt_.workers < 1 ? 1 : opt_.workers;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Shard::~Shard() { join(); }

bool Shard::submit(Request req, Respond respond) {
  const std::int64_t now = obs::now_ns();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!accepting_ || queue_.size() >= opt_.queue_cap) return false;
    queue_.push_back(Job{std::move(req), std::move(respond), now});
    depth = queue_.size();
  }
  obs::registry().gauge("server.queue_depth." + name_)
      .set(static_cast<double>(depth));
  queue_cv_.notify_one();
  return true;
}

void Shard::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    accepting_ = false;
  }
  queue_cv_.notify_all();
}

void Shard::join() {
  begin_drain();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Shard::epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return edit_log_.size();
}

std::size_t Shard::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void Shard::worker_loop() {
  Replica replica;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // draining and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      obs::registry().gauge("server.queue_depth." + name_)
          .set(static_cast<double>(queue_.size()));
    }
    serve(replica, job);
  }
}

void Shard::serve(Replica& replica, Job& job) {
  const std::int64_t start = obs::now_ns();
  obs::registry().histogram("server.queue_wait_s")
      .observe(obs::ns_to_seconds(start - job.enqueued_ns));

  std::string response;
  std::uint64_t epoch = 0;
  const bool is_what_if = job.req.op == "what_if";
  try {
    response = is_what_if ? serve_what_if(job.req, &epoch)
                          : serve_topk(replica, job.req, &epoch);
  } catch (const std::exception& e) {
    response = make_error_response(job.req.id, ErrorCode::kInternal, e.what());
  }

  const bool ok = response.find("\"ok\": true") != std::string::npos;
  obs::registry().counter(ok ? "server.responses_ok" : "server.responses_error")
      .add();
  obs::registry()
      .histogram(is_what_if ? "server.latency.whatif_s"
                            : "server.latency.topk_s")
      .observe(obs::ns_to_seconds(obs::now_ns() - start));
  job.respond(std::move(response));
}

void Shard::sync_replica(Replica& replica) {
  if (replica.nl == nullptr) {
    replica.nl = std::make_unique<net::Netlist>(*base_nl_);
    replica.par = std::make_unique<layout::Parasitics>(*base_par_);
    replica.applied_epoch = 0;
  }
  std::vector<session::WhatIfEdit> pending;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    pending.assign(edit_log_.begin() +
                       static_cast<std::ptrdiff_t>(replica.applied_epoch),
                   edit_log_.end());
  }
  for (const session::WhatIfEdit& edit : pending) {
    apply_edit(*replica.nl, *replica.par, edit);
  }
  replica.applied_epoch += pending.size();
  if (replica.session == nullptr || !pending.empty()) {
    // The session's private copies are stale after an edit replay; rebuild
    // it from the replica's design. One-shot sessions skip the candidate
    // retention that only what_if needs.
    replica.session = std::make_unique<session::AnalysisSession>(
        *replica.nl, *replica.par, model_opt_,
        session::SessionOptions{.retain_candidates = false});
  }
}

std::string Shard::serve_topk(Replica& replica, const Request& req,
                              std::uint64_t* epoch_out) {
  sync_replica(replica);
  *epoch_out = replica.applied_epoch;
  topk::TopkOptions opt = base_opt_;
  opt.k = req.k;
  opt.mode = req.mode;
  opt.threads = opt_.query_threads;
  const topk::TopkResult result = replica.session->run(opt);
  return make_ok_response(
      req.id, *epoch_out,
      "\"result\": " + render_topk_result(replica.session->netlist(),
                                          replica.session->parasitics(),
                                          result, req.k));
}

std::string Shard::serve_what_if(const Request& req,
                                 std::uint64_t* epoch_out) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  std::string bad;
  if (!validate_edit(req.edit, &bad)) {
    *epoch_out = epoch();
    return make_error_response(req.id, ErrorCode::kBadRequest, bad);
  }
  if (writer_ == nullptr || writer_k_ != req.k || writer_mode_ != req.mode) {
    // (Re)base the warm writer on the committed state. Only the writer
    // appends to the log and only under writer_mu_, so the replayed log is
    // complete by construction.
    net::Netlist nl(*base_nl_);
    layout::Parasitics par(*base_par_);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (const session::WhatIfEdit& edit : edit_log_) {
        apply_edit(nl, par, edit);
      }
    }
    writer_ = std::make_unique<session::AnalysisSession>(
        std::move(nl), std::move(par), model_opt_,
        session::SessionOptions{.retain_candidates = true});
    topk::TopkOptions opt = base_opt_;
    opt.k = req.k;
    opt.mode = req.mode;
    opt.threads = opt_.query_threads;
    writer_->run(opt);  // priming query; what_if reuses these options
    writer_k_ = req.k;
    writer_mode_ = req.mode;
  }
  const topk::TopkResult result = writer_->what_if(req.edit);
  std::uint64_t new_epoch = 0;
  {
    // Commit: the edit becomes visible to replicas only after the writer
    // applied it successfully.
    std::lock_guard<std::mutex> lock(state_mu_);
    edit_log_.push_back(req.edit);
    new_epoch = edit_log_.size();
  }
  *epoch_out = new_epoch;
  return make_ok_response(
      req.id, new_epoch,
      "\"result\": " + render_topk_result(writer_->netlist(),
                                          writer_->parasitics(), result,
                                          req.k));
}

bool Shard::validate_edit(const session::WhatIfEdit& edit,
                          std::string* message) {
  const std::size_t num_caps = base_par_->num_couplings();
  const std::size_t num_gates = base_nl_->num_gates();
  const std::size_t num_cells = base_nl_->library().size();
  for (layout::CapId id : edit.zero_couplings) {
    if (id >= num_caps) {
      *message = str::format("zero: coupling id %u out of range (%zu caps)",
                             static_cast<unsigned>(id), num_caps);
      return false;
    }
  }
  for (layout::CapId id : edit.shield_couplings) {
    if (id >= num_caps) {
      *message = str::format("shield: coupling id %u out of range (%zu caps)",
                             static_cast<unsigned>(id), num_caps);
      return false;
    }
  }
  for (const session::WhatIfEdit::Resize& r : edit.resizes) {
    if (r.gate >= num_gates) {
      *message = str::format("resize: gate id %u out of range (%zu gates)",
                             static_cast<unsigned>(r.gate), num_gates);
      return false;
    }
    if (r.cell_index >= num_cells) {
      *message = str::format("resize: cell index %zu out of range (%zu cells)",
                             r.cell_index, num_cells);
      return false;
    }
  }
  return true;
}

}  // namespace tka::server
