// Length-prefixed framing for the `tka serve` wire protocol
// (docs/SERVER.md).
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 text — one JSON request or response object per frame
// (the JSON-lines payload convention, with the length prefix making message
// boundaries explicit so a reader never has to scan for newlines inside
// string escapes).
//
// The decoder is incremental and allocation-frugal: feed it whatever the
// socket produced, pull complete frames out, and ask it at EOF whether the
// stream ended on a frame boundary. A length prefix above the configured
// maximum is a hard protocol error (the connection cannot be resynchronized
// once framing is lost), as is a stream that ends mid-frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tka::server {

/// Default ceiling on a single frame's payload. Large enough for any result
/// on realistic designs, small enough that a corrupt or hostile length
/// prefix cannot make the server buffer gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Frames `payload`: 4-byte big-endian length, then the payload bytes.
std::string encode_frame(std::string_view payload);

/// Incremental frame parser over a byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *payload holds the next frame
    kError,     ///< framing is broken; error() describes why
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends `n` bytes from the stream. No-op once in the error state.
  void feed(const void* data, std::size_t n);

  /// Extracts the next complete frame. Call repeatedly until it stops
  /// returning kFrame (one feed can complete several frames).
  Status next(std::string* payload);

  /// Call at end-of-stream: kNeedMore when the stream ended exactly on a
  /// frame boundary, kError ("truncated frame") when bytes of an
  /// unfinished frame remain buffered.
  Status finish();

  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Status fail(const std::string& what);
  void compact();

  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already handed out
  bool broken_ = false;
  std::string error_;
};

}  // namespace tka::server
