// One design's serving state inside `tka serve`: a bounded query queue, a
// small worker pool, and the snapshot chain that keeps concurrent queries
// consistent with committed what-if edits (docs/SERVER.md).
//
// Consistency model. The design's committed state is an epoch-stamped
// chain of immutable, refcounted DesignSnapshots plus the append-only edit
// log that produced it; epoch E means "the base with the first E edits
// applied". The shard publishes the newest snapshot as `head_`; a worker
// pins the head (a shared_ptr copy) for the duration of a job instead of
// owning a private replica. A what_if commit produces the next snapshot by
// copy-on-write — only the storage chunks the edit touches are cloned, the
// rest is structurally shared — so the chain costs O(design + edits)
// memory no matter how many workers serve it.
//
// Worker sessions are warm: a session whose last query matched the
// request's k/mode catches up to the head by replaying the pending edit-
// log tail through AnalysisSession::what_if (bit-identical to a cold run
// by the session contract), keeping every cache it built. Only a k/mode
// change or a long tail falls back to rebuilding from the pinned snapshot
// — which is itself cheap, because the build takes COW copies.
//
// Read coalescing. When a worker pops a topk job it also drains the
// compatible run of queued topk jobs behind it (same k and mode, stopping
// at the first what_if to preserve admission order); the batch is answered
// with one session catch-up and one sweep-graph drain, then each job gets
// its own response. A small per-shard render cache keyed (epoch, k, mode)
// short-circuits repeats that were not queued at the same instant. Both
// are safe under the bit-identity contract: a rendered result is a
// deterministic function of (epoch, k, mode).
//
// Admission control. submit() enqueues or refuses: a full queue is the
// typed `overloaded` error, cheap to produce and immediate, so a saturated
// server sheds load at the door instead of growing an unbounded backlog.
// Draining flips accepting_ off; queued work still completes, then workers
// exit and join() returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "session/analysis_session.hpp"
#include "session/design_snapshot.hpp"

namespace tka::server {

struct ShardOptions {
  /// Worker threads serving queries for this design.
  int workers = 1;
  /// Bounded queue capacity; a submit() beyond it is refused (overloaded).
  std::size_t queue_cap = 32;
  /// TopkOptions::threads inside each served query (1 = serial query;
  /// concurrency comes from workers and shards, not intra-query threads).
  int query_threads = 1;
  /// Longest edit-log tail a warm worker session catches up by what_if
  /// replay; beyond it the session is rebuilt from the pinned snapshot.
  std::size_t max_replay_edits = 16;
  /// Most queued topk reads drained into one coalesced batch.
  std::size_t coalesce_max = 16;
  /// Rendered results cached per shard, keyed (epoch, k, mode).
  std::size_t result_cache_cap = 8;
};

class Shard {
 public:
  /// Takes ownership of the design. `base_opt` is the options template for
  /// every query (beam caps, tolerances...); requests override k and mode.
  /// The cell library referenced by `nl` must outlive the shard.
  Shard(std::string name, std::unique_ptr<net::Netlist> nl,
        layout::Parasitics par, const sta::DelayModelOptions& model_opt,
        const topk::TopkOptions& base_opt, const ShardOptions& opt);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Delivers the complete response payload (JSON text, unframed).
  using Respond = std::function<void(std::string)>;

  /// Enqueues a parsed topk/what_if request. Returns false when the queue
  /// is full or the shard is draining — the caller renders the typed
  /// rejection itself (it knows whether the server is draining).
  bool submit(Request req, Respond respond);

  /// Stops admission. Queued queries still run to completion.
  void begin_drain();
  /// Joins the workers after the queue runs dry, then releases the warm
  /// writer so only the head snapshot stays pinned. Implies begin_drain().
  void join();

  const std::string& name() const { return name_; }
  std::uint64_t epoch() const;
  std::size_t queue_depth() const;
  /// The current head snapshot (pins it for the caller).
  std::shared_ptr<const session::DesignSnapshot> head() const;

 private:
  struct Job {
    Request req;
    Respond respond;
    std::int64_t enqueued_ns = 0;
  };

  /// A worker's warm session state. The session holds COW copies of the
  /// snapshot it was built from and advances past it via what_if replay;
  /// `epoch`/`k`/`mode` describe the design state and options of its last
  /// completed query.
  struct WorkerState {
    std::unique_ptr<session::AnalysisSession> session;
    std::uint64_t epoch = 0;
    int k = 0;
    topk::Mode mode = topk::Mode::kElimination;
  };

  void worker_loop();
  /// Serves a coalesced batch of topk jobs (size 1 for what_if).
  void serve_batch(WorkerState& ws, std::vector<Job>& batch);
  /// Computes (or fetches from the render cache) the `"result": {...}`
  /// payload fragment for a topk read at the current head epoch.
  std::string topk_result_extra(WorkerState& ws, int k, topk::Mode mode,
                                std::uint64_t* epoch_out);
  std::string serve_what_if(const Request& req, std::uint64_t* epoch_out);
  /// Range-checks edit ids against the design so a bad request cannot trip
  /// an assertion inside the engine (sizes are epoch-invariant).
  bool validate_edit(const session::WhatIfEdit& edit, std::string* message);

  bool cache_lookup(std::uint64_t epoch, int k, topk::Mode mode,
                    std::string* extra);
  void cache_insert(std::uint64_t epoch, int k, topk::Mode mode,
                    std::string extra);

  const std::string name_;
  const sta::DelayModelOptions model_opt_;
  const topk::TopkOptions base_opt_;
  const ShardOptions opt_;

  // Committed state: the snapshot chain head plus the edit log that
  // produced it (head_->epoch() == edit_log_.size(), both under state_mu_;
  // appends may reallocate the log vector).
  mutable std::mutex state_mu_;
  std::shared_ptr<const session::DesignSnapshot> head_;
  std::vector<session::WhatIfEdit> edit_log_;

  // The warm incremental writer; all what_if commits serialize on it. Its
  // design always equals the head (every commit goes through it).
  std::mutex writer_mu_;
  std::unique_ptr<session::AnalysisSession> writer_;
  int writer_k_ = 0;
  topk::Mode writer_mode_ = topk::Mode::kElimination;

  // Rendered-result cache, keyed (epoch, k, mode); FIFO-bounded.
  struct CacheEntry {
    std::uint64_t epoch = 0;
    int k = 0;
    topk::Mode mode = topk::Mode::kElimination;
    std::string extra;
  };
  std::mutex cache_mu_;
  std::deque<CacheEntry> result_cache_;

  // Bounded queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool accepting_ = true;

  std::vector<std::thread> workers_;
};

}  // namespace tka::server
