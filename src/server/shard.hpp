// One design's serving state inside `tka serve`: a bounded query queue, a
// small worker pool, and the epoch machinery that keeps concurrent queries
// consistent with committed what-if edits (docs/SERVER.md).
//
// Consistency model. The design's committed state is (epoch-0 base design,
// append-only edit log); epoch E means "the base with the first E edits
// applied". Each worker owns a private replica of the design and, before
// serving a query, catches it up to the newest committed epoch by replaying
// the log suffix it has not yet applied — replicas therefore only ever
// observe log prefixes, never a half-applied edit. what_if commits are
// serialized on a single warm writer session (the incremental path); the
// edit enters the log only after the writer has applied it successfully, so
// a failed edit leaves the committed state untouched.
//
// Admission control. submit() enqueues or refuses: a full queue is the
// typed `overloaded` error, cheap to produce and immediate, so a saturated
// server sheds load at the door instead of growing an unbounded backlog.
// Draining flips accepting_ off; queued work still completes, then workers
// exit and join() returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "session/analysis_session.hpp"

namespace tka::server {

struct ShardOptions {
  /// Worker threads serving queries for this design.
  int workers = 1;
  /// Bounded queue capacity; a submit() beyond it is refused (overloaded).
  std::size_t queue_cap = 32;
  /// TopkOptions::threads inside each served query (1 = serial query;
  /// concurrency comes from workers and shards, not intra-query threads).
  int query_threads = 1;
};

class Shard {
 public:
  /// Takes ownership of the design. `base_opt` is the options template for
  /// every query (beam caps, tolerances...); requests override k and mode.
  /// The cell library referenced by `nl` must outlive the shard.
  Shard(std::string name, std::unique_ptr<net::Netlist> nl,
        layout::Parasitics par, const sta::DelayModelOptions& model_opt,
        const topk::TopkOptions& base_opt, const ShardOptions& opt);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Delivers the complete response payload (JSON text, unframed).
  using Respond = std::function<void(std::string)>;

  /// Enqueues a parsed topk/what_if request. Returns false when the queue
  /// is full or the shard is draining — the caller renders the typed
  /// rejection itself (it knows whether the server is draining).
  bool submit(Request req, Respond respond);

  /// Stops admission. Queued queries still run to completion.
  void begin_drain();
  /// Joins the workers after the queue runs dry. Implies begin_drain().
  void join();

  const std::string& name() const { return name_; }
  std::uint64_t epoch() const;
  std::size_t queue_depth() const;

 private:
  struct Job {
    Request req;
    Respond respond;
    std::int64_t enqueued_ns = 0;
  };

  /// A worker's private copy of the design, caught up to `applied_epoch`
  /// entries of the edit log.
  struct Replica {
    std::unique_ptr<net::Netlist> nl;
    std::unique_ptr<layout::Parasitics> par;
    std::uint64_t applied_epoch = 0;
    std::unique_ptr<session::AnalysisSession> session;
  };

  void worker_loop();
  void serve(Replica& replica, Job& job);
  std::string serve_topk(Replica& replica, const Request& req,
                         std::uint64_t* epoch_out);
  std::string serve_what_if(const Request& req, std::uint64_t* epoch_out);
  /// Catches `replica` up to the newest committed epoch; recreates its
  /// session when any edit was applied.
  void sync_replica(Replica& replica);
  /// Range-checks edit ids against the current design so a bad request
  /// cannot trip an assertion inside the engine.
  bool validate_edit(const session::WhatIfEdit& edit, std::string* message);

  const std::string name_;
  const sta::DelayModelOptions model_opt_;
  const topk::TopkOptions base_opt_;
  const ShardOptions opt_;

  // Committed state: base design + edit log. state_mu_ guards the log
  // vector (appends may reallocate); the epoch is also mirrored in an
  // atomic-free way via log size under the lock.
  std::unique_ptr<net::Netlist> base_nl_;
  std::unique_ptr<layout::Parasitics> base_par_;
  mutable std::mutex state_mu_;
  std::vector<session::WhatIfEdit> edit_log_;

  // The warm incremental writer; all what_if commits serialize on it.
  std::mutex writer_mu_;
  std::unique_ptr<session::AnalysisSession> writer_;
  int writer_k_ = 0;
  topk::Mode writer_mode_ = topk::Mode::kElimination;

  // Bounded queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool accepting_ = true;

  std::vector<std::thread> workers_;
};

}  // namespace tka::server
