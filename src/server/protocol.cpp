#include "server/protocol.hpp"

#include <cmath>

#include "io/report_writer.hpp"
#include "util/string_util.hpp"

namespace tka::server {
namespace {

using util::json::Value;

/// Exact round-trip double: 17 significant digits reproduce the bit
/// pattern through strtod on every IEEE-754 platform.
std::string num17(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return str::format("%.17g", v);
}

bool get_u64(const Value& obj, std::string_view key, std::uint64_t* out) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0.0) return false;
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

/// Reads an array of non-negative integers (coupling/gate ids).
bool get_id_array(const Value& obj, std::string_view key,
                  std::vector<std::uint32_t>* out, std::string* message) {
  const Value* v = obj.find(key);
  if (v == nullptr) return true;  // absent = empty
  if (!v->is_array()) {
    *message = str::format("'%.*s' must be an array of ids",
                           static_cast<int>(key.size()), key.data());
    return false;
  }
  for (const Value& e : v->array) {
    if (!e.is_number() || e.number < 0.0 ||
        e.number != std::floor(e.number)) {
      *message = str::format("'%.*s' entries must be non-negative integers",
                             static_cast<int>(key.size()), key.data());
      return false;
    }
    out->push_back(static_cast<std::uint32_t>(e.number));
  }
  return true;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownDesign: return "unknown_design";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kLoadFailed: return "load_failed";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

bool parse_request(const std::string& payload, Request* out, ErrorCode* code,
                   std::string* message) {
  Value doc;
  std::string parse_err;
  if (!util::json::parse(payload, &doc, &parse_err)) {
    *code = ErrorCode::kParseError;
    *message = parse_err;
    return false;
  }
  *code = ErrorCode::kBadRequest;
  if (!doc.is_object()) {
    *message = "request must be a JSON object";
    return false;
  }
  // id is optional (defaults to 0) but must be numeric when present.
  if (const Value* id = doc.find("id"); id != nullptr) {
    if (!get_u64(doc, "id", &out->id)) {
      *message = "'id' must be a non-negative number";
      return false;
    }
  }
  const Value* op = doc.find("op");
  if (op == nullptr || !op->is_string() || op->string.empty()) {
    *message = "missing or non-string 'op'";
    return false;
  }
  out->op = op->string;

  if (const Value* d = doc.find("design"); d != nullptr) {
    if (!d->is_string()) {
      *message = "'design' must be a string";
      return false;
    }
    out->design = d->string;
  }
  if (const Value* kv = doc.find("k"); kv != nullptr) {
    if (!kv->is_number() || kv->number < 1.0 || kv->number > 1e6 ||
        kv->number != std::floor(kv->number)) {
      *message = "'k' must be a positive integer";
      return false;
    }
    out->k = static_cast<int>(kv->number);
  }
  if (const Value* m = doc.find("mode"); m != nullptr) {
    if (m->is_string() && (m->string == "add" || m->string == "addition")) {
      out->mode = topk::Mode::kAddition;
    } else if (m->is_string() &&
               (m->string == "elim" || m->string == "elimination")) {
      out->mode = topk::Mode::kElimination;
    } else {
      *message = "'mode' must be \"add\" or \"elim\"";
      return false;
    }
  }

  if (out->op == "what_if") {
    std::vector<std::uint32_t> zero, shield;
    if (!get_id_array(doc, "zero", &zero, message)) return false;
    if (!get_id_array(doc, "shield", &shield, message)) return false;
    out->edit.zero_couplings.assign(zero.begin(), zero.end());
    out->edit.shield_couplings.assign(shield.begin(), shield.end());
    if (const Value* rz = doc.find("resize"); rz != nullptr) {
      if (!rz->is_array()) {
        *message = "'resize' must be an array of {gate, cell} objects";
        return false;
      }
      for (const Value& e : rz->array) {
        std::uint64_t gate = 0, cell = 0;
        if (!e.is_object() || !get_u64(e, "gate", &gate) ||
            !get_u64(e, "cell", &cell)) {
          *message = "'resize' entries must be {\"gate\": N, \"cell\": N}";
          return false;
        }
        out->edit.resizes.push_back(
            {static_cast<net::GateId>(gate), static_cast<std::size_t>(cell)});
      }
    }
    if (out->edit.empty()) {
      *message = "what_if requires at least one of zero/shield/resize";
      return false;
    }
  }

  if (out->op == "load") {
    const Value* p = doc.find("netlist_path");
    if (p == nullptr || !p->is_string()) {
      *message = "load requires a string 'netlist_path'";
      return false;
    }
    out->netlist_path = p->string;
    if (const Value* s = doc.find("spef_path"); s != nullptr) {
      if (!s->is_string()) {
        *message = "'spef_path' must be a string";
        return false;
      }
      out->spef_path = s->string;
    }
  }
  return true;
}

std::string make_error_response(std::uint64_t id, ErrorCode code,
                                const std::string& message) {
  return str::format(
      "{\"id\": %llu, \"ok\": false, \"error\": {\"code\": \"%s\", "
      "\"message\": \"%s\"}}",
      static_cast<unsigned long long>(id), error_code_name(code),
      io::json_escape(message).c_str());
}

std::string make_ok_response(std::uint64_t id, std::uint64_t epoch,
                             const std::string& extra) {
  std::string out = str::format("{\"id\": %llu, \"ok\": true, \"epoch\": %llu",
                                static_cast<unsigned long long>(id),
                                static_cast<unsigned long long>(epoch));
  if (!extra.empty()) {
    out += ", ";
    out += extra;
  }
  out += "}";
  return out;
}

std::string render_topk_result(const net::Netlist& nl,
                               const layout::Parasitics& par,
                               const topk::TopkResult& result, int k) {
  std::string out = "{";
  out += str::format(
      "\"mode\": \"%s\", \"k\": %d",
      result.mode == topk::Mode::kAddition ? "addition" : "elimination", k);
  out += ", \"baseline_delay_ns\": " + num17(result.baseline_delay);
  out += ", \"estimated_delay_ns\": " + num17(result.estimated_delay);
  out += ", \"evaluated_delay_ns\": " + num17(result.evaluated_delay);
  out += ", \"members\": [";
  bool first = true;
  for (layout::CapId id : result.members) {
    const layout::CouplingCap& cc = par.coupling(id);
    out += str::format(
        "%s{\"cap\": %u, \"net_a\": \"%s\", \"net_b\": \"%s\", \"cap_pf\": %s}",
        first ? "" : ", ", static_cast<unsigned>(id),
        io::json_escape(nl.net(cc.net_a).name).c_str(),
        io::json_escape(nl.net(cc.net_b).name).c_str(),
        num17(cc.cap_pf).c_str());
    first = false;
  }
  out += "], \"estimated_delay_by_k\": [";
  first = true;
  for (double d : result.estimated_delay_by_k) {
    out += (first ? "" : ", ") + num17(d);
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace tka::server
