// Wire-protocol message types for `tka serve` (docs/SERVER.md).
//
// Every frame payload is one JSON object. Requests carry a caller-chosen
// `id` that is echoed on the response, so clients may pipeline freely and
// match responses out of order. Responses are either
//
//   {"id": N, "ok": true, "epoch": E, ...op-specific fields...}
//   {"id": N, "ok": false, "error": {"code": "...", "message": "..."}}
//
// The deterministic portion of a query response (the `result` object built
// by render_topk_result) is the server's correctness contract: it must be
// byte-identical to the same query run one-shot against the same design
// state, at any concurrency. Timing fields live outside `result` so the
// contract stays checkable by string comparison.
#pragma once

#include <cstdint>
#include <string>

#include "session/what_if.hpp"
#include "topk/topk_engine.hpp"
#include "util/json.hpp"

namespace tka::server {

/// Typed error vocabulary. The wire form is the kebab-less snake name from
/// error_code_name(); clients switch on it (the load generator counts
/// `overloaded` separately from transport failures, for example).
enum class ErrorCode {
  kParseError,     ///< frame payload is not valid JSON
  kBadRequest,     ///< valid JSON, invalid shape (missing op, bad types...)
  kUnknownOp,      ///< op string not in the protocol
  kUnknownDesign,  ///< no loaded design under that name
  kOverloaded,     ///< shard queue full — admission control rejection
  kDraining,       ///< server is shutting down; no new queries
  kLoadFailed,     ///< design load/parse failure
  kInternal,       ///< engine error while serving the query
};

const char* error_code_name(ErrorCode code);

/// A parsed request. `op` selects which of the remaining fields matter.
struct Request {
  std::uint64_t id = 0;
  std::string op;

  std::string design;  // topk / what_if / load / unload
  int k = 10;          // topk / what_if
  topk::Mode mode = topk::Mode::kElimination;

  session::WhatIfEdit edit;  // what_if

  std::string netlist_path;  // load
  std::string spef_path;     // load (optional)
};

/// Parses a frame payload into *out. On failure returns false with *code
/// (kParseError for non-JSON, kBadRequest for shape errors) and a
/// human-readable *message.
bool parse_request(const std::string& payload, Request* out, ErrorCode* code,
                   std::string* message);

/// {"id": N, "ok": false, "error": {...}} — the only response shape for
/// failures.
std::string make_error_response(std::uint64_t id, ErrorCode code,
                                const std::string& message);

/// {"id": N, "ok": true, "epoch": E, <extra>} where `extra` is a
/// pre-rendered sequence of `"key": value` members (may be empty).
std::string make_ok_response(std::uint64_t id, std::uint64_t epoch,
                             const std::string& extra);

/// The canonical, deterministic rendering of a top-k result: mode, k,
/// delays and the chosen member set with endpoint names and cap values.
/// Doubles print with %.17g so the text round-trips bit-exactly; no
/// wall-clock or machine-dependent field appears. Both the server and the
/// one-shot comparison path (tests, bench/serve_load) use this renderer, so
/// "responses are bit-identical to a one-shot run" reduces to string
/// equality.
std::string render_topk_result(const net::Netlist& nl,
                               const layout::Parasitics& par,
                               const topk::TopkResult& result, int k);

}  // namespace tka::server
