#include "server/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <exception>
#include <utility>

#include "io/bench_reader.hpp"
#include "io/report_writer.hpp"
#include "io/spef_lite.hpp"
#include "io/verilog_lite.hpp"
#include "layout/extractor.hpp"
#include "layout/placer.hpp"
#include "layout/router.hpp"
#include "obs/metrics.hpp"
#include "server/frame.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace tka::server {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {}

Server::~Server() {
  request_shutdown();
  wait();
}

bool Server::add_design(const std::string& name,
                        std::unique_ptr<net::Netlist> nl,
                        layout::Parasitics par, const ShardOptions& shard_opt,
                        const topk::TopkOptions& base_opt,
                        std::string* error) {
  auto shard = std::make_shared<Shard>(name, std::move(nl), std::move(par),
                                       opt_.model, base_opt, shard_opt);
  std::lock_guard<std::mutex> lock(designs_mu_);
  if (!designs_.emplace(name, std::move(shard)).second) {
    if (error != nullptr) *error = "design '" + name + "' already loaded";
    return false;
  }
  return true;
}

bool Server::load_design(const std::string& name,
                         const std::string& netlist_path,
                         const std::string& spef_path, std::string* error) {
  try {
    std::unique_ptr<net::Netlist> nl = ends_with(netlist_path, ".v")
                                           ? io::read_verilog_file(netlist_path)
                                           : io::read_bench_file(netlist_path);
    layout::Parasitics par = [&] {
      if (!spef_path.empty()) return io::read_spef_lite_file(spef_path, *nl);
      const layout::Placement placement = layout::grid_place(*nl, {});
      const std::vector<layout::Route> routes =
          layout::route_all(*nl, placement);
      return layout::extract(*nl, routes, {});
    }();
    return add_design(name, std::move(nl), std::move(par), opt_.default_shard,
                      opt_.default_topk, error);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

bool Server::start(std::string* error) {
  if (opt_.tcp_port >= 0) {
    tcp_listen_ = listen_tcp(opt_.tcp_port, &tcp_port_, error);
    if (!tcp_listen_.valid()) return false;
  }
  if (!opt_.unix_path.empty()) {
    unix_listen_ = listen_unix(opt_.unix_path, error);
    if (!unix_listen_.valid()) return false;
  }
  if (!tcp_listen_.valid() && !unix_listen_.valid()) {
    if (error != nullptr) *error = "no listener configured (tcp or unix)";
    return false;
  }
  started_.store(true, std::memory_order_release);
  if (tcp_listen_.valid()) {
    accept_threads_.emplace_back(
        [this, fd = tcp_listen_.get()] { accept_loop(fd); });
  }
  if (unix_listen_.valid()) {
    accept_threads_.emplace_back(
        [this, fd = unix_listen_.get()] { accept_loop(fd); });
  }
  return true;
}

void Server::accept_loop(int listen_fd) {
  while (!draining()) {
    const int raw = ::accept(listen_fd, nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (drain) or fatal
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = Fd(raw);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (draining()) return;  // raced request_shutdown; drop the socket
    const std::uint64_t id = next_conn_id_++;
    conns_.emplace(id, conn);
    conn_threads_.emplace_back(
        [this, conn, id] { connection_loop(conn, id); });
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn,
                             std::uint64_t id) {
  obs::Gauge& connections = obs::registry().gauge("server.connections");
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    connections.set(static_cast<double>(conns_.size()));
  }
  FrameDecoder decoder;
  std::string payload;
  char buf[65536];
  bool eof = false;
  while (!eof) {
    const long n = read_some(conn->fd.get(), buf, sizeof(buf));
    if (n <= 0) {
      eof = true;
      if (n == 0 && decoder.finish() == FrameDecoder::Status::kError) {
        send_payload(conn, make_error_response(0, ErrorCode::kParseError,
                                               decoder.error()));
      }
      break;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    FrameDecoder::Status st;
    while ((st = decoder.next(&payload)) == FrameDecoder::Status::kFrame) {
      handle_frame(conn, payload);
    }
    if (st == FrameDecoder::Status::kError) {
      // Framing is unrecoverable: report once, then hang up.
      send_payload(conn, make_error_response(0, ErrorCode::kParseError,
                                             decoder.error()));
      break;
    }
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(id);
  connections.set(static_cast<double>(conns_.size()));
}

void Server::send_payload(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // A failed write means the client hung up; queries already in flight for
  // this connection complete and discard their responses the same way.
  (void)write_all(conn->fd.get(), frame.data(), frame.size());
}

std::shared_ptr<Shard> Server::find_shard(const std::string& name) {
  std::lock_guard<std::mutex> lock(designs_mu_);
  if (name.empty() && designs_.size() == 1) return designs_.begin()->second;
  auto it = designs_.find(name);
  return it == designs_.end() ? nullptr : it->second;
}

std::string Server::handle_list() {
  std::string out = "\"designs\": [";
  std::lock_guard<std::mutex> lock(designs_mu_);
  bool first = true;
  for (const auto& [name, shard] : designs_) {
    out += str::format(
        "%s{\"name\": \"%s\", \"epoch\": %llu, \"queue_depth\": %zu}",
        first ? "" : ", ", io::json_escape(name).c_str(),
        static_cast<unsigned long long>(shard->epoch()),
        shard->queue_depth());
    first = false;
  }
  out += "]";
  const session::DesignSnapshot::Stats snaps =
      session::DesignSnapshot::stats();
  out += str::format(
      ", \"snapshots\": {\"live\": %zu, \"bytes_logical\": %zu, "
      "\"bytes_resident\": %zu, \"bytes_shared\": %zu}",
      snaps.live, snaps.logical_bytes, snaps.resident_bytes,
      snaps.shared_bytes());
  return out;
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.counter("server.requests_total").add();

  const auto send_error = [&](std::uint64_t id, ErrorCode code,
                              const std::string& message) {
    reg.counter("server.responses_error").add();
    if (code == ErrorCode::kOverloaded) {
      reg.counter("server.overload_rejects").add();
    }
    send_payload(conn, make_error_response(id, code, message));
  };
  const auto send_ok = [&](std::uint64_t id, std::uint64_t epoch,
                           const std::string& extra) {
    reg.counter("server.responses_ok").add();
    send_payload(conn, make_ok_response(id, epoch, extra));
  };

  Request req;
  ErrorCode code;
  std::string message;
  if (!parse_request(payload, &req, &code, &message)) {
    send_error(req.id, code, message);
    return;
  }

  if (req.op == "ping") {
    send_ok(req.id, 0, "\"pong\": true");
    return;
  }
  if (req.op == "list") {
    send_ok(req.id, 0, handle_list());
    return;
  }
  if (req.op == "load") {
    if (draining()) {
      send_error(req.id, ErrorCode::kDraining, "server is draining");
      return;
    }
    const std::string name =
        req.design.empty() ? req.netlist_path : req.design;
    std::string error;
    if (!load_design(name, req.netlist_path, req.spef_path, &error)) {
      send_error(req.id, ErrorCode::kLoadFailed, error);
      return;
    }
    log::info() << "serve: loaded design '" << name << "' from "
                << req.netlist_path;
    send_ok(req.id, 0,
            str::format("\"design\": \"%s\"", io::json_escape(name).c_str()));
    return;
  }
  if (req.op != "topk" && req.op != "what_if") {
    send_error(req.id, ErrorCode::kUnknownOp, "unknown op '" + req.op + "'");
    return;
  }

  std::shared_ptr<Shard> shard = find_shard(req.design);
  if (shard == nullptr) {
    send_error(req.id, ErrorCode::kUnknownDesign,
               req.design.empty()
                   ? "no 'design' given and more than one design is loaded"
                   : "no design named '" + req.design + "'");
    return;
  }
  if (draining()) {
    send_error(req.id, ErrorCode::kDraining, "server is draining");
    return;
  }
  const std::uint64_t id = req.id;
  const bool admitted = shard->submit(
      std::move(req), [this, conn](std::string response) {
        // Runs on a shard worker thread; ok/error counting happened in the
        // shard, which rendered the response.
        send_payload(conn, response);
      });
  if (!admitted) {
    if (draining()) {
      send_error(id, ErrorCode::kDraining, "server is draining");
    } else {
      send_error(id, ErrorCode::kOverloaded,
                 "query queue is full; retry later");
    }
  }
}

void Server::request_shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // already draining
  }
  // Wake the accept loops; the sockets close during wait().
  if (tcp_listen_.valid()) ::shutdown(tcp_listen_.get(), SHUT_RDWR);
  if (unix_listen_.valid()) ::shutdown(unix_listen_.get(), SHUT_RDWR);
  shutdown_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return draining(); });
  if (shutdown_done_) return;
  if (!started_.load(std::memory_order_acquire)) {
    shutdown_done_ = true;
    shutdown_cv_.notify_all();
    return;
  }
  // First waiter performs the drain; shutdown_mu_ stays held, so others
  // block until shutdown_done_ flips.
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  // Queued queries complete and deliver their responses...
  {
    std::lock_guard<std::mutex> dlock(designs_mu_);
    for (auto& [name, shard] : designs_) shard->begin_drain();
    for (auto& [name, shard] : designs_) shard->join();
  }
  // ...then the idle connections unblock and hang up.
  {
    std::lock_guard<std::mutex> clock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      ::shutdown(conn->fd.get(), SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  tcp_listen_.reset();
  unix_listen_.reset();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  shutdown_done_ = true;
  shutdown_cv_.notify_all();
}

}  // namespace tka::server
