#include "io/report_writer.hpp"

#include <cstdio>
#include <ostream>

#include "util/string_util.hpp"

namespace tka::io {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string num(double v) { return str::format("%.9g", v); }

}  // namespace

void write_noise_report_json(std::ostream& out, const net::Netlist& nl,
                             const noise::NoiseReport& report,
                             bool include_quiet) {
  out << "{\n";
  out << "  \"design\": \"" << json_escape(nl.name()) << "\",\n";
  out << "  \"noiseless_delay_ns\": " << num(report.noiseless_delay) << ",\n";
  out << "  \"noisy_delay_ns\": " << num(report.noisy_delay) << ",\n";
  out << "  \"iterations\": " << report.iterations << ",\n";
  out << "  \"converged\": " << (report.converged ? "true" : "false") << ",\n";
  out << "  \"nets\": [";
  bool first = true;
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    if (!include_quiet && report.delay_noise[n] <= 0.0) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << json_escape(nl.net(n).name) << "\", "
        << "\"eat\": " << num(report.noisy_windows[n].eat) << ", "
        << "\"lat\": " << num(report.noisy_windows[n].lat) << ", "
        << "\"delay_noise\": " << num(report.delay_noise[n]) << "}";
  }
  out << "\n  ]\n}\n";
}

void write_topk_result_json(std::ostream& out, const net::Netlist& nl,
                            const layout::Parasitics& par,
                            const topk::TopkResult& result, int k) {
  out << "{\n";
  out << "  \"design\": \"" << json_escape(nl.name()) << "\",\n";
  out << "  \"mode\": \""
      << (result.mode == topk::Mode::kAddition ? "addition" : "elimination")
      << "\",\n";
  out << "  \"k\": " << k << ",\n";
  out << "  \"baseline_delay_ns\": " << num(result.baseline_delay) << ",\n";
  out << "  \"evaluated_delay_ns\": " << num(result.evaluated_delay) << ",\n";
  out << "  \"runtime_s\": " << num(result.stats.runtime_s) << ",\n";
  out << "  \"members\": [";
  for (size_t i = 0; i < result.members.size(); ++i) {
    const layout::CouplingCap& cc = par.coupling(result.members[i]);
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"net_a\": \"" << json_escape(nl.net(cc.net_a).name) << "\", "
        << "\"net_b\": \"" << json_escape(nl.net(cc.net_b).name) << "\", "
        << "\"cap_pf\": " << num(cc.cap_pf) << "}";
  }
  out << "\n  ],\n";
  out << "  \"delay_by_k\": [";
  for (size_t i = 0; i < result.estimated_delay_by_k.size(); ++i) {
    out << (i == 0 ? "" : ", ") << num(result.estimated_delay_by_k[i]);
  }
  out << "],\n";
  const topk::TopkStats& stats = result.stats;
  out << "  \"stats\": {\n";
  out << "    \"threads\": " << stats.threads << ",\n";
  out << "    \"sets_generated\": " << stats.sets_generated << ",\n";
  out << "    \"dominance_pruned\": " << stats.prune.removed_dominated << ",\n";
  out << "    \"beam_capped\": " << stats.prune.removed_beam << ",\n";
  out << "    \"max_list_size\": " << stats.max_list_size << ",\n";
  out << "    \"runtime_by_k_s\": [";
  for (size_t i = 0; i < stats.runtime_by_k.size(); ++i) {
    out << (i == 0 ? "" : ", ") << num(stats.runtime_by_k[i]);
  }
  out << "]\n  }\n}\n";
}

void write_topk_trail_csv(std::ostream& out, const topk::TopkResult& result) {
  out << "k,estimated_delay_ns,runtime_s\n";
  for (size_t i = 0; i < result.estimated_delay_by_k.size(); ++i) {
    out << (i + 1) << "," << num(result.estimated_delay_by_k[i]) << ","
        << num(result.stats.runtime_by_k[i]) << "\n";
  }
}

}  // namespace tka::io
