#include "io/bench_reader.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tka::io {
namespace {

struct Assignment {
  std::string out;
  std::string func;  // upper-cased
  std::vector<std::string> ins;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error("bench:" + std::to_string(line) + ": " + msg);
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

/// Builds (possibly decomposed) logic for one assignment. All fanin nets
/// must already exist in `nets`.
net::NetId build_gate(net::Netlist& nl, const Assignment& a,
                      const std::vector<net::NetId>& ins) {
  const net::CellLibrary& lib = nl.library();
  const size_t n = ins.size();

  auto add = [&](const char* cell, const std::vector<net::NetId>& fanins,
                 const std::string& out_name) {
    return nl.add_gate(lib.index_of(cell), fanins, "G_" + out_name, out_name);
  };

  // Direct single-cell mappings.
  struct Direct {
    const char* func;
    size_t fanin;
    const char* cell;
  };
  static constexpr Direct kDirect[] = {
      {"NOT", 1, "INVX1"},   {"BUF", 1, "BUFX1"},   {"BUFF", 1, "BUFX1"},
      {"NAND", 2, "NAND2X1"},{"NOR", 2, "NOR2X1"},  {"AND", 2, "AND2X1"},
      {"OR", 2, "OR2X1"},    {"XOR", 2, "XOR2X1"},  {"XNOR", 2, "XNOR2X1"},
      {"NAND", 3, "NAND3X1"},{"NOR", 3, "NOR3X1"},  {"AND", 3, "AND3X1"},
      {"OR", 3, "OR3X1"},    {"NAND", 4, "NAND4X1"},{"NOR", 4, "NOR4X1"},
  };
  for (const Direct& d : kDirect) {
    if (a.func == d.func && n == d.fanin) return add(d.cell, ins, a.out);
  }

  // Decomposition: balanced tree of the 2-input base function, then an
  // inverter for the inverting variants.
  const char* base = nullptr;
  bool invert_root = false;
  if (a.func == "AND" || a.func == "NAND") {
    base = "AND2X1";
    invert_root = (a.func == "NAND");
  } else if (a.func == "OR" || a.func == "NOR") {
    base = "OR2X1";
    invert_root = (a.func == "NOR");
  } else if (a.func == "XOR" || a.func == "XNOR") {
    base = "XOR2X1";
    invert_root = (a.func == "XNOR");
  } else {
    fail(a.line, "unsupported function '" + a.func + "' with " +
                     std::to_string(n) + " inputs");
  }
  if (n < 2) fail(a.line, a.func + " needs at least 2 inputs");

  std::vector<net::NetId> layer = ins;
  int tmp = 0;
  while (layer.size() > 2 || (layer.size() == 2 && invert_root)) {
    std::vector<net::NetId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(add(base, {layer[i], layer[i + 1]},
                         a.out + "_t" + std::to_string(tmp++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
    if (layer.size() == 1) break;
  }
  if (layer.size() == 2) return add(base, layer, a.out);
  return add("INVX1", {layer[0]}, a.out);
}

}  // namespace

std::unique_ptr<net::Netlist> read_bench(std::istream& in,
                                         const std::string& design_name) {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Assignment> assigns;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view s = str::trim(line);
    if (s.empty() || s.front() == '#') continue;

    const std::string text(s);
    const size_t eq = text.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) / OUTPUT(x)
      const size_t lp = text.find('(');
      const size_t rp = text.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        fail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment");
      }
      const std::string kw = upper(str::trim(text.substr(0, lp)));
      const std::string arg{str::trim(text.substr(lp + 1, rp - lp - 1))};
      if (arg.empty()) fail(line_no, "empty pin name");
      if (kw == "INPUT") {
        inputs.push_back(arg);
      } else if (kw == "OUTPUT") {
        outputs.push_back(arg);
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    Assignment a;
    a.line = line_no;
    a.out = std::string(str::trim(text.substr(0, eq)));
    const std::string rhs(str::trim(text.substr(eq + 1)));
    const size_t lp = rhs.find('(');
    const size_t rp = rhs.rfind(')');
    if (a.out.empty() || lp == std::string::npos || rp == std::string::npos || rp < lp) {
      fail(line_no, "malformed assignment");
    }
    a.func = upper(str::trim(rhs.substr(0, lp)));
    for (const std::string& tok : str::split(rhs.substr(lp + 1, rp - lp - 1), ", \t")) {
      a.ins.push_back(tok);
    }
    if (a.ins.empty()) fail(line_no, "gate with no inputs");
    assigns.push_back(std::move(a));
  }

  auto nl = std::make_unique<net::Netlist>(net::CellLibrary::default_library(),
                                           design_name);
  std::unordered_map<std::string, net::NetId> nets;
  for (const std::string& name : inputs) {
    if (nets.count(name)) throw Error("bench: duplicate INPUT '" + name + "'");
    nets[name] = nl->add_primary_input(name);
  }

  // DFF outputs become pseudo primary inputs (combinational cut).
  for (const Assignment& a : assigns) {
    if (a.func == "DFF") {
      if (a.ins.size() != 1) fail(a.line, "DFF takes exactly one input");
      if (nets.count(a.out)) fail(a.line, "duplicate net '" + a.out + "'");
      nets[a.out] = nl->add_primary_input(a.out);
    }
  }

  // Worklist construction: emit each gate once all its fanins exist.
  std::vector<Assignment> pending;
  for (const Assignment& a : assigns) {
    if (a.func != "DFF") pending.push_back(a);
  }
  while (!pending.empty()) {
    bool progress = false;
    std::vector<Assignment> next;
    for (Assignment& a : pending) {
      bool ready = true;
      std::vector<net::NetId> ins;
      for (const std::string& in_name : a.ins) {
        auto it = nets.find(in_name);
        if (it == nets.end()) {
          ready = false;
          break;
        }
        ins.push_back(it->second);
      }
      if (!ready) {
        next.push_back(std::move(a));
        continue;
      }
      if (nets.count(a.out)) fail(a.line, "duplicate net '" + a.out + "'");
      nets[a.out] = build_gate(*nl, a, ins);
      progress = true;
    }
    if (!progress) {
      fail(next.front().line, "unresolvable net '" + next.front().ins.front() +
                                  "' (undefined or combinational cycle)");
    }
    pending = std::move(next);
  }

  for (const Assignment& a : assigns) {
    if (a.func != "DFF") continue;
    auto it = nets.find(a.ins.front());
    if (it == nets.end()) fail(a.line, "DFF input '" + a.ins.front() + "' undefined");
    nl->mark_primary_output(it->second);  // the D pin is a timing endpoint
  }
  for (const std::string& name : outputs) {
    auto it = nets.find(name);
    if (it == nets.end()) throw Error("bench: OUTPUT '" + name + "' undefined");
    nl->mark_primary_output(it->second);
  }
  nl->validate();
  return nl;
}

std::unique_ptr<net::Netlist> read_bench_string(const std::string& text,
                                                const std::string& design_name) {
  std::istringstream in(text);
  return read_bench(in, design_name);
}

std::unique_ptr<net::Netlist> read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("bench: cannot open '" + path + "'");
  // Design name = file stem.
  std::string name = path;
  if (const size_t slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const size_t dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_bench(in, name);
}

}  // namespace tka::io
