// SPEF-lite: a line-oriented exchange format for the extracted parasitics,
// a simplified stand-in for IEEE 1481 SPEF. Net names are resolved against
// the netlist on read, so a parasitics database round-trips exactly.
//
//   *DESIGN <name>
//   *NET <net> <ground_cap_pf> <wire_res_kohm>
//   *CCAP <net_a> <net_b> <cap_pf>
#pragma once

#include <iosfwd>
#include <string>

#include "layout/parasitics.hpp"

namespace tka::io {

/// Writes the parasitics database.
void write_spef_lite(std::ostream& out, const net::Netlist& nl,
                     const layout::Parasitics& par);

/// Writes to a file. Throws tka::Error on I/O failure.
void write_spef_lite_file(const std::string& path, const net::Netlist& nl,
                          const layout::Parasitics& par);

/// Reads a SPEF-lite stream against `nl`. Throws tka::Error on unknown
/// nets or malformed lines.
layout::Parasitics read_spef_lite(std::istream& in, const net::Netlist& nl);

/// Reads from a file.
layout::Parasitics read_spef_lite_file(const std::string& path,
                                       const net::Netlist& nl);

}  // namespace tka::io
