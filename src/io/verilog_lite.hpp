// Structural Verilog subset: gate-level netlists using the built-in cell
// library, with named pin connections (.A/.B/.C/.D inputs, .Y output).
//
//   module top (a, b, y);
//     input a, b;
//     output y;
//     wire w1;
//     NAND2X1 g0 (.A(a), .B(b), .Y(w1));
//     INVX1 g1 (.A(w1), .Y(y));
//   endmodule
//
// The writer always produces this shape; the reader accepts arbitrary
// whitespace/line breaks, `//` comments, and statements in any order.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "net/netlist.hpp"

namespace tka::io {

/// Writes `nl` as structural Verilog.
void write_verilog(std::ostream& out, const net::Netlist& nl);

/// Writes to a file; throws tka::Error on I/O failure.
void write_verilog_file(const std::string& path, const net::Netlist& nl);

/// Parses a structural-Verilog stream against the default cell library.
/// Throws tka::Error on syntax errors, unknown cells/pins or undriven
/// wires.
std::unique_ptr<net::Netlist> read_verilog(std::istream& in);

/// Parses Verilog text.
std::unique_ptr<net::Netlist> read_verilog_string(const std::string& text);

/// Parses a file.
std::unique_ptr<net::Netlist> read_verilog_file(const std::string& path);

/// Canonical pin name of input pin `index` (A, B, C, D).
std::string input_pin_name(int index);

}  // namespace tka::io
