// Machine-readable result export: JSON for tool integration, CSV for
// plotting. Hand-rolled emitters (no third-party JSON dependency) with
// proper string escaping; schemas are documented on each function.
#pragma once

#include <iosfwd>
#include <string>

#include "noise/iterative.hpp"
#include "topk/topk_engine.hpp"

namespace tka::io {

/// JSON schema:
/// { "design": str, "noiseless_delay_ns": num, "noisy_delay_ns": num,
///   "iterations": int, "converged": bool,
///   "nets": [ {"name": str, "eat": num, "lat": num, "delay_noise": num} ] }
/// Nets with zero delay noise are omitted from "nets" unless
/// `include_quiet` is set.
void write_noise_report_json(std::ostream& out, const net::Netlist& nl,
                             const noise::NoiseReport& report,
                             bool include_quiet = false);

/// JSON schema:
/// { "design": str, "mode": "addition"|"elimination", "k": int,
///   "baseline_delay_ns": num, "evaluated_delay_ns": num,
///   "runtime_s": num, "members": [ {"net_a": str, "net_b": str,
///   "cap_pf": num} ], "delay_by_k": [num, ...],
///   "stats": { "sets_generated": int, "dominance_pruned": int,
///              "beam_capped": int, "max_list_size": int,
///              "runtime_by_k_s": [num, ...] } }
/// Times are wall-clock seconds from the obs monotonic clock (see
/// topk::TopkStats); "sets_generated" is 0 when the library was built with
/// TKA_OBS_DISABLED.
void write_topk_result_json(std::ostream& out, const net::Netlist& nl,
                            const layout::Parasitics& par,
                            const topk::TopkResult& result, int k);

/// CSV with header "k,estimated_delay_ns,runtime_s" — one row per
/// cardinality of the engine trail (for plotting Figure-10 style curves).
void write_topk_trail_csv(std::ostream& out, const topk::TopkResult& result);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

}  // namespace tka::io
