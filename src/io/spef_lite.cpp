#include "io/spef_lite.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tka::io {

void write_spef_lite(std::ostream& out, const net::Netlist& nl,
                     const layout::Parasitics& par) {
  out << "*DESIGN " << nl.name() << "\n";
  out.precision(9);
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    const double gc = par.ground_cap(n);
    const double wr = par.wire_res(n);
    if (gc == 0.0 && wr == 0.0) continue;
    out << "*NET " << nl.net(n).name << " " << gc << " " << wr << "\n";
  }
  for (const layout::CouplingCap& cc : par.couplings()) {
    if (cc.cap_pf <= 0.0) continue;
    out << "*CCAP " << nl.net(cc.net_a).name << " " << nl.net(cc.net_b).name
        << " " << cc.cap_pf << "\n";
  }
}

void write_spef_lite_file(const std::string& path, const net::Netlist& nl,
                          const layout::Parasitics& par) {
  std::ofstream out(path);
  if (!out) throw Error("spef_lite: cannot open '" + path + "' for writing");
  write_spef_lite(out, nl, par);
  if (!out) throw Error("spef_lite: write failed for '" + path + "'");
}

layout::Parasitics read_spef_lite(std::istream& in, const net::Netlist& nl) {
  layout::Parasitics par(nl.num_nets());
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view s = str::trim(line);
    if (s.empty() || s.front() == '#') continue;
    const std::vector<std::string> tok = str::split(s, " \t");
    auto fail = [line_no](const std::string& msg) -> void {
      throw Error("spef_lite:" + std::to_string(line_no) + ": " + msg);
    };
    if (tok[0] == "*DESIGN") {
      continue;  // informational
    } else if (tok[0] == "*NET") {
      if (tok.size() != 4) fail("*NET takes <name> <gcap> <res>");
      const net::NetId n = nl.net_by_name(tok[1]);
      par.add_ground_cap(n, std::stod(tok[2]));
      par.add_wire_res(n, std::stod(tok[3]));
    } else if (tok[0] == "*CCAP") {
      if (tok.size() != 4) fail("*CCAP takes <net_a> <net_b> <cap>");
      const net::NetId a = nl.net_by_name(tok[1]);
      const net::NetId b = nl.net_by_name(tok[2]);
      const double cap = std::stod(tok[3]);
      if (cap <= 0.0) fail("coupling cap must be positive");
      par.add_coupling(a, b, cap);
    } else {
      fail("unknown directive '" + tok[0] + "'");
    }
  }
  return par;
}

layout::Parasitics read_spef_lite_file(const std::string& path,
                                       const net::Netlist& nl) {
  std::ifstream in(path);
  if (!in) throw Error("spef_lite: cannot open '" + path + "'");
  return read_spef_lite(in, nl);
}

}  // namespace tka::io
