// ISCAS-85 style ".bench" netlist reader.
//
// Supported statements: comments (#), INPUT(x), OUTPUT(x), and
//   y = FUNC(a, b, ...)
// with FUNC in {AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF, BUFF, DFF}.
// Gates with more than four fanins are decomposed into balanced two-input
// trees (inverting functions invert only at the root). DFFs are cut into a
// pseudo primary output (the D pin) and a pseudo primary input (the Q net),
// which is the standard combinational-timing treatment.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "net/netlist.hpp"

namespace tka::io {

/// Parses a .bench stream. Throws tka::Error with a line number on any
/// syntax or semantic problem.
std::unique_ptr<net::Netlist> read_bench(std::istream& in,
                                         const std::string& design_name = "bench");

/// Parses .bench text.
std::unique_ptr<net::Netlist> read_bench_string(const std::string& text,
                                                const std::string& design_name = "bench");

/// Parses a .bench file from disk.
std::unique_ptr<net::Netlist> read_bench_file(const std::string& path);

}  // namespace tka::io
