// Graphviz export of a netlist, optionally annotated with coupling edges —
// handy for inspecting small designs and top-k result sets.
#pragma once

#include <iosfwd>
#include <span>

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"

namespace tka::io {

/// Writes the gate graph in DOT format. When `par` is non-null, coupling
/// caps appear as dashed undirected edges; ids in `highlight` are drawn in
/// red (e.g. a top-k set).
void write_dot(std::ostream& out, const net::Netlist& nl,
               const layout::Parasitics* par = nullptr,
               std::span<const layout::CapId> highlight = {});

}  // namespace tka::io
