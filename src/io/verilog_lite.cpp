#include "io/verilog_lite.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tka::io {

std::string input_pin_name(int index) {
  TKA_CHECK(index >= 0 && index < 4, "verilog: input pin index out of range");
  return std::string(1, static_cast<char>('A' + index));
}

void write_verilog(std::ostream& out, const net::Netlist& nl) {
  const auto pis = nl.primary_inputs();
  const auto pos = nl.primary_outputs();
  out << "module " << nl.name() << " (";
  bool first = true;
  for (net::NetId n : pis) {
    out << (first ? "" : ", ") << nl.net(n).name;
    first = false;
  }
  for (net::NetId n : pos) {
    out << (first ? "" : ", ") << nl.net(n).name;
    first = false;
  }
  out << ");\n";
  for (net::NetId n : pis) out << "  input " << nl.net(n).name << ";\n";
  for (net::NetId n : pos) out << "  output " << nl.net(n).name << ";\n";
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).is_primary_input && !nl.net(n).is_primary_output) {
      out << "  wire " << nl.net(n).name << ";\n";
    }
  }
  for (net::GateId g = 0; g < nl.num_gates(); ++g) {
    const net::Gate& gate = nl.gate(g);
    out << "  " << nl.cell_of(g).name << " " << gate.name << " (";
    for (size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      out << "." << input_pin_name(static_cast<int>(pin)) << "("
          << nl.net(gate.inputs[pin]).name << "), ";
    }
    out << ".Y(" << nl.net(gate.output).name << "));\n";
  }
  out << "endmodule\n";
}

void write_verilog_file(const std::string& path, const net::Netlist& nl) {
  std::ofstream out(path);
  if (!out) throw Error("verilog: cannot open '" + path + "' for writing");
  write_verilog(out, nl);
  if (!out) throw Error("verilog: write failed for '" + path + "'");
}

namespace {

// Strips // comments and splits the stream into ';'-terminated statements.
std::vector<std::string> statements(std::istream& in) {
  std::ostringstream all;
  std::string line;
  while (std::getline(in, line)) {
    const size_t comment = line.find("//");
    if (comment != std::string::npos) line.resize(comment);
    all << line << '\n';
  }
  std::vector<std::string> out;
  std::string text = all.str();
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == ';') {
      out.emplace_back(str::trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  const std::string tail{str::trim(text.substr(start))};
  if (!tail.empty()) out.push_back(tail);
  return out;
}

struct Instance {
  std::string cell;
  std::string name;
  std::map<std::string, std::string> pins;  // pin -> net name
};

}  // namespace

std::unique_ptr<net::Netlist> read_verilog(std::istream& in) {
  const net::CellLibrary& lib = net::CellLibrary::default_library();
  std::string module_name = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> wires;
  std::vector<Instance> instances;

  for (const std::string& stmt : statements(in)) {
    if (stmt.empty()) continue;
    const std::vector<std::string> tok = str::split(stmt, " \t\n,()");
    if (tok.empty()) continue;
    if (tok[0] == "module") {
      TKA_CHECK(tok.size() >= 2, "verilog: malformed module header");
      module_name = tok[1];
    } else if (tok[0] == "endmodule") {
      break;
    } else if (tok[0] == "input") {
      inputs.insert(inputs.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == "output") {
      outputs.insert(outputs.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == "wire") {
      wires.insert(wires.end(), tok.begin() + 1, tok.end());
    } else {
      // Instance: CELL name (.PIN(net), ...);
      TKA_CHECK(lib.contains(tok[0]), "verilog: unknown cell '" + tok[0] + "'");
      Instance inst;
      inst.cell = tok[0];
      TKA_CHECK(tok.size() >= 2, "verilog: instance without a name");
      inst.name = tok[1];
      // Re-parse pin connections from the raw statement: .PIN(net)
      size_t pos = 0;
      while ((pos = stmt.find('.', pos)) != std::string::npos) {
        const size_t lp = stmt.find('(', pos);
        const size_t rp = stmt.find(')', lp);
        TKA_CHECK(lp != std::string::npos && rp != std::string::npos,
                  "verilog: malformed pin connection in '" + inst.name + "'");
        const std::string pin{str::trim(stmt.substr(pos + 1, lp - pos - 1))};
        const std::string netname{str::trim(stmt.substr(lp + 1, rp - lp - 1))};
        TKA_CHECK(!pin.empty() && !netname.empty(),
                  "verilog: empty pin/net in '" + inst.name + "'");
        TKA_CHECK(!inst.pins.count(pin),
                  "verilog: duplicate pin ." + pin + " in '" + inst.name + "'");
        inst.pins[pin] = netname;
        pos = rp + 1;
      }
      instances.push_back(std::move(inst));
    }
  }

  auto nl = std::make_unique<net::Netlist>(lib, module_name);
  std::map<std::string, net::NetId> nets;
  for (const std::string& name : inputs) {
    TKA_CHECK(!nets.count(name), "verilog: duplicate input '" + name + "'");
    nets[name] = nl->add_primary_input(name);
  }

  // Worklist: create each instance once all its input nets exist.
  std::vector<Instance> pending = instances;
  while (!pending.empty()) {
    std::vector<Instance> next;
    bool progress = false;
    for (Instance& inst : pending) {
      const size_t cell_idx = lib.index_of(inst.cell);
      const int nin = lib.cell(cell_idx).num_inputs;
      std::vector<net::NetId> ins;
      bool ready = true;
      for (int pin = 0; pin < nin; ++pin) {
        auto it = inst.pins.find(input_pin_name(pin));
        TKA_CHECK(it != inst.pins.end(), "verilog: instance '" + inst.name +
                                             "' missing pin ." + input_pin_name(pin));
        auto net_it = nets.find(it->second);
        if (net_it == nets.end()) {
          ready = false;
          break;
        }
        ins.push_back(net_it->second);
      }
      auto out_it = inst.pins.find("Y");
      TKA_CHECK(out_it != inst.pins.end(),
                "verilog: instance '" + inst.name + "' missing pin .Y");
      if (!ready) {
        next.push_back(std::move(inst));
        continue;
      }
      TKA_CHECK(!nets.count(out_it->second),
                "verilog: net '" + out_it->second + "' driven twice");
      nets[out_it->second] = nl->add_gate(cell_idx, ins, inst.name, out_it->second);
      progress = true;
    }
    if (!progress) {
      throw Error("verilog: unresolvable instance '" + next.front().name +
                  "' (undriven input or combinational cycle)");
    }
    pending = std::move(next);
  }

  for (const std::string& name : outputs) {
    auto it = nets.find(name);
    TKA_CHECK(it != nets.end(), "verilog: output '" + name + "' undriven");
    nl->mark_primary_output(it->second);
  }
  nl->validate();
  return nl;
}

std::unique_ptr<net::Netlist> read_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return read_verilog(in);
}

std::unique_ptr<net::Netlist> read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("verilog: cannot open '" + path + "'");
  return read_verilog(in);
}

}  // namespace tka::io
