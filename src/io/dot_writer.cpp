#include "io/dot_writer.hpp"

#include <algorithm>
#include <ostream>

namespace tka::io {

void write_dot(std::ostream& out, const net::Netlist& nl,
               const layout::Parasitics* par,
               std::span<const layout::CapId> highlight) {
  out << "digraph \"" << nl.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    const net::Net& net = nl.net(n);
    if (net.is_primary_input) {
      out << "  n" << n << " [label=\"" << net.name << "\", shape=triangle];\n";
    } else if (net.is_primary_output && net.fanouts.empty()) {
      out << "  n" << n << " [label=\"" << net.name << "\", shape=invtriangle];\n";
    }
  }
  for (net::GateId g = 0; g < nl.num_gates(); ++g) {
    const net::Gate& gate = nl.gate(g);
    out << "  g" << g << " [label=\"" << gate.name << "\\n"
        << nl.cell_of(g).name << "\"];\n";
    for (net::NetId in : gate.inputs) {
      if (nl.net(in).is_primary_input || nl.net(in).driver == net::kInvalidGate) {
        out << "  n" << in << " -> g" << g << ";\n";
      } else {
        out << "  g" << nl.net(in).driver << " -> g" << g << " [label=\""
            << nl.net(in).name << "\", fontsize=8];\n";
      }
    }
    if (nl.net(gate.output).is_primary_output) {
      out << "  n" << gate.output << " [label=\"" << nl.net(gate.output).name
          << "\", shape=invtriangle];\n";
      out << "  g" << g << " -> n" << gate.output << ";\n";
    }
  }

  if (par != nullptr) {
    auto node_of = [&nl](net::NetId n) {
      const net::Net& net = nl.net(n);
      std::string id;
      if (net.driver != net::kInvalidGate) {
        id = "g" + std::to_string(net.driver);
      } else {
        id = "n" + std::to_string(n);
      }
      return id;
    };
    for (layout::CapId id = 0; id < par->num_couplings(); ++id) {
      const layout::CouplingCap& cc = par->coupling(id);
      if (cc.cap_pf <= 0.0) continue;
      const bool hot =
          std::find(highlight.begin(), highlight.end(), id) != highlight.end();
      out << "  " << node_of(cc.net_a) << " -> " << node_of(cc.net_b)
          << " [dir=none, style=dashed"
          << (hot ? ", color=red, penwidth=2.0" : ", color=gray") << "];\n";
    }
  }
  out << "}\n";
}

}  // namespace tka::io
