#include "wave/envelope.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::wave {

Pwl make_trapezoidal_envelope(const PulseShape& shape, double eat, double lat,
                              int decay_samples) {
  TKA_ASSERT(lat >= eat);
  if (shape.peak == 0.0) return Pwl();
  const Pwl early = make_pulse(shape, eat, decay_samples);
  if (lat - eat < 1e-12) return early;

  // The trapezoid is exactly: rising edge of the pulse fired at EAT, a
  // plateau at the peak until the LAT-fired pulse peaks, then the decay of
  // the LAT-fired pulse. Both pieces are monotonic by construction of
  // make_pulse, so splicing at the peaks is exact.
  const Pwl late = make_pulse(shape, lat, decay_samples);
  const double early_peak_t = eat + shape.rise;
  const double late_peak_t = lat + shape.rise;

  PointStore pts;
  pts.reserve(early.size() + late.size());
  for (const Point& p : early.points()) {
    if (p.t <= early_peak_t + 1e-12) pts.push_back(p);
  }
  for (const Point& p : late.points()) {
    if (p.t >= late_peak_t - 1e-12) pts.push_back(p);
  }
  return Pwl(std::move(pts));
}

Pwl combine_envelopes(std::span<const Pwl* const> envelopes) {
  return Pwl::sum(envelopes);
}

bool dominates(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
               double tol) {
  TKA_ASSERT(interval.valid());
  return a.encapsulates(b, interval.lo, interval.hi, tol);
}

EnvelopeSignature make_signature(const Pwl& env,
                                 const DominanceInterval& interval) {
  EnvelopeSignature sig;
  if (!interval.valid()) return sig;
  sig.valid = true;
  sig.lo = interval.lo;
  sig.hi = interval.hi;

  const double span = interval.hi - interval.lo;
  const double step = span / (EnvelopeSignature::kSamples - 1);
  for (int i = 0; i < EnvelopeSignature::kSamples; ++i) {
    sig.samples[i] = env.value(interval.lo + step * static_cast<double>(i));
  }

  // Sup over the interval: attained at an interval end or at a breakpoint
  // strictly inside (the envelope is linear in between).
  sig.peak = std::max(sig.samples.front(), sig.samples.back());
  const std::span<const Point> pts = env.points();
  for (const Point& p : pts) {
    if (p.t > interval.lo && p.t < interval.hi) sig.peak = std::max(sig.peak, p.v);
  }

  // Trapezoidal integral over [lo, hi]. The envelope is linear between
  // consecutive knots (interval ends + interior breakpoints) — constant
  // extrapolation outside the breakpoint span is linear too — so walking
  // the knots once is exact.
  double area = 0.0;
  double prev_t = interval.lo;
  double prev_v = sig.samples.front();
  for (const Point& p : pts) {
    if (p.t <= interval.lo) continue;
    if (p.t >= interval.hi) break;
    area += 0.5 * (prev_v + p.v) * (p.t - prev_t);
    prev_t = p.t;
    prev_v = p.v;
  }
  area += 0.5 * (prev_v + sig.samples.back()) * (interval.hi - prev_t);
  sig.integral = area;
  return sig;
}

bool signature_matches(const EnvelopeSignature& sig,
                       const DominanceInterval& interval) {
  return sig.valid && sig.lo == interval.lo && sig.hi == interval.hi;
}

bool signature_rejects(const EnvelopeSignature& a, const EnvelopeSignature& b,
                       double tol) {
  if (!a.valid || !b.valid || a.lo != b.lo || a.hi != b.hi) return false;
  const double gap = tol + kSigMargin;
  // Peak witness: b rises above anything a attains anywhere in the interval.
  if (b.peak > a.peak + gap) return true;
  // Mean witness: b's area exceeds a's by more than tol over the full span,
  // so b - a > tol somewhere.
  if (b.integral - a.integral > gap * (b.hi - b.lo)) return true;
  // Grid witnesses: a provably sits below b - tol at a shared sample time.
  for (int i = 0; i < EnvelopeSignature::kSamples; ++i) {
    if (a.samples[i] < b.samples[i] - gap) return true;
  }
  return false;
}

DomOrder compare(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
                 double tol) {
  const bool ab = dominates(a, b, interval, tol);
  if (ab) return DomOrder::kADominatesB;
  if (dominates(b, a, interval, tol)) return DomOrder::kBDominatesA;
  return DomOrder::kIncomparable;
}

}  // namespace tka::wave
