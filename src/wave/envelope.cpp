#include "wave/envelope.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::wave {

Pwl make_trapezoidal_envelope(const PulseShape& shape, double eat, double lat,
                              int decay_samples) {
  TKA_ASSERT(lat >= eat);
  if (shape.peak == 0.0) return Pwl();
  const Pwl early = make_pulse(shape, eat, decay_samples);
  if (lat - eat < 1e-12) return early;

  // The trapezoid is exactly: rising edge of the pulse fired at EAT, a
  // plateau at the peak until the LAT-fired pulse peaks, then the decay of
  // the LAT-fired pulse. Both pieces are monotonic by construction of
  // make_pulse, so splicing at the peaks is exact.
  const Pwl late = make_pulse(shape, lat, decay_samples);
  const double early_peak_t = eat + shape.rise;
  const double late_peak_t = lat + shape.rise;

  std::vector<Point> pts;
  pts.reserve(early.size() + late.size());
  for (const Point& p : early.points()) {
    if (p.t <= early_peak_t + 1e-12) pts.push_back(p);
  }
  for (const Point& p : late.points()) {
    if (p.t >= late_peak_t - 1e-12) pts.push_back(p);
  }
  return Pwl(std::move(pts));
}

Pwl combine_envelopes(std::span<const Pwl* const> envelopes) {
  return Pwl::sum(envelopes);
}

bool dominates(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
               double tol) {
  TKA_ASSERT(interval.valid());
  return a.encapsulates(b, interval.lo, interval.hi, tol);
}

DomOrder compare(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
                 double tol) {
  const bool ab = dominates(a, b, interval, tol);
  if (ab) return DomOrder::kADominatesB;
  if (dominates(b, a, interval, tol)) return DomOrder::kBDominatesA;
  return DomOrder::kIncomparable;
}

}  // namespace tka::wave
