#include "wave/pwl.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace tka::wave {
namespace {

constexpr double kTimeEps = 1e-12;

// Merged, deduplicated breakpoint times of two waveforms.
std::vector<double> merged_times(const Pwl& a, const Pwl& b) {
  std::vector<double> times;
  times.reserve(a.size() + b.size());
  for (const Point& p : a.points()) times.push_back(p.t);
  for (const Point& p : b.points()) times.push_back(p.t);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end(),
                          [](double x, double y) { return std::abs(x - y) < kTimeEps; }),
              times.end());
  return times;
}

}  // namespace

Pwl::Pwl(std::vector<Point> points) : points_(std::move(points)) {
  TKA_ASSERT(std::is_sorted(points_.begin(), points_.end(),
                            [](const Point& a, const Point& b) { return a.t < b.t; }));
  // Merge equal-time duplicates, keeping the later value.
  std::vector<Point> merged;
  merged.reserve(points_.size());
  for (const Point& p : points_) {
    if (!merged.empty() && std::abs(merged.back().t - p.t) < kTimeEps) {
      merged.back().v = p.v;
    } else {
      merged.push_back(p);
    }
  }
  points_ = std::move(merged);
}

Pwl Pwl::constant(double v) { return Pwl({{0.0, v}}); }

double Pwl::t_front() const {
  TKA_ASSERT(!points_.empty());
  return points_.front().t;
}

double Pwl::t_back() const {
  TKA_ASSERT(!points_.empty());
  return points_.back().t;
}

double Pwl::value(double t) const {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().t) return points_.front().v;
  if (t >= points_.back().t) return points_.back().v;
  // First breakpoint with time > t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span < kTimeEps) return hi.v;
  const double f = (t - lo.t) / span;
  return lo.v + f * (hi.v - lo.v);
}

double Pwl::peak() const {
  double m = 0.0;
  if (points_.empty()) return 0.0;
  m = points_.front().v;
  for (const Point& p : points_) m = std::max(m, p.v);
  return m;
}

double Pwl::peak_time() const {
  if (points_.empty()) return 0.0;
  double best_v = points_.front().v;
  double best_t = points_.front().t;
  for (const Point& p : points_) {
    if (p.v > best_v) {
      best_v = p.v;
      best_t = p.t;
    }
  }
  return best_t;
}

double Pwl::min_value() const {
  if (points_.empty()) return 0.0;
  double m = points_.front().v;
  for (const Point& p : points_) m = std::min(m, p.v);
  return m;
}

Pwl Pwl::shifted(double dt) const {
  std::vector<Point> pts = points_;
  for (Point& p : pts) p.t += dt;
  return Pwl(std::move(pts));
}

Pwl Pwl::scaled(double a) const {
  std::vector<Point> pts = points_;
  for (Point& p : pts) p.v *= a;
  return Pwl(std::move(pts));
}

Pwl Pwl::plus(const Pwl& other) const {
  if (points_.empty()) return other;
  if (other.points_.empty()) return *this;
  std::vector<Point> pts;
  const std::vector<double> times = merged_times(*this, other);
  pts.reserve(times.size());
  for (double t : times) pts.push_back({t, value(t) + other.value(t)});
  return Pwl(std::move(pts));
}

Pwl Pwl::minus(const Pwl& other) const {
  return plus(other.scaled(-1.0));
}

Pwl Pwl::upper_envelope(const Pwl& other) const {
  if (points_.empty()) return other.upper_envelope(Pwl::constant(0.0));
  if (other.points_.empty()) return upper_envelope(Pwl::constant(0.0));
  const std::vector<double> times = merged_times(*this, other);
  std::vector<Point> pts;
  pts.reserve(times.size() * 2);
  for (size_t i = 0; i < times.size(); ++i) {
    const double t = times[i];
    const double va = value(t);
    const double vb = other.value(t);
    pts.push_back({t, std::max(va, vb)});
    // Insert the crossing point inside (t, t_next) if the two linear
    // segments swap order there.
    if (i + 1 < times.size()) {
      const double tn = times[i + 1];
      const double va2 = value(tn);
      const double vb2 = other.value(tn);
      const double d0 = va - vb;
      const double d1 = va2 - vb2;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = t + f * (tn - t);
        if (tc > t + kTimeEps && tc < tn - kTimeEps) {
          const double vc = value(tc);  // == other.value(tc) at the crossing
          pts.push_back({tc, vc});
        }
      }
    }
  }
  return Pwl(std::move(pts));
}

Pwl Pwl::clamped(double lo, double hi) const {
  TKA_ASSERT(lo <= hi);
  if (points_.empty()) {
    const double z = std::clamp(0.0, lo, hi);
    return z == 0.0 ? Pwl() : Pwl::constant(z);
  }
  // Clamping a PWL can introduce breakpoints where segments cross lo/hi.
  std::vector<Point> pts;
  pts.reserve(points_.size() * 2);
  auto emit = [&pts](double t, double v) { pts.push_back({t, v}); };
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    emit(p.t, std::clamp(p.v, lo, hi));
    if (i + 1 == points_.size()) break;
    const Point& q = points_[i + 1];
    // Insert crossings of the thresholds within (p.t, q.t).
    for (double level : {lo, hi}) {
      const double d0 = p.v - level;
      const double d1 = q.v - level;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = p.t + f * (q.t - p.t);
        if (tc > p.t + kTimeEps && tc < q.t - kTimeEps) emit(tc, level);
      }
    }
    // Keep pts sorted: crossings for lo/hi may come out of order.
    // (At most two inserts per segment; sort the tail.)
    auto tail = pts.end();
    int inserted = 0;
    while (tail != pts.begin() && (tail - 1)->t > p.t && inserted < 3) {
      --tail;
      ++inserted;
    }
    std::sort(tail, pts.end(), [](const Point& a, const Point& b) { return a.t < b.t; });
  }
  return Pwl(std::move(pts));
}

bool Pwl::encapsulates(const Pwl& other, double t_lo, double t_hi, double tol) const {
  TKA_ASSERT(t_lo <= t_hi);
  auto check = [&](double t) { return value(t) >= other.value(t) - tol; };
  if (!check(t_lo) || !check(t_hi)) return false;
  for (const std::vector<Point>* src : {&points_, &other.points_}) {
    for (const Point& p : *src) {
      if (p.t <= t_lo || p.t >= t_hi) continue;
      if (!check(p.t)) return false;
    }
  }
  return true;
}

std::optional<double> Pwl::last_time_at_or_below(double level) const {
  if (points_.empty()) return level >= 0.0 ? std::nullopt : std::nullopt;
  // Constant extrapolation after the last breakpoint: if the final value is
  // <= level the set {t : w(t) <= level} is unbounded above.
  if (points_.back().v <= level) return std::nullopt;
  // Scan segments backward for the latest point at or below the level.
  for (size_t i = points_.size() - 1; i > 0; --i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    const double vmin = std::min(a.v, b.v);
    if (vmin > level) continue;
    if (b.v <= level) return b.t;  // (only possible for i == size-1 handled above)
    // b.v > level, a.v <= level possible; or dip inside segment (linear: no
    // interior dip). Linear segment: the latest t with v(t) <= level solves
    // v(t) = level on a rising stretch ending above level.
    const double denom = b.v - a.v;
    TKA_ASSERT(std::abs(denom) > 0.0);
    const double f = (level - a.v) / denom;
    return a.t + f * (b.t - a.t);
  }
  // Before the first breakpoint: constant at front value.
  if (points_.front().v <= level) return points_.front().t;
  return std::nullopt;
}

std::optional<double> Pwl::first_time_at_or_above(double level) const {
  if (points_.empty()) return std::nullopt;
  if (points_.front().v >= level) return std::nullopt;  // unbounded below
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    if (std::max(a.v, b.v) < level) continue;
    if (a.v >= level) return a.t;
    const double denom = b.v - a.v;
    TKA_ASSERT(std::abs(denom) > 0.0);
    const double f = (level - a.v) / denom;
    return a.t + f * (b.t - a.t);
  }
  return std::nullopt;
}

double Pwl::integral() const {
  double area = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    area += 0.5 * (a.v + b.v) * (b.t - a.t);
  }
  return area;
}

Pwl Pwl::simplified(double tol) const {
  if (points_.size() <= 2) return *this;
  std::vector<Point> out;
  out.reserve(points_.size());
  out.push_back(points_.front());
  // Greedy: extend the current segment while every skipped breakpoint stays
  // within tol of the straight line from the anchor to the candidate end.
  size_t anchor = 0;
  size_t i = 1;
  while (i + 1 < points_.size()) {
    // Try to skip breakpoint i: line from anchor to i+1.
    const Point& a = points_[anchor];
    const Point& c = points_[i + 1];
    bool ok = true;
    for (size_t j = anchor + 1; j <= i; ++j) {
      const Point& p = points_[j];
      const double span = c.t - a.t;
      const double lv = span < kTimeEps
                            ? a.v
                            : a.v + (p.t - a.t) / span * (c.v - a.v);
      if (std::abs(lv - p.v) > tol) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++i;  // breakpoint i is redundant; consider extending further
    } else {
      out.push_back(points_[i]);
      anchor = i;
      ++i;
    }
  }
  out.push_back(points_.back());
  return Pwl(std::move(out));
}

std::string Pwl::to_string() const {
  std::ostringstream os;
  os << "Pwl[";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << points_[i].t << ", " << points_[i].v << ")";
  }
  os << "]";
  return os.str();
}

Pwl Pwl::sum(std::span<const Pwl* const> terms) {
  std::vector<double> times;
  for (const Pwl* w : terms) {
    TKA_ASSERT(w != nullptr);
    for (const Point& p : w->points()) times.push_back(p.t);
  }
  if (times.empty()) return Pwl();
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end(),
                          [](double x, double y) { return std::abs(x - y) < kTimeEps; }),
              times.end());
  std::vector<Point> pts;
  pts.reserve(times.size());
  for (double t : times) {
    double v = 0.0;
    for (const Pwl* w : terms) v += w->value(t);
    pts.push_back({t, v});
  }
  return Pwl(std::move(pts));
}

}  // namespace tka::wave
