#include "wave/pwl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace tka::wave {
namespace {

constexpr double kTimeEps = 1e-12;

// Monotone segment cursor: value_at(t) reproduces Pwl::value(t) bit-for-bit
// (same segment lookup semantics, same interpolation expression) but finds
// the segment by advancing an index instead of a binary search. Calls must
// come with non-decreasing t, which every merge sweep below guarantees —
// that makes a full sweep O(n) instead of O(n log n).
//
// With Negate the cursor reads the waveform as if every value had been
// multiplied by -1.0 first: the interpolation runs on the pre-negated
// values, exactly what it would see on a materialized scaled(-1.0) copy, so
// subtract-via-negate sweeps stay bit-identical to the two-pass form. The
// flag is a template parameter so the common Negate=false instantiation is
// the plain cursor with no branch in the interpolation path.
template <bool Negate = false>
class SegCursor {
 public:
  explicit SegCursor(std::span<const Point> pts) {
    // Cached so the boundary checks don't reload through the span each
    // call: the sweeps interleave value_at with stores into the output
    // store, and the compiler can't prove those stores leave the input
    // points unchanged (they do — the output block is freshly allocated).
    if (!pts.empty()) {
      cur_ = pts.data();
      last_ = pts.data() + (pts.size() - 1);
      front_t_ = pts.front().t;
      front_v_ = load(pts.front().v);
      back_t_ = pts.back().t;
      back_v_ = load(pts.back().v);
    }
  }

  double value_at(double t) {
    if (cur_ == nullptr) return 0.0;
    if (t <= front_t_) return front_v_;
    if (t >= back_t_) return back_v_;
    const Point* cur = cur_;
    while (cur + 1 < last_ && cur[1].t <= t) ++cur;
    cur_ = cur;
    const Point& lo = cur[0];
    const Point& hi = cur[1];
    const double lv = load(lo.v);
    // Exact breakpoint hit — the common case in a merge sweep, where every
    // merged time is a breakpoint of one operand. The interpolation factor
    // is then +0.0 ((t - lo.t) is +0.0 over a positive span), so the same
    // expression is computed with the division skipped. The span-collapse
    // guard below can't fire here: the constructor invariant keeps
    // consecutive breakpoint times >= kTimeEps apart.
    if (t == lo.t) return lv + 0.0 * (load(hi.v) - lv);
    const double span = hi.t - lo.t;
    if (span < kTimeEps) return load(hi.v);
    const double f = (t - lo.t) / span;
    return lv + f * (load(hi.v) - lv);
  }

 private:
  static double load(double v) {
    if constexpr (Negate) {
      return v * -1.0;
    } else {
      return v;
    }
  }

  const Point* cur_ = nullptr;   // current segment's left breakpoint
  const Point* last_ = nullptr;  // final breakpoint (segment right bound cap)
  double front_t_ = 0.0;
  double front_v_ = 0.0;
  double back_t_ = 0.0;
  double back_v_ = 0.0;
};

// Two-pointer walk over the merged, eps-deduplicated breakpoint times of two
// waveforms, in ascending order. Duplicate handling matches the former
// sort + unique(|x-y| < kTimeEps) exactly: a time is dropped when it lies
// within kTimeEps of the last *emitted* time.
class MergedTimes {
 public:
  MergedTimes(std::span<const Point> a, std::span<const Point> b)
      : pa_(a.data()),
        ea_(a.data() + a.size()),
        pb_(b.data()),
        eb_(b.data() + b.size()) {}

  /// Next merged time into *t; false when both lists are exhausted.
  bool next(double* t) {
    while (pa_ != ea_ || pb_ != eb_) {
      double cand;
      if (pb_ == eb_ || (pa_ != ea_ && pa_->t <= pb_->t)) {
        cand = (pa_++)->t;
      } else {
        cand = (pb_++)->t;
      }
      if (have_last_ && cand - last_ < kTimeEps) continue;
      have_last_ = true;
      last_ = cand;
      *t = cand;
      return true;
    }
    return false;
  }

 private:
  const Point* pa_;
  const Point* ea_;
  const Point* pb_;
  const Point* eb_;
  bool have_last_ = false;
  double last_ = 0.0;
};

obs::Counter& merge_points_counter() {
  static obs::Counter& c = obs::registry().counter("pwl.merge_points");
  return c;
}

// Merge equal-time duplicates in place, keeping the later value. Shared by
// both constructors; write-index compaction, no allocation. The leading
// read-only scan makes the common no-duplicate case a single pass with no
// stores.
void merge_duplicate_times(PointStore& pts) {
  const std::size_t n = pts.size();
  std::size_t i = 1;
  while (i < n && std::abs(pts[i - 1].t - pts[i].t) >= kTimeEps) ++i;
  if (i >= n) return;
  std::size_t w = i;
  for (; i < n; ++i) {
    if (w > 0 && std::abs(pts[w - 1].t - pts[i].t) < kTimeEps) {
      pts[w - 1].v = pts[i].v;
    } else {
      pts[w++] = pts[i];
    }
  }
  pts.truncate(w);
}

// Two-pointer merge sweep shared by plus and minus. NegateB folds the
// scaled(-1.0) of the subtrahend into the read path (exact: IEEE negation
// and interpolation on pre-negated values are the values the two-pass form
// computes).
template <bool NegateB>
PointStore plus_sweep(std::span<const Point> a, std::span<const Point> b) {
  PointStore pts;
  pts.reserve(a.size() + b.size());
  MergedTimes times(a, b);
  SegCursor<> ca(a);
  SegCursor<NegateB> cb(b);
  // Raw writes into the reserved block: the merged sequence can't exceed
  // a.size() + b.size(), so the per-push capacity check is dead weight.
  Point* out = pts.data();
  std::size_t w = 0;
  double t;
  while (times.next(&t)) out[w++] = {t, ca.value_at(t) + cb.value_at(t)};
  pts.set_size(w);
  return pts;
}

}  // namespace

Pwl::Pwl(std::vector<Point> points) {
  points_.assign(points.data(), points.size());
  TKA_ASSERT(std::is_sorted(points_.begin(), points_.end(),
                            [](const Point& a, const Point& b) { return a.t < b.t; }));
  merge_duplicate_times(points_);
}

Pwl::Pwl(PointStore points) : points_(std::move(points)) {
  TKA_ASSERT(std::is_sorted(points_.begin(), points_.end(),
                            [](const Point& a, const Point& b) { return a.t < b.t; }));
  merge_duplicate_times(points_);
}

Pwl Pwl::constant(double v) { return Pwl({{0.0, v}}); }

Pwl Pwl::from_sorted_unique(PointStore pts) {
  Pwl w;
  w.points_ = std::move(pts);
  return w;
}

bool Pwl::same_points(const Pwl& other) const {
  if (points_.size() != other.points_.size()) return false;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!(points_[i] == other.points_[i])) return false;
  }
  return true;
}

double Pwl::t_front() const {
  TKA_ASSERT(!points_.empty());
  return points_.front().t;
}

double Pwl::t_back() const {
  TKA_ASSERT(!points_.empty());
  return points_.back().t;
}

double Pwl::value(double t) const {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().t) return points_.front().v;
  if (t >= points_.back().t) return points_.back().v;
  // First breakpoint with time > t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span < kTimeEps) return hi.v;
  const double f = (t - lo.t) / span;
  return lo.v + f * (hi.v - lo.v);
}

double Pwl::peak() const {
  double m = 0.0;
  if (points_.empty()) return 0.0;
  m = points_.front().v;
  for (const Point& p : points_) m = std::max(m, p.v);
  return m;
}

double Pwl::peak_time() const {
  if (points_.empty()) return 0.0;
  double best_v = points_.front().v;
  double best_t = points_.front().t;
  for (const Point& p : points_) {
    if (p.v > best_v) {
      best_v = p.v;
      best_t = p.t;
    }
  }
  return best_t;
}

double Pwl::min_value() const {
  if (points_.empty()) return 0.0;
  double m = points_.front().v;
  for (const Point& p : points_) m = std::min(m, p.v);
  return m;
}

Pwl Pwl::shifted(double dt) const {
  PointStore pts = points_;
  for (std::size_t i = 0; i < pts.size(); ++i) pts[i].t += dt;
  return Pwl(std::move(pts));
}

Pwl Pwl::scaled(double a) const {
  // Times are untouched, so the result inherits this waveform's sorted,
  // deduplicated breakpoint sequence.
  PointStore pts = points_;
  for (std::size_t i = 0; i < pts.size(); ++i) pts[i].v *= a;
  return from_sorted_unique(std::move(pts));
}

Pwl Pwl::plus(const Pwl& other) const {
  if (points_.empty()) return other;
  if (other.points_.empty()) return *this;
  PointStore pts = plus_sweep<false>(points_.span(), other.points_.span());
  merge_points_counter().add(pts.size());
  return from_sorted_unique(std::move(pts));
}

Pwl Pwl::minus(const Pwl& other) const {
  if (points_.empty()) return other.scaled(-1.0);
  if (other.points_.empty()) return *this;
  PointStore pts = plus_sweep<true>(points_.span(), other.points_.span());
  merge_points_counter().add(pts.size());
  return from_sorted_unique(std::move(pts));
}

Pwl Pwl::upper_envelope(const Pwl& other) const {
  if (points_.empty()) return other.upper_envelope(Pwl::constant(0.0));
  if (other.points_.empty()) return upper_envelope(Pwl::constant(0.0));
  PointStore pts;
  pts.reserve((points_.size() + other.points_.size()) * 2);
  MergedTimes times(points_.span(), other.points_.span());
  SegCursor<> ca(points_.span());
  SegCursor<> cb(other.points_.span());
  // Crossing times fall strictly between consecutive merged times, so they
  // form their own non-decreasing sequence and get a dedicated cursor.
  SegCursor<> cross(points_.span());
  bool have_prev = false;
  double tp = 0.0;
  double vap = 0.0;
  double vbp = 0.0;
  double t;
  while (times.next(&t)) {
    const double va = ca.value_at(t);
    const double vb = cb.value_at(t);
    // Insert the crossing point inside (tp, t) if the two linear segments
    // swap order there.
    if (have_prev) {
      const double d0 = vap - vbp;
      const double d1 = va - vb;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = tp + f * (t - tp);
        if (tc > tp + kTimeEps && tc < t - kTimeEps) {
          const double vc = cross.value_at(tc);  // == other's value at the crossing
          pts.push_back({tc, vc});
        }
      }
    }
    pts.push_back({t, std::max(va, vb)});
    have_prev = true;
    tp = t;
    vap = va;
    vbp = vb;
  }
  merge_points_counter().add(pts.size());
  // Merged times are >= kTimeEps apart and crossings land strictly more
  // than kTimeEps from both neighbors, so the output needs no dedup pass.
  return from_sorted_unique(std::move(pts));
}

Pwl Pwl::clamped(double lo, double hi) const {
  TKA_ASSERT(lo <= hi);
  if (points_.empty()) {
    const double z = std::clamp(0.0, lo, hi);
    return z == 0.0 ? Pwl() : Pwl::constant(z);
  }
  // Clamping a PWL can introduce breakpoints where segments cross lo/hi.
  PointStore pts;
  pts.reserve(points_.size() * 2);
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    pts.push_back({p.t, std::clamp(p.v, lo, hi)});
    if (i + 1 == points_.size()) break;
    const Point& q = points_[i + 1];
    // A linear segment crosses each threshold at most once, so the segment
    // contributes at most two interior breakpoints; collect them and emit
    // in time order (the lo crossing need not come first).
    Point crossings[2];
    int n_cross = 0;
    for (double level : {lo, hi}) {
      const double d0 = p.v - level;
      const double d1 = q.v - level;
      if ((d0 > 0 && d1 < 0) || (d0 < 0 && d1 > 0)) {
        const double f = d0 / (d0 - d1);
        const double tc = p.t + f * (q.t - p.t);
        if (tc > p.t + kTimeEps && tc < q.t - kTimeEps) {
          crossings[n_cross++] = {tc, level};
        }
      }
    }
    if (n_cross == 2 && crossings[1].t < crossings[0].t) {
      std::swap(crossings[0], crossings[1]);
    }
    for (int c = 0; c < n_cross; ++c) pts.push_back(crossings[c]);
  }
  return Pwl(std::move(pts));
}

bool Pwl::encapsulates(const Pwl& other, double t_lo, double t_hi, double tol) const {
  TKA_ASSERT(t_lo <= t_hi);
  // Interval ends first: the common fast reject, at one binary search each.
  if (!(value(t_lo) >= other.value(t_lo) - tol)) return false;
  if (!(value(t_hi) >= other.value(t_hi) - tol)) return false;
  // Both waveforms are linear between merged breakpoints, so checking every
  // breakpoint of either inside (t_lo, t_hi) is exact. Linear co-walk: the
  // breakpoints come out in ascending order, so each side's value comes
  // from an advancing cursor.
  SegCursor<> ca(points_.span());
  SegCursor<> cb(other.points_.span());
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < points_.size() || ib < other.points_.size()) {
    double t;
    if (ib >= other.points_.size() ||
        (ia < points_.size() && points_[ia].t <= other.points_[ib].t)) {
      t = points_[ia++].t;
    } else {
      t = other.points_[ib++].t;
    }
    if (t <= t_lo) continue;
    if (t >= t_hi) break;  // ascending: nothing later can be inside
    if (!(ca.value_at(t) >= cb.value_at(t) - tol)) return false;
  }
  return true;
}

std::optional<double> Pwl::last_time_at_or_below(double level) const {
  // Empty waveform contract: identically zero. When level >= 0 the set
  // {t : w(t) <= level} is unbounded above; when level < 0 it is empty.
  // Either way there is no finite "latest" time to report.
  if (points_.empty()) return std::nullopt;
  // Constant extrapolation after the last breakpoint: if the final value is
  // <= level the set {t : w(t) <= level} is unbounded above.
  if (points_.back().v <= level) return std::nullopt;
  // Scan segments backward for the latest point at or below the level.
  for (size_t i = points_.size() - 1; i > 0; --i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    const double vmin = std::min(a.v, b.v);
    if (vmin > level) continue;
    if (b.v <= level) return b.t;  // (only possible for i == size-1 handled above)
    // b.v > level, a.v <= level possible; or dip inside segment (linear: no
    // interior dip). Linear segment: the latest t with v(t) <= level solves
    // v(t) = level on a rising stretch ending above level.
    const double denom = b.v - a.v;
    TKA_ASSERT(std::abs(denom) > 0.0);
    const double f = (level - a.v) / denom;
    return a.t + f * (b.t - a.t);
  }
  // Before the first breakpoint: constant at front value.
  if (points_.front().v <= level) return points_.front().t;
  return std::nullopt;
}

std::optional<double> Pwl::first_time_at_or_above(double level) const {
  if (points_.empty()) return std::nullopt;
  if (points_.front().v >= level) return std::nullopt;  // unbounded below
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    if (std::max(a.v, b.v) < level) continue;
    if (a.v >= level) return a.t;
    const double denom = b.v - a.v;
    TKA_ASSERT(std::abs(denom) > 0.0);
    const double f = (level - a.v) / denom;
    return a.t + f * (b.t - a.t);
  }
  return std::nullopt;
}

double Pwl::integral() const {
  double area = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    area += 0.5 * (a.v + b.v) * (b.t - a.t);
  }
  return area;
}

Pwl Pwl::simplified(double tol) const {
  if (points_.size() <= 2) return *this;
  PointStore out;
  out.reserve(points_.size());
  out.push_back(points_.front());
  // Greedy: extend the current segment while every skipped breakpoint stays
  // within tol of the straight line from the anchor to the candidate end.
  size_t anchor = 0;
  size_t i = 1;
  while (i + 1 < points_.size()) {
    // Try to skip breakpoint i: line from anchor to i+1.
    const Point& a = points_[anchor];
    const Point& c = points_[i + 1];
    bool ok = true;
    for (size_t j = anchor + 1; j <= i; ++j) {
      const Point& p = points_[j];
      const double span = c.t - a.t;
      const double lv = span < kTimeEps
                            ? a.v
                            : a.v + (p.t - a.t) / span * (c.v - a.v);
      if (std::abs(lv - p.v) > tol) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++i;  // breakpoint i is redundant; consider extending further
    } else {
      out.push_back(points_[i]);
      anchor = i;
      ++i;
    }
  }
  out.push_back(points_.back());
  // A subsequence of an already-deduplicated breakpoint list.
  return from_sorted_unique(std::move(out));
}

std::string Pwl::to_string() const {
  std::ostringstream os;
  os << "Pwl[";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << points_[i].t << ", " << points_[i].v << ")";
  }
  os << "]";
  return os.str();
}

Pwl Pwl::sum(std::span<const Pwl* const> terms) {
  std::size_t total = 0;
  for (const Pwl* w : terms) {
    TKA_ASSERT(w != nullptr);
    total += w->size();
  }
  if (total == 0) return Pwl();
  // K-way merge sweep. Heads produce the ascending merged time sequence
  // (with the same eps-dedup as the two-way merge); every term contributes
  // its cursor-interpolated value at each kept time, accumulated in term
  // order.
  std::vector<SegCursor<>> cursors;
  cursors.reserve(terms.size());
  for (const Pwl* w : terms) cursors.emplace_back(w->points());
  std::vector<std::size_t> head(terms.size(), 0);
  PointStore pts;
  pts.reserve(total);
  bool have_last = false;
  double last_t = 0.0;
  for (;;) {
    double t = std::numeric_limits<double>::infinity();
    std::size_t arg = terms.size();
    for (std::size_t k = 0; k < terms.size(); ++k) {
      const std::span<const Point> p = terms[k]->points();
      if (head[k] < p.size() && p[head[k]].t < t) {
        t = p[head[k]].t;
        arg = k;
      }
    }
    if (arg == terms.size()) break;
    ++head[arg];
    if (have_last && t - last_t < kTimeEps) continue;
    have_last = true;
    last_t = t;
    double v = 0.0;
    for (SegCursor<>& c : cursors) v += c.value_at(t);
    pts.push_back({t, v});
  }
  merge_points_counter().add(pts.size());
  // Emitted times are eps-deduplicated by the merge itself.
  return from_sorted_unique(std::move(pts));
}

}  // namespace tka::wave
