#include "wave/pulse.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace tka::wave {
namespace {

// The decay tail is truncated where exp(-t/tau) reaches this fraction.
constexpr double kTailCutoff = 0.01;

}  // namespace

Pwl make_pulse(const PulseShape& shape, double t0, int decay_samples) {
  TKA_ASSERT(shape.peak >= 0.0);
  TKA_ASSERT(shape.rise > 0.0);
  TKA_ASSERT(shape.tau > 0.0);
  TKA_ASSERT(decay_samples >= 1);
  if (shape.peak == 0.0) return Pwl();

  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(decay_samples) + 3);
  pts.push_back({t0, 0.0});
  const double t_peak = t0 + shape.rise;
  pts.push_back({t_peak, shape.peak});

  // Sample the exponential decay at uniform steps until the cutoff, then
  // drop linearly to exactly zero.
  const double t_end = shape.tau * std::log(1.0 / kTailCutoff);  // ~4.6 tau
  for (int i = 1; i <= decay_samples; ++i) {
    const double dt = t_end * static_cast<double>(i) / decay_samples;
    const double v = shape.peak * std::exp(-dt / shape.tau);
    pts.push_back({t_peak + dt, v});
  }
  // Close the pulse: linear return to zero over a short final segment.
  pts.push_back({t_peak + t_end + 0.25 * shape.tau, 0.0});
  return Pwl(std::move(pts));
}

double pulse_width(const PulseShape& shape) {
  const double t_end = shape.tau * std::log(1.0 / kTailCutoff);
  return shape.rise + t_end + 0.25 * shape.tau;
}

}  // namespace tka::wave
