// Waveform breakpoint storage: small-buffer-optimized point arrays backed
// by a thread-cached size-class pool instead of the global heap.
//
// Every wave::Pwl owns one PointStore. Small waveforms (couple of
// breakpoints — ramps, pulses, constants) live entirely inline; larger ones
// spill to pool blocks that are recycled through per-thread free lists, so
// the merge-sweep kernels that build and tear down millions of transient
// waveforms per run stop round-tripping malloc (docs/KERNELS.md, storage
// section).
//
// The pool is an allocator *cache*, not a bump arena: blocks are plain
// operator-new memory, individually owned, so a Pwl allocated on one thread
// may be freed on another and long-lived waveforms (envelope caches,
// memoized candidate tables) are never invalidated by a trim. Trimming only
// releases blocks sitting on free lists. pool::trim_all() requests an
// epoch-based lazy trim from every thread — the session issues one per
// query so long-lived shard workers cannot grow their caches unboundedly.
#pragma once

#include <cstddef>
#include <cstdint>

#include <span>

namespace tka::wave {

/// One breakpoint of a piecewise-linear waveform.
struct Point {
  double t = 0.0;  ///< time (ns)
  double v = 0.0;  ///< value (V)

  friend bool operator==(const Point&, const Point&) = default;
};

namespace pool {

/// Process-wide pool accounting (relaxed atomics; exact totals, not a
/// consistent snapshot across fields).
struct Stats {
  std::uint64_t live_bytes = 0;    ///< blocks handed out, not yet released
  std::uint64_t cached_bytes = 0;  ///< blocks parked on thread free lists
  std::uint64_t alloc_calls = 0;   ///< total alloc() calls
  std::uint64_t cache_hits = 0;    ///< alloc() calls served from a free list
};

/// Smallest pooled capacity covering `n` points: a power of two in
/// [4, 65536]. Requests above the largest size class come back exact and
/// bypass the free lists (allocated and freed directly).
std::size_t round_capacity(std::size_t n) noexcept;

/// Allocates a block of `cap_points` points (a value round_capacity
/// returned). Served from the calling thread's free list when possible.
Point* alloc(std::size_t cap_points);

/// Returns a block to the pool. Any thread may release any block; it parks
/// on the *releasing* thread's free list (or is freed outright when the
/// cache is at budget or the class is uncached).
void release(Point* p, std::size_t cap_points) noexcept;

Stats stats() noexcept;

/// Bytes parked on the calling thread's free lists.
std::size_t thread_cached_bytes() noexcept;

/// Frees the calling thread's cached blocks until at most `keep_bytes`
/// remain parked.
void trim_thread(std::size_t keep_bytes = 0) noexcept;

/// Requests that every thread trim its cache to `keep_bytes`. The calling
/// thread trims immediately; others comply lazily at their next pool
/// interaction (a relaxed epoch check — no locks on the hot path).
void trim_all(std::size_t keep_bytes = 0) noexcept;

/// Per-thread cache budget in bytes (overflowing releases free outright).
/// The default (2 MiB) bounds growth even if trim_all is never called.
void set_thread_cache_budget(std::size_t bytes) noexcept;

/// Publishes pool occupancy as mem.* gauges through obs::TrackedBytes:
/// mem.wave_pool_bytes (live + cached, the arena-occupancy gauge) and
/// mem.wave_pool_cached_bytes (free-list bytes only). After every waveform
/// is destroyed and trim_all(0) has been honored by every thread, both
/// return to zero — the balance invariant tests assert. No-op when
/// observability is compiled out.
void publish_gauges();

}  // namespace pool

/// Contiguous Point array with a small inline buffer, spilling to the
/// thread-cached pool. Vector-like subset the PWL kernels need; grows by
/// size-class doubling; never shrinks until destroyed (clear() keeps the
/// block, matching the reuse patterns of the merge sweeps).
class PointStore {
 public:
  // One point covers the waveforms that are born degenerate and stay that
  // way (empty checks, constants). Anything real — ramps, pulses,
  // envelopes — spills, and the free lists make the spill a pointer pop.
  // A bigger inline buffer would ride along as dead weight in every cached
  // or listed waveform: the candidate lists hold thousands of these
  // structs at peak, and the struct itself dominates their footprint.
  static constexpr std::size_t kInlineCapacity = 1;

  PointStore() noexcept : data_(inline_) {}
  PointStore(const PointStore& other) : data_(inline_) {
    assign(other.data_, other.size_);
  }
  PointStore(PointStore&& other) noexcept : data_(inline_) { steal(other); }
  PointStore& operator=(const PointStore& other) {
    if (this != &other) {
      size_ = 0;
      assign(other.data_, other.size_);
    }
    return *this;
  }
  PointStore& operator=(PointStore&& other) noexcept {
    if (this != &other) {
      release_block();
      steal(other);
    }
    return *this;
  }
  ~PointStore() { release_block(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  const Point* data() const { return data_; }
  Point* data() { return data_; }
  const Point* begin() const { return data_; }
  const Point* end() const { return data_ + size_; }
  const Point& operator[](std::size_t i) const { return data_[i]; }
  Point& operator[](std::size_t i) { return data_[i]; }
  const Point& front() const { return data_[0]; }
  const Point& back() const { return data_[size_ - 1]; }
  std::span<const Point> span() const { return {data_, size_}; }

  void clear() noexcept { size_ = 0; }
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }
  void push_back(const Point& p) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = p;
  }
  /// Drops elements past `n` (n <= size()); used by in-place merge passes.
  void truncate(std::size_t n) noexcept {
    size_ = static_cast<std::uint32_t>(n);
  }
  /// Adopts `n` elements written directly through data() into reserved
  /// capacity (n <= capacity()); lets sweep loops emit points without a
  /// per-push capacity check.
  void set_size(std::size_t n) noexcept {
    size_ = static_cast<std::uint32_t>(n);
  }
  void assign(const Point* src, std::size_t n);
  /// Reallocates a spilled block down to the exact point count (or back
  /// into the inline buffer). For long-lived waveforms parked in caches:
  /// drops the size-class rounding slack the growth path accepts for
  /// transient stores. Exact-size blocks bypass the pool's free lists.
  void shrink_to_fit();

  /// True when the points live in a pool block rather than inline.
  bool spilled() const { return data_ != inline_; }
  /// Heap bytes owned (0 while inline) — feeds the mem.* footprint gauges.
  std::size_t heap_bytes() const {
    return spilled() ? cap_ * sizeof(Point) : 0;
  }

 private:
  void grow(std::size_t need);
  void release_block() noexcept;
  void steal(PointStore& other) noexcept;

  Point* data_;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineCapacity;
  Point inline_[kInlineCapacity];
};

}  // namespace tka::wave
