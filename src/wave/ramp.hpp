// Saturated-ramp signal transitions.
//
// STA in the linear framework models every switching signal as a saturated
// ramp: flat at the initial rail, a linear 0-to-100% transition of duration
// `trans`, then flat at the final rail. t50 (the 50%-Vdd crossing) is the
// ramp midpoint and is the quantity timing windows are expressed in.
#pragma once

#include "wave/pwl.hpp"

namespace tka::wave {

/// Rising ramp: 0 V before, Vdd after, t50 at the midpoint, `trans` is the
/// full 0-100% transition time (> 0).
Pwl make_rising_ramp(double t50, double trans, double vdd);

/// Falling ramp: Vdd before, 0 V after.
Pwl make_falling_ramp(double t50, double trans, double vdd);

}  // namespace tka::wave
