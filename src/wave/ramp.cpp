#include "wave/ramp.hpp"

#include "util/assert.hpp"

namespace tka::wave {

Pwl make_rising_ramp(double t50, double trans, double vdd) {
  TKA_ASSERT(trans > 0.0);
  TKA_ASSERT(vdd > 0.0);
  return Pwl({{t50 - 0.5 * trans, 0.0}, {t50 + 0.5 * trans, vdd}});
}

Pwl make_falling_ramp(double t50, double trans, double vdd) {
  TKA_ASSERT(trans > 0.0);
  TKA_ASSERT(vdd > 0.0);
  return Pwl({{t50 - 0.5 * trans, vdd}, {t50 + 0.5 * trans, 0.0}});
}

}  // namespace tka::wave
