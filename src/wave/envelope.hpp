// Trapezoidal noise envelopes and envelope dominance (paper §2, §3.2).
//
// The noise envelope of an aggressor bounds every noise pulse the aggressor
// can couple onto the victim while switching anywhere inside its timing
// window [EAT, LAT]: it is the pulse fired at EAT, the pulse fired at LAT,
// and a plateau at the peak value joining the two peaks (Figure 2).
//
// Dominance (paper §3.2): envelope A dominates envelope B over the
// dominance interval when A pointwise encapsulates B there; Theorem 1 then
// guarantees any superset built on B is never worse than the same superset
// built on A, so B's sets can be pruned.
#pragma once

#include <array>
#include <span>

#include "wave/pulse.hpp"
#include "wave/pwl.hpp"

namespace tka::wave {

/// Time interval within which envelope encapsulation implies dominance.
/// Lower bound: the noiseless victim t50 (noise ending earlier cannot delay
/// the transition). Upper bound: noiseless t50 plus an upper bound on the
/// achievable delay noise (paper: standard analysis with infinite windows).
struct DominanceInterval {
  double lo = 0.0;
  double hi = 0.0;

  bool valid() const { return hi >= lo; }
};

/// Builds the trapezoidal envelope of a pulse swept over the timing window
/// [eat, lat] (t50-referenced start times of the aggressor transition).
/// eat == lat degenerates to the single pulse.
Pwl make_trapezoidal_envelope(const PulseShape& shape, double eat, double lat,
                              int decay_samples = 6);

/// Combined envelope of several aggressors: pointwise sum (linear
/// superposition of worst-case bounds).
Pwl combine_envelopes(std::span<const Pwl* const> envelopes);

/// True when `a` dominates `b`: a(t) >= b(t) - tol over the interval.
bool dominates(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
               double tol = 1e-9);

/// Precomputed summary of one envelope over one dominance interval, used as
/// a conservative pre-filter in the O(list²) dominance pruning pass: a few
/// float compares of two signatures can prove "a cannot encapsulate b" and
/// skip the exact breakpoint co-walk entirely (docs/KERNELS.md).
///
/// The signature never proves dominance — only its impossibility — so the
/// pruning result is bit-identical with and without the filter.
struct EnvelopeSignature {
  static constexpr int kSamples = 8;

  bool valid = false;
  /// Interval the signature was computed for; compares are only meaningful
  /// (and only attempted) between signatures of the same interval.
  double lo = 0.0;
  double hi = 0.0;
  double peak = 0.0;      ///< sup of the envelope over [lo, hi]
  double integral = 0.0;  ///< trapezoidal integral over [lo, hi]
  /// Envelope values at kSamples evenly spaced times across [lo, hi].
  std::array<double, kSamples> samples{};
};

/// Safety margin for signature rejections: signatures are compared against
/// values the exact check computes at *different* times (breakpoints vs the
/// fixed grid), so the rejection threshold is padded by far more than the
/// few-ulp float noise either evaluation carries. Rejecting only gaps beyond
/// tol + kSigMargin keeps "signature rejects => exact check fails" sound.
/// Shared between the scalar compare and the SoA batch kernel
/// (topk/sig_table.hpp) so both reject exactly the same pairs.
inline constexpr double kSigMargin = 1e-9;

/// Builds the signature of `env` over `interval` in one linear pass.
/// Invalid (never-rejecting) when the interval itself is invalid.
EnvelopeSignature make_signature(const Pwl& env,
                                 const DominanceInterval& interval);

/// True when `sig` is valid and was computed for exactly `interval`.
bool signature_matches(const EnvelopeSignature& sig,
                       const DominanceInterval& interval);

/// True when the signatures PROVE a(t) >= b(t) - tol fails somewhere in the
/// shared interval, i.e. dominates(a_env, b_env, interval, tol) is certainly
/// false. A small safety margin keeps the proof sound against the float
/// rounding differences between sampled and breakpoint evaluation; "false"
/// means "maybe dominates — run the exact check".
bool signature_rejects(const EnvelopeSignature& a, const EnvelopeSignature& b,
                       double tol);

/// Strict mutual comparison outcome used for partial-order reductions.
enum class DomOrder {
  kADominatesB,   ///< a encapsulates b (and not vice versa, or equal)
  kBDominatesA,   ///< b encapsulates a strictly
  kIncomparable,  ///< neither encapsulates the other
};

/// Classifies the pair under the dominance partial order. When the two
/// envelopes are equal within tol the result is kADominatesB (keeping one
/// of two equal candidates is always safe).
DomOrder compare(const Pwl& a, const Pwl& b, const DominanceInterval& interval,
                 double tol = 1e-9);

}  // namespace tka::wave
