// Piecewise-linear waveform algebra.
//
// Everything in the linear noise framework — victim transitions, coupling
// noise pulses, trapezoidal noise envelopes, combined envelopes and noisy
// waveforms — is represented as a piecewise-linear voltage-vs-time curve.
// Outside its breakpoint span a waveform extrapolates with its boundary
// value held constant (signals settle; pulses return to zero).
//
// Breakpoints are held in a PointStore (wave/point_store.hpp): small
// waveforms inline, larger ones in thread-pooled blocks — the merge-sweep
// kernels below build their results directly into a store, so the hot
// paths never touch the global heap in steady state.
//
// Units across the library: time in nanoseconds, voltage in volts.
#pragma once

#include <cstddef>

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wave/point_store.hpp"

namespace tka::wave {

/// Immutable-ish piecewise-linear waveform: strictly increasing breakpoint
/// times, linear interpolation between them, constant extrapolation beyond
/// the ends. An empty waveform is identically zero.
class Pwl {
 public:
  Pwl() = default;

  /// Builds from breakpoints; times must be non-decreasing (duplicates of
  /// equal time are merged, keeping the later value — a zero-width step).
  explicit Pwl(std::vector<Point> points);

  /// Same contract, taking ownership of an already-populated store (the
  /// allocation-free path the kernels and envelope builders use).
  explicit Pwl(PointStore points);

  /// The constant-zero waveform.
  static Pwl zero() { return Pwl(); }

  /// A constant waveform of value `v` (no breakpoints needed; represented
  /// with a single anchor at t=0 so arithmetic keeps the value).
  static Pwl constant(double v);

  bool empty() const { return points_.empty(); }
  std::span<const Point> points() const { return points_.span(); }
  size_t size() const { return points_.size(); }

  /// Exact breakpoint-sequence equality (same times and values, bitwise).
  bool same_points(const Pwl& other) const;

  /// Heap bytes owned by the point storage (0 while the points fit the
  /// inline buffer) — feeds the mem.* footprint gauges.
  std::size_t heap_bytes() const { return points_.heap_bytes(); }

  /// Reallocates spilled storage down to the exact point count. Kernels
  /// grow stores in pool size classes, which is right for transient
  /// waveforms; call this before parking one in a long-lived cache so the
  /// resident footprint matches the points actually held.
  void compact() { points_.shrink_to_fit(); }

  /// First/last breakpoint time. Asserts non-empty.
  double t_front() const;
  double t_back() const;

  /// Value at time t (linear interpolation, constant extrapolation).
  double value(double t) const;

  /// Maximum breakpoint value (0 for the empty waveform).
  double peak() const;
  /// Time of the first breakpoint attaining peak(). t_front() fallback.
  double peak_time() const;
  /// Minimum breakpoint value (0 for the empty waveform).
  double min_value() const;

  /// Waveform shifted right by dt.
  Pwl shifted(double dt) const;

  /// Waveform scaled by factor a (values only).
  Pwl scaled(double a) const;

  /// Pointwise sum. Single-pass two-pointer merge sweep, O(n + m).
  Pwl plus(const Pwl& other) const;

  /// Pointwise difference (this - other). Negation is folded into the
  /// merge sweep (no intermediate negated waveform); IEEE negation is
  /// exact, so the result is bit-identical to plus(other.scaled(-1)).
  Pwl minus(const Pwl& other) const;

  /// Pointwise maximum (upper envelope); inserts crossing breakpoints.
  /// Single-pass merge sweep, O(n + m).
  Pwl upper_envelope(const Pwl& other) const;

  /// Values clamped to [lo, hi].
  Pwl clamped(double lo, double hi) const;

  /// True if this(t) >= other(t) - tol for every t in [t_lo, t_hi].
  /// Both waveforms are linear between merged breakpoints, so the check is
  /// exact on the merged breakpoint set plus interval ends. Linear co-walk
  /// of both breakpoint lists, O(n + m) (docs/KERNELS.md).
  bool encapsulates(const Pwl& other, double t_lo, double t_hi,
                    double tol = 1e-9) const;

  /// Latest time at which the waveform is <= level. For a rising noisy
  /// victim transition this is the noisy t50 (the final 50%-Vdd crossing).
  /// Returns nullopt when the waveform never reaches <= level, or when it
  /// ends at or below level (so the "latest" time is unbounded) — in
  /// particular always nullopt for the empty (identically zero) waveform.
  std::optional<double> last_time_at_or_below(double level) const;

  /// Earliest time at which the waveform is >= level; nullopt if never, or
  /// if it starts at/above level (unbounded below).
  std::optional<double> first_time_at_or_above(double level) const;

  /// Area under the curve between the first and last breakpoints
  /// (trapezoidal; exact for PWL).
  double integral() const;

  /// Removes breakpoints whose removal changes the waveform by at most
  /// `tol` anywhere (greedy collinearity sweep). Bounds breakpoint growth
  /// when envelopes are combined repeatedly.
  Pwl simplified(double tol) const;

  /// Human-readable dump for debugging/tests.
  std::string to_string() const;

  /// Pointwise sum of many waveforms (k-way merge; equivalent to folding
  /// plus() but with one allocation pass).
  static Pwl sum(std::span<const Pwl* const> terms);

 private:
  /// Adopts a store the merge-sweep kernels built: already sorted with
  /// consecutive times >= the dedup epsilon apart, so the constructor's
  /// duplicate-merge pass (a no-op on such input) is skipped entirely.
  static Pwl from_sorted_unique(PointStore pts);

  // Invariant: points_ sorted by strictly increasing t.
  PointStore points_;
};

}  // namespace tka::wave
