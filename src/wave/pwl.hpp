// Piecewise-linear waveform algebra.
//
// Everything in the linear noise framework — victim transitions, coupling
// noise pulses, trapezoidal noise envelopes, combined envelopes and noisy
// waveforms — is represented as a piecewise-linear voltage-vs-time curve.
// Outside its breakpoint span a waveform extrapolates with its boundary
// value held constant (signals settle; pulses return to zero).
//
// Units across the library: time in nanoseconds, voltage in volts.
#pragma once

#include <cstddef>

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tka::wave {

/// One breakpoint of a piecewise-linear waveform.
struct Point {
  double t = 0.0;  ///< time (ns)
  double v = 0.0;  ///< value (V)

  friend bool operator==(const Point&, const Point&) = default;
};

/// Immutable-ish piecewise-linear waveform: strictly increasing breakpoint
/// times, linear interpolation between them, constant extrapolation beyond
/// the ends. An empty waveform is identically zero.
class Pwl {
 public:
  Pwl() = default;

  /// Builds from breakpoints; times must be non-decreasing (duplicates of
  /// equal time are merged, keeping the later value — a zero-width step).
  explicit Pwl(std::vector<Point> points);

  /// The constant-zero waveform.
  static Pwl zero() { return Pwl(); }

  /// A constant waveform of value `v` (no breakpoints needed; represented
  /// with a single anchor at t=0 so arithmetic keeps the value).
  static Pwl constant(double v);

  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }

  /// First/last breakpoint time. Asserts non-empty.
  double t_front() const;
  double t_back() const;

  /// Value at time t (linear interpolation, constant extrapolation).
  double value(double t) const;

  /// Maximum breakpoint value (0 for the empty waveform).
  double peak() const;
  /// Time of the first breakpoint attaining peak(). t_front() fallback.
  double peak_time() const;
  /// Minimum breakpoint value (0 for the empty waveform).
  double min_value() const;

  /// Waveform shifted right by dt.
  Pwl shifted(double dt) const;

  /// Waveform scaled by factor a (values only).
  Pwl scaled(double a) const;

  /// Pointwise sum. Single-pass two-pointer merge sweep, O(n + m).
  Pwl plus(const Pwl& other) const;

  /// Pointwise difference (this - other).
  Pwl minus(const Pwl& other) const;

  /// Pointwise maximum (upper envelope); inserts crossing breakpoints.
  /// Single-pass merge sweep, O(n + m).
  Pwl upper_envelope(const Pwl& other) const;

  /// Values clamped to [lo, hi].
  Pwl clamped(double lo, double hi) const;

  /// True if this(t) >= other(t) - tol for every t in [t_lo, t_hi].
  /// Both waveforms are linear between merged breakpoints, so the check is
  /// exact on the merged breakpoint set plus interval ends. Linear co-walk
  /// of both breakpoint lists, O(n + m) (docs/KERNELS.md).
  bool encapsulates(const Pwl& other, double t_lo, double t_hi,
                    double tol = 1e-9) const;

  /// Latest time at which the waveform is <= level. For a rising noisy
  /// victim transition this is the noisy t50 (the final 50%-Vdd crossing).
  /// Returns nullopt when the waveform never reaches <= level, or when it
  /// ends at or below level (so the "latest" time is unbounded) — in
  /// particular always nullopt for the empty (identically zero) waveform.
  std::optional<double> last_time_at_or_below(double level) const;

  /// Earliest time at which the waveform is >= level; nullopt if never, or
  /// if it starts at/above level (unbounded below).
  std::optional<double> first_time_at_or_above(double level) const;

  /// Area under the curve between the first and last breakpoints
  /// (trapezoidal; exact for PWL).
  double integral() const;

  /// Removes breakpoints whose removal changes the waveform by at most
  /// `tol` anywhere (greedy collinearity sweep). Bounds breakpoint growth
  /// when envelopes are combined repeatedly.
  Pwl simplified(double tol) const;

  /// Human-readable dump for debugging/tests.
  std::string to_string() const;

  /// Pointwise sum of many waveforms (k-way merge; equivalent to folding
  /// plus() but with one allocation pass).
  static Pwl sum(std::span<const Pwl* const> terms);

 private:
  // Invariant: points_ sorted by strictly increasing t.
  std::vector<Point> points_;
};

}  // namespace tka::wave
