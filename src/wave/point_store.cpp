#include "wave/point_store.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "obs/memory.hpp"
#include "util/assert.hpp"

namespace tka::wave {
namespace pool {
namespace {

// Size classes: power-of-two point capacities 4 .. 65536 (64 B .. 1 MiB
// blocks). Anything larger is allocated exact and never cached.
constexpr std::size_t kMinClassPoints = 4;
constexpr std::size_t kMaxClassPoints = 65536;
constexpr int kNumClasses = 15;  // log2(65536) - log2(4) + 1
// The byte budget below caps parked memory long before slot exhaustion;
// keeping the slot arrays small also keeps the per-thread cache struct
// (which is .tbss resident once touched) compact.
constexpr std::size_t kMaxBlocksPerClass = 16;
// Sized to hold the hot working set of merge-sweep blocks (a handful of
// 64 B - 8 KiB blocks per class) without letting parked bytes show up in
// peak-RSS — the free lists fill to the budget under churn, and parked
// blocks are resident exactly when the candidate lists peak. The size-class
// hit rate of the sweep loops saturates well below this.
constexpr std::size_t kDefaultCacheBudget = 16u << 10;  // 16 KiB per thread

// Lazy trim protocol: trim_all bumps the epoch and records the budget;
// each thread compares its seen epoch on the next pool interaction.
std::atomic<std::uint64_t> g_trim_epoch{0};
std::atomic<std::size_t> g_trim_keep_bytes{0};

std::atomic<std::size_t> g_cache_budget{kDefaultCacheBudget};

int class_index(std::size_t cap_points) noexcept {
  // Exact-size blocks (shrink_to_fit) come through with arbitrary
  // capacities; only power-of-two capacities in range map to a class,
  // everything else goes straight to the heap.
  if (cap_points < kMinClassPoints || cap_points > kMaxClassPoints ||
      !std::has_single_bit(cap_points)) {
    return -1;
  }
  // Index 0 = kMinClassPoints.
  return std::countr_zero(cap_points) -
         std::countr_zero(kMinClassPoints);
}

// Per-thread accounting deltas. Only the owning thread writes them, and only
// with plain load+store pairs (no lock-prefixed read-modify-write on the
// allocation hot path); stats() sums the cells of every live thread under
// the registry mutex. live/cached are signed: a thread that frees blocks
// another thread allocated legitimately carries a negative delta.
struct StatCells {
  std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> cached{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> hits{0};
};

void bump(std::atomic<std::int64_t>& c, std::int64_t d) noexcept {
  c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

void bump(std::atomic<std::uint64_t>& c, std::uint64_t d) noexcept {
  c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

struct ThreadCache;

// Tracks every live ThreadCache plus the flushed totals of exited threads.
// Leaked on purpose: thread-exit destructors may run after static teardown
// would have destroyed a function-local registry.
struct Registry {
  std::mutex mu;
  std::vector<ThreadCache*> threads;
  std::int64_t base_live = 0;
  std::int64_t base_cached = 0;
  std::uint64_t base_allocs = 0;
  std::uint64_t base_hits = 0;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Per-thread free lists. Fixed arrays only — the cache itself must never
// allocate on the alloc/release path. The destructor drains everything and
// flushes its counters on thread exit so worker teardown (and
// LeakSanitizer) sees no parked blocks.
struct ThreadCache {
  Point* blocks[kNumClasses][kMaxBlocksPerClass];
  std::uint32_t count[kNumClasses] = {};
  std::size_t cached_bytes = 0;
  std::uint64_t seen_epoch = 0;
  StatCells cells;

  ThreadCache() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.threads.push_back(this);
  }

  ~ThreadCache() {
    trim(0);
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.base_live += cells.live.load(std::memory_order_relaxed);
    reg.base_cached += cells.cached.load(std::memory_order_relaxed);
    reg.base_allocs += cells.allocs.load(std::memory_order_relaxed);
    reg.base_hits += cells.hits.load(std::memory_order_relaxed);
    std::erase(reg.threads, this);
  }

  void trim(std::size_t keep_bytes) noexcept {
    // Free largest classes first: fewer frees to reach the budget.
    for (int c = kNumClasses - 1; c >= 0 && cached_bytes > keep_bytes; --c) {
      const std::size_t bytes = (kMinClassPoints << c) * sizeof(Point);
      while (count[c] > 0 && cached_bytes > keep_bytes) {
        ::operator delete(blocks[c][--count[c]]);
        cached_bytes -= bytes;
        bump(cells.cached, -static_cast<std::int64_t>(bytes));
      }
    }
  }

  void maybe_trim() noexcept {
    const std::uint64_t epoch = g_trim_epoch.load(std::memory_order_relaxed);
    if (epoch != seen_epoch) {
      seen_epoch = epoch;
      trim(g_trim_keep_bytes.load(std::memory_order_relaxed));
    }
  }
};

ThreadCache& thread_cache() noexcept {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

std::size_t round_capacity(std::size_t n) noexcept {
  if (n > kMaxClassPoints) return n;
  if (n <= kMinClassPoints) return kMinClassPoints;
  return std::bit_ceil(n);
}

Point* alloc(std::size_t cap_points) {
  const std::size_t bytes = cap_points * sizeof(Point);
  ThreadCache& cache = thread_cache();
  cache.maybe_trim();
  bump(cache.cells.allocs, 1);
  bump(cache.cells.live, static_cast<std::int64_t>(bytes));
  const int c = class_index(cap_points);
  if (c >= 0 && cache.count[c] > 0) {
    bump(cache.cells.hits, 1);
    cache.cached_bytes -= bytes;
    bump(cache.cells.cached, -static_cast<std::int64_t>(bytes));
    return cache.blocks[c][--cache.count[c]];
  }
  return static_cast<Point*>(::operator new(bytes));
}

void release(Point* p, std::size_t cap_points) noexcept {
  const std::size_t bytes = cap_points * sizeof(Point);
  ThreadCache& cache = thread_cache();
  cache.maybe_trim();
  bump(cache.cells.live, -static_cast<std::int64_t>(bytes));
  const int c = class_index(cap_points);
  if (c >= 0 && cache.count[c] < kMaxBlocksPerClass &&
      cache.cached_bytes + bytes <=
          g_cache_budget.load(std::memory_order_relaxed)) {
    cache.blocks[c][cache.count[c]++] = p;
    cache.cached_bytes += bytes;
    bump(cache.cells.cached, static_cast<std::int64_t>(bytes));
    return;
  }
  ::operator delete(p);
}

Stats stats() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::int64_t live = reg.base_live;
  std::int64_t cached = reg.base_cached;
  std::uint64_t allocs = reg.base_allocs;
  std::uint64_t hits = reg.base_hits;
  for (const ThreadCache* t : reg.threads) {
    live += t->cells.live.load(std::memory_order_relaxed);
    cached += t->cells.cached.load(std::memory_order_relaxed);
    allocs += t->cells.allocs.load(std::memory_order_relaxed);
    hits += t->cells.hits.load(std::memory_order_relaxed);
  }
  Stats s;
  // Negative sums only occur transiently, when the cells of an in-flight
  // cross-thread alloc/release pair are read mid-update.
  s.live_bytes = live > 0 ? static_cast<std::uint64_t>(live) : 0;
  s.cached_bytes = cached > 0 ? static_cast<std::uint64_t>(cached) : 0;
  s.alloc_calls = allocs;
  s.cache_hits = hits;
  return s;
}

std::size_t thread_cached_bytes() noexcept {
  return thread_cache().cached_bytes;
}

void trim_thread(std::size_t keep_bytes) noexcept {
  thread_cache().trim(keep_bytes);
}

void trim_all(std::size_t keep_bytes) noexcept {
  g_trim_keep_bytes.store(keep_bytes, std::memory_order_relaxed);
  g_trim_epoch.fetch_add(1, std::memory_order_relaxed);
  ThreadCache& cache = thread_cache();
  cache.seen_epoch = g_trim_epoch.load(std::memory_order_relaxed);
  cache.trim(keep_bytes);
}

void set_thread_cache_budget(std::size_t bytes) noexcept {
  g_cache_budget.store(bytes, std::memory_order_relaxed);
}

void publish_gauges() {
#if TKA_OBS_ENABLED
  // Function-local so the handles exist only once obs is actually asked
  // for; TrackedBytes removes its contribution at static teardown.
  static obs::TrackedBytes tracked_total("mem.wave_pool_bytes");
  static obs::TrackedBytes tracked_cached("mem.wave_pool_cached_bytes");
  const Stats s = stats();
  tracked_total.set(static_cast<std::int64_t>(s.live_bytes + s.cached_bytes));
  tracked_cached.set(static_cast<std::int64_t>(s.cached_bytes));
#endif
}

}  // namespace pool

void PointStore::assign(const Point* src, std::size_t n) {
  if (n > cap_) {
    // Copies are content-sized snapshots (result lists, extension seeds),
    // not growth paths: allocate the block exact instead of rounding up to
    // a size class, or every long-lived copy parks the class slack.
    Point* block = pool::alloc(n);
    if (spilled()) pool::release(data_, cap_);
    data_ = block;
    cap_ = static_cast<std::uint32_t>(n);
  }
  if (n > 0) std::memcpy(data_, src, n * sizeof(Point));
  size_ = static_cast<std::uint32_t>(n);
}

void PointStore::shrink_to_fit() {
  if (!spilled()) return;
  Point* old = data_;
  const std::size_t old_cap = cap_;
  if (size_ <= kInlineCapacity) {
    if (size_ > 0) std::memcpy(inline_, old, size_ * sizeof(Point));
    data_ = inline_;
    cap_ = kInlineCapacity;
  } else {
    if (size_ == old_cap) return;
    // Exact block: a non-power-of-two capacity bypasses the size classes,
    // so long-lived waveforms occupy exactly their point footprint instead
    // of the next pool class up.
    Point* block = pool::alloc(size_);
    std::memcpy(block, old, size_ * sizeof(Point));
    data_ = block;
    cap_ = static_cast<std::uint32_t>(size_);
  }
  pool::release(old, old_cap);
}

void PointStore::grow(std::size_t need) {
  TKA_ASSERT(need > cap_);
  std::size_t target = cap_ * 2;
  if (target < need) target = need;
  const std::size_t new_cap = pool::round_capacity(target);
  Point* block = pool::alloc(new_cap);
  if (size_ > 0) std::memcpy(block, data_, size_ * sizeof(Point));
  if (spilled()) pool::release(data_, cap_);
  data_ = block;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

void PointStore::release_block() noexcept {
  if (spilled()) {
    pool::release(data_, cap_);
    data_ = inline_;
    cap_ = kInlineCapacity;
  }
  size_ = 0;
}

void PointStore::steal(PointStore& other) noexcept {
  if (other.spilled()) {
    data_ = other.data_;
    size_ = other.size_;
    cap_ = other.cap_;
    other.data_ = other.inline_;
    other.size_ = 0;
    other.cap_ = kInlineCapacity;
  } else {
    if (other.size_ > 0) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(Point));
    }
    size_ = other.size_;
    cap_ = kInlineCapacity;
    other.size_ = 0;
  }
}

}  // namespace tka::wave
