// Coupling noise pulses.
//
// When an aggressor ramps, the coupling capacitance injects current into
// the victim and produces a noise pulse: a rise during the aggressor
// transition followed by an RC decay with the victim time constant. The
// linear framework characterizes the pulse by (peak, rise time, decay tau)
// and represents it as a PWL waveform with the exponential tail sampled.
#pragma once

#include "wave/pwl.hpp"

namespace tka::wave {

/// Shape parameters of a characterized noise pulse. All positive.
struct PulseShape {
  double peak = 0.0;  ///< peak noise voltage (V)
  double rise = 0.0;  ///< time from pulse start to peak (ns), ~aggressor transition
  double tau = 0.0;   ///< exponential decay time constant after the peak (ns)

  friend bool operator==(const PulseShape&, const PulseShape&) = default;
};

/// Builds the PWL pulse for `shape` starting (leaving zero) at time t0.
/// The decay tail is sampled with `decay_samples` exponentially-spaced
/// points and truncated where it falls below 1% of the peak; the final
/// breakpoint returns to exactly zero so constant extrapolation is clean.
Pwl make_pulse(const PulseShape& shape, double t0, int decay_samples = 6);

/// Duration from pulse start to the (truncated) return to zero.
double pulse_width(const PulseShape& shape);

}  // namespace tka::wave
