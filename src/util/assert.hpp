// Internal-invariant assertions and user-facing checks.
//
// TKA_ASSERT  — programming-error invariants; aborts with location info.
//               Compiled in all build types (EDA results must never be
//               silently wrong because a release build skipped a check).
// TKA_CHECK   — recoverable, user-facing precondition; throws tka::Error.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace tka::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "TKA_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tka::detail

#define TKA_ASSERT(expr)                                         \
  do {                                                           \
    if (!(expr)) ::tka::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

#define TKA_CHECK(expr, msg)                                     \
  do {                                                           \
    if (!(expr)) throw ::tka::Error(msg);                        \
  } while (0)
