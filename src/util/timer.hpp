// Wall-clock timer for runtime reporting in benches and the brute-force
// timeout guard.
#pragma once

#include <chrono>

namespace tka {

/// Wall-clock stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tka
