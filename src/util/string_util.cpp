#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace tka::str {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace tka::str
