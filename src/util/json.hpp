// Minimal recursive-descent JSON reader.
//
// Scope: standard JSON (RFC 8259) minus exotic corners — numbers parse via
// strtod, \uXXXX escapes decode to UTF-8 (surrogate pairs supported),
// objects preserve insertion order and keep the *last* value for a
// duplicated key. Depth is capped to keep malformed input from recursing
// the stack away. This exists so the bench tools (`bench_compare`,
// `perf_report`), the analysis server's wire protocol and the tests don't
// need an external JSON dependency; it is an input-side complement to the
// hand-rolled writers in obs/, io/ and the harness.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tka::util::json {

/// A parsed JSON value (tagged union over the seven JSON shapes).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// `find` + type/number convenience: returns `fallback` when the member
  /// is absent or not a number.
  double number_or(std::string_view key, double fallback) const;
};

/// Parses a complete JSON document (leading/trailing whitespace allowed,
/// nothing else may follow). On failure returns false and describes the
/// problem (with a byte offset) in *error.
bool parse(std::string_view text, Value* out, std::string* error);

/// Reads and parses a file. On failure returns false with *error set.
bool parse_file(const std::string& path, Value* out, std::string* error);

}  // namespace tka::util::json
