// Library-wide exception type for user-facing errors (bad input files,
// inconsistent netlists, invalid parameters). Internal invariant violations
// use TKA_ASSERT instead.
#pragma once

#include <stdexcept>
#include <string>

namespace tka {

/// Exception thrown on recoverable, user-facing errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace tka
