#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace tka::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lv, const std::string& message) {
  if (!enabled(lv)) return;
  std::fprintf(stderr, "[tka %s] %s\n", tag(lv), message.c_str());
}

bool parse_level(std::string_view name, Level* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "debug") *out = Level::kDebug;
  else if (lower == "info") *out = Level::kInfo;
  else if (lower == "warn" || lower == "warning") *out = Level::kWarn;
  else if (lower == "error") *out = Level::kError;
  else if (lower == "off" || lower == "none") *out = Level::kOff;
  else return false;
  return true;
}

}  // namespace tka::log
