#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace tka::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lv, const std::string& message) {
  if (static_cast<int>(lv) < static_cast<int>(level())) return;
  std::fprintf(stderr, "[tka %s] %s\n", tag(lv), message.c_str());
}

}  // namespace tka::log
