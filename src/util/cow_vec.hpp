// Chunked copy-on-write vector.
//
// Storage is split into fixed-size chunks, each held by a shared_ptr.
// Copying a CowVec copies only the chunk table, so a copy is O(n / chunk)
// pointer bumps and the element payload is structurally shared. Mutation
// goes through mut(), which detaches (deep-copies) the touched chunk when
// it is shared with another CowVec. This makes "clone the design, edit a
// handful of entries" cost O(edited chunks) instead of O(design), which is
// what the serving layer's snapshot chain relies on.
//
// Thread-safety: the shared_ptr control blocks make concurrent *copies* of
// the same CowVec safe (refcounts are atomic). Element data carries no
// synchronization: a chunk reachable from more than one CowVec must be
// treated as immutable, and mut() must only be called on an instance that
// is confined to one thread. Both invariants hold for the snapshot model —
// published snapshots are const, and edits happen on thread-private copies.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace tka::util {

template <typename T, std::size_t ChunkPow = 9>
class CowVec {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << ChunkPow;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  using value_type = T;
  using Chunk = std::vector<T>;

  CowVec() = default;
  explicit CowVec(std::size_t n, const T& value = T{}) {
    for (std::size_t i = 0; i < n; ++i) push_back(value);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    TKA_ASSERT(i < size_);
    return (*chunks_[i >> ChunkPow])[i & kChunkMask];
  }
  const T& at(std::size_t i) const {
    TKA_CHECK(i < size_, "CowVec: index out of range");
    return (*chunks_[i >> ChunkPow])[i & kChunkMask];
  }

  /// Mutable access; detaches (deep-copies) the chunk when it is shared.
  T& mut(std::size_t i) {
    TKA_ASSERT(i < size_);
    return (*detached(i >> ChunkPow))[i & kChunkMask];
  }

  void push_back(T value) {
    const std::size_t chunk = size_ >> ChunkPow;
    if ((size_ & kChunkMask) == 0) {
      chunks_.push_back(std::make_shared<Chunk>());
      chunks_.back()->reserve(kChunkSize);
    }
    detached(chunk)->push_back(std::move(value));
    ++size_;
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Number of storage chunks (for sharing diagnostics).
  std::size_t num_chunks() const { return chunks_.size(); }

  /// True when chunk `c` is also reachable from another CowVec.
  bool chunk_shared(std::size_t c) const {
    TKA_ASSERT(c < chunks_.size());
    return chunks_[c].use_count() > 1;
  }

  /// Calls fn(key, chunk) for every chunk; `key` is stable for the chunk's
  /// lifetime and identical across CowVecs that share the chunk, so a
  /// caller can dedup structurally shared storage by pointer.
  template <typename Fn>
  void visit_chunks(Fn&& fn) const {
    for (const auto& c : chunks_) {
      if (c) fn(static_cast<const void*>(c.get()), static_cast<const Chunk&>(*c));
    }
  }

  /// Heap bytes of the chunk arrays themselves (element-owned heap, e.g.
  /// strings, is the caller's to measure via visit_chunks).
  std::size_t chunk_array_bytes() const {
    std::size_t total = chunks_.capacity() * sizeof(std::shared_ptr<Chunk>);
    for (const auto& c : chunks_) {
      if (c) total += c->capacity() * sizeof(T);
    }
    return total;
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const CowVec* v, std::size_t i) : vec_(v), i_(i) {}

    reference operator*() const { return (*vec_)[i_]; }
    pointer operator->() const { return &(*vec_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const CowVec* vec_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  std::shared_ptr<Chunk> detached(std::size_t c) {
    TKA_ASSERT(c < chunks_.size());
    std::shared_ptr<Chunk>& slot = chunks_[c];
    if (slot.use_count() > 1) {
      auto copy = std::make_shared<Chunk>();
      copy->reserve(kChunkSize);
      copy->insert(copy->end(), slot->begin(), slot->end());
      slot = std::move(copy);
    }
    return slot;
  }

  std::vector<std::shared_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace tka::util
