#include "util/json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.hpp"

namespace tka::util::json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(Value* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = str::format("JSON parse error at byte %zu: %s", pos_, what.c_str());
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out->type = Value::Type::kString;
        return parse_string(&out->string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->type = Value::Type::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->type = Value::Type::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->type = Value::Type::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Value* out) {
    const char* begin = text_.data() + pos_;
    // Validate the JSON number grammar up front; strtod accepts more
    // (hex, "inf", leading '+') than JSON allows.
    std::size_t p = pos_;
    if (p < text_.size() && text_[p] == '-') ++p;
    const std::size_t int_start = p;
    while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
    if (p == int_start) return fail("invalid number");
    if (text_[int_start] == '0' && p - int_start > 1) return fail("leading zero");
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      const std::size_t frac_start = p;
      while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
      if (p == frac_start) return fail("invalid number");
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      const std::size_t exp_start = p;
      while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
      if (p == exp_start) return fail("invalid number");
    }
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end != text_.data() + p) return fail("invalid number");
    out->type = Value::Type::kNumber;
    pos_ = p;
    return true;
  }

  static void append_utf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_array(Value* out, int depth) {
    ++pos_;  // '['
    out->type = Value::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value elem;
      skip_ws();
      if (!parse_value(&elem, depth + 1)) return false;
      out->array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Value* out, int depth) {
    ++pos_;  // '{'
    out->type = Value::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_++] != ':') return fail("expected ':'");
      skip_ws();
      Value val;
      if (!parse_value(&val, depth + 1)) return false;
      // Last duplicate wins, matching common lenient readers.
      bool replaced = false;
      for (auto& [k, v] : out->object) {
        if (k == key) {
          v = std::move(val);
          replaced = true;
          break;
        }
      }
      if (!replaced) out->object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

bool parse(std::string_view text, Value* out, std::string* error) {
  if (error != nullptr) error->clear();
  *out = Value();
  Parser p(text, error);
  return p.parse_document(out);
}

bool parse_file(const std::string& path, Value* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), out, error);
}

}  // namespace tka::util::json
