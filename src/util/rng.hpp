// Deterministic random number generator (xoshiro256++). The benchmark
// suite must be reproducible bit-for-bit across platforms, so we do not use
// std::mt19937/std::uniform_* (distribution implementations vary).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace tka {

/// xoshiro256++ PRNG with splitmix64 seeding. Deterministic across
/// platforms; all distribution helpers below are implementation-defined by
/// this library (not the standard library), so generated circuits are
/// stable everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { init(seed); }

  /// Independent per-task stream: Rng(seed, s) for distinct `s` yields
  /// decorrelated sequences from one base seed, so parallel loops can give
  /// every index its own generator with results independent of execution
  /// order (and of the thread count). The stream id is diffused through
  /// splitmix64 before being folded into the seed, so stream n is NOT the
  /// plain Rng(seed + n) and stream 0 is not Rng(seed).
  Rng(std::uint64_t seed, std::uint64_t stream) {
    init(seed ^ mix(stream + 0x6A09E667F3BCC909ULL));
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    TKA_ASSERT(bound > 0);
    // Unbiased rejection variant.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    TKA_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    TKA_ASSERT(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  // splitmix64 finalizer.
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  void init(std::uint64_t seed) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      word = mix(x);
    }
  }

  std::uint64_t state_[4];
};

}  // namespace tka
