// Small string helpers used by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tka::str {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on any character in `delims`, dropping empty tokens.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tka::str
