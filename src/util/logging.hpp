// Minimal leveled logger. Single global sink (stderr); level settable at
// runtime. Deliberately tiny: the library is a batch analysis engine, not a
// service, so structured logging frameworks would be overkill.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace tka::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold. Messages below it are discarded.
void set_level(Level level);

/// Current global log threshold.
Level level();

/// Emits one line at `level` (no-op when below threshold).
void write(Level level, const std::string& message);

/// True when messages at `lv` would be emitted. Guard hot-path or
/// expensive-to-format messages with it — the stream helpers below always
/// pay the formatting cost, discarding only at write time:
///   if (log::enabled(log::Level::kDebug)) log::debug() << ...;
inline bool enabled(Level lv) {
  return static_cast<int>(lv) >= static_cast<int>(level());
}

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Returns false (and leaves `out` untouched) on anything else.
bool parse_level(std::string_view name, Level* out);

namespace detail {

class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { write(level_, stream_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace tka::log
