// Flush-on-signal: SIGINT/SIGTERM handlers that run registered flush hooks
// (stop --metrics-out sinks, write trace files) before the process dies, so
// an interrupted run still leaves complete observability artifacts behind.
//
// Mechanics: the async-signal-safe handler writes the signal number to a
// self-pipe; a lazily started watcher thread reads it and reacts on the
// normal (non-signal) side, so hooks may allocate, lock and do file I/O.
//
// Two modes:
//   - Default: the watcher runs every hook once, then _Exit(128+sig) — the
//     conventional killed-by-signal status, with no static destructors
//     (hooks already flushed everything worth flushing).
//   - Graceful delegate (set by `tka serve`): the first signal is handed to
//     the delegate (which typically requests a server drain) and the
//     process keeps running; a second signal falls back to the default
//     flush-and-exit path, so a wedged drain can still be interrupted.
//
// Hooks must be idempotent: a run that finishes normally flushes its sinks
// itself and removes (or just re-runs) its hooks.
#pragma once

#include <functional>

namespace tka::obs {

/// Installs the SIGINT/SIGTERM handlers and starts the watcher thread.
/// Idempotent; call once the process has something to flush.
void install_signal_flush();

/// Registers a hook the watcher runs on a fatal signal (and that
/// run_flush_hooks() runs). Returns an id for remove_flush_hook().
int add_flush_hook(std::function<void()> hook);
void remove_flush_hook(int id);

/// Runs every registered hook once, swallowing exceptions (a failing flush
/// must not mask the others). Callable from normal exit paths too.
void run_flush_hooks();

/// Routes the *first* signal to `delegate(signo)` instead of exiting
/// (pass an empty function to clear). The second signal always takes the
/// flush-and-exit path.
void set_graceful_delegate(std::function<void(int)> delegate);

}  // namespace tka::obs
