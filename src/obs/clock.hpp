// The observability clock: one process-wide monotonic time source.
//
// Every runtime figure the library reports — span timestamps, histogram
// samples, TopkStats::runtime_s / runtime_by_k — is derived from this
// clock, so numbers from different layers are directly comparable. This
// header is intentionally independent of TKA_OBS_DISABLED: compiling the
// tracing/metrics hooks out must not change how runtimes are measured.
#pragma once

#include <chrono>
#include <cstdint>

namespace tka::obs {

/// Nanoseconds on the monotonic (steady) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Converts a now_ns() difference to seconds.
inline double ns_to_seconds(std::int64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace tka::obs
