// The observability clock: one process-wide monotonic time source.
//
// Every runtime figure the library reports — span timestamps, histogram
// samples, TopkStats::runtime_s / runtime_by_k — is derived from this
// clock, so numbers from different layers are directly comparable. This
// header is intentionally independent of TKA_OBS_DISABLED: compiling the
// tracing/metrics hooks out must not change how runtimes are measured.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__linux__) || defined(__APPLE__)
#include <ctime>
#endif

namespace tka::obs {

/// Nanoseconds on the monotonic (steady) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Converts a now_ns() difference to seconds.
inline double ns_to_seconds(std::int64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

/// Nanoseconds of CPU time consumed by the calling thread. Differences
/// against wall time expose involuntary waiting: a lane whose exec phase
/// spans 500ms of wall but only 300ms of CPU spent 200ms runnable but
/// preempted (e.g. two threads time-slicing one core). Falls back to
/// now_ns() where no per-thread CPU clock exists, which makes the stall
/// read as zero rather than as 100%.
inline std::int64_t thread_cpu_ns() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
#endif
  return now_ns();
}

}  // namespace tka::obs
