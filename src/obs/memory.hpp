// Memory accounting: process RSS readings, a background RSS sampler, and
// the TrackedBytes hook that lets owning data structures (envelope cache,
// candidate tables, what-if memo) publish their approximate footprint as
// mem.* gauges.
//
// The raw RSS readers stay available with TKA_OBS_DISABLED (like
// obs::now_ns) so the bench harness can always record peak_rss_bytes; the
// sampler and TrackedBytes collapse to no-ops, matching the rest of obs.
#pragma once

#include <cstdint>

#include <string_view>

#include "obs/metrics.hpp"  // defines TKA_OBS_ENABLED

namespace tka::obs {

/// Current resident set size in bytes (VmRSS from /proc/self/status).
/// Returns 0 when the pseudo-file is unavailable (non-Linux platforms).
std::uint64_t current_rss_bytes();

/// Kernel-maintained peak resident set size in bytes (VmHWM). Monotone for
/// the life of the process. Returns 0 when unavailable.
std::uint64_t peak_rss_bytes();

}  // namespace tka::obs

#if TKA_OBS_ENABLED

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace tka::obs {

/// Background thread that samples RSS every `interval_ms` and publishes the
/// mem.rss_bytes (timeline) and mem.rss_peak_bytes (monotone high-water)
/// gauges. peak() folds in the kernel's VmHWM so short spikes between
/// samples are not lost. Stops (joining the thread) on destruction.
class RssSampler {
 public:
  explicit RssSampler(int interval_ms = 100);
  ~RssSampler();

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  void stop();

  /// Highest RSS seen so far (max of samples and VmHWM); monotone.
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Number of samples taken so far.
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void loop(int interval_ms);
  void sample_once();

  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Byte-accounting handle tied to one mem.* gauge. Each instance remembers
/// its own contribution (`held`) and removes it on destruction, so the
/// per-name total returns to zero when every owner is torn down — the
/// balance invariant tests assert. Totals are process-wide atomics keyed by
/// gauge name; every update also publishes the new total to the gauge.
/// add()/set() are thread-safe across instances; a single instance is
/// intended to be driven by one owner at a time (matches the builders and
/// session, whose mutation paths are already serialized).
class TrackedBytes {
 public:
  explicit TrackedBytes(std::string_view gauge_name);
  ~TrackedBytes();

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

  /// Adjusts this instance's contribution by `n` bytes (may be negative;
  /// the contribution is clamped at zero).
  void add(std::int64_t n);
  /// Replaces this instance's contribution with `n` bytes (clamped at 0).
  void set(std::int64_t n);
  /// This instance's current contribution.
  std::int64_t held() const { return held_.load(std::memory_order_relaxed); }

  /// Process-wide total across live instances for `gauge_name`; 0 for names
  /// never tracked.
  static std::int64_t total(std::string_view gauge_name);

 private:
  std::atomic<std::int64_t>* total_;  // interned per gauge name, never freed
  Gauge* gauge_;
  std::atomic<std::int64_t> held_{0};
};

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED — sampler and byte tracking are no-ops.

namespace tka::obs {

class RssSampler {
 public:
  explicit RssSampler(int = 100) {}
  void stop() {}
  std::uint64_t peak() const { return 0; }
  std::uint64_t samples() const { return 0; }
};

class TrackedBytes {
 public:
  explicit TrackedBytes(std::string_view) {}
  void add(std::int64_t) {}
  void set(std::int64_t) {}
  std::int64_t held() const { return 0; }
  static std::int64_t total(std::string_view) { return 0; }
};

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
