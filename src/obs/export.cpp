#include "obs/export.hpp"

#include <ostream>

#include "obs/clock.hpp"
#include "obs/memory.hpp"
#include "util/string_util.hpp"

#if TKA_OBS_ENABLED

#include <cctype>
#include <cmath>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace tka::obs {
namespace {

std::string num(double v) {
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  if (std::isnan(v)) return "0";
  return str::format("%.9g", v);
}

std::vector<void (*)()>& collector_list() {
  static auto* list = new std::vector<void (*)()>();
  return *list;
}

std::mutex& collector_mu() {
  static auto* mu = new std::mutex();
  return *mu;
}

std::string prom_name(const std::string& name) {
  std::string out = "tka_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void add_collector(void (*fn)()) {
  if (fn == nullptr) return;
  std::lock_guard<std::mutex> lock(collector_mu());
  for (void (*existing)() : collector_list()) {
    if (existing == fn) return;
  }
  collector_list().push_back(fn);
}

void run_collectors() {
  std::vector<void (*)()> fns;
  {
    std::lock_guard<std::mutex> lock(collector_mu());
    fns = collector_list();
  }
  for (void (*fn)() : fns) fn();
  MetricsRegistry& reg = registry();
  const std::uint64_t cur = current_rss_bytes();
  if (cur != 0) {
    reg.gauge("mem.rss_bytes").set(static_cast<double>(cur));
    Gauge& peak = reg.gauge("mem.rss_peak_bytes");
    const double hwm = static_cast<double>(peak_rss_bytes());
    if (hwm > peak.value()) peak.set(hwm);
  }
}

void write_prometheus_text(std::ostream& out) {
  run_collectors();
  const MetricsSnapshot snap = registry().snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << num(value) << "\n";
  }
  registry().visit_histograms([&out](const std::string& name,
                                     const Histogram& h) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cum += h.bucket_count(i);
      const double le = h.bucket_upper(i);
      out << p << "_bucket{le=\"" << (std::isinf(le) ? "+Inf" : num(le))
          << "\"} " << cum << "\n";
    }
    // Use the bucket-derived total for _count so the series is internally
    // consistent under concurrent observe() (see Histogram class comment).
    out << p << "_sum " << num(h.sum()) << "\n" << p << "_count " << cum << "\n";
  });
}

void write_snapshot_line(std::ostream& out) {
  run_collectors();
  const MetricsSnapshot snap = registry().snapshot();
  out << "{\"t_s\": " << num(ns_to_seconds(now_ns()))
      << ", \"rss_bytes\": " << current_rss_bytes() << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << value;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << num(value);
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : snap.histograms) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"count\": "
        << stats.count << ", \"sum\": " << num(stats.sum)
        << ", \"p50\": " << num(stats.p50) << ", \"p90\": " << num(stats.p90)
        << ", \"max\": " << num(stats.max) << "}";
    first = false;
  }
  out << "}}";
}

struct MetricsFileSink::Impl {
  std::ofstream out;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::uint64_t records = 0;
  std::thread thread;

  void write_record() {
    write_snapshot_line(out);
    out << "\n";
    out.flush();
    ++records;
  }

  void loop(int interval_ms) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (stop) return;
      write_record();
    }
  }
};

MetricsFileSink::MetricsFileSink(std::string path, int interval_ms)
    : impl_(new Impl()) {
  if (interval_ms < 1) interval_ms = 1;
  impl_->out.open(path);
  ok_ = impl_->out.is_open();
  if (!ok_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->write_record();  // initial record so short runs still get data
  }
  impl_->thread = std::thread([this, interval_ms]() { impl_->loop(interval_ms); });
}

MetricsFileSink::~MetricsFileSink() {
  stop();
  delete impl_;
}

void MetricsFileSink::stop() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop) return;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  if (ok_) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->write_record();  // final record reflecting end-of-run state
    impl_->out.close();
  }
}

std::uint64_t MetricsFileSink::records() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records;
}

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

#include <fstream>

namespace tka::obs {

void add_collector(void (*)()) {}
void run_collectors() {}

void write_prometheus_text(std::ostream& out) {
  out << "# observability compiled out (TKA_OBS_DISABLED)\n";
}

void write_snapshot_line(std::ostream& out) {
  out << "{\"t_s\": " << str::format("%.9g", ns_to_seconds(now_ns()))
      << ", \"rss_bytes\": " << current_rss_bytes()
      << ", \"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
}

MetricsFileSink::MetricsFileSink(std::string path, int) : path_(std::move(path)) {
  std::ofstream out(path_);
  ok_ = out.is_open();
}

void MetricsFileSink::stop() {
  if (stopped_ || !ok_) return;
  stopped_ = true;
  std::ofstream out(path_);
  write_snapshot_line(out);
  out << "\n";
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
