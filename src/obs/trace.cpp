#include "obs/trace.hpp"

#include <ostream>

#include "obs/clock.hpp"
#include "util/string_util.hpp"

#if TKA_OBS_ENABLED

#include <algorithm>
#include <map>

namespace tka::obs {
namespace {

// JSON string escaping, local to avoid a dependency on tka_io (which sits
// above this layer).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::int32_t this_thread_ordinal() {
  static std::atomic<std::int32_t> next{0};
  thread_local const std::int32_t tid = next.fetch_add(1);
  return tid;
}

// Per-thread open-span stack; reset lazily when the tracer generation
// changes (clear() invalidates all indices).
struct ThreadStack {
  std::uint32_t generation = 0;
  std::vector<std::int32_t> open;
};

ThreadStack& thread_stack() {
  thread_local ThreadStack stack;
  return stack;
}

}  // namespace

Tracer& tracer() {
  static Tracer* t = new Tracer();  // never destroyed
  return *t;
}

std::int64_t Tracer::begin_span(std::string_view name, std::int64_t start_ns) {
  if (!enabled()) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  ThreadStack& ts = thread_stack();
  if (ts.generation != generation_) {
    ts.generation = generation_;
    ts.open.clear();
  }
  SpanEvent ev;
  ev.name = std::string(name);
  ev.start_ns = start_ns;
  ev.parent = ts.open.empty() ? -1 : ts.open.back();
  ev.tid = this_thread_ordinal();
  const std::int32_t index = static_cast<std::int32_t>(events_.size());
  events_.push_back(std::move(ev));
  ts.open.push_back(index);
  return (static_cast<std::int64_t>(generation_) << 32) | index;
}

void Tracer::end_span(std::int64_t token, std::int64_t dur_ns,
                      std::string&& args_json) {
  if (token < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t gen = static_cast<std::uint32_t>(token >> 32);
  const std::int32_t index = static_cast<std::int32_t>(token & 0xffffffff);
  if (gen != generation_) return;  // clear() happened while the span was open
  events_[static_cast<std::size_t>(index)].dur_ns = dur_ns;
  events_[static_cast<std::size_t>(index)].args_json = std::move(args_json);
  ThreadStack& ts = thread_stack();
  if (ts.generation == generation_ && !ts.open.empty() && ts.open.back() == index) {
    ts.open.pop_back();
  }
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ++generation_;
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t epoch = 0;
  bool have_epoch = false;
  for (const SpanEvent& ev : events_) {
    if (ev.dur_ns < 0) continue;
    if (!have_epoch || ev.start_ns < epoch) {
      epoch = ev.start_ns;
      have_epoch = true;
    }
  }
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& ev : events_) {
    if (ev.dur_ns < 0) continue;  // still open; not representable as "X"
    out << (first ? "\n" : ",\n");
    first = false;
    out << str::format(
        "{\"name\": \"%s\", \"cat\": \"tka\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {%s}}",
        escape(ev.name).c_str(), static_cast<double>(ev.start_ns - epoch) * 1e-3,
        static_cast<double>(ev.dur_ns) * 1e-3, ev.tid, ev.args_json.c_str());
  }
  out << (first ? "" : "\n") << "]}";
}

std::vector<SpanSummary> Tracer::summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Parents always precede children in the event vector (a parent's
  // begin_span runs before any child's), so one forward pass resolves
  // every path.
  std::vector<std::string> path(events_.size());
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t child_ns = 0;
    std::size_t depth = 0;
  };
  std::map<std::string, Agg> agg;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const SpanEvent& ev = events_[i];
    if (ev.parent >= 0) {
      path[i] = path[static_cast<std::size_t>(ev.parent)] + "/" + ev.name;
    } else {
      path[i] = ev.name;
    }
    if (ev.dur_ns < 0) continue;
    Agg& a = agg[path[i]];
    a.count += 1;
    a.total_ns += ev.dur_ns;
    a.depth = static_cast<std::size_t>(std::count(path[i].begin(), path[i].end(), '/'));
    if (ev.parent >= 0) {
      const SpanEvent& p = events_[static_cast<std::size_t>(ev.parent)];
      if (p.dur_ns >= 0) {
        agg[path[static_cast<std::size_t>(ev.parent)]].child_ns += ev.dur_ns;
      }
    }
  }
  std::vector<SpanSummary> rows;
  rows.reserve(agg.size());
  for (const auto& [p, a] : agg) {
    SpanSummary row;
    row.path = p;
    row.depth = a.depth;
    row.count = a.count;
    row.total_s = ns_to_seconds(a.total_ns);
    row.self_s = ns_to_seconds(a.total_ns - a.child_ns);
    rows.push_back(std::move(row));
  }
  return rows;  // std::map iteration: already path-sorted
}

void Tracer::write_summary(std::ostream& out) const {
  const std::vector<SpanSummary> rows = summarize();
  out << str::format("%-48s %8s %12s %12s\n", "span", "count", "total", "self");
  for (const SpanSummary& row : rows) {
    const std::size_t cut = row.path.rfind('/');
    const std::string leaf =
        cut == std::string::npos ? row.path : row.path.substr(cut + 1);
    std::string label(2 * row.depth, ' ');
    label += leaf;
    out << str::format("%-48s %8llu %10.6f s %10.6f s\n", label.c_str(),
                       static_cast<unsigned long long>(row.count), row.total_s,
                       row.self_s);
  }
}

ScopedSpan::ScopedSpan(std::string_view name) {
  start_ns_ = now_ns();
  token_ = tracer().begin_span(name, start_ns_);
}

ScopedSpan::~ScopedSpan() {
  if (token_ < 0) return;
  tracer().end_span(token_, now_ns() - start_ns_, std::move(args_));
}

ScopedSpan& ScopedSpan::arg(std::string_view key, std::int64_t v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": %lld", escape(key).c_str(),
                       static_cast<long long>(v));
  return *this;
}

ScopedSpan& ScopedSpan::arg(std::string_view key, double v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": %.9g", escape(key).c_str(), v);
  return *this;
}

ScopedSpan& ScopedSpan::arg(std::string_view key, std::string_view v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": \"%s\"", escape(key).c_str(), escape(v).c_str());
  return *this;
}

void write_metrics_json(std::ostream& out) {
  out << "{\n";
  registry().write_json_fields(out);
  out << ",\n  \"spans\": [";
  const std::vector<SpanSummary> rows = tracer().summarize();
  bool first = true;
  for (const SpanSummary& row : rows) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << str::format(
        "    {\"path\": \"%s\", \"count\": %llu, \"total_s\": %.9g, "
        "\"self_s\": %.9g}",
        escape(row.path).c_str(), static_cast<unsigned long long>(row.count),
        row.total_s, row.self_s);
  }
  out << (first ? "" : "\n  ") << "]\n}";
}

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

namespace tka::obs {

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": []}";
}

void write_metrics_json(std::ostream& out) {
  out << "{\n";
  registry().write_json_fields(out);
  out << ",\n  \"spans\": []\n}";
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
