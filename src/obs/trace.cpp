#include "obs/trace.hpp"

#include <ostream>

#include "obs/clock.hpp"
#include "util/string_util.hpp"

#if TKA_OBS_ENABLED

#include <algorithm>
#include <map>

namespace tka::obs {
namespace {

// JSON string escaping, local to avoid a dependency on tka_io (which sits
// above this layer).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// Per-thread span storage. Each recording thread owns one; the tracer
// keeps a shared_ptr so the buffer (and its recorded spans) outlives the
// thread. `parent` indices in `events` are local to this buffer.
struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::int32_t tid = 0;            // registration ordinal = trace lane
  std::uint32_t generation = 0;    // buffer contents belong to this gen
  std::vector<SpanEvent> events;
  std::vector<std::int32_t> open;  // open-span stack (indices into events)
};

Tracer& tracer() {
  static Tracer* t = new Tracer();  // never destroyed
  return *t;
}

Tracer::ThreadBuffer& Tracer::this_thread_buffer() {
  struct Slot {
    Tracer* owner = nullptr;
    std::shared_ptr<ThreadBuffer> buf;
  };
  thread_local Slot slot;
  if (slot.owner != this) {
    auto buf = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buf->tid = static_cast<std::int32_t>(buffers_.size());
      buf->generation = generation_.load(std::memory_order_relaxed);
      buffers_.push_back(buf);
    }
    slot.owner = this;
    slot.buf = std::move(buf);
  }
  return *slot.buf;
}

std::int64_t Tracer::begin_span(std::string_view name, std::int64_t start_ns) {
  if (!enabled()) return -1;
  ThreadBuffer& tb = this_thread_buffer();
  std::lock_guard<std::mutex> lock(tb.mu);
  // Sample the generation only after acquiring tb.mu: a pre-lock load
  // could race with clear(), rewind tb.generation to the stale value and
  // leak this event into the post-clear stream.
  const std::uint32_t gen = generation_.load(std::memory_order_acquire);
  if (tb.generation != gen) {  // clear() ran since this thread last recorded
    tb.generation = gen;
    tb.events.clear();
    tb.open.clear();
  }
  SpanEvent ev;
  ev.name = std::string(name);
  ev.start_ns = start_ns;
  ev.parent = tb.open.empty() ? -1 : tb.open.back();
  ev.tid = tb.tid;
  const std::int32_t index = static_cast<std::int32_t>(tb.events.size());
  tb.events.push_back(std::move(ev));
  tb.open.push_back(index);
  return (static_cast<std::int64_t>(gen) << 32) | index;
}

void Tracer::end_span(std::int64_t token, std::int64_t dur_ns,
                      std::string&& args_json) {
  if (token < 0) return;
  // ScopedSpan ends on the thread that began it, so the token's index
  // refers into this thread's own buffer.
  ThreadBuffer& tb = this_thread_buffer();
  std::lock_guard<std::mutex> lock(tb.mu);
  const std::uint32_t gen = static_cast<std::uint32_t>(token >> 32);
  const std::int32_t index = static_cast<std::int32_t>(token & 0xffffffff);
  // A clear() while the span was open bumps the generation, or — when it
  // raced with begin_span sampling the already-bumped generation — leaves
  // the generation matching but the event discarded; both mean the token
  // no longer refers to a live event.
  if (gen != tb.generation ||
      static_cast<std::size_t>(index) >= tb.events.size()) {
    return;
  }
  tb.events[static_cast<std::size_t>(index)].dur_ns = dur_ns;
  tb.events[static_cast<std::size_t>(index)].args_json = std::move(args_json);
  if (!tb.open.empty() && tb.open.back() == index) tb.open.pop_back();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const std::shared_ptr<ThreadBuffer>& tb : buffers_) {
    std::lock_guard<std::mutex> tl(tb->mu);
    tb->events.clear();
    tb->open.clear();
    tb->generation = gen;
  }
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::shared_ptr<ThreadBuffer>& tb : buffers_) {
    std::lock_guard<std::mutex> tl(tb->mu);
    n += tb->events.size();
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot every thread's lane (registration order = tid order), then
  // emit without holding the buffer mutexes.
  std::vector<std::vector<SpanEvent>> lanes;
  lanes.reserve(buffers_.size());
  for (const std::shared_ptr<ThreadBuffer>& tb : buffers_) {
    std::lock_guard<std::mutex> tl(tb->mu);
    lanes.push_back(tb->events);
  }
  std::int64_t epoch = 0;
  bool have_epoch = false;
  for (const std::vector<SpanEvent>& lane : lanes) {
    for (const SpanEvent& ev : lane) {
      if (ev.dur_ns < 0) continue;
      if (!have_epoch || ev.start_ns < epoch) {
        epoch = ev.start_ns;
        have_epoch = true;
      }
    }
  }
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const std::vector<SpanEvent>& lane : lanes) {
    for (const SpanEvent& ev : lane) {
      if (ev.dur_ns < 0) continue;  // still open; not representable as "X"
      out << (first ? "\n" : ",\n");
      first = false;
      out << str::format(
          "{\"name\": \"%s\", \"cat\": \"tka\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {%s}}",
          escape(ev.name).c_str(), static_cast<double>(ev.start_ns - epoch) * 1e-3,
          static_cast<double>(ev.dur_ns) * 1e-3, ev.tid, ev.args_json.c_str());
    }
  }
  out << (first ? "" : "\n") << "]}";
}

std::vector<SpanSummary> Tracer::summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<SpanEvent>> lanes;
  lanes.reserve(buffers_.size());
  for (const std::shared_ptr<ThreadBuffer>& tb : buffers_) {
    std::lock_guard<std::mutex> tl(tb->mu);
    lanes.push_back(tb->events);
  }
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t child_ns = 0;
    std::size_t depth = 0;
  };
  std::map<std::string, Agg> agg;
  for (const std::vector<SpanEvent>& lane : lanes) {
    // Within one lane parents always precede children (a parent's
    // begin_span runs before any child's on the same thread), so one
    // forward pass resolves every path. Spans begun on a worker thread
    // root their own lane; identical paths aggregate across lanes.
    std::vector<std::string> path(lane.size());
    for (std::size_t i = 0; i < lane.size(); ++i) {
      const SpanEvent& ev = lane[i];
      if (ev.parent >= 0) {
        path[i] = path[static_cast<std::size_t>(ev.parent)] + "/" + ev.name;
      } else {
        path[i] = ev.name;
      }
      if (ev.dur_ns < 0) continue;
      Agg& a = agg[path[i]];
      a.count += 1;
      a.total_ns += ev.dur_ns;
      a.depth =
          static_cast<std::size_t>(std::count(path[i].begin(), path[i].end(), '/'));
      if (ev.parent >= 0) {
        const SpanEvent& p = lane[static_cast<std::size_t>(ev.parent)];
        if (p.dur_ns >= 0) {
          agg[path[static_cast<std::size_t>(ev.parent)]].child_ns += ev.dur_ns;
        }
      }
    }
  }
  std::vector<SpanSummary> rows;
  rows.reserve(agg.size());
  for (const auto& [p, a] : agg) {
    SpanSummary row;
    row.path = p;
    row.depth = a.depth;
    row.count = a.count;
    row.total_s = ns_to_seconds(a.total_ns);
    row.self_s = ns_to_seconds(a.total_ns - a.child_ns);
    rows.push_back(std::move(row));
  }
  return rows;  // std::map iteration: already path-sorted
}

void Tracer::write_summary(std::ostream& out) const {
  const std::vector<SpanSummary> rows = summarize();
  out << str::format("%-48s %8s %12s %12s\n", "span", "count", "total", "self");
  for (const SpanSummary& row : rows) {
    const std::size_t cut = row.path.rfind('/');
    const std::string leaf =
        cut == std::string::npos ? row.path : row.path.substr(cut + 1);
    std::string label(2 * row.depth, ' ');
    label += leaf;
    out << str::format("%-48s %8llu %10.6f s %10.6f s\n", label.c_str(),
                       static_cast<unsigned long long>(row.count), row.total_s,
                       row.self_s);
  }
}

ScopedSpan::ScopedSpan(std::string_view name) {
  start_ns_ = now_ns();
  token_ = tracer().begin_span(name, start_ns_);
}

ScopedSpan::~ScopedSpan() {
  if (token_ < 0) return;
  tracer().end_span(token_, now_ns() - start_ns_, std::move(args_));
}

ScopedSpan& ScopedSpan::arg(std::string_view key, std::int64_t v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": %lld", escape(key).c_str(),
                       static_cast<long long>(v));
  return *this;
}

ScopedSpan& ScopedSpan::arg(std::string_view key, double v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": %.9g", escape(key).c_str(), v);
  return *this;
}

ScopedSpan& ScopedSpan::arg(std::string_view key, std::string_view v) {
  if (token_ < 0) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += str::format("\"%s\": \"%s\"", escape(key).c_str(), escape(v).c_str());
  return *this;
}

void write_metrics_json(std::ostream& out) {
  out << "{\n";
  registry().write_json_fields(out);
  out << ",\n  \"spans\": [";
  const std::vector<SpanSummary> rows = tracer().summarize();
  bool first = true;
  for (const SpanSummary& row : rows) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << str::format(
        "    {\"path\": \"%s\", \"count\": %llu, \"total_s\": %.9g, "
        "\"self_s\": %.9g}",
        escape(row.path).c_str(), static_cast<unsigned long long>(row.count),
        row.total_s, row.self_s);
  }
  out << (first ? "" : "\n  ") << "]\n}";
}

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

namespace tka::obs {

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": []}";
}

void write_metrics_json(std::ostream& out) {
  out << "{\n";
  registry().write_json_fields(out);
  out << ",\n  \"spans\": []\n}";
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
