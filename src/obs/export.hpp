// Export sinks over the metrics registry: Prometheus-style text exposition,
// JSON-lines periodic snapshots, and the collector hook that lets higher
// layers (runtime telemetry) publish derived gauges just before a snapshot
// without obs depending on them.
//
// With TKA_OBS_DISABLED the writers still emit syntactically valid (empty)
// output and MetricsFileSink still creates its file, so downstream tooling
// never has to special-case disabled builds.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"  // defines TKA_OBS_ENABLED

namespace tka::obs {

/// Registers a callback that every snapshot-producing writer runs first
/// (publish derived gauges here). Callbacks must be fast, thread-safe and
/// idempotent; registration is permanent and deduplicated by pointer.
void add_collector(void (*fn)());

/// Runs every registered collector and refreshes the mem.rss_bytes /
/// mem.rss_peak_bytes gauges. Called by the writers below; exposed for
/// callers that dump the registry through other paths (write_json).
void run_collectors();

/// Prometheus text exposition (version 0.0.4): one `# TYPE` line plus
/// sample lines per metric, names prefixed `tka_` with non-alphanumerics
/// mapped to '_'. Histograms emit cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`. Runs collectors first.
void write_prometheus_text(std::ostream& out);

/// One JSON object on a single line (a JSONL record):
///   {"t_s": <monotonic seconds>, "rss_bytes": N, "counters": {...},
///    "gauges": {...}, "histograms": {name: {count,sum,p50,p90,max}}}
/// Runs collectors first. No trailing newline — callers add it.
void write_snapshot_line(std::ostream& out);

#if TKA_OBS_ENABLED

/// Periodic JSONL snapshot writer: appends one write_snapshot_line record
/// every `interval_ms` on a background thread, plus a final record when
/// stopped/destroyed. Maps to --metrics-out FILE --metrics-interval MS on
/// the CLI and bench harness.
class MetricsFileSink {
 public:
  MetricsFileSink(std::string path, int interval_ms = 500);
  ~MetricsFileSink();

  MetricsFileSink(const MetricsFileSink&) = delete;
  MetricsFileSink& operator=(const MetricsFileSink&) = delete;

  /// Writes the final record and joins the thread. Idempotent.
  void stop();

  bool ok() const { return ok_; }
  std::uint64_t records() const;

 private:
  struct Impl;
  Impl* impl_;
  bool ok_ = false;
};

#else  // !TKA_OBS_DISABLED — sink creates the file, writes one empty record.

class MetricsFileSink {
 public:
  MetricsFileSink(std::string path, int interval_ms = 500);
  ~MetricsFileSink() { stop(); }
  void stop();

  bool ok() const { return ok_; }
  std::uint64_t records() const { return ok_ ? 1u : 0u; }

 private:
  std::string path_;
  bool ok_ = false;
  bool stopped_ = false;
};

#endif  // TKA_OBS_ENABLED

}  // namespace tka::obs
