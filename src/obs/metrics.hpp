// Process-wide metrics registry: named counters, gauges and fixed-bucket
// exponential histograms.
//
// Updates are relaxed atomics on pre-looked-up metric objects, so hot loops
// pay one atomic RMW per event and the registry stays usable from multiple
// threads (registration takes a mutex; hoist lookups out of loops:
//
//   obs::Counter& sets = obs::registry().counter("topk.sets_generated");
//   for (...) sets.add();
//
// Metric objects are never destroyed or reallocated once registered —
// references stay valid for the life of the process, including across
// registry().reset(), which only zeroes values.
//
// Compile-out: with TKA_OBS_DISABLED defined (cmake -DTKA_OBS_DISABLED=1)
// every type below collapses to an empty inline no-op — no atomics, no
// map, no allocation — and counter reads return 0. Code that *reports*
// counter-derived numbers must treat zero as "observability disabled".
#pragma once

#include <cstdint>

#include <iosfwd>
#include <string_view>

#if defined(TKA_OBS_DISABLED) && TKA_OBS_DISABLED
#define TKA_OBS_ENABLED 0
#else
#define TKA_OBS_ENABLED 1
#endif

#include <map>
#include <string>

namespace tka::obs {

/// Distribution summary of one histogram at snapshot time. Percentiles are
/// bucket-resolved: each reports the upper bound of the bucket where the
/// cumulative count crosses the quantile, so they are conservative to one
/// bucket width. `max` is the upper bound of the highest non-empty bucket;
/// samples landing in the +Inf overflow bucket clamp it to the histogram's
/// top finite bound (so the JSON stays finite).
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of every metric in the registry: counters, gauges,
/// and per-histogram distribution summaries (count/sum/p50/p90/max — full
/// bucket arrays stay behind write_json()/visit_histograms()). With
/// TKA_OBS_DISABLED the snapshot is empty.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Per-name counter increments between two snapshots (`after` - `before`).
/// Names absent from `before` count from zero; names that only exist in
/// `before` are dropped. Counters are monotone, so negative deltas cannot
/// occur outside an interleaved registry().reset(). Gauges are
/// last-write-wins scalars with no meaningful difference, so the delta
/// carries `after`'s gauge values unchanged. Histogram `count` and `sum`
/// subtract like counters; the percentile fields are distribution shapes,
/// not monotone tallies, so the delta carries `after`'s values for them.
MetricsSnapshot counters_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

}  // namespace tka::obs

#if TKA_OBS_ENABLED

#include <array>
#include <atomic>
#include <bit>
#include <functional>
#include <memory>
#include <mutex>

namespace tka::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (doubles stored as bit patterns for atomicity).
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket exponential histogram. Bucket upper bounds are laid out
/// geometrically from `lo` (bucket 0) to `hi` (bucket kNumBuckets-2); the
/// last bucket is +inf. Values below `lo` land in bucket 0. The bounds are
/// fixed at registration; later `histogram()` lookups ignore their spec.
///
/// Concurrency: observe() touches three atomics (bucket, count, sum) with
/// no transaction around them, so a reader that races a writer can see a
/// bucket increment before the matching count/sum update. That skew is
/// bounded by the number of in-flight observe() calls and is benign for
/// monitoring; stats() therefore derives its total from the bucket array
/// itself rather than trusting count_ to match. No torn reads are possible
/// (every field is a relaxed atomic), so TSan is clean by construction.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 32;

  Histogram(double lo, double hi);

  void observe(double v);

  /// Distribution summary safe to call while workers observe() concurrently
  /// (count is re-derived from a point-in-time bucket copy).
  HistogramStats stats() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `i`; +inf for the last bucket.
  double bucket_upper(std::size_t i) const { return upper_[i]; }

  void reset();

 private:
  std::array<double, kNumBuckets> upper_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// The process-wide named-metric registry.
class MetricsRegistry {
 public:
  /// Find-or-create. References remain valid forever (see file comment).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double lo = 1e-6, double hi = 100.0);

  /// Dumps every metric as one JSON object:
  /// { "counters": {name: int}, "gauges": {name: num},
  ///   "histograms": {name: {"count": int, "sum": num,
  ///                         "buckets": [{"le": num|"+Inf", "n": int}]}} }
  /// Histogram buckets with zero count are omitted.
  void write_json(std::ostream& out) const;

  /// The three fields of write_json without the surrounding braces, for
  /// callers that splice extra fields into the same object.
  void write_json_fields(std::ostream& out) const;

  /// Copies every counter and gauge value plus per-histogram summary stats.
  /// The benchmark harness takes a snapshot around each timed repetition and
  /// records the counter deltas. Safe to call while worker threads update
  /// metrics (see the Histogram class comment for the benign-skew caveat).
  MetricsSnapshot snapshot() const;

  /// Visits every registered histogram (name-ordered) under the registry
  /// lock. Used by the Prometheus writer, which needs full bucket arrays
  /// rather than the percentile summary carried by snapshot().
  void visit_histograms(
      const std::function<void(const std::string&, const Histogram&)>& fn) const;

  /// Zeroes every value; metric objects (and references) survive. Tests use
  /// this to isolate runs.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The global registry.
MetricsRegistry& registry();

/// Pre-registers the library's metric name catalog (see
/// docs/OBSERVABILITY.md) so a metrics dump contains every well-known name
/// even when a phase never ran. Idempotent.
void register_core_metrics();

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED — every hook is an inline no-op.

namespace tka::obs {

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0.0; }
  void reset() {}
};

class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 32;
  void observe(double) {}
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  std::uint64_t bucket_count(std::size_t) const { return 0; }
  double bucket_upper(std::size_t) const { return 0.0; }
  HistogramStats stats() const { return {}; }
  void reset() {}
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view, double = 0.0, double = 0.0) {
    return histogram_;
  }
  void write_json(std::ostream& out) const;
  void write_json_fields(std::ostream& out) const;
  MetricsSnapshot snapshot() const { return {}; }
  template <typename Fn>
  void visit_histograms(const Fn&) const {}
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline MetricsRegistry& registry() {
  static MetricsRegistry stub;
  return stub;
}

inline void register_core_metrics() {}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
