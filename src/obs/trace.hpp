// Scoped-span tracer: nested begin/end spans with arguments, recorded
// against the obs clock, exportable as Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and as a human-readable
// summary tree (span path -> count, total/self wall time).
//
// Recording is off by default; a ScopedSpan constructed while the tracer
// is disabled costs one relaxed atomic load. Enable with
// `obs::tracer().enable(true)` before the work of interest, then write the
// trace with `write_chrome_json`.
//
// Threading: every thread records into its own buffer (registered on first
// span, guarded by its own mutex), so concurrent spans from pool workers
// never contend on a shared vector. Nesting is tracked per thread; a span
// begun on a worker is a root of that worker's lane. Export/summary/clear
// aggregate across all buffers. Each thread's lane carries a stable small
// `tid` (registration ordinal) in the Chrome trace.
//
// With TKA_OBS_DISABLED, ScopedSpan and Tracer collapse to inline no-ops
// (empty trace, empty summary) — see metrics.hpp for the convention.
#pragma once

#include <cstdint>

#include <iosfwd>
#include <string_view>

#include "obs/metrics.hpp"  // defines TKA_OBS_ENABLED

#if TKA_OBS_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tka::obs {

/// One completed (or in-flight) span.
struct SpanEvent {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = -1;     ///< -1 while the span is still open
  std::int32_t parent = -1;     ///< index into the owning thread's buffer, -1 = root
  std::int32_t tid = 0;         ///< small per-thread ordinal (lane in the trace)
  std::string args_json;        ///< rendered `"k": v` pairs, comma-separated
};

/// Aggregated summary row (one per distinct span path).
struct SpanSummary {
  std::string path;             ///< names joined by '/', root first
  std::size_t depth = 0;
  std::uint64_t count = 0;
  double total_s = 0.0;         ///< sum of span durations
  double self_s = 0.0;          ///< total minus time in child spans
};

class Tracer {
 public:
  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all recorded events (open spans detach harmlessly).
  void clear();

  std::size_t num_events() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ns"}. Timestamps are microseconds relative to the first event. Spans
  /// still open at write time are skipped.
  void write_chrome_json(std::ostream& out) const;

  /// Human-readable summary tree, indented by nesting depth.
  void write_summary(std::ostream& out) const;

  /// Summary rows, sorted by path (parents precede children).
  std::vector<SpanSummary> summarize() const;

  // ScopedSpan internals.
  /// Returns a packed generation|index token, or -1 when disabled.
  std::int64_t begin_span(std::string_view name, std::int64_t start_ns);
  void end_span(std::int64_t token, std::int64_t dur_ns, std::string&& args_json);

 private:
  struct ThreadBuffer;  // per-thread span storage; defined in trace.cpp
  ThreadBuffer& this_thread_buffer();

  // Lock order: mu_ (buffer registry) before any ThreadBuffer::mu.
  // Recording paths take only the calling thread's buffer mutex; the
  // aggregate paths (export/summary/clear/num_events) take mu_ then each
  // buffer's in turn.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> generation_{0};  // bumped by clear(); stale tokens drop
  std::atomic<bool> enabled_{false};
};

/// The global tracer.
Tracer& tracer();

/// RAII span: records begin on construction, duration on destruction.
/// Arguments attach key/value pairs visible in the Chrome trace viewer.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is actually being recorded (tracer enabled at
  /// construction) — lets callers skip costly argument formatting.
  bool recording() const { return token_ >= 0; }

  ScopedSpan& arg(std::string_view key, std::int64_t v);
  ScopedSpan& arg(std::string_view key, double v);
  ScopedSpan& arg(std::string_view key, std::string_view v);

 private:
  std::int64_t token_ = -1;
  std::int64_t start_ns_ = 0;
  std::string args_;
};

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

namespace tka::obs {

struct SpanSummary {
  const char* path = "";
  std::size_t depth = 0;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double self_s = 0.0;
};

class Tracer {
 public:
  void enable(bool) {}
  bool enabled() const { return false; }
  void clear() {}
  std::size_t num_events() const { return 0; }
  void write_chrome_json(std::ostream& out) const;
  void write_summary(std::ostream&) const {}
};

inline Tracer& tracer() {
  static Tracer stub;
  return stub;
}

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  bool recording() const { return false; }
  ScopedSpan& arg(std::string_view, std::int64_t) { return *this; }
  ScopedSpan& arg(std::string_view, double) { return *this; }
  ScopedSpan& arg(std::string_view, std::string_view) { return *this; }
};

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED

namespace tka::obs {

/// One-stop dump for `--metrics` and the bench harness: the registry JSON
/// plus a "spans" array from the tracer summary —
/// { "counters": ..., "gauges": ..., "histograms": ...,
///   "spans": [{"path": str, "count": int, "total_s": num, "self_s": num}] }
void write_metrics_json(std::ostream& out);

}  // namespace tka::obs
