// Umbrella header for the observability layer plus convenience macros.
//
//   TKA_OBS_SPAN(name);            // anonymous RAII span for this scope
//   TKA_OBS_COUNT(name, n);        // one-shot counter bump (looks up the
//                                  // registry; hoist the lookup in loops)
//
// With TKA_OBS_DISABLED both macros compile to nothing; the classes in
// metrics.hpp / trace.hpp are inline no-op stubs, so explicit
// ScopedSpan/Counter/Histogram usage also vanishes. See
// docs/OBSERVABILITY.md for the metric name catalog.
#pragma once

#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define TKA_OBS_CONCAT_INNER(a, b) a##b
#define TKA_OBS_CONCAT(a, b) TKA_OBS_CONCAT_INNER(a, b)

#if TKA_OBS_ENABLED
#define TKA_OBS_SPAN(name) \
  ::tka::obs::ScopedSpan TKA_OBS_CONCAT(tka_obs_span_, __LINE__)(name)
#define TKA_OBS_COUNT(name, n) ::tka::obs::registry().counter(name).add(n)
#else
#define TKA_OBS_SPAN(name) ((void)0)
#define TKA_OBS_COUNT(name, n) ((void)0)
#endif

namespace tka::obs {

#if TKA_OBS_ENABLED

/// RAII timer: observes elapsed wall-clock seconds into a histogram when
/// the scope exits. Compiles out entirely (including the clock reads) with
/// TKA_OBS_DISABLED.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& hist)
      : hist_(hist), start_ns_(now_ns()) {}
  ~ScopedHistogramTimer() { hist_.observe(ns_to_seconds(now_ns() - start_ns_)); }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& hist_;
  std::int64_t start_ns_;
};

#else

class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram&) {}
};

#endif

}  // namespace tka::obs
