#include "obs/signal_flush.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

namespace tka::obs {
namespace {

// Written by the signal handler, read by the watcher. A pipe rather than a
// flag so the watcher can block in read() with zero idle cost.
int g_pipe[2] = {-1, -1};

std::mutex& state_mu() {
  static std::mutex mu;
  return mu;
}

struct State {
  std::map<int, std::function<void()>> hooks;
  int next_id = 0;
  std::function<void(int)> delegate;
  bool delegate_used = false;
  bool installed = false;
};

State& state() {
  static State s;
  return s;
}

extern "C" void on_signal(int signo) {
  const unsigned char b = static_cast<unsigned char>(signo);
  // The only async-signal-safe thing here is the write; the watcher does
  // the rest. A full pipe (absurdly many signals) just drops the byte.
  [[maybe_unused]] ssize_t r = ::write(g_pipe[1], &b, 1);
}

void watcher_loop() {
  unsigned char b = 0;
  while (::read(g_pipe[0], &b, 1) == 1 || errno == EINTR) {
    if (b == 0) continue;
    const int signo = static_cast<int>(b);
    std::function<void(int)> delegate;
    {
      std::lock_guard<std::mutex> lock(state_mu());
      if (state().delegate && !state().delegate_used) {
        state().delegate_used = true;
        delegate = state().delegate;
      }
    }
    if (delegate) {
      delegate(signo);
      continue;  // graceful path; a second signal falls through below
    }
    run_flush_hooks();
    std::_Exit(128 + signo);
  }
}

}  // namespace

void install_signal_flush() {
  std::lock_guard<std::mutex> lock(state_mu());
  if (state().installed) return;
  if (::pipe(g_pipe) != 0) return;  // no pipe, no handler — degrade silently
  state().installed = true;

  std::thread(watcher_loop).detach();

  struct sigaction sa;
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int add_flush_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(state_mu());
  const int id = state().next_id++;
  state().hooks.emplace(id, std::move(hook));
  return id;
}

void remove_flush_hook(int id) {
  std::lock_guard<std::mutex> lock(state_mu());
  state().hooks.erase(id);
}

void run_flush_hooks() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(state_mu());
    hooks.reserve(state().hooks.size());
    for (auto& [id, fn] : state().hooks) hooks.push_back(fn);
  }
  for (auto& fn : hooks) {
    try {
      fn();
    } catch (...) {
      // One failing flush must not mask the others.
    }
  }
}

void set_graceful_delegate(std::function<void(int)> delegate) {
  std::lock_guard<std::mutex> lock(state_mu());
  state().delegate = std::move(delegate);
  state().delegate_used = false;
}

}  // namespace tka::obs
