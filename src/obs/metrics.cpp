#include "obs/metrics.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "util/string_util.hpp"

namespace tka::obs {

MetricsSnapshot counters_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    delta.counters.emplace(name, value >= base ? value - base : 0);
  }
  delta.gauges = after.gauges;
  return delta;
}

}  // namespace tka::obs

#if TKA_OBS_ENABLED

namespace tka::obs {
namespace {

std::string num(double v) { return str::format("%.9g", v); }

}  // namespace

Histogram::Histogram(double lo, double hi) {
  if (!(lo > 0.0)) lo = 1e-9;
  if (!(hi > lo)) hi = lo * 2.0;
  const double ratio = hi / lo;
  const double steps = static_cast<double>(kNumBuckets - 2);
  for (std::size_t i = 0; i + 1 < kNumBuckets; ++i) {
    upper_[i] = lo * std::pow(ratio, static_cast<double>(i) / steps);
  }
  upper_[kNumBuckets - 1] = std::numeric_limits<double>::infinity();
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i + 1 < kNumBuckets && v > upper_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(bits) + v),
      std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(lo, hi))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n";
  write_json_fields(out);
  out << "\n}";
}

void MetricsRegistry::write_json_fields(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << num(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << num(h->sum()) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket_count(i) == 0) continue;
      out << (bfirst ? "" : ", ") << "{\"le\": ";
      if (std::isinf(h->bucket_upper(i))) {
        out << "\"+Inf\"";
      } else {
        out << num(h->bucket_upper(i));
      }
      out << ", \"n\": " << h->bucket_count(i) << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

void register_core_metrics() {
  MetricsRegistry& reg = registry();
  // Counters.
  for (const char* name :
       {"topk.runs", "topk.whatif_runs", "topk.sets_generated",
        "topk.surviving_sets", "topk.dominance_pruned", "topk.beam_capped",
        "topk.generation_capped", "topk.baseline_refreshes",
        "topk.baseline_refresh_region", "session.whatif_edits",
        "noise.fixpoint_runs", "noise.fixpoint_iterations",
        "noise.fixpoint_nonconverged", "noise.filter_false_sides",
        "noise.envelope_cache_hits", "noise.envelope_cache_misses",
        "dominance.sig_rejects", "dominance.exact_checks",
        "pwl.merge_points", "sta.runs", "transient.solves"}) {
    reg.counter(name);
  }
  // Gauges.
  for (const char* name :
       {"topk.max_list_size", "topk.runtime_s", "session.dirty_victims"}) {
    reg.gauge(name);
  }
  // Histograms (specs must match the instrumentation call sites).
  reg.histogram("topk.ilist_size", 1.0, 65536.0);
  reg.histogram("noise.fixpoint_iters", 1.0, 64.0);
  reg.histogram("sta.run_seconds", 1e-6, 100.0);
  reg.histogram("transient.solve_seconds", 1e-6, 100.0);
}

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

namespace tka::obs {

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n";
  write_json_fields(out);
  out << "\n}";
}

void MetricsRegistry::write_json_fields(std::ostream& out) const {
  out << "  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}";
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
