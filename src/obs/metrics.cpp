#include "obs/metrics.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "util/string_util.hpp"

namespace tka::obs {

MetricsSnapshot counters_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    delta.counters.emplace(name, value >= base ? value - base : 0);
  }
  delta.gauges = after.gauges;
  for (const auto& [name, stats] : after.histograms) {
    const auto it = before.histograms.find(name);
    HistogramStats d = stats;  // percentiles/max carried from `after`
    if (it != before.histograms.end()) {
      d.count = stats.count >= it->second.count ? stats.count - it->second.count : 0;
      d.sum = stats.sum - it->second.sum;
    }
    delta.histograms.emplace(name, d);
  }
  return delta;
}

}  // namespace tka::obs

#if TKA_OBS_ENABLED

namespace tka::obs {
namespace {

std::string num(double v) { return str::format("%.9g", v); }

}  // namespace

Histogram::Histogram(double lo, double hi) {
  if (!(lo > 0.0)) lo = 1e-9;
  if (!(hi > lo)) hi = lo * 2.0;
  const double ratio = hi / lo;
  const double steps = static_cast<double>(kNumBuckets - 2);
  for (std::size_t i = 0; i + 1 < kNumBuckets; ++i) {
    upper_[i] = lo * std::pow(ratio, static_cast<double>(i) / steps);
  }
  upper_[kNumBuckets - 1] = std::numeric_limits<double>::infinity();
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i + 1 < kNumBuckets && v > upper_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(bits) + v),
      std::memory_order_relaxed)) {
  }
}

HistogramStats Histogram::stats() const {
  // Copy the bucket array once, then derive every field from the copy so a
  // concurrent observe() cannot make count and percentiles disagree.
  std::array<std::uint64_t, kNumBuckets> n{};
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    n[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  HistogramStats s;
  for (std::uint64_t c : n) s.count += c;
  s.sum = sum();
  if (s.count == 0) return s;
  // +Inf samples clamp to the top finite bound so the stats stay finite.
  const double top_finite = upper_[kNumBuckets - 2];
  auto bound = [&](std::size_t i) {
    return std::isinf(upper_[i]) ? top_finite : upper_[i];
  };
  const std::uint64_t need50 = (s.count + 1) / 2;
  const std::uint64_t need90 = (s.count * 9 + 9) / 10;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (n[i] == 0) continue;
    cum += n[i];
    if (s.p50 == 0.0 && cum >= need50) s.p50 = bound(i);
    if (s.p90 == 0.0 && cum >= need90) s.p90 = bound(i);
    s.max = bound(i);
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(lo, hi))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n";
  write_json_fields(out);
  out << "\n}";
}

void MetricsRegistry::write_json_fields(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << num(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << num(h->sum()) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket_count(i) == 0) continue;
      out << (bfirst ? "" : ", ") << "{\"le\": ";
      if (std::isinf(h->bucket_upper(i))) {
        out << "\"+Inf\"";
      } else {
        out << num(h->bucket_upper(i));
      }
      out << ", \"n\": " << h->bucket_count(i) << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, h->stats());
  return snap;
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

void register_core_metrics() {
  MetricsRegistry& reg = registry();
  // Counters.
  for (const char* name :
       {"topk.runs", "topk.whatif_runs", "topk.sets_generated",
        "topk.surviving_sets", "topk.dominance_pruned", "topk.beam_capped",
        "topk.generation_capped", "topk.baseline_refreshes",
        "topk.baseline_refresh_region", "session.whatif_edits",
        "noise.fixpoint_runs", "noise.fixpoint_iterations",
        "noise.fixpoint_nonconverged", "noise.filter_false_sides",
        "noise.envelope_cache_hits", "noise.envelope_cache_misses",
        "dominance.sig_rejects", "dominance.exact_checks",
        "pwl.merge_points", "sta.runs", "transient.solves"}) {
    reg.counter(name);
  }
  // Gauges. Note: runtime/memory telemetry is deliberately gauge- and
  // histogram-valued — the bench harness records per-case *counter* deltas
  // into BENCH_<suite>.json, and those must stay bit-identical across
  // thread counts and obs configurations.
  for (const char* name :
       {"topk.max_list_size", "topk.runtime_s", "session.dirty_victims",
        // Thread-pool attribution aggregates (see src/runtime/telemetry.hpp).
        "runtime.workers", "runtime.lanes", "runtime.exec_s",
        "runtime.queue_idle_s", "runtime.barrier_wait_s", "runtime.tasks",
        "runtime.parallel_fors", "runtime.inline_fors",
        "runtime.wavefront_levels",
        // Per-query runtime deltas published by AnalysisSession::query.
        "runtime.query.exec_s", "runtime.query.barrier_wait_s",
        "runtime.query.queue_idle_s", "runtime.query.wall_s",
        // Memory accounting (see src/obs/memory.hpp).
        "mem.rss_bytes", "mem.rss_peak_bytes", "mem.envelope_cache_bytes",
        "mem.candidate_tables_bytes", "mem.whatif_memo_bytes"}) {
    reg.gauge(name);
  }
  // Histograms (specs must match the instrumentation call sites).
  reg.histogram("topk.ilist_size", 1.0, 65536.0);
  reg.histogram("noise.fixpoint_iters", 1.0, 64.0);
  reg.histogram("sta.run_seconds", 1e-6, 100.0);
  reg.histogram("transient.solve_seconds", 1e-6, 100.0);
  reg.histogram("runtime.task_seconds", 1e-6, 100.0);
  reg.histogram("runtime.level_width_nets", 1.0, 1048576.0);
  reg.histogram("runtime.level_batch_nets", 1.0, 1048576.0);
}

}  // namespace tka::obs

#else  // !TKA_OBS_ENABLED

namespace tka::obs {

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n";
  write_json_fields(out);
  out << "\n}";
}

void MetricsRegistry::write_json_fields(std::ostream& out) const {
  out << "  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}";
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
