#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

namespace tka::obs {
namespace {

// Reads one "<key>:  <n> kB" line from /proc/self/status. Returns 0 when
// the file or key is missing (non-Linux). fopen/fgets keep this
// async-signal-tolerant and allocation-light; the file is tiny.
std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
    unsigned long long v = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) kb = v;
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

}  // namespace tka::obs

#if TKA_OBS_ENABLED

#include <chrono>
#include <map>
#include <string>

namespace tka::obs {
namespace {

// Interned per-name totals for TrackedBytes. Entries are never removed, so
// pointers handed to instances stay valid for the life of the process
// (mirrors the MetricsRegistry ownership rule).
std::atomic<std::int64_t>& intern_total(std::string_view name) {
  static std::mutex mu;
  static auto* totals =
      new std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>,
                   std::less<>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = totals->find(name);
  if (it == totals->end()) {
    it = totals
             ->emplace(std::string(name),
                       std::make_unique<std::atomic<std::int64_t>>(0))
             .first;
  }
  return *it->second;
}

}  // namespace

RssSampler::RssSampler(int interval_ms) {
  if (interval_ms < 1) interval_ms = 1;
  sample_once();
  thread_ = std::thread([this, interval_ms]() { loop(interval_ms); });
}

RssSampler::~RssSampler() { stop(); }

void RssSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once();  // final reading so peak() reflects the full run
}

void RssSampler::loop(int interval_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
    if (stop_) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void RssSampler::sample_once() {
  const std::uint64_t cur = current_rss_bytes();
  const std::uint64_t hwm = peak_rss_bytes();
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  const std::uint64_t candidate = cur > hwm ? cur : hwm;
  while (candidate > peak &&
         !peak_.compare_exchange_weak(peak, candidate,
                                      std::memory_order_relaxed)) {
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry& reg = registry();
  reg.gauge("mem.rss_bytes").set(static_cast<double>(cur));
  reg.gauge("mem.rss_peak_bytes")
      .set(static_cast<double>(peak_.load(std::memory_order_relaxed)));
}

TrackedBytes::TrackedBytes(std::string_view gauge_name)
    : total_(&intern_total(gauge_name)),
      gauge_(&registry().gauge(gauge_name)) {}

TrackedBytes::~TrackedBytes() { set(0); }

void TrackedBytes::add(std::int64_t n) {
  std::int64_t held = held_.load(std::memory_order_relaxed);
  std::int64_t next;
  do {
    next = held + n;
    if (next < 0) next = 0;
  } while (!held_.compare_exchange_weak(held, next, std::memory_order_relaxed));
  const std::int64_t applied = next - held;
  if (applied == 0) return;
  const std::int64_t total =
      total_->fetch_add(applied, std::memory_order_relaxed) + applied;
  gauge_->set(static_cast<double>(total));
}

void TrackedBytes::set(std::int64_t n) {
  if (n < 0) n = 0;
  const std::int64_t prev = held_.exchange(n, std::memory_order_relaxed);
  const std::int64_t applied = n - prev;
  if (applied == 0) return;
  const std::int64_t total =
      total_->fetch_add(applied, std::memory_order_relaxed) + applied;
  gauge_->set(static_cast<double>(total));
}

std::int64_t TrackedBytes::total(std::string_view gauge_name) {
  return intern_total(gauge_name).load(std::memory_order_relaxed);
}

}  // namespace tka::obs

#endif  // TKA_OBS_ENABLED
