// False-aggressor filtering (paper refs [10],[11], simplified).
//
// Two pruning rules, both conservative (a filtered coupling provably cannot
// contribute delay noise to that victim):
//  * timing: the aggressor's envelope is identically zero inside the
//    victim's dominance interval — the aggressor can never hit the victim
//    transition, even with propagated-noise widening (the interval already
//    includes the delay-noise upper bound).
//  * magnitude: the characterized pulse peak is below a noise floor
//    (industrial practice thresholds tiny couplings).
#pragma once

#include <cstddef>

#include <memory>
#include <span>

#include "net/logic_sim.hpp"
#include "noise/noise_analyzer.hpp"

namespace tka::noise {

/// Filtering thresholds.
struct FilterOptions {
  double min_peak_v = 1e-4;       ///< pulses below this peak are noise floor
  double window_margin_ns = 0.0;  ///< extra slack added around the interval

  /// Optional functional filtering (paper refs [10],[11], simplified):
  /// random-vector logic simulation marks a coupling side false when the
  /// aggressor and victim never toggled in the same input event. This is a
  /// statistical heuristic, not a proof — more events make it safer — so it
  /// defaults off; the timing/magnitude rules above are conservative.
  bool functional = false;
  int functional_events = 256;
  std::uint64_t functional_seed = 1;
};

/// Per-victim false-aggressor decisions, precomputed over all couplings.
/// Sessions keep one instance alive across queries and refresh() only the
/// sides an edit touched.
class AggressorFilter {
 public:
  /// Evaluates all (victim, cap) sides under the builder's windows.
  AggressorFilter(const net::Netlist& nl, const layout::Parasitics& par,
                  const NoiseAnalyzer& analyzer, EnvelopeBuilder& builder,
                  const FilterOptions& options = {});

  /// Re-evaluates every side touching one of `nets` (as victim or as the
  /// coupled aggressor) under the builder's current windows, applying the
  /// same rules in the same order as construction. The functional toggle
  /// profile is logic-only and is reused as-is. Serial and deterministic.
  void refresh(std::span<const net::NetId> nets, const NoiseAnalyzer& analyzer,
               EnvelopeBuilder& builder);

  /// True when `cap` can never produce delay noise on `victim`.
  bool is_false(net::NetId victim, layout::CapId cap) const;

  /// Number of (victim, cap) sides filtered out.
  size_t num_filtered() const { return num_filtered_; }
  /// Total number of (victim, cap) sides considered.
  size_t num_sides() const { return false_side_.size(); }

 private:
  /// Per-rule removal tallies for the debug summary line.
  struct Tally {
    size_t zero_cap = 0;
    size_t peak = 0;
    size_t toggle = 0;
    size_t window = 0;
  };

  size_t side_index(net::NetId victim, layout::CapId cap) const;

  /// One side's verdict under the current windows; `have_iv`/`iv` lazily
  /// cache the per-victim dominance interval across sides of one pass.
  bool side_is_false(net::NetId victim, layout::CapId cap,
                     const NoiseAnalyzer& analyzer, EnvelopeBuilder& builder,
                     std::vector<char>& have_iv,
                     std::vector<wave::DominanceInterval>& iv,
                     Tally* tally) const;

  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  FilterOptions opt_;
  std::unique_ptr<net::ToggleProfile> toggles_;
  std::vector<char> false_side_;  // [2 * cap + (victim == net_b)]
  size_t num_filtered_ = 0;
};

}  // namespace tka::noise
