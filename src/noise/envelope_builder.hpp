// Builds victim-referenced noise envelopes from characterized pulses and
// aggressor timing windows, with per-(cap, victim) caching.
//
// The envelope of coupling `cap` on `victim` is the trapezoid obtained by
// sweeping the aggressor transition over its window [EAT, LAT]; the pulse
// leaves zero when the aggressor transition *starts*, i.e. at
// t50_agg - trans/2 (paper Figure 2).
#pragma once

#include <shared_mutex>
#include <unordered_map>

#include "noise/coupling_calc.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "sta/timing_graph.hpp"
#include "wave/envelope.hpp"

namespace tka::noise {

/// Envelope factory bound to a window table. Windows are captured by
/// reference: the iterative engine re-creates builders per iteration.
class EnvelopeBuilder {
 public:
  EnvelopeBuilder(const net::Netlist& nl, const layout::Parasitics& par,
                  const CouplingCalculator& calc, const sta::WindowTable& windows)
      : nl_(&nl),
        par_(&par),
        calc_(&calc),
        windows_(&windows),
        cache_hits_(obs::registry().counter("noise.envelope_cache_hits")),
        cache_misses_(obs::registry().counter("noise.envelope_cache_misses")) {}

  /// Trapezoidal envelope of `cap` on `victim` under the current windows.
  /// Cached; an extra `lat_extension` (>0 for higher-order aggressors)
  /// bypasses the cache and widens the aggressor window on the LAT side.
  /// Thread-safe: concurrent victim-sweep workers share one builder (the
  /// returned reference stays valid — unordered_map never moves nodes).
  const wave::Pwl& envelope(net::NetId victim, layout::CapId cap);

  /// Uncached variant with an explicitly widened aggressor window. A
  /// negative `lat_extension` narrows the window (clamped at the EAT);
  /// elimination-mode higher-order atoms use this to model window
  /// narrowing when an aggressor's own noise is removed.
  wave::Pwl envelope_widened(net::NetId victim, layout::CapId cap,
                             double lat_extension) const;

  /// "Infinite-window" plateau envelope spanning [t_lo, t_hi]: the pulse
  /// peak held across the whole interval. Used for the delay-noise upper
  /// bound that closes the dominance interval (paper §3.2).
  wave::Pwl plateau_envelope(net::NetId victim, layout::CapId cap,
                             double t_lo, double t_hi) const;

  /// The characterized pulse shape for (victim, cap).
  wave::PulseShape pulse_shape(net::NetId victim, layout::CapId cap) const;

  /// Drops every cached envelope touching `net` — as the victim side or as
  /// the aggressor of one of its couplings. Sessions call this after an
  /// edit (or a window change at `net`) so only the affected entries
  /// rebuild; everything else keeps hitting the cache.
  void invalidate_net(net::NetId net);

  /// Drops both victim sides of one coupling.
  void invalidate_cap(layout::CapId cap);

  const sta::WindowTable& windows() const { return *windows_; }

 private:
  wave::Pwl build(net::NetId victim, layout::CapId cap, double lat_extension) const;
  /// Erases one cache entry (caller holds cache_mu_ exclusively), keeping
  /// the byte accounting in step. Returns the number of entries removed.
  std::size_t erase_entry(std::uint64_t key);

  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  const CouplingCalculator* calc_;
  const sta::WindowTable* windows_;
  // Cache keyed by (victim, cap) — a cap has two victim sides. Guarded by
  // cache_mu_ so parallel victim sweeps can share the builder; values are
  // pure functions of the key, so a racing double-build is just discarded.
  mutable std::shared_mutex cache_mu_;
  std::unordered_map<std::uint64_t, wave::Pwl> cache_;
  // Hit/miss tallies (relaxed atomics; no-ops with TKA_OBS_DISABLED).
  // With several threads racing on a cold key the miss count can exceed
  // the number of distinct keys — each racer builds once.
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  // Approximate cache footprint, published to the mem.envelope_cache_bytes
  // gauge. The builder's contribution auto-releases on destruction, so the
  // gauge returns to zero when every builder is torn down.
  obs::TrackedBytes cache_bytes_{"mem.envelope_cache_bytes"};
};

}  // namespace tka::noise
