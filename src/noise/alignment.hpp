// Exact worst-case aggressor alignment search (paper refs [5],[6],[7]).
//
// The production analysis bounds all alignments at once with trapezoidal
// envelopes; this module solves the underlying optimization directly: pick
// one switching instant per aggressor inside its timing window so the
// superposed pulses maximize the victim's delay noise. Exponential in the
// aggressor count, so it is a validation/diagnostic tool: the envelope
// bound must always be >= the exact optimum, and for few aggressors the
// gap quantifies the envelope method's pessimism.
#pragma once

#include <vector>

#include "sta/timing_graph.hpp"
#include "wave/pulse.hpp"
#include "wave/pwl.hpp"

namespace tka::noise {

/// One aggressor for the alignment search: its characterized pulse and the
/// window of admissible *pulse start* times (transition-start referenced).
struct AlignedAggressor {
  wave::PulseShape shape;
  double start_min = 0.0;  ///< earliest pulse start (ns)
  double start_max = 0.0;  ///< latest pulse start (>= start_min)
};

/// Search controls.
struct AlignmentOptions {
  int grid_points = 24;     ///< per-window samples in the exhaustive phase
  int max_exhaustive = 3;   ///< up to this many aggressors: full grid search
  int refine_rounds = 4;    ///< coordinate-descent rounds (> exhaustive size)
};

/// Result of the search.
struct AlignmentResult {
  double delay_noise = 0.0;          ///< best found (ns)
  std::vector<double> starts;        ///< chosen pulse start per aggressor
};

/// Finds the aggressor alignment maximizing the delay noise on a rising
/// victim ramp with the given t50/transition. Exhaustive on the grid for up
/// to max_exhaustive aggressors; greedy coordinate descent (seeded at the
/// late edges) beyond that, which is a lower bound on the true optimum.
AlignmentResult worst_alignment(const std::vector<AlignedAggressor>& aggressors,
                                double victim_t50, double victim_trans,
                                double vdd, const AlignmentOptions& options = {});

/// Delay noise for one explicit alignment (pulse start per aggressor).
double delay_noise_at_alignment(const std::vector<AlignedAggressor>& aggressors,
                                const std::vector<double>& starts,
                                double victim_t50, double victim_trans,
                                double vdd);

}  // namespace tka::noise
