#include "noise/violations.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::noise {

ConstraintReport check_constraints(const net::Netlist& nl,
                                   const noise::NoiseReport& report,
                                   double clock_period_ns) {
  TKA_ASSERT(clock_period_ns > 0.0);
  ConstraintReport out;
  out.clock_period_ns = clock_period_ns;
  out.worst_slack_ns = std::numeric_limits<double>::infinity();

  std::vector<net::NetId> endpoints = nl.primary_outputs();
  if (endpoints.empty()) {
    // Unconstrained design: treat every dangling net as an endpoint.
    for (net::NetId n = 0; n < nl.num_nets(); ++n) {
      if (nl.net(n).fanouts.empty()) endpoints.push_back(n);
    }
  }
  for (net::NetId ep : endpoints) {
    const double arrival = report.noisy_windows[ep].lat;
    const double slack = clock_period_ns - arrival;
    out.worst_slack_ns = std::min(out.worst_slack_ns, slack);
    if (slack < 0.0) {
      out.violations.push_back({ep, arrival, slack});
      out.total_negative_slack_ns += slack;
    }
  }
  std::sort(out.violations.begin(), out.violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.slack_ns < b.slack_ns;
            });
  return out;
}

double suggest_stress_period(const noise::NoiseReport& report, double margin_frac) {
  TKA_ASSERT(margin_frac >= 0.0);
  // Between the noiseless and noisy delays, biased toward the noiseless
  // side by the margin: the design passes without noise and fails with it.
  // When the noise is smaller than the requested margin, fall back to the
  // midpoint so the property (noiseless < period < noisy) still holds.
  const double lo = report.noiseless_delay;
  const double hi = report.noisy_delay;
  const double margined = lo * (1.0 + margin_frac);
  if (margined >= hi) return 0.5 * (lo + hi);
  return margined + 0.25 * (hi - margined);
}

}  // namespace tka::noise
