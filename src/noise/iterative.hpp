// Iterative delay-noise / timing-window fixpoint (paper §1, refs [3],[4]).
//
// Delay noise widens timing windows downstream, which can create new
// aggressor-victim overlaps, which adds more delay noise: the classic
// chicken-and-egg. Iterate STA(with noise bumps) -> per-victim delay noise
// -> new bumps until the bumps stop changing. The optimistic start (no
// overlap assumed, bumps = 0) converges monotonically upward to the least
// fixpoint; the pessimistic start (infinite-window upper bounds) converges
// downward (refs [3],[4] prove convergence on the window lattice).
#pragma once

#include "noise/noise_analyzer.hpp"
#include "sta/analyzer.hpp"

namespace tka::noise {

/// Controls for the fixpoint iteration.
struct IterativeOptions {
  int max_iterations = 25;
  double tolerance_ns = 1e-4;      ///< max |bump change| for convergence
  bool pessimistic_start = false;  ///< start from upper-bound bumps
  /// Worker threads for the per-victim relaxation sweep. 0 = resolve from
  /// TKA_THREADS / hardware concurrency (runtime/runtime.hpp); 1 = serial.
  /// Every victim writes its own slot and the convergence reduction runs
  /// on the calling thread, so results are identical for any count.
  int threads = 0;
  sta::StaOptions sta;             ///< input arrivals etc.
};

/// Result of a full noise-aware timing analysis.
struct NoiseReport {
  sta::WindowTable noiseless_windows;  ///< plain STA windows
  sta::WindowTable noisy_windows;      ///< windows at the fixpoint
  std::vector<double> delay_noise;     ///< per-net noise bump at fixpoint
  double noiseless_delay = 0.0;        ///< circuit delay without noise
  double noisy_delay = 0.0;            ///< circuit delay with noise
  net::NetId worst_po = net::kInvalidNet;
  int iterations = 0;
  bool converged = false;
};

/// Everything needed to *replay* one fixpoint run incrementally: the bump
/// vector and window table of every STA evaluation, in order. Entry t holds
/// bumps[t] and windows[t] == run_sta(bumps[t]).windows; the last entry is
/// the final (post-convergence) evaluation, duplicated in `final_sta` with
/// its gate tables. Recorded by analyze_iterative on request and consumed
/// by IncrementalFixpoint (noise/incremental_fixpoint.hpp).
struct FixpointTrajectory {
  sta::StaResult base;                        ///< the noiseless STA
  std::vector<std::vector<double>> bumps;     ///< per-iteration bump vectors
  std::vector<sta::WindowTable> windows;      ///< run_sta(bumps[t]).windows
  sta::StaResult final_sta;                   ///< the last evaluation, full
};

/// Runs the fixpoint with the given coupling mask.
NoiseReport analyze_iterative(const net::Netlist& nl, const layout::Parasitics& par,
                              const sta::DelayModel& model,
                              const CouplingCalculator& calc,
                              const CouplingMask& mask,
                              const IterativeOptions& options = {});

/// Same, additionally recording the run's trajectory into `*trajectory`
/// (previous contents are discarded). Recording only copies vectors the
/// run computes anyway, so the report — and every obs counter — is
/// identical to the non-recording overload.
NoiseReport analyze_iterative(const net::Netlist& nl, const layout::Parasitics& par,
                              const sta::DelayModel& model,
                              const CouplingCalculator& calc,
                              const CouplingMask& mask,
                              const IterativeOptions& options,
                              FixpointTrajectory* trajectory);

}  // namespace tka::noise
