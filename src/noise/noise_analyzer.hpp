// Per-victim delay-noise computation: worst-case alignment by trapezoidal-
// envelope superposition (paper §2).
//
// All victim transitions are analyzed as rising ramps with t50 = LAT; the
// linear framework is polarity-symmetric, so the rising case covers both.
// The noisy waveform is victim(t) - combined_envelope(t); its final 50%-Vdd
// crossing is the noisy t50, and the delay noise is the t50 shift. Per the
// paper (§3.1), superposition stays valid even when the noise exceeds the
// victim slew.
#pragma once

#include <cstddef>

#include "noise/envelope_builder.hpp"
#include "wave/envelope.hpp"
#include "wave/ramp.hpp"

namespace tka::noise {

/// Which coupling caps participate in the analysis. Zeroed caps are always
/// excluded regardless of the mask.
class CouplingMask {
 public:
  /// All caps active.
  static CouplingMask all(size_t num_caps) { return CouplingMask(num_caps, true); }
  /// No caps active.
  static CouplingMask none(size_t num_caps) { return CouplingMask(num_caps, false); }

  void set(layout::CapId id, bool active) { active_.at(id) = active; }
  bool active(layout::CapId id) const { return active_.at(id) != 0; }
  size_t size() const { return active_.size(); }

  /// Number of active caps.
  size_t count() const;

 private:
  CouplingMask(size_t n, bool v) : active_(n, v ? 1 : 0) {}
  std::vector<char> active_;
};

/// Victim transition waveform for a window: rising ramp, t50 = LAT.
wave::Pwl victim_transition(const sta::TimingWindow& window, double vdd);

/// Delay noise of `envelope` superimposed on `victim_wave` whose noiseless
/// t50 is `noiseless_t50`. Non-negative.
double delay_noise(const wave::Pwl& victim_wave, const wave::Pwl& envelope,
                   double vdd, double noiseless_t50);

/// Signed t50 shift of the superposition. Negative values arise when the
/// envelope has negative parts (e.g. elimination-mode residuals T - env_S,
/// where removing a pseudo aggressor moves the transition *earlier* than
/// the reference). delay_noise() is max(0, delay_shift()).
double delay_shift(const wave::Pwl& victim_wave, const wave::Pwl& envelope,
                   double vdd, double noiseless_t50);

/// Stateless per-victim noise queries over an EnvelopeBuilder.
class NoiseAnalyzer {
 public:
  NoiseAnalyzer(const net::Netlist& nl, const layout::Parasitics& par,
                const sta::DelayModel& model)
      : nl_(&nl), par_(&par), model_(&model) {}

  /// Combined envelope of the victim's active couplings.
  wave::Pwl combined_envelope(net::NetId victim, EnvelopeBuilder& builder,
                              const CouplingMask& mask) const;

  /// Worst-case delay noise on the victim from its active couplings
  /// (primary aggressors only; propagation is the iterative engine's job).
  double victim_delay_noise(net::NetId victim, EnvelopeBuilder& builder,
                            const CouplingMask& mask) const;

  /// Same, but with the victim transition anchored at an explicit t50
  /// instead of the window's LAT. The iterative fixpoint uses this to keep
  /// a net's own noise bump out of its own alignment (a victim must not
  /// "escape" its own noise — that feedback creates limit cycles).
  double victim_delay_noise_at(net::NetId victim, EnvelopeBuilder& builder,
                               const CouplingMask& mask, double t50) const;

  /// Upper bound on the victim's delay noise: all active aggressors given
  /// infinite timing windows (plateau envelopes across the victim's
  /// switching region). Closes the dominance interval (paper §3.2).
  double delay_noise_upper_bound(net::NetId victim, EnvelopeBuilder& builder,
                                 const CouplingMask& mask) const;

  /// Dominance interval for the victim: [noiseless t50, t50 + upper bound].
  wave::DominanceInterval dominance_interval(net::NetId victim,
                                             EnvelopeBuilder& builder,
                                             const CouplingMask& mask) const;

  double vdd() const { return model_->options().vdd; }

 private:
  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  const sta::DelayModel* model_;
};

}  // namespace tka::noise
