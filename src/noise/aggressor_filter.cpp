#include "noise/aggressor_filter.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace tka::noise {

AggressorFilter::AggressorFilter(const net::Netlist& nl, const layout::Parasitics& par,
                                 const NoiseAnalyzer& analyzer,
                                 EnvelopeBuilder& builder, const FilterOptions& opt)
    : nl_(&nl), par_(&par), opt_(opt), false_side_(2 * par.num_couplings(), 0) {
  obs::ScopedSpan span("noise.filter");
  Tally tally;

  if (opt_.functional) {
    toggles_ = std::make_unique<net::ToggleProfile>(net::profile_toggles(
        nl, opt_.functional_events, opt_.functional_seed));
  }
  // Dominance interval per victim net is computed lazily (many nets have no
  // couplings at all).
  std::vector<char> have_iv(nl.num_nets(), 0);
  std::vector<wave::DominanceInterval> iv(nl.num_nets());

  for (layout::CapId id = 0; id < par.num_couplings(); ++id) {
    const layout::CouplingCap& cc = par.coupling(id);
    for (const net::NetId victim : {cc.net_a, cc.net_b}) {
      if (side_is_false(victim, id, analyzer, builder, have_iv, iv, &tally)) {
        false_side_[side_index(victim, id)] = 1;
        ++num_filtered_;
      }
    }
  }
  obs::registry().counter("noise.filter_false_sides").add(num_filtered_);
  if (log::enabled(log::Level::kDebug)) {
    log::debug() << "filter: " << num_filtered_ << " of "
                 << 2 * par.num_couplings() << " victim-cap sides false ("
                 << tally.zero_cap << " zero-cap, " << tally.peak
                 << " low-peak, " << tally.toggle << " no-toggle, "
                 << tally.window << " outside-window)";
  }
}

bool AggressorFilter::side_is_false(net::NetId victim, layout::CapId id,
                                    const NoiseAnalyzer& analyzer,
                                    EnvelopeBuilder& builder,
                                    std::vector<char>& have_iv,
                                    std::vector<wave::DominanceInterval>& iv,
                                    Tally* tally) const {
  const layout::CouplingCap& cc = par_->coupling(id);
  const bool debug = log::enabled(log::Level::kDebug);
  if (cc.cap_pf <= 0.0) {
    ++tally->zero_cap;
    return true;
  }
  const wave::PulseShape shape = builder.pulse_shape(victim, id);
  if (shape.peak < opt_.min_peak_v) {
    ++tally->peak;
    if (debug) {
      log::debug() << "filter: cap " << id << " false for victim "
                   << nl_->net(victim).name << " (peak " << shape.peak
                   << " V < " << opt_.min_peak_v << " V)";
    }
    return true;
  }
  if (toggles_ != nullptr && !toggles_->both_toggled(victim, cc.other(victim))) {
    ++tally->toggle;
    if (debug) {
      log::debug() << "filter: cap " << id << " false for victim "
                   << nl_->net(victim).name << " (no functional toggle overlap)";
    }
    return true;
  }
  if (!have_iv[victim]) {
    const CouplingMask all = CouplingMask::all(par_->num_couplings());
    iv[victim] = analyzer.dominance_interval(victim, builder, all);
    iv[victim].lo -= opt_.window_margin_ns;
    iv[victim].hi += opt_.window_margin_ns;
    have_iv[victim] = 1;
  }
  const wave::Pwl& env = builder.envelope(victim, id);
  // Zero inside the interval <=> the zero waveform encapsulates it there.
  if (env.empty() ||
      wave::Pwl::zero().encapsulates(env, iv[victim].lo, iv[victim].hi, 1e-12)) {
    ++tally->window;
    if (debug) {
      log::debug() << "filter: cap " << id << " false for victim "
                   << nl_->net(victim).name
                   << " (envelope outside the dominance interval)";
    }
    return true;
  }
  return false;
}

void AggressorFilter::refresh(std::span<const net::NetId> nets,
                              const NoiseAnalyzer& analyzer,
                              EnvelopeBuilder& builder) {
  obs::ScopedSpan span("noise.filter_refresh");
  static obs::Counter& c_sides =
      obs::registry().counter("noise.filter_refreshed_sides");
  // Collect the affected sides, deduplicated and in ascending side order.
  std::vector<size_t> sides;
  for (net::NetId n : nets) {
    for (layout::CapId id : par_->couplings_of(n)) {
      sides.push_back(side_index(n, id));
      sides.push_back(side_index(par_->coupling(id).other(n), id));
    }
  }
  std::sort(sides.begin(), sides.end());
  sides.erase(std::unique(sides.begin(), sides.end()), sides.end());
  c_sides.add(sides.size());

  Tally tally;
  std::vector<char> have_iv(nl_->num_nets(), 0);
  std::vector<wave::DominanceInterval> iv(nl_->num_nets());
  for (size_t side : sides) {
    const layout::CapId id = static_cast<layout::CapId>(side / 2);
    const layout::CouplingCap& cc = par_->coupling(id);
    const net::NetId victim = (side % 2 == 0) ? cc.net_a : cc.net_b;
    const char now = side_is_false(victim, id, analyzer, builder, have_iv, iv,
                                   &tally)
                         ? 1
                         : 0;
    if (now != false_side_[side]) {
      if (now != 0) {
        ++num_filtered_;
      } else {
        --num_filtered_;
      }
      false_side_[side] = now;
    }
  }
}

size_t AggressorFilter::side_index(net::NetId victim, layout::CapId cap) const {
  const layout::CouplingCap& cc = par_->coupling(cap);
  TKA_ASSERT(victim == cc.net_a || victim == cc.net_b);
  return 2 * static_cast<size_t>(cap) + (victim == cc.net_b ? 1 : 0);
}

bool AggressorFilter::is_false(net::NetId victim, layout::CapId cap) const {
  return false_side_[side_index(victim, cap)] != 0;
}

}  // namespace tka::noise
