#include "noise/aggressor_filter.hpp"

#include <memory>

#include "net/logic_sim.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace tka::noise {

AggressorFilter::AggressorFilter(const net::Netlist& nl, const layout::Parasitics& par,
                                 const NoiseAnalyzer& analyzer,
                                 EnvelopeBuilder& builder, const FilterOptions& opt)
    : par_(&par), false_side_(2 * par.num_couplings(), 0) {
  const CouplingMask all = CouplingMask::all(par.num_couplings());
  obs::ScopedSpan span("noise.filter");
  size_t by_zero_cap = 0, by_peak = 0, by_toggle = 0, by_window = 0;
  const bool debug = log::enabled(log::Level::kDebug);

  std::unique_ptr<net::ToggleProfile> toggles;
  if (opt.functional) {
    toggles = std::make_unique<net::ToggleProfile>(net::profile_toggles(
        nl, opt.functional_events, opt.functional_seed));
  }
  // Dominance interval per victim net is computed lazily (many nets have no
  // couplings at all).
  std::vector<char> have_iv(nl.num_nets(), 0);
  std::vector<wave::DominanceInterval> iv(nl.num_nets());

  for (layout::CapId id = 0; id < par.num_couplings(); ++id) {
    const layout::CouplingCap& cc = par.coupling(id);
    for (const net::NetId victim : {cc.net_a, cc.net_b}) {
      const size_t side = side_index(victim, id);
      if (cc.cap_pf <= 0.0) {
        false_side_[side] = 1;
        ++num_filtered_;
        ++by_zero_cap;
        continue;
      }
      const wave::PulseShape shape = builder.pulse_shape(victim, id);
      if (shape.peak < opt.min_peak_v) {
        false_side_[side] = 1;
        ++num_filtered_;
        ++by_peak;
        if (debug) {
          log::debug() << "filter: cap " << id << " false for victim "
                       << nl.net(victim).name << " (peak " << shape.peak
                       << " V < " << opt.min_peak_v << " V)";
        }
        continue;
      }
      if (toggles != nullptr &&
          !toggles->both_toggled(victim, cc.other(victim))) {
        false_side_[side] = 1;
        ++num_filtered_;
        ++by_toggle;
        if (debug) {
          log::debug() << "filter: cap " << id << " false for victim "
                       << nl.net(victim).name << " (no functional toggle overlap)";
        }
        continue;
      }
      if (!have_iv[victim]) {
        iv[victim] = analyzer.dominance_interval(victim, builder, all);
        iv[victim].lo -= opt.window_margin_ns;
        iv[victim].hi += opt.window_margin_ns;
        have_iv[victim] = 1;
      }
      const wave::Pwl& env = builder.envelope(victim, id);
      // Zero inside the interval <=> the zero waveform encapsulates it there.
      if (env.empty() ||
          wave::Pwl::zero().encapsulates(env, iv[victim].lo, iv[victim].hi, 1e-12)) {
        false_side_[side] = 1;
        ++num_filtered_;
        ++by_window;
        if (debug) {
          log::debug() << "filter: cap " << id << " false for victim "
                       << nl.net(victim).name
                       << " (envelope outside the dominance interval)";
        }
      }
    }
  }
  obs::registry().counter("noise.filter_false_sides").add(num_filtered_);
  if (log::enabled(log::Level::kDebug)) {
    log::debug() << "filter: " << num_filtered_ << " of "
                 << 2 * par.num_couplings() << " victim-cap sides false ("
                 << by_zero_cap << " zero-cap, " << by_peak << " low-peak, "
                 << by_toggle << " no-toggle, " << by_window
                 << " outside-window)";
  }
}

size_t AggressorFilter::side_index(net::NetId victim, layout::CapId cap) const {
  const layout::CouplingCap& cc = par_->coupling(cap);
  TKA_ASSERT(victim == cc.net_a || victim == cc.net_b);
  return 2 * static_cast<size_t>(cap) + (victim == cc.net_b ? 1 : 0);
}

bool AggressorFilter::is_false(net::NetId victim, layout::CapId cap) const {
  return false_side_[side_index(victim, cap)] != 0;
}

}  // namespace tka::noise
