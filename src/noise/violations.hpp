// Timing constraints and noise violations.
//
// The paper's goal statement (§2) is "optimally minimizing the noise
// violations in a design": a violation is an endpoint whose noisy arrival
// breaks its setup constraint. This module evaluates a clock-period
// constraint over a noise report, listing violating endpoints and their
// negative slack, and quantifies how many violations a candidate top-k fix
// actually clears.
#pragma once

#include <vector>

#include "noise/iterative.hpp"

namespace tka::noise {

/// One failing endpoint.
struct Violation {
  net::NetId endpoint = net::kInvalidNet;
  double arrival_ns = 0.0;
  double slack_ns = 0.0;  ///< negative
};

/// Setup-check summary at a clock period.
struct ConstraintReport {
  double clock_period_ns = 0.0;
  std::vector<Violation> violations;      ///< sorted worst-first
  double worst_slack_ns = 0.0;            ///< min over endpoints (can be +)
  double total_negative_slack_ns = 0.0;   ///< sum of negative slacks (<= 0)
};

/// Checks every primary output's *noisy* arrival against `clock_period`.
ConstraintReport check_constraints(const net::Netlist& nl,
                                   const noise::NoiseReport& report,
                                   double clock_period_ns);

/// Suggests a clock period that makes the noiseless design pass with
/// `margin_frac` headroom but the noisy one fail — the operating point
/// where the paper's mitigation loop matters.
double suggest_stress_period(const noise::NoiseReport& report,
                             double margin_frac = 0.05);

}  // namespace tka::noise
