#include "noise/coupling_calc.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/coupled_rc.hpp"
#include "util/assert.hpp"

namespace tka::noise {

wave::PulseShape AnalyticCouplingCalculator::pulse(net::NetId victim,
                                                   layout::CapId cap,
                                                   double agg_trans_ns) const {
  const layout::CouplingCap& cc = par_->coupling(cap);
  TKA_ASSERT(victim == cc.net_a || victim == cc.net_b);
  wave::PulseShape shape;
  if (cc.cap_pf <= 0.0) return shape;  // zeroed (fixed) coupling

  const double rv = model_->driver_res_kohm(victim);
  // Victim load as seen by the noise event; net_load_pf already includes
  // the coupling caps via the Miller factor, which is what we want here.
  const double cv = model_->net_load_pf(victim);
  const double tr = std::max(agg_trans_ns, 1e-4);
  const double tau = rv * (cv + cc.cap_pf);
  const double vdd = model_->options().vdd;

  shape.peak = vdd * (rv * cc.cap_pf / tr) * (1.0 - std::exp(-tr / tau));
  shape.rise = tr;
  shape.tau = std::max(tau, 1e-4);
  return shape;
}

wave::PulseShape SimCouplingCalculator::pulse(net::NetId victim,
                                              layout::CapId cap,
                                              double agg_trans_ns) const {
  const layout::CouplingCap& cc = par_->coupling(cap);
  TKA_ASSERT(victim == cc.net_a || victim == cc.net_b);
  wave::PulseShape zero;
  if (cc.cap_pf <= 0.0) return zero;

  const net::NetId aggressor = cc.other(victim);
  circuit::CoupledRcParams p;
  p.rv = model_->driver_res_kohm(victim);
  p.ra = model_->driver_res_kohm(aggressor);
  // Split each net's ground-side load across the pi template.
  const double cv = std::max(model_->net_load_pf(victim) - cc.cap_pf, 1e-5);
  const double ca = std::max(model_->net_load_pf(aggressor) - cc.cap_pf, 1e-5);
  p.c1v = 0.5 * cv;
  p.c2v = 0.5 * cv;
  p.c1a = 0.5 * ca;
  p.c2a = 0.5 * ca;
  p.cc = cc.cap_pf;
  p.vdd = model_->options().vdd;
  p.agg_trans = std::max(agg_trans_ns, 1e-4);
  return circuit::characterize_noise_pulse(p);
}

}  // namespace tka::noise
