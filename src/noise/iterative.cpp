#include "noise/iterative.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "runtime/task_graph.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace tka::noise {

NoiseReport analyze_iterative(const net::Netlist& nl, const layout::Parasitics& par,
                              const sta::DelayModel& model,
                              const CouplingCalculator& calc,
                              const CouplingMask& mask,
                              const IterativeOptions& opt) {
  return analyze_iterative(nl, par, model, calc, mask, opt, nullptr);
}

NoiseReport analyze_iterative(const net::Netlist& nl, const layout::Parasitics& par,
                              const sta::DelayModel& model,
                              const CouplingCalculator& calc,
                              const CouplingMask& mask,
                              const IterativeOptions& opt,
                              FixpointTrajectory* trajectory) {
  TKA_ASSERT(mask.size() == par.num_couplings());
  obs::ScopedSpan span("noise.fixpoint");
  static obs::Counter& c_runs = obs::registry().counter("noise.fixpoint_runs");
  static obs::Counter& c_iters =
      obs::registry().counter("noise.fixpoint_iterations");
  static obs::Counter& c_nonconv =
      obs::registry().counter("noise.fixpoint_nonconverged");
  static obs::Histogram& h_iters =
      obs::registry().histogram("noise.fixpoint_iters", 1.0, 64.0);
  c_runs.add(1);
  if (trajectory != nullptr) *trajectory = FixpointTrajectory{};

  NoiseReport report;
  NoiseAnalyzer analyzer(nl, par, model);

  const sta::StaResult base = sta::run_sta(nl, model, opt.sta);
  report.noiseless_windows = base.windows;
  report.noiseless_delay = base.max_lat;
  if (trajectory != nullptr) trajectory->base = base;

  // Convergence is judged relative to the circuit scale: demanding
  // sub-femtosecond stability on a long unbuffered path just burns
  // iterations on noise-floor creep.
  const double tol = std::max(opt.tolerance_ns, 1e-5 * std::abs(base.max_lat));

  std::vector<double> bump(nl.num_nets(), 0.0);
  if (opt.pessimistic_start) {
    EnvelopeBuilder builder(nl, par, calc, base.windows);
    // Work-stealing chunks: upper-bound costs vary wildly per victim
    // (coupling counts differ by orders of magnitude), which static chunks
    // serialize on the unluckiest lane. Per-index slots + no reduction, so
    // the dynamic schedule cannot change the result.
    runtime::parallel_for_dynamic(
        opt.threads, 0, nl.num_nets(), [&](std::size_t v) {
          bump[v] = analyzer.delay_noise_upper_bound(v, builder, mask);
        });
  }

  sta::StaResult current = base;
  bool converged = false;
  int iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    obs::ScopedSpan iter_span("noise.iteration");
    if (iter_span.recording()) {
      iter_span.arg("iter", static_cast<std::int64_t>(iter));
    }
    current = sta::run_sta(nl, model, opt.sta, &bump);
    if (trajectory != nullptr) {
      trajectory->bumps.push_back(bump);
      trajectory->windows.push_back(current.windows);
    }
    EnvelopeBuilder builder(nl, par, calc, current.windows);
    std::vector<double> next(nl.num_nets(), 0.0);
    // The relaxation sweep: every victim's new bump depends only on the
    // frozen `current` windows and `bump` of this iteration, so victims
    // are embarrassingly parallel; each writes its own slot.
    runtime::parallel_for_dynamic(
        opt.threads, 0, nl.num_nets(), [&](std::size_t v) {
          // Anchor each victim at its upstream-noisy arrival *excluding its
          // own bump*: a net cannot dodge its own delay noise, and letting
          // it do so creates limit cycles on strongly coupled designs.
          const double t50 = current.windows[v].lat - bump[v];
          next[v] = analyzer.victim_delay_noise_at(v, builder, mask, t50);
        });
    // Convergence reduction on the calling thread, in index order.
    double max_change = 0.0;
    for (net::NetId v = 0; v < nl.num_nets(); ++v) {
      max_change = std::max(max_change, std::abs(next[v] - bump[v]));
    }
    bump = std::move(next);
    if (max_change < tol) {
      converged = true;
      ++iter;
      break;
    }
  }
  c_iters.add(static_cast<std::uint64_t>(iter));
  h_iters.observe(static_cast<double>(iter));
  if (!converged) {
    c_nonconv.add(1);
    log::warn() << "analyze_iterative: no convergence after " << opt.max_iterations
                << " iterations (tol " << tol << " ns)";
  } else if (log::enabled(log::Level::kDebug)) {
    log::debug() << "analyze_iterative: converged after " << iter
                 << " iteration(s), tol " << tol << " ns";
  }

  const sta::StaResult final_sta = sta::run_sta(nl, model, opt.sta, &bump);
  if (trajectory != nullptr) {
    trajectory->bumps.push_back(bump);
    trajectory->windows.push_back(final_sta.windows);
    trajectory->final_sta = final_sta;
  }
  report.noisy_windows = final_sta.windows;
  report.delay_noise = std::move(bump);
  report.noisy_delay = final_sta.max_lat;
  report.worst_po = final_sta.worst_po;
  report.iterations = iter;
  report.converged = converged;
  return report;
}

}  // namespace tka::noise
