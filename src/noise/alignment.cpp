#include "noise/alignment.hpp"

#include <algorithm>

#include "noise/noise_analyzer.hpp"
#include "util/assert.hpp"
#include "wave/ramp.hpp"

namespace tka::noise {

double delay_noise_at_alignment(const std::vector<AlignedAggressor>& aggressors,
                                const std::vector<double>& starts,
                                double victim_t50, double victim_trans,
                                double vdd) {
  TKA_ASSERT(starts.size() == aggressors.size());
  std::vector<wave::Pwl> pulses;
  pulses.reserve(aggressors.size());
  std::vector<const wave::Pwl*> terms;
  for (size_t i = 0; i < aggressors.size(); ++i) {
    pulses.push_back(wave::make_pulse(aggressors[i].shape, starts[i]));
    if (!pulses.back().empty()) terms.push_back(&pulses.back());
  }
  const wave::Pwl combined = wave::Pwl::sum(terms);
  const wave::Pwl vic = wave::make_rising_ramp(victim_t50, victim_trans, vdd);
  return delay_noise(vic, combined, vdd, victim_t50);
}

namespace {

// Candidate start times for one aggressor: a uniform grid over its window.
std::vector<double> window_grid(const AlignedAggressor& a, int points) {
  TKA_ASSERT(a.start_max >= a.start_min);
  std::vector<double> grid;
  if (a.start_max - a.start_min < 1e-12 || points <= 1) {
    grid.push_back(a.start_min);
    return grid;
  }
  grid.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    grid.push_back(a.start_min +
                   (a.start_max - a.start_min) * i / (points - 1));
  }
  return grid;
}

}  // namespace

AlignmentResult worst_alignment(const std::vector<AlignedAggressor>& aggressors,
                                double victim_t50, double victim_trans,
                                double vdd, const AlignmentOptions& opt) {
  AlignmentResult best;
  if (aggressors.empty()) return best;

  std::vector<std::vector<double>> grids;
  grids.reserve(aggressors.size());
  for (const AlignedAggressor& a : aggressors) {
    grids.push_back(window_grid(a, opt.grid_points));
  }

  auto evaluate = [&](const std::vector<double>& starts) {
    const double dn = delay_noise_at_alignment(aggressors, starts, victim_t50,
                                               victim_trans, vdd);
    if (dn > best.delay_noise || best.starts.empty()) {
      best.delay_noise = dn;
      best.starts = starts;
    }
  };

  if (aggressors.size() <= static_cast<size_t>(opt.max_exhaustive)) {
    // Full grid product.
    std::vector<size_t> idx(aggressors.size(), 0);
    std::vector<double> starts(aggressors.size());
    for (;;) {
      for (size_t i = 0; i < idx.size(); ++i) starts[i] = grids[i][idx[i]];
      evaluate(starts);
      size_t pos = 0;
      while (pos < idx.size() && ++idx[pos] == grids[pos].size()) {
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) break;
    }
    return best;
  }

  // Coordinate descent from the late edge (the usual worst case: every
  // pulse as close to the victim transition as its window allows).
  std::vector<double> starts;
  starts.reserve(aggressors.size());
  for (const AlignedAggressor& a : aggressors) starts.push_back(a.start_max);
  evaluate(starts);
  for (int round = 0; round < opt.refine_rounds; ++round) {
    bool improved = false;
    for (size_t i = 0; i < aggressors.size(); ++i) {
      double local_best = best.delay_noise;
      double local_start = best.starts[i];
      std::vector<double> trial = best.starts;
      for (double s : grids[i]) {
        trial[i] = s;
        const double dn = delay_noise_at_alignment(aggressors, trial, victim_t50,
                                                   victim_trans, vdd);
        if (dn > local_best) {
          local_best = dn;
          local_start = s;
          improved = true;
        }
      }
      best.starts[i] = local_start;
      best.delay_noise = local_best;
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace tka::noise
