// Functional (glitch) noise analysis — the companion of delay noise in a
// static noise tool (paper refs [1],[2],[12]).
//
// Here the victim is *quiet*: coupled noise produces a voltage glitch that,
// if it exceeds the receiving gate's noise margin, can propagate and flip
// downstream logic. The analysis computes each net's worst glitch peak
// (combined plateau envelopes, i.e. no timing-window credit — the standard
// conservative functional-noise model), propagates glitches through
// receivers with a piecewise-linear gain model, and reports violations
// against a noise-margin threshold.
#pragma once

#include <vector>

#include "noise/envelope_builder.hpp"
#include "noise/noise_analyzer.hpp"

namespace tka::noise {

/// Receiver sensitivity model: a glitch below `threshold_frac * Vdd` at a
/// gate input produces nothing; above it, the output glitch grows with
/// `gain` (clamped at Vdd). This is the classic unity-gain-point style
/// noise-rejection curve, linearized.
struct GlitchModelOptions {
  double threshold_frac = 0.35;  ///< receiver noise margin (fraction of Vdd)
  double gain = 2.0;             ///< amplification past the threshold
  double fail_frac = 0.45;       ///< report nets whose glitch exceeds this
};

/// Per-net glitch results.
struct GlitchReport {
  std::vector<double> coupled_peak_v;     ///< direct coupled glitch per net
  std::vector<double> propagated_peak_v;  ///< including upstream propagation
  std::vector<net::NetId> failing_nets;   ///< propagated peak > fail level
  double worst_peak_v = 0.0;
  net::NetId worst_net = net::kInvalidNet;
};

/// Runs functional noise analysis over every net. `builder` supplies the
/// coupling pulse shapes (its windows are only used for aggressor slews).
GlitchReport analyze_glitch(const net::Netlist& nl, const layout::Parasitics& par,
                            const sta::DelayModel& model, EnvelopeBuilder& builder,
                            const CouplingMask& mask,
                            const GlitchModelOptions& options = {});

}  // namespace tka::noise
