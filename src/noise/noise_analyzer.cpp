#include "noise/noise_analyzer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::noise {

size_t CouplingMask::count() const {
  size_t n = 0;
  for (char c : active_) n += (c != 0);
  return n;
}

wave::Pwl victim_transition(const sta::TimingWindow& window, double vdd) {
  return wave::make_rising_ramp(window.lat, std::max(window.trans_late, 1e-4), vdd);
}

double delay_shift(const wave::Pwl& victim_wave, const wave::Pwl& envelope,
                   double vdd, double noiseless_t50) {
  if (envelope.empty()) return 0.0;
  const wave::Pwl noisy = victim_wave.minus(envelope);
  const std::optional<double> t50 = noisy.last_time_at_or_below(0.5 * vdd);
  if (!t50.has_value()) return 0.0;  // waveform never recovers; treat as no info
  return *t50 - noiseless_t50;
}

double delay_noise(const wave::Pwl& victim_wave, const wave::Pwl& envelope,
                   double vdd, double noiseless_t50) {
  return std::max(0.0, delay_shift(victim_wave, envelope, vdd, noiseless_t50));
}

wave::Pwl NoiseAnalyzer::combined_envelope(net::NetId victim, EnvelopeBuilder& builder,
                                           const CouplingMask& mask) const {
  std::vector<const wave::Pwl*> terms;
  for (layout::CapId id : par_->couplings_of(victim)) {
    if (!mask.active(id)) continue;
    const wave::Pwl& env = builder.envelope(victim, id);
    if (!env.empty()) terms.push_back(&env);
  }
  return wave::Pwl::sum(terms);
}

double NoiseAnalyzer::victim_delay_noise(net::NetId victim, EnvelopeBuilder& builder,
                                         const CouplingMask& mask) const {
  return victim_delay_noise_at(victim, builder, mask,
                               builder.windows()[victim].lat);
}

double NoiseAnalyzer::victim_delay_noise_at(net::NetId victim,
                                            EnvelopeBuilder& builder,
                                            const CouplingMask& mask,
                                            double t50) const {
  const sta::TimingWindow& w = builder.windows()[victim];
  const wave::Pwl env = combined_envelope(victim, builder, mask);
  if (env.empty()) return 0.0;
  const wave::Pwl vic =
      wave::make_rising_ramp(t50, std::max(w.trans_late, 1e-4), vdd());
  return delay_noise(vic, env, vdd(), t50);
}

double NoiseAnalyzer::delay_noise_upper_bound(net::NetId victim,
                                              EnvelopeBuilder& builder,
                                              const CouplingMask& mask) const {
  const sta::TimingWindow& w = builder.windows()[victim];
  // Plateau span: the victim's whole switching region plus the worst-case
  // sum of pulse tails. A generous but finite span keeps the bound tight
  // enough to be useful while provably covering any alignment.
  double peak_sum = 0.0;
  double max_tail = 0.0;
  for (layout::CapId id : par_->couplings_of(victim)) {
    if (!mask.active(id)) continue;
    const wave::PulseShape s = builder.pulse_shape(victim, id);
    peak_sum += s.peak;
    max_tail = std::max(max_tail, wave::pulse_width(s));
  }
  if (peak_sum <= 0.0) return 0.0;

  const double t_lo = w.lat - 0.5 * w.trans_late;
  // The t50 shift of a rising ramp of transition T under a constant
  // depression of height H is bounded by T*H/Vdd plus the time the
  // depression persists past the ramp; a plateau of total height peak_sum
  // held across [t_lo, t_hi] realizes the worst case.
  const double t_hi = w.lat + w.trans_late * (peak_sum / vdd()) + max_tail;

  std::vector<wave::Pwl> plateaus;
  std::vector<const wave::Pwl*> terms;
  for (layout::CapId id : par_->couplings_of(victim)) {
    if (!mask.active(id)) continue;
    plateaus.push_back(builder.plateau_envelope(victim, id, t_lo, t_hi));
  }
  for (const wave::Pwl& p : plateaus) {
    if (!p.empty()) terms.push_back(&p);
  }
  const wave::Pwl env = wave::Pwl::sum(terms);
  const wave::Pwl vic = victim_transition(w, vdd());
  return delay_noise(vic, env, vdd(), w.lat);
}

wave::DominanceInterval NoiseAnalyzer::dominance_interval(
    net::NetId victim, EnvelopeBuilder& builder, const CouplingMask& mask) const {
  const sta::TimingWindow& w = builder.windows()[victim];
  wave::DominanceInterval iv;
  iv.lo = w.lat;  // noiseless victim t50
  iv.hi = w.lat + delay_noise_upper_bound(victim, builder, mask);
  return iv;
}

}  // namespace tka::noise
