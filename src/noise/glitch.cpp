#include "noise/glitch.hpp"

#include <algorithm>

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::noise {

GlitchReport analyze_glitch(const net::Netlist& nl, const layout::Parasitics& par,
                            const sta::DelayModel& model, EnvelopeBuilder& builder,
                            const CouplingMask& mask,
                            const GlitchModelOptions& opt) {
  TKA_ASSERT(mask.size() == par.num_couplings());
  const double vdd = model.options().vdd;
  GlitchReport report;
  report.coupled_peak_v.assign(nl.num_nets(), 0.0);
  report.propagated_peak_v.assign(nl.num_nets(), 0.0);

  // Direct coupled glitch: conservative functional model sums pulse peaks
  // of all active aggressors (no timing-window credit on a quiet victim).
  for (net::NetId v = 0; v < nl.num_nets(); ++v) {
    double peak = 0.0;
    for (layout::CapId id : par.couplings_of(v)) {
      if (!mask.active(id)) continue;
      peak += builder.pulse_shape(v, id).peak;
    }
    report.coupled_peak_v[v] = std::min(peak, vdd);
  }

  // Propagation in topological order: a receiving gate forwards the part of
  // its worst input glitch above the threshold, amplified, and the result
  // superposes with the output net's own coupled glitch.
  const double threshold = opt.threshold_frac * vdd;
  for (net::NetId v : net::topological_nets(nl)) {
    double peak = report.coupled_peak_v[v];
    const net::Net& n = nl.net(v);
    if (n.driver != net::kInvalidGate) {
      double worst_in = 0.0;
      for (net::NetId in : nl.gate(n.driver).inputs) {
        worst_in = std::max(worst_in, report.propagated_peak_v[in]);
      }
      if (worst_in > threshold) {
        peak += opt.gain * (worst_in - threshold);
      }
    }
    report.propagated_peak_v[v] = std::min(peak, vdd);
    if (report.propagated_peak_v[v] > report.worst_peak_v) {
      report.worst_peak_v = report.propagated_peak_v[v];
      report.worst_net = v;
    }
  }

  const double fail_level = opt.fail_frac * vdd;
  for (net::NetId v = 0; v < nl.num_nets(); ++v) {
    if (report.propagated_peak_v[v] > fail_level) report.failing_nets.push_back(v);
  }
  return report;
}

}  // namespace tka::noise
