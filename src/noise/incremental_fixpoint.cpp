#include "noise/incremental_fixpoint.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "sta/incremental.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace tka::noise {

IncrementalFixpoint::IncrementalFixpoint(const net::Netlist& nl,
                                         const layout::Parasitics& par,
                                         const sta::DelayModel& model,
                                         const CouplingCalculator& calc,
                                         const IterativeOptions& options)
    : nl_(&nl), par_(&par), model_(&model), calc_(&calc), opt_(options) {}

const NoiseReport& IncrementalFixpoint::recompute(const CouplingMask& mask) {
  report_ = analyze_iterative(*nl_, *par_, *model_, *calc_, mask, opt_, &traj_);
  primed_ = true;
  changed_noiseless_.clear();
  changed_noisy_.clear();
  return report_;
}

void IncrementalFixpoint::replay_sta(std::size_t idx,
                                     const std::vector<double>& bump,
                                     std::span<const net::NetId> e_nets,
                                     sta::StaResult* out,
                                     std::vector<char>* win_dirty) {
  const std::size_t num_nets = nl_->num_nets();
  if (idx < traj_.windows.size()) {
    // Adopt the recorded evaluation: its windows under its bumps, plus the
    // gate tables (bump-independent, so any recorded entry's tables fit).
    // The worklist then covers exactly the edit cone plus every net whose
    // bump differs from the recorded vector.
    sta::StaResult seed;
    seed.windows = traj_.windows[idx];
    seed.gate_delay = traj_.final_sta.gate_delay;
    seed.gate_trans = traj_.final_sta.gate_trans;
    sta::IncrementalSta inc(*nl_, *model_, opt_.sta, std::move(seed),
                            traj_.bumps[idx]);
    for (net::NetId n : e_nets) inc.invalidate_net(n);
    for (net::NetId v = 0; v < num_nets; ++v) inc.set_lat_bump(v, bump[v]);
    inc.update();
    win_dirty->assign(num_nets, 0);
    for (net::NetId n : inc.last_changed()) (*win_dirty)[n] = 1;
    *out = inc.result();
  } else {
    // Past the recorded iteration count (the edit changed how the fixpoint
    // converges): fall back to a full evaluation, everything dirty.
    *out = sta::run_sta(*nl_, *model_, opt_.sta, &bump);
    win_dirty->assign(num_nets, 1);
  }
}

const NoiseReport& IncrementalFixpoint::refresh(
    std::span<const net::NetId> dirty_nets,
    std::span<const layout::CapId> dirty_caps, const CouplingMask& mask) {
  TKA_ASSERT(primed_);
  TKA_ASSERT(mask.size() == par_->num_couplings());
  obs::ScopedSpan span("noise.fixpoint_refresh");
  static obs::Counter& c_refreshes =
      obs::registry().counter("noise.fixpoint_refreshes");
  static obs::Counter& c_iters =
      obs::registry().counter("noise.fixpoint_refresh_iterations");
  static obs::Counter& c_victims =
      obs::registry().counter("noise.fixpoint_refresh_victims");
  c_refreshes.add(1);

  const std::size_t num_nets = nl_->num_nets();
  NoiseAnalyzer analyzer(*nl_, *par_, *model_);

  // The edit seeds (for STA invalidation) and their coupled neighborhood
  // (for relaxation redo: a neighbor's pulse or mask participation can
  // change even where no timing window moves).
  std::vector<char> near_e(num_nets, 0);
  std::vector<net::NetId> e_nets;
  auto seed_net = [&](net::NetId n) {
    TKA_ASSERT(n < num_nets);
    if (!near_e[n]) {
      near_e[n] = 1;
      e_nets.push_back(n);
    }
  };
  for (net::NetId n : dirty_nets) seed_net(n);
  for (layout::CapId id : dirty_caps) {
    const layout::CouplingCap& cc = par_->coupling(id);
    seed_net(cc.net_a);
    seed_net(cc.net_b);
  }
  std::sort(e_nets.begin(), e_nets.end());
  for (net::NetId n : e_nets) {
    for (layout::CapId id : par_->couplings_of(n)) {
      near_e[par_->coupling(id).other(n)] = 1;
    }
  }

  // Keep the previous noisy state for the exact change diff at the end.
  sta::WindowTable old_noisy = std::move(report_.noisy_windows);
  std::vector<double> old_dn = std::move(report_.delay_noise);

  FixpointTrajectory nt;

  // Noiseless STA: adopt the recorded base, re-propagate the edit cone.
  {
    sta::IncrementalSta inc(*nl_, *model_, opt_.sta, std::move(traj_.base), {});
    for (net::NetId n : e_nets) inc.invalidate_net(n);
    inc.update();
    changed_noiseless_ = inc.last_changed();
    nt.base = inc.result();
  }
  report_.noiseless_windows = nt.base.windows;
  report_.noiseless_delay = nt.base.max_lat;

  const double tol =
      std::max(opt_.tolerance_ns, 1e-5 * std::abs(nt.base.max_lat));

  // The starting bump vector and its per-net diff vs. the recorded run.
  std::vector<double> bump(num_nets, 0.0);
  std::vector<char> bump_dirty(num_nets, 0);
  std::vector<net::NetId> dirty_list;
  if (opt_.pessimistic_start) {
    EnvelopeBuilder builder(*nl_, *par_, *calc_, nt.base.windows);
    // The upper bound reads the victim's own window plus its aggressors'
    // pulse shapes (their transition times), so a changed noiseless window
    // dirties the net and its coupled neighbors.
    std::vector<char> dv = near_e;
    for (net::NetId v : changed_noiseless_) {
      dv[v] = 1;
      for (layout::CapId id : par_->couplings_of(v)) {
        dv[par_->coupling(id).other(v)] = 1;
      }
    }
    const bool have_ref = !traj_.bumps.empty();
    if (have_ref) bump = traj_.bumps[0];
    for (net::NetId v = 0; v < num_nets; ++v) {
      if (dv[v] || !have_ref) dirty_list.push_back(v);
    }
    runtime::parallel_for(opt_.threads, 0, dirty_list.size(), [&](std::size_t i) {
      const net::NetId v = dirty_list[i];
      bump[v] = analyzer.delay_noise_upper_bound(v, builder, mask);
    });
    for (net::NetId v : dirty_list) {
      bump_dirty[v] = (!have_ref || bump[v] != traj_.bumps[0][v]) ? 1 : 0;
    }
  }

  sta::StaResult cur;
  std::vector<char> win_dirty(num_nets, 0);
  bool converged = false;
  int iter = 0;
  for (; iter < opt_.max_iterations; ++iter) {
    const std::size_t idx = nt.windows.size();
    replay_sta(idx, bump, e_nets, &cur, &win_dirty);
    nt.bumps.push_back(bump);
    nt.windows.push_back(cur.windows);

    EnvelopeBuilder builder(*nl_, *par_, *calc_, cur.windows);
    const bool have_next = (idx + 1) < traj_.bumps.size();
    // Victims whose relaxation inputs changed vs. the recorded iteration:
    // the edit neighborhood, a changed own bump, a changed own window, or
    // a changed aggressor window. Everyone else reuses the recorded bump.
    std::vector<char> dv = near_e;
    for (net::NetId v = 0; v < num_nets; ++v) {
      if (bump_dirty[v]) dv[v] = 1;
      if (win_dirty[v]) {
        dv[v] = 1;
        for (layout::CapId id : par_->couplings_of(v)) {
          dv[par_->coupling(id).other(v)] = 1;
        }
      }
    }
    dirty_list.clear();
    for (net::NetId v = 0; v < num_nets; ++v) {
      if (dv[v] || !have_next) dirty_list.push_back(v);
    }
    c_victims.add(dirty_list.size());

    std::vector<double> next = have_next
                                   ? traj_.bumps[idx + 1]
                                   : std::vector<double>(num_nets, 0.0);
    runtime::parallel_for(opt_.threads, 0, dirty_list.size(), [&](std::size_t i) {
      const net::NetId v = dirty_list[i];
      const double t50 = cur.windows[v].lat - bump[v];
      next[v] = analyzer.victim_delay_noise_at(v, builder, mask, t50);
    });
    std::vector<char> nbd(num_nets, 0);
    for (net::NetId v : dirty_list) {
      nbd[v] = (!have_next || next[v] != traj_.bumps[idx + 1][v]) ? 1 : 0;
    }
    // Full-vector convergence reduction, exactly as the cold loop judges it
    // (the reused entries are bit-equal, so the max is too).
    double max_change = 0.0;
    for (net::NetId v = 0; v < num_nets; ++v) {
      max_change = std::max(max_change, std::abs(next[v] - bump[v]));
    }
    bump = std::move(next);
    bump_dirty = std::move(nbd);
    if (max_change < tol) {
      converged = true;
      ++iter;
      break;
    }
  }
  c_iters.add(static_cast<std::uint64_t>(iter));
  if (!converged) {
    log::warn() << "IncrementalFixpoint: no convergence after "
                << opt_.max_iterations << " iterations (tol " << tol << " ns)";
  }

  // Final evaluation at the converged bumps.
  replay_sta(nt.windows.size(), bump, e_nets, &cur, &win_dirty);
  nt.bumps.push_back(bump);
  nt.windows.push_back(cur.windows);
  nt.final_sta = cur;

  report_.noisy_windows = cur.windows;
  report_.delay_noise = std::move(bump);
  report_.noisy_delay = cur.max_lat;
  report_.worst_po = cur.worst_po;
  report_.iterations = iter;
  report_.converged = converged;

  changed_noisy_.clear();
  for (net::NetId v = 0; v < num_nets; ++v) {
    if (!(report_.noisy_windows[v] == old_noisy[v]) ||
        report_.delay_noise[v] != old_dn[v]) {
      changed_noisy_.push_back(v);
    }
  }
  traj_ = std::move(nt);
  return report_;
}

}  // namespace tka::noise
