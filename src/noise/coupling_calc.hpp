// Noise-pulse characterization for one coupling capacitance.
//
// Two interchangeable calculators:
//  * AnalyticCouplingCalculator — single-pole closed form; this is what the
//    analysis engines use (the paper's "linear noise framework" trade of
//    accuracy for runtime, §2).
//  * SimCouplingCalculator — drives the MNA coupled-RC template; slower,
//    used in tests and the accuracy ablation to bound the closed-form
//    error.
//
// Closed form (victim held by Rv, total victim cap Cv, coupling Cc,
// aggressor transition tr):
//   tau = Rv * (Cv + Cc)
//   Vp  = Vdd * (Rv * Cc / tr) * (1 - exp(-tr / tau))
// which approaches the charge-sharing bound Vdd * Cc / (Cv + Cc) for fast
// aggressors and rolls off as 1/tr for slow ones.
#pragma once

#include "layout/parasitics.hpp"
#include "sta/analyzer.hpp"
#include "sta/delay_model.hpp"
#include "wave/pulse.hpp"

namespace tka::noise {

/// Interface: pulse shape coupled onto `victim` by the aggressor on the
/// other side of `cap`, given the aggressor's output transition time.
class CouplingCalculator {
 public:
  virtual ~CouplingCalculator() = default;

  /// Characterizes the noise pulse. `agg_trans_ns` is the aggressor net's
  /// transition (0-100%). Returns a zero-peak shape for a zeroed cap.
  virtual wave::PulseShape pulse(net::NetId victim, layout::CapId cap,
                                 double agg_trans_ns) const = 0;
};

/// Closed-form single-pole calculator.
class AnalyticCouplingCalculator final : public CouplingCalculator {
 public:
  AnalyticCouplingCalculator(const layout::Parasitics& par, const sta::DelayModel& model)
      : par_(&par), model_(&model) {}

  wave::PulseShape pulse(net::NetId victim, layout::CapId cap,
                         double agg_trans_ns) const override;

 private:
  const layout::Parasitics* par_;
  const sta::DelayModel* model_;
};

/// MNA-template calculator (simulation-backed).
class SimCouplingCalculator final : public CouplingCalculator {
 public:
  SimCouplingCalculator(const net::Netlist& nl, const layout::Parasitics& par,
                        const sta::DelayModel& model)
      : nl_(&nl), par_(&par), model_(&model) {}

  wave::PulseShape pulse(net::NetId victim, layout::CapId cap,
                         double agg_trans_ns) const override;

 private:
  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  const sta::DelayModel* model_;
};

}  // namespace tka::noise
