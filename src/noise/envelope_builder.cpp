#include "noise/envelope_builder.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace tka::noise {
namespace {

std::uint64_t key_of(net::NetId victim, layout::CapId cap) {
  return (static_cast<std::uint64_t>(victim) << 32) | cap;
}

// Approximate heap footprint of one cache entry: the Pwl object (inline
// point buffer included) plus its spilled pool block, plus a flat allowance
// for the unordered_map node and key.
std::int64_t entry_bytes(const wave::Pwl& pwl) {
  constexpr std::int64_t kNodeOverhead = 64;
  return kNodeOverhead + static_cast<std::int64_t>(sizeof(wave::Pwl)) +
         static_cast<std::int64_t>(pwl.heap_bytes());
}

}  // namespace

wave::PulseShape EnvelopeBuilder::pulse_shape(net::NetId victim,
                                              layout::CapId cap) const {
  const net::NetId aggressor = par_->coupling(cap).other(victim);
  const sta::TimingWindow& aw = (*windows_)[aggressor];
  return calc_->pulse(victim, cap, aw.trans_late);
}

wave::Pwl EnvelopeBuilder::build(net::NetId victim, layout::CapId cap,
                                 double lat_extension) const {
  const wave::PulseShape shape = pulse_shape(victim, cap);
  if (shape.peak <= 0.0) return wave::Pwl();
  const net::NetId aggressor = par_->coupling(cap).other(victim);
  const sta::TimingWindow& aw = (*windows_)[aggressor];
  // Pulse start = start of the aggressor transition.
  const double start_eat = aw.eat - 0.5 * aw.trans_early;
  const double start_lat = aw.lat + lat_extension - 0.5 * aw.trans_late;
  return wave::make_trapezoidal_envelope(shape, start_eat,
                                         std::max(start_lat, start_eat));
}

const wave::Pwl& EnvelopeBuilder::envelope(net::NetId victim, layout::CapId cap) {
  const std::uint64_t key = key_of(victim, cap);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_hits_.add();
      return it->second;
    }
  }
  // Build outside the lock; on a lost race try_emplace keeps the first
  // value (both are identical — build() is a pure function of the key).
  cache_misses_.add();
  wave::Pwl env = build(victim, cap, 0.0);
  // Cache entries live for the session: drop the growth slack so resident
  // bytes track the points actually held.
  env.compact();
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  auto [ins, inserted] = cache_.try_emplace(key, std::move(env));
  if (inserted) cache_bytes_.add(entry_bytes(ins->second));
  return ins->second;
}

void EnvelopeBuilder::invalidate_net(net::NetId net) {
  static obs::Counter& c_inval =
      obs::registry().counter("noise.envelope_cache_invalidated");
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  std::size_t dropped = 0;
  for (layout::CapId cap : par_->couplings_of(net)) {
    dropped += erase_entry(key_of(net, cap));
    dropped += erase_entry(key_of(par_->coupling(cap).other(net), cap));
  }
  c_inval.add(dropped);
}

void EnvelopeBuilder::invalidate_cap(layout::CapId cap) {
  static obs::Counter& c_inval =
      obs::registry().counter("noise.envelope_cache_invalidated");
  const layout::CouplingCap& cc = par_->coupling(cap);
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  std::size_t dropped = erase_entry(key_of(cc.net_a, cap));
  dropped += erase_entry(key_of(cc.net_b, cap));
  c_inval.add(dropped);
}

std::size_t EnvelopeBuilder::erase_entry(std::uint64_t key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return 0;
  cache_bytes_.add(-entry_bytes(it->second));
  cache_.erase(it);
  return 1;
}

wave::Pwl EnvelopeBuilder::envelope_widened(net::NetId victim, layout::CapId cap,
                                            double lat_extension) const {
  return build(victim, cap, lat_extension);
}

wave::Pwl EnvelopeBuilder::plateau_envelope(net::NetId victim, layout::CapId cap,
                                            double t_lo, double t_hi) const {
  TKA_ASSERT(t_hi >= t_lo);
  const wave::PulseShape shape = pulse_shape(victim, cap);
  if (shape.peak <= 0.0) return wave::Pwl();
  // Rise into the plateau before t_lo, hold, decay after t_hi.
  return wave::Pwl({{t_lo - shape.rise, 0.0},
                    {t_lo, shape.peak},
                    {t_hi, shape.peak},
                    {t_hi + shape.tau, 0.0}});
}

}  // namespace tka::noise
