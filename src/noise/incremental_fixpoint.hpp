// Incremental re-convergence of the iterative delay-noise fixpoint.
//
// recompute() runs the plain analyze_iterative() loop while recording its
// trajectory (the bump vector and window table of every STA evaluation).
// refresh() then re-converges after a small design or mask edit by
// replaying the recorded iterations through sta::IncrementalSta: each
// iteration adopts the stored windows, applies the edit cone plus the
// bumps that differ from the recorded ones, and re-runs the per-victim
// relaxation only where an input actually changed — the stored result is
// reused everywhere else.
//
// A value is only ever reused when its inputs are bitwise identical to the
// recorded run's, so the refreshed report is bit-identical to a cold
// recompute() on the edited design, at every thread count. Once the replay
// drifts past the recorded iteration count it falls back to full sweeps,
// which keeps the identity unconditional.
#pragma once

#include <span>

#include "noise/iterative.hpp"

namespace tka::noise {

/// Persistent fixpoint state for a (design, mask-polarity) pair. Cheap to
/// copy: warm candidate evaluation clones the primed object and refreshes
/// the clone under a perturbed mask.
class IncrementalFixpoint {
 public:
  IncrementalFixpoint(const net::Netlist& nl, const layout::Parasitics& par,
                      const sta::DelayModel& model,
                      const CouplingCalculator& calc,
                      const IterativeOptions& options);

  /// Cold run: records the trajectory and primes the object. Counter-for-
  /// counter identical to a plain analyze_iterative() call.
  const NoiseReport& recompute(const CouplingMask& mask);

  /// Warm run after an edit. `dirty_nets` are nets whose local inputs
  /// changed (parasitics, driver cell, arrival); `dirty_caps` are couplings
  /// whose value or mask participation changed (their endpoints are added
  /// to the dirty set). `mask` is the mask to converge under — it may
  /// differ from the primed one only on `dirty_caps`. Requires primed().
  const NoiseReport& refresh(std::span<const net::NetId> dirty_nets,
                             std::span<const layout::CapId> dirty_caps,
                             const CouplingMask& mask);

  bool primed() const { return primed_; }
  const NoiseReport& report() const { return report_; }
  const IterativeOptions& options() const { return opt_; }

  /// Overrides the relaxation worker count (e.g. a clone evaluated inside
  /// an already-parallel region drops to 1). Thread count never changes
  /// values, only scheduling.
  void set_threads(int threads) { opt_.threads = threads; }

  /// Nets whose noiseless window changed in the last refresh() (exact
  /// diffs vs. the previous report), ascending id. Empty after recompute().
  const std::vector<net::NetId>& changed_noiseless() const {
    return changed_noiseless_;
  }
  /// Nets whose noisy window or delay-noise bump changed, ascending id.
  const std::vector<net::NetId>& changed_noisy() const { return changed_noisy_; }

 private:
  // One STA evaluation of the replay: adopt the recorded entry at `idx`
  // when one exists (full run_sta otherwise), apply edits and bumps,
  // update. Fills `*out` and flags the nets whose window differs from the
  // recorded entry in `*win_dirty`.
  void replay_sta(std::size_t idx, const std::vector<double>& bump,
                  std::span<const net::NetId> e_nets, sta::StaResult* out,
                  std::vector<char>* win_dirty);

  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  const sta::DelayModel* model_;
  const CouplingCalculator* calc_;
  IterativeOptions opt_;

  NoiseReport report_;
  FixpointTrajectory traj_;
  bool primed_ = false;
  std::vector<net::NetId> changed_noiseless_;
  std::vector<net::NetId> changed_noisy_;
};

}  // namespace tka::noise
