// Fixed-size worker pool with task futures and a deterministic parallel_for.
//
// Design constraints (docs/PARALLELISM.md):
//  * Determinism: parallel_for partitions [begin, end) into contiguous
//    chunks by a static rule that depends only on the range and worker
//    count; callers that write per-index slots and reduce on the calling
//    thread in index order get bit-identical results for every thread
//    count, including 1.
//  * Exact serial fallback: a pool of size <= 1 (or a parallel_for issued
//    from inside a worker, see below) runs every index inline on the
//    calling thread, in order, through the same code path — no special
//    "serial mode" branches in client code.
//  * No nested fan-out: a parallel_for issued from a pool worker runs
//    inline. This makes nested parallelism (e.g. the top-k engine
//    re-evaluating finalists, each of which runs the noise fixpoint whose
//    relaxation sweep is itself a parallel_for) deadlock-free by
//    construction and keeps the outermost loop as the unit of parallelism.
//  * Exceptions: the first exception (lowest chunk index) thrown by a task
//    of a parallel_for is rethrown on the calling thread after all chunks
//    finish; submit() propagates through the returned future.
#pragma once

#include <cstddef>

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/telemetry.hpp"

namespace tka::runtime {

/// True on a thread currently executing a ThreadPool task. parallel_for
/// uses this to degrade to inline execution instead of deadlocking on
/// nested waits.
bool on_pool_thread();

class ThreadPool {
 public:
  /// Spawns `workers` worker threads; 0 means "no workers" (every
  /// parallel_for and submit runs inline on the calling thread). The
  /// calling thread is always an execution lane of its own, so a pool
  /// serving an N-thread request needs only N - 1 workers.
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: pending tasks are completed before the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 when the pool is inline-only).
  std::size_t size() const { return workers_.size(); }

  /// Schedules `fn` and returns its future. With no workers the task runs
  /// inline before returning (the future is already ready). Exceptions
  /// surface through the future on get().
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Calls fn(i) for every i in [begin, end), partitioned into at most
  /// `size() + 1` contiguous chunks (workers + the calling thread, which
  /// always executes the first chunk itself); `max_lanes` > 0 lowers that
  /// cap (the shared pool never shrinks, so a smaller --threads request
  /// caps its fan-out here instead). Blocks until every index is done;
  /// rethrows the first failing chunk's exception. Runs inline, in index
  /// order, when the pool has no workers, the range is a single index, or
  /// the caller is itself a pool worker.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                    std::size_t max_lanes = 0) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    std::size_t lanes = size() + 1;
    if (max_lanes > 0 && max_lanes < lanes) lanes = max_lanes;
    if (lanes <= 1 || n == 1 || on_pool_thread()) {
#if TKA_OBS_ENABLED
      // Account top-level inline runs as exec on the calling lane (so a
      // 1-thread run still reports utilization). Nested calls — already
      // inside an accounted phase — skip the clock reads entirely; their
      // time is attributed to the enclosing scope.
      telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
      if (lane.depth == 0) {
        telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
        lane.tasks.fetch_add(1, std::memory_order_relaxed);
        telemetry::note_inline_for();
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
      }
#endif
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
#if TKA_OBS_ENABLED
    telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
    telemetry::note_parallel_for();
    // Per-chunk duration histogram (task grain). The reference stays valid
    // forever (registry never destroys metric objects).
    static obs::Histogram& task_hist =
        obs::registry().histogram("runtime.task_seconds", 1e-6, 100.0);
#endif
    const std::size_t chunks = n < lanes ? n : lanes;
    // Static partition: chunk c covers [begin + c*q + min(c, r), ...) where
    // q = n / chunks, r = n % chunks — the first r chunks get one extra.
    const std::size_t q = n / chunks;
    const std::size_t r = n % chunks;
    auto chunk_begin = [&](std::size_t c) {
      return begin + c * q + (c < r ? c : r);
    };
    std::vector<std::exception_ptr> errors(chunks);
    // `remaining` is guarded by done_mu rather than being atomic: the
    // decrement-and-check and the caller's wait predicate must exclude
    // each other, otherwise the caller could observe zero and return —
    // destroying these stack locals — while the finishing worker is
    // still about to lock done_mu and notify.
    std::size_t remaining = chunks - 1;
    std::mutex done_mu;
    std::condition_variable done_cv;
    auto run_chunk = [&](std::size_t c) {
      const std::size_t lo = chunk_begin(c);
      const std::size_t hi = chunk_begin(c + 1);
#if TKA_OBS_ENABLED
      const std::int64_t chunk_start_ns = obs::now_ns();
#endif
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        errors[c] = std::current_exception();
      }
#if TKA_OBS_ENABLED
      task_hist.observe(obs::ns_to_seconds(obs::now_ns() - chunk_start_ns));
#endif
    };
    for (std::size_t c = 1; c < chunks; ++c) {
      enqueue([&, c]() {
        run_chunk(c);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    {
#if TKA_OBS_ENABLED
      telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
      lane.tasks.fetch_add(1, std::memory_order_relaxed);
#endif
      run_chunk(0);
    }
    {
#if TKA_OBS_ENABLED
      telemetry::PhaseScope wait(lane, telemetry::Phase::kBarrierWait);
#endif
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&]() { return remaining == 0; });
    }
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tka::runtime
