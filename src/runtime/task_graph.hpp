// Dependency-counted task graph with work-stealing execution.
//
// The level-wavefront scheduler (wavefront.hpp) barrier-syncs every level:
// all victims of level L must finish before any victim of level L+1 starts,
// even though a level-L+1 victim only reads its own fanin cone. This module
// replaces the barrier with per-task dependency counters over the same DAG:
// a task becomes ready the moment its last predecessor finishes, so
// independent subtrees overlap across levels instead of idling at the
// barrier (ROADMAP: "Fix parallel scaling with a task-graph / work-stealing
// runtime"; see docs/SCHEDULER.md for the model and the determinism
// contract).
//
// Execution model:
//  * Each lane (the calling thread plus `threads - 1` shared-pool workers)
//    owns a deque: ready tasks are pushed to the owner's bottom and popped
//    LIFO; thieves take from the top, FIFO, scanning victims from a
//    per-lane randomized starting point. Deques are mutex-protected (the
//    tasks here are coarse — whole per-victim candidate builds — so the
//    lock is nanoseconds against the task body, and the simple structure
//    is trivially TSan-clean).
//  * Determinism: the schedule is nondeterministic, the results are not.
//    Task bodies write only per-task result slots; reductions happen on
//    the calling thread after run() returns, in task-index order. Under
//    that discipline any topological execution order yields bit-identical
//    output, so serial (threads = 1) and stolen (threads = N) runs agree
//    exactly — the same contract parallel_for's static chunks enforce,
//    minus the static schedule.
//  * Exceptions: a throwing task marks its transitive dependents cancelled
//    (they never execute); independent tasks still run. After the drain the
//    lowest-index failure is rethrown on the calling thread. The failed set
//    is execution-order independent, so this too is deterministic.
//  * Serial fallback: threads <= 1, a single task, or a call from inside a
//    pool worker runs every task inline on the calling thread in
//    deterministic Kahn order (ready set drained as an index-seeded FIFO) —
//    the same code path discipline as ThreadPool::parallel_for, and
//    deadlock-free under nesting by construction.
//
// Telemetry: task bodies book Phase::kExec on the executing lane; the
// steal/park loop books kQueueIdle (workers) or kBarrierWait (the caller).
// Successful steals increment the lane's `steals` counter and surface as
// the runtime.steals / runtime.lane.<i>.steals and runtime.task_graph.*
// gauges — gauges, never BENCH counters, because steal counts depend on
// thread count and timing (docs/BENCHMARKING.md).
#pragma once

#include <cstddef>

#include <functional>
#include <utility>
#include <vector>

namespace tka::runtime {

class TaskGraph {
 public:
  /// A graph over tasks 0 .. num_tasks-1 with no edges yet.
  explicit TaskGraph(std::size_t num_tasks) : num_tasks_(num_tasks) {}

  std::size_t size() const { return num_tasks_; }

  /// Declares that `from` must complete before `to` may start. Duplicate
  /// edges are tolerated (deduplicated when the graph seals on run), so
  /// callers deriving edges from overlapping sources — e.g. a fanin that is
  /// also a coupled partner — need not dedupe themselves. Self-edges and
  /// out-of-range indices are ignored.
  void add_edge(std::size_t from, std::size_t to) {
    if (from == to || from >= num_tasks_ || to >= num_tasks_) return;
    edges_.emplace_back(from, to);
    sealed_ = false;
  }

  /// Runs body(t) for every task t, respecting edges, on `threads` resolved
  /// lanes (the caller plus shared-pool workers). Blocks until every task
  /// has executed or been cancelled by a failed predecessor; rethrows the
  /// lowest-index failure. Cycles are a caller bug, detected when the graph
  /// seals (one Kahn pass): run() throws std::logic_error before executing
  /// anything. Reentrant-safe: a run issued from inside a pool worker
  /// executes inline.
  void run(int threads, std::function<void(std::size_t)> body);

  /// Total dependency edges after deduplication (seals the graph).
  std::size_t num_edges();

 private:
  void seal();
  void run_serial(const std::function<void(std::size_t)>& body);

  std::size_t num_tasks_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  // CSR successors + per-task predecessor counts, built by seal().
  std::vector<std::size_t> succ_off_;
  std::vector<std::size_t> succ_;
  std::vector<std::size_t> preds_;
  bool sealed_ = false;
  bool cyclic_ = false;
};

/// Work-stealing counterpart of runtime::parallel_for: runs fn(i) over
/// [begin, end) as an edge-free task graph of contiguous chunks of `grain`
/// indices (0 picks a grain targeting ~8 chunks per lane; the TKA_TASK_GRAIN
/// environment variable overrides either choice, which is how the stress
/// tests force steals on tiny ranges). Same determinism contract as
/// parallel_for — per-index slots plus calling-thread index-order reduction
/// — and the same inline serial fallback; chunk-to-lane assignment is the
/// only thing stealing changes. Rethrows the lowest failing chunk.
template <typename Fn>
void parallel_for_dynamic(int requested, std::size_t begin, std::size_t end,
                          Fn&& fn, std::size_t grain = 0);

namespace detail {

int dynamic_threads(int requested);  // resolved count, 1 when must run inline
std::size_t dynamic_grain(std::size_t n, int threads, std::size_t grain);
void run_dynamic(int threads, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t)>& fn);
void run_inline_accounted(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& fn);

}  // namespace detail

template <typename Fn>
void parallel_for_dynamic(int requested, std::size_t begin, std::size_t end,
                          Fn&& fn, std::size_t grain) {
  if (begin >= end) return;
  const int threads = detail::dynamic_threads(requested);
  const std::size_t n = end - begin;
  const std::size_t g = detail::dynamic_grain(n, threads, grain);
  if (threads <= 1 || n <= g) {
    detail::run_inline_accounted(begin, end,
                                 std::function<void(std::size_t)>(fn));
    return;
  }
  detail::run_dynamic(threads, begin, end, g,
                      std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

}  // namespace tka::runtime
