#include "runtime/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "runtime/runtime.hpp"

namespace tka::runtime {
namespace {

// Everything a lane may touch after the calling thread has returned from
// run() lives here, behind a shared_ptr each lane copies: a worker that
// wakes up to find the graph complete must only read state it co-owns.
// The CSR arrays stay in the TaskGraph — they are only dereferenced while a
// task executes, and every task finishes before `remaining` reaches zero,
// which is before the caller can return and invalidate the graph.
struct RunState {
  explicit RunState(std::size_t num_tasks, std::size_t num_lanes)
      : pending(num_tasks),
        status(num_tasks),
        errors(num_tasks),
        deques(num_lanes),
        deque_mu(num_lanes) {}

  std::function<void(std::size_t)> body;
  const std::vector<std::size_t>* succ_off = nullptr;
  const std::vector<std::size_t>* succ = nullptr;

  std::vector<std::atomic<std::size_t>> pending;
  // 0 = runnable, 1 = cancelled by a failed/cancelled predecessor.
  std::vector<std::atomic<unsigned char>> status;
  std::vector<std::exception_ptr> errors;
  std::atomic<bool> any_error{false};

  // remaining counts tasks not yet completed (executed or cancelled). The
  // release on the final decrement pairs with the caller's acquire load, so
  // error slots written by workers are visible when run() rethrows.
  std::atomic<std::size_t> remaining{0};

  std::vector<std::deque<std::size_t>> deques;
  std::vector<std::mutex> deque_mu;

  // Parking. `epoch` ticks under wake_mu every time ready tasks are pushed;
  // a lane that swept every deque empty sleeps only if the epoch it read
  // *before* the sweep is still current, which closes the push-after-sweep
  // race without the pusher ever notifying into the void.
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::uint64_t epoch = 0;
  std::size_t parked = 0;
};

// Per-lane xorshift for the randomized steal starting point. Seeded from a
// process-wide counter so lanes fan out over distinct victim orders; this
// randomness only shapes the schedule, never the results.
std::size_t steal_seed() {
  static std::atomic<std::size_t> counter{0x9e3779b97f4a7c15ull};
  return counter.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
}

std::size_t xorshift(std::size_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Completes task t (after execution or as a cancellation): decrements each
// successor, pushing the ones that become ready onto `lane_id`'s deque, and
// retires t from `remaining`. Returns true when t was the last task.
bool complete_task(RunState& st, std::size_t t, bool failed,
                   std::size_t lane_id) {
  const std::size_t lo = (*st.succ_off)[t];
  const std::size_t hi = (*st.succ_off)[t + 1];
  bool pushed = false;
  for (std::size_t e = lo; e < hi; ++e) {
    const std::size_t s = (*st.succ)[e];
    if (failed) st.status[s].store(1, std::memory_order_relaxed);
    // acq_rel: the lane that takes `pending` to zero must observe every
    // predecessor's writes (the cancellation flag above and, transitively,
    // the data its body produced).
    if (st.pending[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(st.deque_mu[lane_id]);
      st.deques[lane_id].push_back(s);
      pushed = true;
    }
  }
  if (pushed) {
    std::lock_guard<std::mutex> lock(st.wake_mu);
    ++st.epoch;
    if (st.parked > 0) st.wake_cv.notify_all();
  }
  if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(st.wake_mu);
    st.wake_cv.notify_all();
    return true;
  }
  return false;
}

// Executes one task on `lane_id`, booking exec (and, for cancelled tasks,
// nothing — cancellation is pure bookkeeping).
void exec_task(RunState& st, std::size_t t, std::size_t lane_id) {
  if (st.status[t].load(std::memory_order_relaxed) != 0) {
    complete_task(st, t, /*failed=*/true, lane_id);
    return;
  }
  bool failed = false;
  try {
#if TKA_OBS_ENABLED
    telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
    telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
    lane.tasks.fetch_add(1, std::memory_order_relaxed);
#endif
    st.body(t);
  } catch (...) {
    st.errors[t] = std::current_exception();
    st.any_error.store(true, std::memory_order_relaxed);
    failed = true;
  }
  complete_task(st, t, failed, lane_id);
}

bool pop_own(RunState& st, std::size_t lane_id, std::size_t& out) {
  std::lock_guard<std::mutex> lock(st.deque_mu[lane_id]);
  if (st.deques[lane_id].empty()) return false;
  out = st.deques[lane_id].back();  // owner takes LIFO for locality
  st.deques[lane_id].pop_back();
  return true;
}

bool try_steal(RunState& st, std::size_t lane_id, std::size_t& rng,
               std::size_t& out) {
  const std::size_t lanes = st.deques.size();
  const std::size_t start = xorshift(rng) % lanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    const std::size_t v = (start + k) % lanes;
    if (v == lane_id) continue;
    std::lock_guard<std::mutex> lock(st.deque_mu[v]);
    if (st.deques[v].empty()) continue;
    out = st.deques[v].front();  // thieves take FIFO from the top
    st.deques[v].pop_front();
    return true;
  }
  return false;
}

// The lane main loop: drain own deque, steal, or park until new work or
// completion. `is_worker` only picks the idle phase bucket — queue-idle for
// pool workers, barrier-wait for the caller (it is "waiting for its own
// fan-out", exactly like a parallel_for join).
void steal_loop(const std::shared_ptr<RunState>& stp, std::size_t lane_id,
                bool is_worker) {
  RunState& st = *stp;
  std::size_t rng = steal_seed() | 1;
#if TKA_OBS_ENABLED
  telemetry::LaneSlot& lane = telemetry::this_lane(is_worker);
  const telemetry::Phase idle_phase =
      is_worker ? telemetry::Phase::kQueueIdle : telemetry::Phase::kBarrierWait;
#endif
  for (;;) {
    if (st.remaining.load(std::memory_order_acquire) == 0) return;
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(st.wake_mu);
      seen = st.epoch;
    }
    std::size_t t;
    if (pop_own(st, lane_id, t)) {
      exec_task(st, t, lane_id);
      continue;
    }
    if (try_steal(st, lane_id, rng, t)) {
#if TKA_OBS_ENABLED
      lane.steals.fetch_add(1, std::memory_order_relaxed);
#endif
      exec_task(st, t, lane_id);
      continue;
    }
    {
#if TKA_OBS_ENABLED
      telemetry::PhaseScope idle(lane, idle_phase);
#endif
      std::unique_lock<std::mutex> lock(st.wake_mu);
      ++st.parked;
      st.wake_cv.wait(lock, [&]() {
        return st.epoch != seen ||
               st.remaining.load(std::memory_order_acquire) == 0;
      });
      --st.parked;
    }
  }
}

std::size_t grain_env_override() {
  const char* env = std::getenv("TKA_TASK_GRAIN");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

void TaskGraph::seal() {
  if (sealed_) return;
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  succ_off_.assign(num_tasks_ + 1, 0);
  succ_.resize(edges_.size());
  preds_.assign(num_tasks_, 0);
  for (const auto& [from, to] : edges_) {
    ++succ_off_[from + 1];
    ++preds_[to];
  }
  for (std::size_t i = 0; i < num_tasks_; ++i) succ_off_[i + 1] += succ_off_[i];
  std::vector<std::size_t> cursor(succ_off_.begin(), succ_off_.end() - 1);
  for (const auto& [from, to] : edges_) succ_[cursor[from]++] = to;
  // One Kahn pass to reject cycles up front — a cyclic graph would park
  // every lane forever with remaining > 0.
  std::vector<std::size_t> degree = preds_;
  std::vector<std::size_t> fifo;
  fifo.reserve(num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t) {
    if (degree[t] == 0) fifo.push_back(t);
  }
  for (std::size_t head = 0; head < fifo.size(); ++head) {
    const std::size_t t = fifo[head];
    for (std::size_t e = succ_off_[t]; e < succ_off_[t + 1]; ++e) {
      if (--degree[succ_[e]] == 0) fifo.push_back(succ_[e]);
    }
  }
  cyclic_ = fifo.size() != num_tasks_;
  sealed_ = true;
}

std::size_t TaskGraph::num_edges() {
  seal();
  return edges_.size();
}

void TaskGraph::run_serial(const std::function<void(std::size_t)>& body) {
  // Deterministic Kahn order: the ready set is a FIFO seeded in index
  // order. Failed tasks cancel their transitive dependents but the drain
  // continues, matching the parallel path's semantics exactly.
  std::vector<std::size_t> pending = preds_;
  std::vector<unsigned char> cancelled(num_tasks_, 0);
  std::vector<std::exception_ptr> errors(num_tasks_);
  std::vector<std::size_t> fifo;
  fifo.reserve(num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t) {
    if (pending[t] == 0) fifo.push_back(t);
  }
  bool any_error = false;
  for (std::size_t head = 0; head < fifo.size(); ++head) {
    const std::size_t t = fifo[head];
    bool failed = cancelled[t] != 0;
    if (!failed) {
      try {
        body(t);
      } catch (...) {
        errors[t] = std::current_exception();
        any_error = true;
        failed = true;
      }
    }
    for (std::size_t e = succ_off_[t]; e < succ_off_[t + 1]; ++e) {
      const std::size_t s = succ_[e];
      if (failed) cancelled[s] = 1;
      if (--pending[s] == 0) fifo.push_back(s);
    }
  }
  if (any_error) {
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

void TaskGraph::run(int threads, std::function<void(std::size_t)> body) {
  seal();
  if (cyclic_) {
    throw std::logic_error("TaskGraph::run: dependency cycle among " +
                           std::to_string(num_tasks_) + " tasks");
  }
  if (num_tasks_ == 0) return;
  const int resolved = resolve_threads(threads);
#if TKA_OBS_ENABLED
  telemetry::note_task_graph(num_tasks_, edges_.size());
#endif
  if (resolved <= 1 || num_tasks_ == 1 || on_pool_thread()) {
#if TKA_OBS_ENABLED
    // Top-level inline graphs book exec on the calling lane, like
    // parallel_for's inline path; nested runs stay attributed to the
    // enclosing scope.
    telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
    if (lane.depth == 0) {
      telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
      lane.tasks.fetch_add(1, std::memory_order_relaxed);
      run_serial(body);
      return;
    }
#endif
    run_serial(body);
    return;
  }

  ThreadPool& p = pool(resolved);
  std::size_t lanes = static_cast<std::size_t>(resolved);
  if (lanes > p.size() + 1) lanes = p.size() + 1;
  auto st = std::make_shared<RunState>(num_tasks_, lanes);
  st->body = std::move(body);
  st->succ_off = &succ_off_;
  st->succ = &succ_;
  st->remaining.store(num_tasks_, std::memory_order_relaxed);
  for (std::size_t t = 0; t < num_tasks_; ++t) {
    st->pending[t].store(preds_[t], std::memory_order_relaxed);
  }
  // Initial ready tasks round-robin over the lanes so workers start with
  // local work instead of all stealing from lane 0.
  {
    std::size_t next_lane = 0;
    for (std::size_t t = 0; t < num_tasks_; ++t) {
      if (preds_[t] != 0) continue;
      st->deques[next_lane].push_back(t);
      next_lane = (next_lane + 1) % lanes;
    }
  }
  // Workers run detached from the caller's stack: each holds its own
  // shared_ptr, and completion never requires them to start — the caller
  // lane below can drain the whole graph alone if the pool is saturated.
  for (std::size_t w = 1; w < lanes; ++w) {
    p.submit([st, w]() { steal_loop(st, w, /*is_worker=*/true); });
  }
  steal_loop(st, /*lane_id=*/0, /*is_worker=*/false);
  // Claim the error slots before rethrowing: workers may still be tearing
  // down their shared_ptr copies of the state, and whichever lane releases
  // last would otherwise destroy the stored exception objects — which the
  // caller's in-flight rethrown copy can share guts with (libstdc++
  // runtime_error keeps its message in a COW string). Moving the vector
  // onto the caller pins every exception destruction to this thread; the
  // drain (final remaining decrement, acq_rel) ordered all worker writes
  // to the slots before this point.
  if (st->any_error.load(std::memory_order_relaxed)) {
    std::vector<std::exception_ptr> errors = std::move(st->errors);
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

namespace detail {

int dynamic_threads(int requested) {
  if (on_pool_thread()) return 1;
  return resolve_threads(requested);
}

std::size_t dynamic_grain(std::size_t n, int threads, std::size_t grain) {
  const std::size_t forced = grain_env_override();
  if (forced > 0) return forced;
  if (grain > 0) return grain;
  // ~8 chunks per lane: enough slack for stealing to level uneven task
  // costs without drowning tiny bodies in scheduling overhead.
  const std::size_t target = static_cast<std::size_t>(threads) * 8;
  std::size_t g = (n + target - 1) / target;
  return g > 0 ? g : 1;
}

void run_inline_accounted(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& fn) {
#if TKA_OBS_ENABLED
  telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
  if (lane.depth == 0) {
    telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
    lane.tasks.fetch_add(1, std::memory_order_relaxed);
    telemetry::note_inline_for();
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
#endif
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

void run_dynamic(int threads, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t)>& fn) {
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  TaskGraph graph(chunks);
#if TKA_OBS_ENABLED
  telemetry::note_dynamic_for();
#endif
  graph.run(threads, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    std::size_t hi = lo + grain;
    if (hi > end) hi = end;
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace detail

}  // namespace tka::runtime
