// Thread-pool attribution: every execution lane (pool worker or a caller
// thread driving parallel_for) accounts its wall time into three buckets —
// executing, queue-idle (worker waiting for work) and barrier-wait (caller
// waiting for chunks to finish) — via nanosecond phase scopes maintained by
// the instrumentation in thread_pool.{hpp,cpp}.
//
// Nested phases attribute exactly: entering a new phase closes the current
// segment and credits it to the enclosing phase, so a caller that blocks on
// an inner barrier while "executing" an outer chunk books that interval as
// barrier-wait, not exec. Lanes register on first use and persist for the
// life of the process (dead threads keep their totals; deltas over an
// interval where a lane was dead are zero except wall time).
//
// Consumers read lane_snapshot()/lane_delta() (the bench harness records
// per-case per-thread utilization from these) or the runtime.* gauges that
// publish_runtime_metrics() derives — gauges, never counters, because
// BENCH counter deltas must stay bit-identical across thread counts.
//
// With TKA_OBS_DISABLED the whole layer compiles out: snapshots are empty
// and the thread-pool call sites skip their clock reads entirely.
#pragma once

#include <cstdint>

#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"  // defines TKA_OBS_ENABLED

namespace tka::runtime {

/// One lane's accumulated phase totals at a point in time. `wall_ns` is the
/// time since the lane registered (thread start for workers, first
/// parallel_for for callers), so exec + queue_idle + barrier_wait <= wall,
/// with equality (± bookkeeping epsilon) for pool workers, which spend
/// their whole life inside instrumented phases.
struct LaneCounters {
  std::uint64_t exec_ns = 0;
  /// CPU time the lane's thread actually ran during exec segments. On an
  /// oversubscribed host exec_ns - exec_cpu_ns is the involuntary stall:
  /// runnable but preempted. Always <= exec_ns (± scheduler epsilon).
  std::uint64_t exec_cpu_ns = 0;
  std::uint64_t queue_idle_ns = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t tasks = 0;
  /// Task-graph tasks this lane executed that another lane made ready
  /// (popped from a victim's deque, not the lane's own). Zero for static
  /// parallel_for work. Thread-count and timing dependent by nature, so it
  /// surfaces only as gauges/lane fields, never BENCH counters.
  std::uint64_t steals = 0;
  std::uint64_t wall_ns = 0;
  bool worker = false;
};

/// Copies every registered lane (registration order, stable indices). An
/// in-progress phase is folded in up to "now", so a worker parked on the
/// queue still shows its current idle stretch. Empty when obs is disabled.
std::vector<LaneCounters> lane_snapshot();

/// Per-lane difference of two snapshots (saturating at zero). Lanes that
/// appear only in `after` count from zero.
std::vector<LaneCounters> lane_delta(const std::vector<LaneCounters>& before,
                                     const std::vector<LaneCounters>& after);

/// Publishes lane aggregates and per-lane figures as runtime.* gauges
/// (runtime.exec_s, runtime.lane.<i>.utilization, ...). Registered as an
/// obs snapshot collector on first lane registration, so export sinks pick
/// the numbers up automatically. No-op when obs is disabled.
void publish_runtime_metrics();

#if TKA_OBS_ENABLED

namespace telemetry {

enum class Phase : int { kNone = 0, kExec = 1, kQueueIdle = 2, kBarrierWait = 3 };

/// Per-thread accounting slot. The bucket totals and the current
/// phase/phase-start markers are relaxed atomics so lane_snapshot() can
/// read them from any thread; `depth` and `stack` are touched only by the
/// owning thread. The phase/phase_start pair is read without a transaction
/// by snapshots, so a racing phase switch can misattribute at most one
/// in-flight segment — benign for monitoring, and torn-read free.
struct LaneSlot {
  static constexpr int kMaxDepth = 16;

  std::atomic<std::uint64_t> exec_ns{0};
  std::atomic<std::uint64_t> exec_cpu_ns{0};
  std::atomic<std::uint64_t> queue_idle_ns{0};
  std::atomic<std::uint64_t> barrier_wait_ns{0};
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<int> phase{0};
  std::atomic<std::int64_t> phase_start_ns{0};
  // Owner-thread-only: the thread CPU clock at the last phase switch.
  // Snapshots never read it (another thread's CPU clock is not foldable),
  // so exec_cpu_ns lags by at most the in-flight segment.
  std::int64_t cpu_start_ns = 0;
  std::int64_t registered_ns = 0;
  bool worker = false;

  // Owner-thread-only nesting state. Pushes beyond kMaxDepth keep counting
  // depth but attribute time to the deepest recorded phase.
  int depth = 0;
  Phase stack[kMaxDepth] = {};

  std::atomic<std::uint64_t>& bucket(Phase p) {
    switch (p) {
      case Phase::kQueueIdle:
        return queue_idle_ns;
      case Phase::kBarrierWait:
        return barrier_wait_ns;
      default:
        return exec_ns;
    }
  }

  // Closes the current segment: wall goes to `p`'s bucket; for exec
  // segments the thread-CPU delta is banked too, so exec - exec_cpu is
  // the lane's involuntary (preempted-while-runnable) stall.
  void credit(Phase p, std::int64_t now, std::int64_t cpu_now) {
    const std::int64_t start = phase_start_ns.load(std::memory_order_relaxed);
    bucket(p).fetch_add(static_cast<std::uint64_t>(now - start),
                        std::memory_order_relaxed);
    if (p == Phase::kExec && cpu_now > cpu_start_ns) {
      exec_cpu_ns.fetch_add(static_cast<std::uint64_t>(cpu_now - cpu_start_ns),
                            std::memory_order_relaxed);
    }
  }

  void push(Phase p) {
    const std::int64_t now = obs::now_ns();
    const std::int64_t cpu_now = obs::thread_cpu_ns();
    if (depth > 0) {
      const int d = depth < kMaxDepth ? depth : kMaxDepth;
      credit(stack[d - 1], now, cpu_now);
    }
    if (depth < kMaxDepth) stack[depth] = p;
    ++depth;
    phase.store(static_cast<int>(p), std::memory_order_relaxed);
    phase_start_ns.store(now, std::memory_order_relaxed);
    cpu_start_ns = cpu_now;
  }

  void pop() {
    const std::int64_t now = obs::now_ns();
    const std::int64_t cpu_now = obs::thread_cpu_ns();
    const int d = depth < kMaxDepth ? depth : kMaxDepth;
    if (d > 0) credit(stack[d - 1], now, cpu_now);
    if (depth > 0) --depth;
    const int nd = depth < kMaxDepth ? depth : kMaxDepth;
    phase.store(nd > 0 ? static_cast<int>(stack[nd - 1]) : 0,
                std::memory_order_relaxed);
    phase_start_ns.store(now, std::memory_order_relaxed);
    cpu_start_ns = cpu_now;
  }
};

/// The calling thread's lane, registering it on first use. `worker` only
/// matters for that first registration (pool workers register themselves in
/// worker_loop before any caller could).
LaneSlot& this_lane(bool worker);

/// RAII phase segment on one lane (see LaneSlot::push/pop for nesting).
class PhaseScope {
 public:
  PhaseScope(LaneSlot& lane, Phase p) : lane_(lane) { lane_.push(p); }
  ~PhaseScope() { lane_.pop(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  LaneSlot& lane_;
};

/// Tally one fanned-out / one top-level-inline parallel_for (published as
/// the runtime.parallel_fors / runtime.inline_fors gauges).
void note_parallel_for();
void note_inline_for();

/// Tally one task-graph run (fanned out or inline) with its task and
/// deduplicated edge counts; published as runtime.task_graph.{graphs,
/// tasks, edges} gauges. parallel_for_dynamic fan-outs additionally count
/// into runtime.task_graph.dynamic_fors.
void note_task_graph(std::uint64_t tasks, std::uint64_t edges);
void note_dynamic_for();

}  // namespace telemetry

#endif  // TKA_OBS_ENABLED

}  // namespace tka::runtime
