#include "runtime/runtime.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace tka::runtime {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TKA_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& pool(int threads) {
  static std::mutex mu;
  // Leaked on purpose (like the obs registry/tracer): workers must not be
  // joined during static destruction, and an outgrown pool may still be
  // executing another caller's chunks, so it is abandoned, not deleted —
  // its idle workers cost nothing and growth events are rare (the pool
  // only ever steps up to the largest count ever requested).
  static ThreadPool* current = nullptr;
  // `threads` counts lanes including the calling thread (parallel_for's
  // chunk 0 always runs on the caller), so an N-thread request needs only
  // N - 1 pool workers to put exactly N threads to work.
  const std::size_t want =
      threads > 1 ? static_cast<std::size_t>(threads) - 1 : 0;
  std::lock_guard<std::mutex> lock(mu);
  if (current == nullptr || current->size() < want) {
    current = new ThreadPool(want);
  }
  return *current;
}

}  // namespace tka::runtime
