#include "runtime/wavefront.hpp"

#include <algorithm>

#include "net/topo.hpp"

namespace tka::runtime {

Wavefront::Wavefront(const net::Netlist& nl) : level_of_(net::net_levels(nl)) {
  int max_level = -1;
  for (int lv : level_of_) max_level = std::max(max_level, lv);
  levels_.resize(static_cast<std::size_t>(max_level + 1));
  // Ascending net id within each level: iterate ids in order and append.
  for (net::NetId n = 0; n < level_of_.size(); ++n) {
    levels_[static_cast<std::size_t>(level_of_[n])].push_back(n);
  }
}

void filter_level(const Wavefront& wavefront, std::size_t i,
                  const std::vector<char>& flags,
                  std::vector<net::NetId>* out) {
  out->clear();
  for (net::NetId n : wavefront.level(i)) {
    if (flags[n]) out->push_back(n);  // ascending ids, inherited from the level
  }
}

}  // namespace tka::runtime
