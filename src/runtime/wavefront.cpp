#include "runtime/wavefront.hpp"

#include <algorithm>

#include "net/topo.hpp"
#include "obs/metrics.hpp"

namespace tka::runtime {

Wavefront::Wavefront(const net::Netlist& nl) : level_of_(net::net_levels(nl)) {
  int max_level = -1;
  for (int lv : level_of_) max_level = std::max(max_level, lv);
  levels_.resize(static_cast<std::size_t>(max_level + 1));
  // Ascending net id within each level: iterate ids in order and append.
  for (net::NetId n = 0; n < level_of_.size(); ++n) {
    levels_[static_cast<std::size_t>(level_of_[n])].push_back(n);
  }
#if TKA_OBS_ENABLED
  // Level-structure telemetry: the number of wavefront levels and their
  // widths bound the parallelism a level-synchronous sweep can extract
  // (docs/PARALLELISM.md). Gauge + histogram only — never counters, which
  // would leak into the BENCH determinism gate.
  obs::MetricsRegistry& reg = obs::registry();
  reg.gauge("runtime.wavefront_levels").set(static_cast<double>(levels_.size()));
  obs::Histogram& width =
      reg.histogram("runtime.level_width_nets", 1.0, 1048576.0);
  for (const std::vector<net::NetId>& level : levels_) {
    width.observe(static_cast<double>(level.size()));
  }
#endif
}

void filter_level(const Wavefront& wavefront, std::size_t i,
                  const std::vector<char>& flags,
                  std::vector<net::NetId>* out) {
  out->clear();
  for (net::NetId n : wavefront.level(i)) {
    if (flags[n]) out->push_back(n);  // ascending ids, inherited from the level
  }
}

}  // namespace tka::runtime
