// Level-wavefront scheduler for topological sweeps over the netlist.
//
// Nets at the same logic level have no driver-side data dependencies on
// each other (every fanin sits at a strictly lower level), so a sweep that
// only reads completed earlier levels can process each level's nets as one
// parallel batch with a barrier between levels — the level-synchronous
// structure FRAME-style static noise analysis and full-chip noisy-waveform
// STA exploit. Iterating level 0, 1, ... with each level in stored order is
// itself a valid topological order, so a serial walk of the wavefront is a
// drop-in replacement for walking `net::topological_nets`.
#pragma once

#include <cstddef>

#include <span>
#include <vector>

#include "net/netlist.hpp"

namespace tka::runtime {

/// Immutable per-netlist level partition. Within a level, nets are ordered
/// by net id (the generator and readers both allocate ids in creation
/// order, so this is deterministic and independent of everything else).
class Wavefront {
 public:
  explicit Wavefront(const net::Netlist& nl);

  std::size_t num_levels() const { return levels_.size(); }

  /// Nets of level `i`, ascending net id.
  std::span<const net::NetId> level(std::size_t i) const { return levels_[i]; }

  /// Logic level of `n` (primary inputs are level 0).
  int level_of(net::NetId n) const { return level_of_[n]; }

  /// The whole net -> level map (indexed by net id). The task-graph sweep
  /// hands this to QueryContext::ho_of, which picks the current- or
  /// previous-sweep snapshot buffer by comparing levels.
  std::span<const int> level_map() const { return level_of_; }

  /// Total nets across all levels (== netlist net count).
  std::size_t num_nets() const { return level_of_.size(); }

 private:
  std::vector<std::vector<net::NetId>> levels_;
  std::vector<int> level_of_;
};

/// Copies the nets of level `i` whose `flags` entry is nonzero into `*out`
/// (cleared first), preserving the level's deterministic order. Incremental
/// sweeps narrow each level's batch this way while still firing every level
/// barrier — and because the filter runs at level-processing time, the flag
/// set may legitimately grow while earlier levels execute (change-driven
/// dirtiness propagates forward with the sweep).
void filter_level(const Wavefront& wavefront, std::size_t i,
                  const std::vector<char>& flags,
                  std::vector<net::NetId>* out);

}  // namespace tka::runtime
