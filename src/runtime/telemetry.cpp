#include "runtime/telemetry.hpp"

namespace tka::runtime {

std::vector<LaneCounters> lane_delta(const std::vector<LaneCounters>& before,
                                     const std::vector<LaneCounters>& after) {
  auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
  std::vector<LaneCounters> delta;
  delta.reserve(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    LaneCounters d = after[i];
    if (i < before.size()) {
      const LaneCounters& b = before[i];
      d.exec_ns = sub(d.exec_ns, b.exec_ns);
      d.exec_cpu_ns = sub(d.exec_cpu_ns, b.exec_cpu_ns);
      d.queue_idle_ns = sub(d.queue_idle_ns, b.queue_idle_ns);
      d.barrier_wait_ns = sub(d.barrier_wait_ns, b.barrier_wait_ns);
      d.tasks = sub(d.tasks, b.tasks);
      d.steals = sub(d.steals, b.steals);
      d.wall_ns = sub(d.wall_ns, b.wall_ns);
    }
    delta.push_back(d);
  }
  return delta;
}

}  // namespace tka::runtime

#if TKA_OBS_ENABLED

#include <memory>
#include <mutex>

#include "obs/export.hpp"
#include "util/string_util.hpp"

namespace tka::runtime {
namespace {

std::mutex& lanes_mu() {
  static auto* mu = new std::mutex();
  return *mu;
}

std::vector<std::unique_ptr<telemetry::LaneSlot>>& lanes() {
  static auto* list = new std::vector<std::unique_ptr<telemetry::LaneSlot>>();
  return *list;
}

std::atomic<std::uint64_t> g_parallel_fors{0};
std::atomic<std::uint64_t> g_inline_fors{0};
std::atomic<std::uint64_t> g_task_graphs{0};
std::atomic<std::uint64_t> g_task_graph_tasks{0};
std::atomic<std::uint64_t> g_task_graph_edges{0};
std::atomic<std::uint64_t> g_dynamic_fors{0};

}  // namespace

namespace telemetry {

LaneSlot& this_lane(bool worker) {
  thread_local LaneSlot* slot = nullptr;
  if (slot == nullptr) {
    auto owned = std::make_unique<LaneSlot>();
    owned->worker = worker;
    owned->registered_ns = obs::now_ns();
    slot = owned.get();
    {
      std::lock_guard<std::mutex> lock(lanes_mu());
      lanes().push_back(std::move(owned));
    }
    // Export sinks should see runtime.* gauges refresh with each snapshot.
    obs::add_collector(&publish_runtime_metrics);
  }
  return *slot;
}

void note_parallel_for() {
  g_parallel_fors.fetch_add(1, std::memory_order_relaxed);
}

void note_inline_for() {
  g_inline_fors.fetch_add(1, std::memory_order_relaxed);
}

void note_task_graph(std::uint64_t tasks, std::uint64_t edges) {
  g_task_graphs.fetch_add(1, std::memory_order_relaxed);
  g_task_graph_tasks.fetch_add(tasks, std::memory_order_relaxed);
  g_task_graph_edges.fetch_add(edges, std::memory_order_relaxed);
}

void note_dynamic_for() {
  g_dynamic_fors.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace telemetry

std::vector<LaneCounters> lane_snapshot() {
  const std::int64_t now = obs::now_ns();
  std::lock_guard<std::mutex> lock(lanes_mu());
  std::vector<LaneCounters> out;
  out.reserve(lanes().size());
  for (const auto& slot : lanes()) {
    LaneCounters c;
    c.exec_ns = slot->exec_ns.load(std::memory_order_relaxed);
    c.exec_cpu_ns = slot->exec_cpu_ns.load(std::memory_order_relaxed);
    c.queue_idle_ns = slot->queue_idle_ns.load(std::memory_order_relaxed);
    c.barrier_wait_ns = slot->barrier_wait_ns.load(std::memory_order_relaxed);
    c.tasks = slot->tasks.load(std::memory_order_relaxed);
    c.steals = slot->steals.load(std::memory_order_relaxed);
    c.worker = slot->worker;
    c.wall_ns = now > slot->registered_ns
                    ? static_cast<std::uint64_t>(now - slot->registered_ns)
                    : 0;
    // Fold the in-progress phase up to "now" so a parked worker's current
    // idle stretch is visible. phase/phase_start are read separately, so a
    // racing phase switch can skew this by one segment — benign.
    const int ph = slot->phase.load(std::memory_order_relaxed);
    if (ph != 0) {
      const std::int64_t start =
          slot->phase_start_ns.load(std::memory_order_relaxed);
      const std::int64_t dt = now - start;
      if (dt > 0) {
        const auto add = static_cast<std::uint64_t>(dt);
        switch (static_cast<telemetry::Phase>(ph)) {
          case telemetry::Phase::kQueueIdle:
            c.queue_idle_ns += add;
            break;
          case telemetry::Phase::kBarrierWait:
            c.barrier_wait_ns += add;
            break;
          default:
            c.exec_ns += add;
            break;
        }
      }
    }
    out.push_back(c);
  }
  return out;
}

void publish_runtime_metrics() {
  const std::vector<LaneCounters> snap = lane_snapshot();
  obs::MetricsRegistry& reg = obs::registry();
  double exec_s = 0.0, cpu_s = 0.0, idle_s = 0.0, barrier_s = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::size_t workers = 0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const LaneCounters& l = snap[i];
    const double e = obs::ns_to_seconds(static_cast<std::int64_t>(l.exec_ns));
    const double ec =
        obs::ns_to_seconds(static_cast<std::int64_t>(l.exec_cpu_ns));
    const double qi =
        obs::ns_to_seconds(static_cast<std::int64_t>(l.queue_idle_ns));
    const double bw =
        obs::ns_to_seconds(static_cast<std::int64_t>(l.barrier_wait_ns));
    const double wall =
        obs::ns_to_seconds(static_cast<std::int64_t>(l.wall_ns));
    exec_s += e;
    cpu_s += ec;
    idle_s += qi;
    barrier_s += bw;
    tasks += l.tasks;
    steals += l.steals;
    if (l.worker) ++workers;
    const std::string prefix = str::format("runtime.lane.%zu.", i);
    reg.gauge(prefix + "exec_s").set(e);
    reg.gauge(prefix + "exec_cpu_s").set(ec);
    reg.gauge(prefix + "queue_idle_s").set(qi);
    reg.gauge(prefix + "barrier_wait_s").set(bw);
    reg.gauge(prefix + "wall_s").set(wall);
    reg.gauge(prefix + "tasks").set(static_cast<double>(l.tasks));
    reg.gauge(prefix + "steals").set(static_cast<double>(l.steals));
    reg.gauge(prefix + "worker").set(l.worker ? 1.0 : 0.0);
    reg.gauge(prefix + "utilization").set(wall > 0.0 ? e / wall : 0.0);
  }
  reg.gauge("runtime.lanes").set(static_cast<double>(snap.size()));
  reg.gauge("runtime.workers").set(static_cast<double>(workers));
  reg.gauge("runtime.exec_s").set(exec_s);
  reg.gauge("runtime.exec_cpu_s").set(cpu_s);
  reg.gauge("runtime.queue_idle_s").set(idle_s);
  reg.gauge("runtime.barrier_wait_s").set(barrier_s);
  reg.gauge("runtime.tasks").set(static_cast<double>(tasks));
  reg.gauge("runtime.steals").set(static_cast<double>(steals));
  reg.gauge("runtime.task_graph.graphs")
      .set(static_cast<double>(g_task_graphs.load(std::memory_order_relaxed)));
  reg.gauge("runtime.task_graph.tasks")
      .set(static_cast<double>(
          g_task_graph_tasks.load(std::memory_order_relaxed)));
  reg.gauge("runtime.task_graph.edges")
      .set(static_cast<double>(
          g_task_graph_edges.load(std::memory_order_relaxed)));
  reg.gauge("runtime.task_graph.dynamic_fors")
      .set(static_cast<double>(g_dynamic_fors.load(std::memory_order_relaxed)));
  reg.gauge("runtime.parallel_fors")
      .set(static_cast<double>(g_parallel_fors.load(std::memory_order_relaxed)));
  reg.gauge("runtime.inline_fors")
      .set(static_cast<double>(g_inline_fors.load(std::memory_order_relaxed)));
}

}  // namespace tka::runtime

#else  // !TKA_OBS_ENABLED

namespace tka::runtime {

std::vector<LaneCounters> lane_snapshot() { return {}; }
void publish_runtime_metrics() {}

}  // namespace tka::runtime

#endif  // TKA_OBS_ENABLED
