#include "runtime/thread_pool.hpp"

namespace tka::runtime {
namespace {

thread_local bool t_on_pool_thread = false;

}  // namespace

bool on_pool_thread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tka::runtime
