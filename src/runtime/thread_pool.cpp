#include "runtime/thread_pool.hpp"

#include "wave/point_store.hpp"

namespace tka::runtime {
namespace {

thread_local bool t_on_pool_thread = false;

}  // namespace

bool on_pool_thread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_pool_thread = true;
#if TKA_OBS_ENABLED
  telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/true);
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
#if TKA_OBS_ENABLED
      // Queue-idle covers the dequeue bookkeeping too; that is nanoseconds
      // against a cv wait and keeps the scope placement simple.
      telemetry::PhaseScope idle(lane, telemetry::Phase::kQueueIdle);
#endif
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if TKA_OBS_ENABLED
    {
      telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
      lane.tasks.fetch_add(1, std::memory_order_relaxed);
      task();
    }
#else
    task();
#endif
  }
  // Deterministic teardown: return this lane's parked waveform-pool blocks
  // before the thread exits rather than relying on TLS destructor order.
  wave::pool::trim_thread();
}

}  // namespace tka::runtime
