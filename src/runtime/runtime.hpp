// Runtime configuration surface: thread-count resolution and the shared
// process-wide worker pool.
//
// Thread-count resolution order (first set wins):
//   1. the explicit per-call option (TopkOptions::threads,
//      IterativeOptions::threads, ... — the CLI's --threads lands here),
//   2. the TKA_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// A resolved count of 1 is the exact serial fallback: the same code paths
// run inline on the calling thread (see thread_pool.hpp), so serial runs
// are bit-identical to parallel ones by construction.
#pragma once

#include "runtime/thread_pool.hpp"

namespace tka::runtime {

/// Resolves a requested thread count: `requested` > 0 wins; otherwise
/// TKA_THREADS when set to a positive integer; otherwise the hardware
/// concurrency (at least 1).
int resolve_threads(int requested);

/// The shared pool, sized for `threads` (a resolved count): `threads - 1`
/// workers, since the calling thread is always a lane itself. The pool is
/// created on first use and grown when a larger request arrives; it never
/// shrinks (idle workers cost nothing and callers cap their own fan-out via
/// parallel_for's chunking). Thread-safe.
ThreadPool& pool(int threads);

/// Convenience: resolve `requested` and run fn(i) over [begin, end) on the
/// shared pool. With a resolved count of 1 this is an inline serial loop.
template <typename Fn>
void parallel_for(int requested, std::size_t begin, std::size_t end, Fn&& fn) {
  const int threads = resolve_threads(requested);
  if (threads <= 1 || on_pool_thread()) {
    if (begin >= end) return;
#if TKA_OBS_ENABLED
    // Mirror ThreadPool::parallel_for's inline accounting: a top-level
    // serial loop books exec on the calling lane (so 1-thread runs still
    // report per-lane utilization); nested calls stay unmeasured and are
    // attributed to the enclosing scope.
    telemetry::LaneSlot& lane = telemetry::this_lane(/*worker=*/false);
    if (lane.depth == 0) {
      telemetry::PhaseScope exec(lane, telemetry::Phase::kExec);
      lane.tasks.fetch_add(1, std::memory_order_relaxed);
      telemetry::note_inline_for();
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
#endif
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  pool(threads).parallel_for(begin, end, std::forward<Fn>(fn),
                             static_cast<std::size_t>(threads));
}

}  // namespace tka::runtime
