// Random-vector combinational logic simulation. Used by the functional
// false-aggressor filter (paper refs [10],[11]): an aggressor-victim pair
// whose nets never toggle in the same input event cannot interact, however
// strongly they couple.
#pragma once

#include <vector>

#include "net/netlist.hpp"
#include "util/rng.hpp"

namespace tka::net {

/// Evaluates every net for one primary-input assignment (indexed by NetId;
/// entries for non-PI nets are ignored).
std::vector<bool> evaluate_netlist(const Netlist& nl, const std::vector<bool>& pi_values);

/// Per-net toggle activity over random input-vector *pairs* — each event is
/// (v1, v2) with every PI flipping independently with probability
/// `flip_prob`; a net "toggles" when its value differs between v1 and v2.
struct ToggleProfile {
  /// toggle_count[n] = events in which net n toggled.
  std::vector<int> toggle_count;
  /// pair_toggles is consulted via `both_toggled`.
  std::vector<std::vector<std::uint64_t>> toggle_words;  // bitset per net
  int num_events = 0;

  /// True if nets a and b toggled together in at least one event.
  bool both_toggled(NetId a, NetId b) const;
};

/// Simulates `num_events` random vector pairs.
ToggleProfile profile_toggles(const Netlist& nl, int num_events,
                              std::uint64_t seed, double flip_prob = 0.5);

}  // namespace tka::net
