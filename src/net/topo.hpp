// Topological utilities over the netlist DAG: net ordering, levelization,
// and transitive fanin/fanout cones. The top-k propagation (paper §3.1)
// walks victims strictly in topological net order.
#pragma once

#include <vector>

#include "net/netlist.hpp"

namespace tka::net {

/// Nets in topological order (every net appears after all nets in its
/// driver gate's fanin). Throws tka::Error on a combinational cycle.
std::vector<NetId> topological_nets(const Netlist& nl);

/// Logic level per net: primary inputs are level 0; a gate output is
/// 1 + max(level of fanins).
std::vector<int> net_levels(const Netlist& nl);

/// Transitive fanin cone of `net` (nets whose value can reach `net`),
/// excluding `net` itself.
std::vector<NetId> fanin_cone(const Netlist& nl, NetId net);

/// Transitive fanout cone of `net`, excluding `net` itself.
std::vector<NetId> fanout_cone(const Netlist& nl, NetId net);

/// True if `a` lies in the transitive fanin cone of `b`.
bool in_fanin_cone(const Netlist& nl, NetId a, NetId b);

}  // namespace tka::net
