#include "net/topo.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace tka::net {

std::vector<NetId> topological_nets(const Netlist& nl) {
  const size_t n = nl.num_nets();
  // In-degree of a net = number of fanin nets of its driver gate.
  std::vector<int> indeg(n, 0);
  for (NetId i = 0; i < n; ++i) {
    const Net& net = nl.net(i);
    if (net.driver != kInvalidGate) {
      indeg[i] = static_cast<int>(nl.gate(net.driver).inputs.size());
    }
  }
  std::deque<NetId> ready;
  for (NetId i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::vector<NetId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NetId cur = ready.front();
    ready.pop_front();
    order.push_back(cur);
    for (const PinRef& p : nl.net(cur).fanouts) {
      const NetId out = nl.gate(p.gate).output;
      if (--indeg[out] == 0) ready.push_back(out);
    }
  }
  if (order.size() != n) throw Error("topological_nets: combinational cycle detected");
  return order;
}

std::vector<int> net_levels(const Netlist& nl) {
  std::vector<int> level(nl.num_nets(), 0);
  for (NetId id : topological_nets(nl)) {
    const Net& net = nl.net(id);
    if (net.driver == kInvalidGate) {
      level[id] = 0;
      continue;
    }
    int lv = 0;
    for (NetId in : nl.gate(net.driver).inputs) lv = std::max(lv, level[in]);
    level[id] = lv + 1;
  }
  return level;
}

std::vector<NetId> fanin_cone(const Netlist& nl, NetId net) {
  std::vector<bool> seen(nl.num_nets(), false);
  std::vector<NetId> stack;
  std::vector<NetId> cone;
  auto push_fanins = [&](NetId id) {
    const Net& n = nl.net(id);
    if (n.driver == kInvalidGate) return;
    for (NetId in : nl.gate(n.driver).inputs) {
      if (!seen[in]) {
        seen[in] = true;
        stack.push_back(in);
      }
    }
  };
  push_fanins(net);
  while (!stack.empty()) {
    const NetId cur = stack.back();
    stack.pop_back();
    cone.push_back(cur);
    push_fanins(cur);
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

std::vector<NetId> fanout_cone(const Netlist& nl, NetId net) {
  std::vector<bool> seen(nl.num_nets(), false);
  std::vector<NetId> stack;
  std::vector<NetId> cone;
  auto push_fanouts = [&](NetId id) {
    for (const PinRef& p : nl.net(id).fanouts) {
      const NetId out = nl.gate(p.gate).output;
      if (!seen[out]) {
        seen[out] = true;
        stack.push_back(out);
      }
    }
  };
  push_fanouts(net);
  while (!stack.empty()) {
    const NetId cur = stack.back();
    stack.pop_back();
    cone.push_back(cur);
    push_fanouts(cur);
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

bool in_fanin_cone(const Netlist& nl, NetId a, NetId b) {
  const std::vector<NetId> cone = fanin_cone(nl, b);
  return std::binary_search(cone.begin(), cone.end(), a);
}

}  // namespace tka::net
