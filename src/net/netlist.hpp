// Gate-level netlist: a DAG of gates connected by single-driver nets.
//
// Nets are the unit the whole analysis is expressed in: timing windows,
// coupling capacitances, aggressor-victim relations and top-k sets all
// refer to NetIds. A net is driven either by a primary input or by exactly
// one gate output, and fans out to zero or more gate input pins and
// optionally a primary output.
#pragma once

#include <cstddef>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/cell_library.hpp"
#include "util/assert.hpp"
#include "util/cow_vec.hpp"

namespace tka::net {

using NetId = std::uint32_t;
using GateId = std::uint32_t;

inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();
inline constexpr GateId kInvalidGate = std::numeric_limits<GateId>::max();

/// A gate instance.
struct Gate {
  std::string name;
  size_t cell_index = 0;          ///< into the netlist's CellLibrary
  std::vector<NetId> inputs;      ///< fanin nets, pin order
  NetId output = kInvalidNet;     ///< driven net
};

/// One fanout connection of a net: which gate and which input pin.
struct PinRef {
  GateId gate = kInvalidGate;
  int pin = 0;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// A net (signal).
struct Net {
  std::string name;
  GateId driver = kInvalidGate;   ///< kInvalidGate for primary inputs
  std::vector<PinRef> fanouts;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// Mutable netlist under construction; becomes effectively immutable once
/// analysis starts (analyzers take const references).
///
/// Gates and nets live in chunked copy-on-write storage (util::CowVec), so
/// copying a Netlist structurally shares the element payload and a
/// post-copy resize_gate clones only the touched chunk. The serving layer's
/// snapshot chain depends on this: a published snapshot and its successors
/// share every chunk an edit did not touch.
class Netlist {
 public:
  explicit Netlist(const CellLibrary& library, std::string name = "top")
      : library_(&library), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const CellLibrary& library() const { return *library_; }

  // --- Construction ---

  /// Adds a primary-input net.
  NetId add_primary_input(const std::string& name);

  /// Adds a gate of `cell_index` with the given fanin nets; creates and
  /// returns the output net (named `out_name` or derived from the gate).
  /// The fanin count must match the cell's num_inputs.
  NetId add_gate(size_t cell_index, const std::vector<NetId>& inputs,
                 const std::string& gate_name, const std::string& out_name = {});

  /// Marks a net as a primary output.
  void mark_primary_output(NetId net);

  /// Swaps the gate's cell for another of the same function and pin count
  /// (a drive-strength resize). The only netlist mutation allowed after
  /// analysis starts: it preserves connectivity, levels and logic, so
  /// incremental re-analysis only has to refresh the gate's delay. Throws
  /// tka::Error when the replacement changes function or pin count.
  void resize_gate(GateId gate, size_t cell_index);

  // --- Access ---

  size_t num_gates() const { return gates_.size(); }
  size_t num_nets() const { return nets_.size(); }

  const Gate& gate(GateId id) const {
    TKA_ASSERT(id < gates_.size());
    return gates_[id];
  }
  const Net& net(NetId id) const {
    TKA_ASSERT(id < nets_.size());
    return nets_[id];
  }
  const CellType& cell_of(GateId id) const { return library_->cell(gate(id).cell_index); }

  /// All primary input / output net ids.
  std::vector<NetId> primary_inputs() const;
  std::vector<NetId> primary_outputs() const;

  /// Net id by name; throws tka::Error when absent.
  NetId net_by_name(const std::string& name) const;
  /// True when a net named `name` exists.
  bool has_net(const std::string& name) const;

  /// Structural validation: every net driven or PI, gate pin counts match
  /// their cells, the gate graph is acyclic. Throws tka::Error on failure.
  void validate() const;

  // --- Storage accounting (snapshot gauges) ---

  /// Calls fn(key, bytes) per COW storage chunk; `key` is identical across
  /// Netlists sharing the chunk, so callers can dedup shared storage by
  /// pointer. `bytes` approximates deep size incl. element-owned heap.
  template <typename Fn>
  void visit_storage(Fn&& fn) const {
    gates_.visit_chunks([&](const void* key, const std::vector<Gate>& chunk) {
      std::size_t bytes = chunk.capacity() * sizeof(Gate);
      for (const Gate& g : chunk) {
        bytes += g.name.capacity() + g.inputs.capacity() * sizeof(NetId);
      }
      fn(key, bytes);
    });
    nets_.visit_chunks([&](const void* key, const std::vector<Net>& chunk) {
      std::size_t bytes = chunk.capacity() * sizeof(Net);
      for (const Net& n : chunk) {
        bytes += n.name.capacity() + n.fanouts.capacity() * sizeof(PinRef);
      }
      fn(key, bytes);
    });
  }

  /// Approximate deep heap bytes of the gate/net storage.
  size_t approx_bytes() const {
    size_t total = 0;
    visit_storage([&](const void*, size_t bytes) { total += bytes; });
    return total;
  }

 private:
  const CellLibrary* library_;
  std::string name_;
  util::CowVec<Gate, 8> gates_;
  util::CowVec<Net, 8> nets_;
};

}  // namespace tka::net
