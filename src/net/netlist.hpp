// Gate-level netlist: a DAG of gates connected by single-driver nets.
//
// Nets are the unit the whole analysis is expressed in: timing windows,
// coupling capacitances, aggressor-victim relations and top-k sets all
// refer to NetIds. A net is driven either by a primary input or by exactly
// one gate output, and fans out to zero or more gate input pins and
// optionally a primary output.
#pragma once

#include <cstddef>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/cell_library.hpp"
#include "util/assert.hpp"

namespace tka::net {

using NetId = std::uint32_t;
using GateId = std::uint32_t;

inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();
inline constexpr GateId kInvalidGate = std::numeric_limits<GateId>::max();

/// A gate instance.
struct Gate {
  std::string name;
  size_t cell_index = 0;          ///< into the netlist's CellLibrary
  std::vector<NetId> inputs;      ///< fanin nets, pin order
  NetId output = kInvalidNet;     ///< driven net
};

/// One fanout connection of a net: which gate and which input pin.
struct PinRef {
  GateId gate = kInvalidGate;
  int pin = 0;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// A net (signal).
struct Net {
  std::string name;
  GateId driver = kInvalidGate;   ///< kInvalidGate for primary inputs
  std::vector<PinRef> fanouts;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// Mutable netlist under construction; becomes effectively immutable once
/// analysis starts (analyzers take const references).
class Netlist {
 public:
  explicit Netlist(const CellLibrary& library, std::string name = "top")
      : library_(&library), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const CellLibrary& library() const { return *library_; }

  // --- Construction ---

  /// Adds a primary-input net.
  NetId add_primary_input(const std::string& name);

  /// Adds a gate of `cell_index` with the given fanin nets; creates and
  /// returns the output net (named `out_name` or derived from the gate).
  /// The fanin count must match the cell's num_inputs.
  NetId add_gate(size_t cell_index, const std::vector<NetId>& inputs,
                 const std::string& gate_name, const std::string& out_name = {});

  /// Marks a net as a primary output.
  void mark_primary_output(NetId net);

  /// Swaps the gate's cell for another of the same function and pin count
  /// (a drive-strength resize). The only netlist mutation allowed after
  /// analysis starts: it preserves connectivity, levels and logic, so
  /// incremental re-analysis only has to refresh the gate's delay. Throws
  /// tka::Error when the replacement changes function or pin count.
  void resize_gate(GateId gate, size_t cell_index);

  // --- Access ---

  size_t num_gates() const { return gates_.size(); }
  size_t num_nets() const { return nets_.size(); }

  const Gate& gate(GateId id) const {
    TKA_ASSERT(id < gates_.size());
    return gates_[id];
  }
  const Net& net(NetId id) const {
    TKA_ASSERT(id < nets_.size());
    return nets_[id];
  }
  const CellType& cell_of(GateId id) const { return library_->cell(gate(id).cell_index); }

  /// All primary input / output net ids.
  std::vector<NetId> primary_inputs() const;
  std::vector<NetId> primary_outputs() const;

  /// Net id by name; throws tka::Error when absent.
  NetId net_by_name(const std::string& name) const;
  /// True when a net named `name` exists.
  bool has_net(const std::string& name) const;

  /// Structural validation: every net driven or PI, gate pin counts match
  /// their cells, the gate graph is acyclic. Throws tka::Error on failure.
  void validate() const;

 private:
  const CellLibrary* library_;
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
};

}  // namespace tka::net
