#include "net/cell_library.hpp"

#include "util/error.hpp"

namespace tka::net {

bool eval_cell(CellFunc func, std::span<const bool> in) {
  TKA_ASSERT(!in.empty());
  auto all = [&](bool v) {
    for (bool b : in)
      if (b != v) return false;
    return true;
  };
  auto any = [&](bool v) {
    for (bool b : in)
      if (b == v) return true;
    return false;
  };
  auto parity = [&] {
    bool p = false;
    for (bool b : in) p ^= b;
    return p;
  };
  switch (func) {
    case CellFunc::kBuf:  return in[0];
    case CellFunc::kInv:  return !in[0];
    case CellFunc::kAnd:  return all(true);
    case CellFunc::kNand: return !all(true);
    case CellFunc::kOr:   return any(true);
    case CellFunc::kNor:  return !any(true);
    case CellFunc::kXor:  return parity();
    case CellFunc::kXnor: return !parity();
  }
  TKA_ASSERT(false);
  return false;
}

bool is_inverting(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:
    case CellFunc::kNand:
    case CellFunc::kNor:
    case CellFunc::kXnor:
      return true;
    default:
      return false;
  }
}

size_t CellLibrary::index_of(const std::string& name) const {
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return i;
  }
  throw Error("CellLibrary: unknown cell '" + name + "'");
}

bool CellLibrary::contains(const std::string& name) const {
  for (const CellType& c : cells_) {
    if (c.name == name) return true;
  }
  return false;
}

std::vector<size_t> CellLibrary::cells_with_inputs(int num_inputs) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].num_inputs == num_inputs) out.push_back(i);
  }
  return out;
}

const CellLibrary& CellLibrary::default_library() {
  // Two drive strengths (X1 weak, X2 strong). Intrinsic delays loosely
  // follow gate complexity; caps follow input count.
  static const CellLibrary lib([] {
    std::vector<CellType> cells;
    auto add = [&cells](const char* name, CellFunc f, int nin, double r,
                        double cin, double d) {
      CellType c;
      c.name = name;
      c.func = f;
      c.num_inputs = nin;
      c.drive_res_kohm = r;
      c.input_cap_pf = cin;
      c.intrinsic_delay_ns = d;
      c.output_cap_pf = 0.6 * cin;
      cells.push_back(c);
    };
    add("INVX1", CellFunc::kInv, 1, 1.60, 0.0030, 0.015);
    add("INVX2", CellFunc::kInv, 1, 0.80, 0.0055, 0.013);
    add("BUFX1", CellFunc::kBuf, 1, 1.50, 0.0032, 0.030);
    add("BUFX2", CellFunc::kBuf, 1, 0.75, 0.0058, 0.026);
    add("NAND2X1", CellFunc::kNand, 2, 1.80, 0.0034, 0.022);
    add("NAND2X2", CellFunc::kNand, 2, 0.90, 0.0062, 0.019);
    add("NOR2X1", CellFunc::kNor, 2, 2.20, 0.0034, 0.026);
    add("NOR2X2", CellFunc::kNor, 2, 1.10, 0.0062, 0.022);
    add("AND2X1", CellFunc::kAnd, 2, 1.70, 0.0033, 0.038);
    add("OR2X1", CellFunc::kOr, 2, 1.90, 0.0033, 0.042);
    add("XOR2X1", CellFunc::kXor, 2, 2.40, 0.0046, 0.055);
    add("XNOR2X1", CellFunc::kXnor, 2, 2.40, 0.0046, 0.057);
    add("NAND3X1", CellFunc::kNand, 3, 2.10, 0.0036, 0.030);
    add("NOR3X1", CellFunc::kNor, 3, 2.80, 0.0036, 0.036);
    add("AND3X1", CellFunc::kAnd, 3, 1.90, 0.0035, 0.048);
    add("OR3X1", CellFunc::kOr, 3, 2.20, 0.0035, 0.052);
    add("NAND4X1", CellFunc::kNand, 4, 2.40, 0.0038, 0.038);
    add("NOR4X1", CellFunc::kNor, 4, 3.40, 0.0038, 0.046);
    return cells;
  }());
  return lib;
}

}  // namespace tka::net
