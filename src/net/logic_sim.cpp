#include "net/logic_sim.hpp"

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::net {

std::vector<bool> evaluate_netlist(const Netlist& nl,
                                   const std::vector<bool>& pi_values) {
  TKA_ASSERT(pi_values.size() == nl.num_nets());
  std::vector<bool> value(nl.num_nets(), false);
  for (NetId id : topological_nets(nl)) {
    const Net& n = nl.net(id);
    if (n.driver == kInvalidGate) {
      value[id] = pi_values[id];
      continue;
    }
    const Gate& g = nl.gate(n.driver);
    // std::vector<bool> is a bitset and cannot view as std::span<const bool>.
    bool ins[8];
    TKA_ASSERT(g.inputs.size() <= 8);
    for (size_t i = 0; i < g.inputs.size(); ++i) ins[i] = value[g.inputs[i]];
    value[id] = eval_cell(nl.cell_of(n.driver).func,
                          std::span<const bool>(ins, g.inputs.size()));
  }
  return value;
}

bool ToggleProfile::both_toggled(NetId a, NetId b) const {
  const auto& wa = toggle_words[a];
  const auto& wb = toggle_words[b];
  for (size_t i = 0; i < wa.size(); ++i) {
    if (wa[i] & wb[i]) return true;
  }
  return false;
}

ToggleProfile profile_toggles(const Netlist& nl, int num_events,
                              std::uint64_t seed, double flip_prob) {
  TKA_ASSERT(num_events > 0);
  Rng rng(seed);
  ToggleProfile profile;
  profile.num_events = num_events;
  profile.toggle_count.assign(nl.num_nets(), 0);
  const size_t words = (static_cast<size_t>(num_events) + 63) / 64;
  profile.toggle_words.assign(nl.num_nets(), std::vector<std::uint64_t>(words, 0));

  std::vector<bool> v1(nl.num_nets(), false);
  for (int event = 0; event < num_events; ++event) {
    // Fresh base vector, then independent flips.
    std::vector<bool> base(nl.num_nets(), false);
    for (NetId n : nl.primary_inputs()) base[n] = rng.next_bool(0.5);
    std::vector<bool> flipped = base;
    for (NetId n : nl.primary_inputs()) {
      if (rng.next_bool(flip_prob)) flipped[n] = !flipped[n];
    }
    const std::vector<bool> val1 = evaluate_netlist(nl, base);
    const std::vector<bool> val2 = evaluate_netlist(nl, flipped);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (val1[n] != val2[n]) {
        profile.toggle_count[n]++;
        profile.toggle_words[n][static_cast<size_t>(event) / 64] |=
            (1ULL << (static_cast<size_t>(event) % 64));
      }
    }
  }
  return profile;
}

}  // namespace tka::net
