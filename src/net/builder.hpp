// Canonical small netlists used throughout tests and examples: chains,
// balanced trees, and the classic c17 benchmark. All use the default cell
// library.
#pragma once

#include <memory>

#include "net/netlist.hpp"

namespace tka::net {

/// Chain of `length` single-input gates (alternating INVX1/BUFX1) from one
/// primary input to one primary output.
std::unique_ptr<Netlist> make_chain(int length, const std::string& name = "chain");

/// Balanced binary NAND2 tree with 2^depth primary inputs and one output.
std::unique_ptr<Netlist> make_nand_tree(int depth, const std::string& name = "tree");

/// ISCAS-85 c17: 5 inputs, 6 NAND2 gates, 2 outputs.
std::unique_ptr<Netlist> make_c17();

}  // namespace tka::net
