// Standard-cell library: per-cell electrical constants for the linear
// delay model plus the boolean function (used by the functional
// false-aggressor filter).
//
// The values in default_library() are 0.13um-flavored: drive resistances
// around a kOhm, input caps of a few fF, intrinsic delays of tens of ps.
// Absolute accuracy is not the goal — the paper's experiments depend on the
// relative structure (drive strength vs. load, coupling vs. ground cap).
#pragma once

#include <cstddef>

#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace tka::net {

/// Boolean function of a cell (single-output).
enum class CellFunc {
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Evaluates `func` over the fanin values.
bool eval_cell(CellFunc func, std::span<const bool> inputs);

/// True if a rising input produces a falling output (odd inversion).
bool is_inverting(CellFunc func);

/// One library cell.
struct CellType {
  std::string name;
  CellFunc func = CellFunc::kBuf;
  int num_inputs = 1;
  double drive_res_kohm = 1.0;   ///< linear driver resistance
  double input_cap_pf = 0.003;   ///< per-pin input capacitance
  double intrinsic_delay_ns = 0.02;
  double output_cap_pf = 0.002;  ///< driver self-loading
};

/// Immutable collection of cell types, addressed by index.
class CellLibrary {
 public:
  explicit CellLibrary(std::vector<CellType> cells) : cells_(std::move(cells)) {
    TKA_ASSERT(!cells_.empty());
  }

  size_t size() const { return cells_.size(); }
  const CellType& cell(size_t index) const {
    TKA_ASSERT(index < cells_.size());
    return cells_[index];
  }

  /// Index of the cell named `name`; throws tka::Error if absent.
  size_t index_of(const std::string& name) const;

  /// True if a cell named `name` exists.
  bool contains(const std::string& name) const;

  /// Indices of all cells with exactly `num_inputs` inputs.
  std::vector<size_t> cells_with_inputs(int num_inputs) const;

  /// The built-in 0.13um-flavored library (INV/BUF/NAND2/NOR2/AND2/OR2/
  /// XOR2/NAND3/NOR3/AND3/OR3 in two drive strengths).
  static const CellLibrary& default_library();

 private:
  std::vector<CellType> cells_;
};

}  // namespace tka::net
