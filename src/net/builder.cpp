#include "net/builder.hpp"

#include "util/assert.hpp"

namespace tka::net {

std::unique_ptr<Netlist> make_chain(int length, const std::string& name) {
  TKA_ASSERT(length >= 1);
  const CellLibrary& lib = CellLibrary::default_library();
  auto nl = std::make_unique<Netlist>(lib, name);
  const size_t inv = lib.index_of("INVX1");
  const size_t buf = lib.index_of("BUFX1");
  NetId cur = nl->add_primary_input("in");
  for (int i = 0; i < length; ++i) {
    const size_t cell = (i % 2 == 0) ? inv : buf;
    cur = nl->add_gate(cell, {cur}, "u" + std::to_string(i),
                       "n" + std::to_string(i));
  }
  nl->mark_primary_output(cur);
  return nl;
}

std::unique_ptr<Netlist> make_nand_tree(int depth, const std::string& name) {
  TKA_ASSERT(depth >= 1);
  const CellLibrary& lib = CellLibrary::default_library();
  auto nl = std::make_unique<Netlist>(lib, name);
  const size_t nand2 = lib.index_of("NAND2X1");
  std::vector<NetId> level;
  const int leaves = 1 << depth;
  for (int i = 0; i < leaves; ++i) {
    level.push_back(nl->add_primary_input("in" + std::to_string(i)));
  }
  int gate_counter = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(nl->add_gate(nand2, {level[i], level[i + 1]},
                                  "t" + std::to_string(gate_counter++)));
    }
    level = std::move(next);
  }
  nl->mark_primary_output(level.front());
  return nl;
}

std::unique_ptr<Netlist> make_c17() {
  const CellLibrary& lib = CellLibrary::default_library();
  auto nl = std::make_unique<Netlist>(lib, "c17");
  const size_t nand2 = lib.index_of("NAND2X1");
  const NetId n1 = nl->add_primary_input("N1");
  const NetId n2 = nl->add_primary_input("N2");
  const NetId n3 = nl->add_primary_input("N3");
  const NetId n6 = nl->add_primary_input("N6");
  const NetId n7 = nl->add_primary_input("N7");
  const NetId n10 = nl->add_gate(nand2, {n1, n3}, "G10", "N10");
  const NetId n11 = nl->add_gate(nand2, {n3, n6}, "G11", "N11");
  const NetId n16 = nl->add_gate(nand2, {n2, n11}, "G16", "N16");
  const NetId n19 = nl->add_gate(nand2, {n11, n7}, "G19", "N19");
  const NetId n22 = nl->add_gate(nand2, {n10, n16}, "G22", "N22");
  const NetId n23 = nl->add_gate(nand2, {n16, n19}, "G23", "N23");
  nl->mark_primary_output(n22);
  nl->mark_primary_output(n23);
  return nl;
}

}  // namespace tka::net
