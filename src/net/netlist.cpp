#include "net/netlist.hpp"

#include <unordered_map>

#include "net/topo.hpp"
#include "util/error.hpp"

namespace tka::net {

NetId Netlist::add_primary_input(const std::string& name) {
  Net n;
  n.name = name;
  n.is_primary_input = true;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_gate(size_t cell_index, const std::vector<NetId>& inputs,
                        const std::string& gate_name, const std::string& out_name) {
  const CellType& cell = library_->cell(cell_index);
  TKA_CHECK(static_cast<int>(inputs.size()) == cell.num_inputs,
            "add_gate: fanin count does not match cell " + cell.name);
  for (NetId in : inputs) {
    TKA_CHECK(in < nets_.size(), "add_gate: unknown input net");
  }

  const GateId gid = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = gate_name.empty() ? "g" + std::to_string(gid) : gate_name;
  g.cell_index = cell_index;
  g.inputs = inputs;

  Net out;
  out.name = out_name.empty() ? g.name + "_out" : out_name;
  out.driver = gid;
  const NetId out_id = static_cast<NetId>(nets_.size());
  g.output = out_id;

  for (size_t pin = 0; pin < inputs.size(); ++pin) {
    nets_.mut(inputs[pin]).fanouts.push_back({gid, static_cast<int>(pin)});
  }
  gates_.push_back(std::move(g));
  nets_.push_back(std::move(out));
  return out_id;
}

void Netlist::mark_primary_output(NetId net) {
  TKA_CHECK(net < nets_.size(), "mark_primary_output: unknown net");
  nets_.mut(net).is_primary_output = true;
}

void Netlist::resize_gate(GateId gate, size_t cell_index) {
  TKA_CHECK(gate < gates_.size(), "resize_gate: unknown gate");
  const CellType& from = library_->cell(gates_[gate].cell_index);
  const CellType& to = library_->cell(cell_index);
  TKA_CHECK(from.func == to.func && from.num_inputs == to.num_inputs,
            "resize_gate: cell " + to.name + " is not a drive variant of " +
                from.name);
  gates_.mut(gate).cell_index = cell_index;
}

std::vector<NetId> Netlist::primary_inputs() const {
  std::vector<NetId> out;
  for (NetId i = 0; i < nets_.size(); ++i) {
    if (nets_[i].is_primary_input) out.push_back(i);
  }
  return out;
}

std::vector<NetId> Netlist::primary_outputs() const {
  std::vector<NetId> out;
  for (NetId i = 0; i < nets_.size(); ++i) {
    if (nets_[i].is_primary_output) out.push_back(i);
  }
  return out;
}

NetId Netlist::net_by_name(const std::string& name) const {
  for (NetId i = 0; i < nets_.size(); ++i) {
    if (nets_[i].name == name) return i;
  }
  throw Error("Netlist: unknown net '" + name + "'");
}

bool Netlist::has_net(const std::string& name) const {
  for (const Net& n : nets_) {
    if (n.name == name) return true;
  }
  return false;
}

void Netlist::validate() const {
  for (NetId i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (!n.is_primary_input && n.driver == kInvalidGate) {
      throw Error("Netlist: net '" + n.name + "' is undriven");
    }
    if (n.is_primary_input && n.driver != kInvalidGate) {
      throw Error("Netlist: primary input '" + n.name + "' has a driver");
    }
    for (const PinRef& p : n.fanouts) {
      if (p.gate >= gates_.size()) throw Error("Netlist: dangling fanout on '" + n.name + "'");
      const Gate& g = gates_[p.gate];
      if (p.pin < 0 || static_cast<size_t>(p.pin) >= g.inputs.size() ||
          g.inputs[static_cast<size_t>(p.pin)] != i) {
        throw Error("Netlist: inconsistent fanout pin on '" + n.name + "'");
      }
    }
  }
  for (GateId gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    const CellType& cell = library_->cell(g.cell_index);
    if (static_cast<int>(g.inputs.size()) != cell.num_inputs) {
      throw Error("Netlist: gate '" + g.name + "' pin count mismatch");
    }
    if (g.output >= nets_.size() || nets_[g.output].driver != gi) {
      throw Error("Netlist: gate '" + g.name + "' output inconsistent");
    }
  }
  // Acyclicity: topological_nets throws on a cycle.
  (void)topological_nets(*this);
}

}  // namespace tka::net
