// Per-net timing data: the [EAT, LAT] timing window plus transition times
// at the window extremes. t50-referenced, in ns.
#pragma once

#include <vector>

#include "net/netlist.hpp"

namespace tka::sta {

/// Timing window of a net: earliest/latest possible t50 plus the signal
/// transition times at those extremes.
struct TimingWindow {
  double eat = 0.0;          ///< earliest arrival (t50, ns)
  double lat = 0.0;          ///< latest arrival (t50, ns)
  double trans_early = 0.0;  ///< transition time of the earliest signal
  double trans_late = 0.0;   ///< transition time of the latest signal

  double width() const { return lat - eat; }

  /// True when [eat, lat] and other's window share any instant.
  bool overlaps(const TimingWindow& other) const {
    return eat <= other.lat && other.eat <= lat;
  }

  /// Exact (bitwise) member equality. The incremental machinery relies on
  /// this being *exact*: a net is only reused when recomputing it would
  /// reproduce the identical double, which is what makes incremental
  /// results bit-identical to a cold pass.
  friend bool operator==(const TimingWindow& a, const TimingWindow& b) = default;
};

/// Per-net window table (indexed by NetId).
using WindowTable = std::vector<TimingWindow>;

}  // namespace tka::sta
