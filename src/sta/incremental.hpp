// Incremental static timing. Repair loops (zero/shield a coupling, re-ask
// for the top-k set) touch a handful of nets per cycle; re-propagating only
// the affected fanout cone keeps each cycle cheap. Results are bit-exact
// with a full run_sta() over the same state — the update is a worklist
// topological sweep that stops where arrivals stop changing, and a net is
// only left untouched when recomputing it would reproduce the identical
// (bitwise) window.
#pragma once

#include <set>

#include "sta/analyzer.hpp"

namespace tka::sta {

/// Incremental wrapper around the STA propagation. The referenced netlist,
/// model and parasitics must outlive this object; parasitic values may be
/// modified externally between invalidate/update cycles.
class IncrementalSta {
 public:
  IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                 const StaOptions& options = {});

  /// Adopts a previously computed `state` (and the per-net LAT bumps it was
  /// computed under) instead of running a full STA. The incremental noise
  /// fixpoint replays recorded iterations this way: adopt the old
  /// iteration's windows, apply the new bumps and edit cone, update().
  /// `lat_bump` may be empty (all zero).
  IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                 const StaOptions& options, StaResult state,
                 std::vector<double> lat_bump);

  /// Current timing (valid after construction and after each update()).
  const StaResult& result() const { return result_; }

  /// Marks a net whose parasitics (or whose fanout pin caps) changed; its
  /// driver's delay and the downstream cone will be refreshed.
  void invalidate_net(net::NetId net);

  /// Sets the net's LAT bump (extra latest-path delay, see run_sta). The
  /// net is invalidated only when the value actually differs (exact
  /// compare), so replaying an unchanged bump vector is free.
  void set_lat_bump(net::NetId net, double bump);

  /// Re-propagates all invalidated cones. Returns the number of nets whose
  /// window actually changed; last_changed() lists them.
  size_t update();

  /// Nets whose window changed during the last update(), ascending id.
  const std::vector<net::NetId>& last_changed() const { return last_changed_; }

 private:
  void recompute_net(net::NetId net);

  const net::Netlist* nl_;
  const DelayModel* model_;
  StaOptions options_;
  StaResult result_;
  std::vector<double> bump_;          // per-net LAT bump (empty = all zero)
  std::vector<int> level_;            // topological level per net
  std::set<std::pair<int, net::NetId>> dirty_;  // level-ordered worklist
  std::vector<net::NetId> last_changed_;
};

}  // namespace tka::sta
