// Incremental static timing. Repair loops (zero/shield a coupling, re-ask
// for the top-k set) touch a handful of nets per cycle; re-propagating only
// the affected fanout cone keeps each cycle cheap. Results are bit-exact
// with a full run_sta() over the same state — the update is a worklist
// topological sweep that stops where arrivals stop changing.
#pragma once

#include <set>

#include "sta/analyzer.hpp"

namespace tka::sta {

/// Incremental wrapper around the STA propagation. The referenced netlist,
/// model and parasitics must outlive this object; parasitic values may be
/// modified externally between invalidate/update cycles.
class IncrementalSta {
 public:
  IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                 const StaOptions& options = {});

  /// Current timing (valid after construction and after each update()).
  const StaResult& result() const { return result_; }

  /// Marks a net whose parasitics (or whose fanout pin caps) changed; its
  /// driver's delay and the downstream cone will be refreshed.
  void invalidate_net(net::NetId net);

  /// Re-propagates all invalidated cones. Returns the number of nets whose
  /// arrival actually changed.
  size_t update();

 private:
  void recompute_net(net::NetId net);

  const net::Netlist* nl_;
  const DelayModel* model_;
  StaOptions options_;
  StaResult result_;
  std::vector<int> level_;            // topological level per net
  std::set<std::pair<int, net::NetId>> dirty_;  // level-ordered worklist
};

}  // namespace tka::sta
