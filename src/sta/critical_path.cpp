#include "sta/critical_path.hpp"

#include <algorithm>

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::sta {

TimingPath worst_path_to(const net::Netlist& nl, const StaResult& sta, net::NetId sink) {
  TKA_ASSERT(sink < nl.num_nets());
  TimingPath path;
  path.arrival = sta.windows[sink].lat;
  // Backtrack: at each gate pick the fanin whose LAT determined the output.
  net::NetId cur = sink;
  std::vector<net::NetId> rev;
  rev.push_back(cur);
  while (nl.net(cur).driver != net::kInvalidGate) {
    const net::Gate& g = nl.gate(nl.net(cur).driver);
    net::NetId best = g.inputs.front();
    for (net::NetId in : g.inputs) {
      if (sta.windows[in].lat > sta.windows[best].lat) best = in;
    }
    cur = best;
    rev.push_back(cur);
  }
  path.nets.assign(rev.rbegin(), rev.rend());
  return path;
}

TimingPath critical_path(const net::Netlist& nl, const StaResult& sta) {
  TKA_ASSERT(sta.worst_po != net::kInvalidNet);
  return worst_path_to(nl, sta, sta.worst_po);
}

std::vector<double> net_slacks(const net::Netlist& nl, const StaResult& sta) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> required(nl.num_nets(), inf);
  for (net::NetId id : nl.primary_outputs()) required[id] = sta.max_lat;
  if (nl.primary_outputs().empty()) {
    // Fall back: anchor at the globally worst net.
    required[sta.worst_po] = sta.max_lat;
  }

  const std::vector<net::NetId> order = net::topological_nets(nl);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const net::NetId id = *it;
    // Required time of a fanin through gate g: required(out) - delay(g).
    for (const net::PinRef& pin : nl.net(id).fanouts) {
      const net::NetId out = nl.gate(pin.gate).output;
      const double req = required[out] - sta.gate_delay[pin.gate];
      required[id] = std::min(required[id], req);
    }
  }

  std::vector<double> slack(nl.num_nets(), inf);
  for (net::NetId id = 0; id < nl.num_nets(); ++id) {
    if (required[id] < inf) slack[id] = required[id] - sta.windows[id].lat;
  }
  return slack;
}

std::vector<net::NetId> near_critical_nets(const net::Netlist& nl,
                                           const StaResult& sta,
                                           double slack_threshold) {
  const std::vector<double> slack = net_slacks(nl, sta);
  std::vector<net::NetId> out;
  for (net::NetId id = 0; id < nl.num_nets(); ++id) {
    if (slack[id] <= slack_threshold) out.push_back(id);
  }
  return out;
}

}  // namespace tka::sta
