// Linear (Thevenin-style) gate delay model, as used by the paper's linear
// noise framework:
//
//   load(v)      = wire ground cap + fanout input caps + driver self-load
//                  + Miller-weighted coupling caps
//   delay(g->v)  = intrinsic + R_drv * load(v) + R_wire(v) * load(v)/2
//   trans(g->v)  = trans_factor * (R_drv + R_wire(v)/2) * load(v), floored
//
// The same model supplies the driver resistance and victim load used for
// noise-pulse characterization, so STA and noise analysis are consistent.
#pragma once

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"

namespace tka::sta {

/// Delay-model controls.
struct DelayModelOptions {
  double miller_factor = 1.0;   ///< coupling-cap weight in the nominal load
  double trans_factor = 1.4;    ///< output transition per unit RC
  double min_trans_ns = 0.010;  ///< floor on any transition time
  double vdd = 1.2;             ///< supply voltage (V)
};

/// Stateless calculator binding a netlist + parasitics + options.
class DelayModel {
 public:
  DelayModel(const net::Netlist& nl, const layout::Parasitics& par,
             const DelayModelOptions& options = {})
      : nl_(&nl), par_(&par), opt_(options) {}

  const DelayModelOptions& options() const { return opt_; }

  /// Total capacitive load of a net (pF).
  double net_load_pf(net::NetId n) const;

  /// Effective driver resistance seen by net n: the driving cell's R_drv
  /// plus half the wire resistance; for primary inputs, a pad resistance.
  double driver_res_kohm(net::NetId n) const;

  /// Pin-to-pin delay of `gate` (all input pins equal under this model).
  double gate_delay_ns(net::GateId gate) const;

  /// Output transition (0-100%) of `gate`'s driven net.
  double gate_trans_ns(net::GateId gate) const;

  /// Transition of a primary input net.
  double pi_trans_ns(net::NetId n) const;

 private:
  static constexpr double kPadResKohm = 0.5;

  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  DelayModelOptions opt_;
};

}  // namespace tka::sta
