#include "sta/elmore.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::sta {

std::vector<std::vector<SinkDelay>> elmore_sink_delays(
    const net::Netlist& nl, const DelayModel& model,
    const std::vector<layout::Route>& routes,
    const layout::ExtractorOptions& opt) {
  TKA_ASSERT(routes.size() == nl.num_nets());
  std::vector<std::vector<SinkDelay>> out(nl.num_nets());
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    const layout::Route& route = routes[n];
    if (route.sinks.empty()) continue;
    // Common term: the driver resistance charges the whole net load.
    const double r_drv = model.driver_res_kohm(n);
    const double c_total = model.net_load_pf(n);
    const double common = r_drv * c_total;
    for (const layout::SinkSegments& sink : route.sinks) {
      // Along this sink's own L: each segment's resistance sees half its
      // own capacitance plus everything downstream of it (the remaining
      // wire of this L plus the sink pin cap).
      const double c_pin = nl.cell_of(sink.pin.gate).input_cap_pf;
      double downstream_len = sink.length();
      double delay = common;
      for (const layout::Segment& seg : sink.segments) {
        const double len = seg.length();
        downstream_len -= len;
        const double r_seg = len * opt.res_per_um;
        const double c_half = 0.5 * len * opt.cap_per_um;
        const double c_down = downstream_len * opt.cap_per_um + c_pin;
        delay += r_seg * (c_half + c_down);
      }
      out[n].push_back({sink.pin, delay});
    }
  }
  return out;
}

std::vector<double> worst_sink_delay(
    const std::vector<std::vector<SinkDelay>>& sink_delays, size_t num_nets) {
  TKA_ASSERT(sink_delays.size() == num_nets);
  std::vector<double> worst(num_nets, 0.0);
  for (size_t n = 0; n < num_nets; ++n) {
    for (const SinkDelay& s : sink_delays[n]) {
      worst[n] = std::max(worst[n], s.wire_delay_ns);
    }
  }
  return worst;
}

}  // namespace tka::sta
