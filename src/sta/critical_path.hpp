// Critical-path extraction and slack computation on top of an StaResult.
// The top-k analysis must consider the critical and near-critical paths
// (paper §1); slacks identify the near-critical net set.
#pragma once

#include <vector>

#include "sta/analyzer.hpp"

namespace tka::sta {

/// One timing path: nets from a primary input to a sink, latest-arrival.
struct TimingPath {
  std::vector<net::NetId> nets;  ///< PI first, sink last
  double arrival = 0.0;          ///< LAT at the sink
};

/// The single worst path ending at `sink` (by LAT backtracking).
TimingPath worst_path_to(const net::Netlist& nl, const StaResult& sta,
                         net::NetId sink);

/// The circuit's critical path (worst path to the worst primary output).
TimingPath critical_path(const net::Netlist& nl, const StaResult& sta);

/// Per-net slack against the circuit's worst arrival: slack(n) = required(n)
/// - lat(n), where required times propagate backward from every primary
/// output anchored at max_lat.
std::vector<double> net_slacks(const net::Netlist& nl, const StaResult& sta);

/// Nets with slack <= threshold (the near-critical set).
std::vector<net::NetId> near_critical_nets(const net::Netlist& nl,
                                           const StaResult& sta,
                                           double slack_threshold);

}  // namespace tka::sta
