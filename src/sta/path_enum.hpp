// K-worst timing-path enumeration. The top-k analysis must consider the
// critical *and near-critical* paths (paper §1); this module enumerates
// complete PI-to-PO paths in exactly decreasing arrival order, so callers
// can walk as deep into the near-critical set as they need.
#pragma once

#include <vector>

#include "sta/critical_path.hpp"

namespace tka::sta {

/// The `count` worst paths across all primary outputs, sorted by arrival
/// descending. Fewer are returned when the circuit has fewer paths.
///
/// Implementation: best-first search over partial paths grown backward
/// from the POs; a partial path's priority is lat(head) + (suffix delay),
/// which equals the true arrival of the best completion, so paths pop in
/// exact order.
std::vector<TimingPath> k_worst_paths(const net::Netlist& nl, const StaResult& sta,
                                      size_t count);

}  // namespace tka::sta
