#include "sta/delay_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::sta {

double DelayModel::net_load_pf(net::NetId n) const {
  const net::Net& net = nl_->net(n);
  double load = par_->ground_cap(n);
  load += opt_.miller_factor * par_->total_coupling_cap(n);
  for (const net::PinRef& pin : net.fanouts) {
    load += nl_->cell_of(pin.gate).input_cap_pf;
  }
  if (net.driver != net::kInvalidGate) {
    load += nl_->cell_of(net.driver).output_cap_pf;
  }
  return load;
}

double DelayModel::driver_res_kohm(net::NetId n) const {
  const net::Net& net = nl_->net(n);
  const double wire_half = 0.5 * par_->wire_res(n);
  if (net.driver == net::kInvalidGate) return kPadResKohm + wire_half;
  return nl_->cell_of(net.driver).drive_res_kohm + wire_half;
}

double DelayModel::gate_delay_ns(net::GateId gate) const {
  const net::Gate& g = nl_->gate(gate);
  const net::CellType& cell = nl_->cell_of(gate);
  const double load = net_load_pf(g.output);
  const double r_wire = par_->wire_res(g.output);
  return cell.intrinsic_delay_ns + (cell.drive_res_kohm + 0.5 * r_wire) * load;
}

double DelayModel::gate_trans_ns(net::GateId gate) const {
  const net::Gate& g = nl_->gate(gate);
  const net::CellType& cell = nl_->cell_of(gate);
  const double load = net_load_pf(g.output);
  const double r_wire = par_->wire_res(g.output);
  const double t = opt_.trans_factor * (cell.drive_res_kohm + 0.5 * r_wire) * load;
  return std::max(t, opt_.min_trans_ns);
}

double DelayModel::pi_trans_ns(net::NetId n) const {
  TKA_ASSERT(nl_->net(n).is_primary_input);
  const double load = net_load_pf(n);
  const double t = opt_.trans_factor * driver_res_kohm(n) * load;
  return std::max(t, opt_.min_trans_ns);
}

}  // namespace tka::sta
