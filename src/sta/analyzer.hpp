// Static timing analysis: propagates earliest/latest arrival times (t50)
// and transitions from the primary inputs through the DAG using the linear
// delay model.
//
// The analyzer accepts an optional per-net LAT "bump" — extra latest-path
// delay injected at a net. The iterative noise engine (noise/iterative.*)
// uses bumps to fold the previous iteration's delay noise back into the
// timing windows; the top-k engine uses them to widen individual aggressor
// windows for higher-order aggressors.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sta/delay_model.hpp"
#include "sta/timing_graph.hpp"

namespace tka::sta {

/// Per-PI arrival specification.
struct InputArrival {
  double eat = 0.0;
  double lat = 0.0;  ///< >= eat; a nonzero spread creates window diversity
};

/// STA controls.
struct StaOptions {
  /// Arrival lookup per primary-input net; nets not present default to 0/0.
  std::function<InputArrival(net::NetId)> input_arrival;
};

/// Full STA result.
struct StaResult {
  WindowTable windows;             ///< per net
  std::vector<double> gate_delay;  ///< per gate (pin-to-pin, ns)
  std::vector<double> gate_trans;  ///< per gate output transition (ns)
  double max_lat = 0.0;            ///< worst arrival over primary outputs
  net::NetId worst_po = net::kInvalidNet;
};

/// Runs STA. `lat_bump`, when given, must have one entry per net; the value
/// is added to the net's LAT as it is computed (and propagates downstream).
StaResult run_sta(const net::Netlist& nl, const DelayModel& model,
                  const StaOptions& options = {},
                  const std::vector<double>* lat_bump = nullptr);

}  // namespace tka::sta
