#include "sta/path_enum.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace tka::sta {
namespace {

// A partial path: suffix nets from `head` to a PO, plus the gate delays
// accumulated along the suffix. Priority = lat(head) + suffix_delay = the
// exact arrival of the best full path completing this suffix.
struct Partial {
  double priority = 0.0;
  double suffix_delay = 0.0;
  net::NetId head = net::kInvalidNet;
  std::vector<net::NetId> suffix;  // head first, PO last

  bool operator<(const Partial& other) const {
    return priority < other.priority;  // max-heap
  }
};

}  // namespace

std::vector<TimingPath> k_worst_paths(const net::Netlist& nl, const StaResult& sta,
                                      size_t count) {
  std::priority_queue<Partial> queue;
  for (net::NetId po : nl.primary_outputs()) {
    Partial p;
    p.head = po;
    p.suffix = {po};
    p.suffix_delay = 0.0;
    p.priority = sta.windows[po].lat;
    queue.push(std::move(p));
  }

  std::vector<TimingPath> out;
  while (!queue.empty() && out.size() < count) {
    Partial cur = queue.top();
    queue.pop();
    const net::Net& head = nl.net(cur.head);
    if (head.driver == net::kInvalidGate) {
      // Complete path: head is a PI.
      TimingPath path;
      path.nets = cur.suffix;
      path.arrival = cur.priority;
      out.push_back(std::move(path));
      continue;
    }
    const net::Gate& g = nl.gate(head.driver);
    const double d = sta.gate_delay[head.driver];
    for (net::NetId in : g.inputs) {
      Partial next;
      next.head = in;
      next.suffix.reserve(cur.suffix.size() + 1);
      next.suffix.push_back(in);
      next.suffix.insert(next.suffix.end(), cur.suffix.begin(), cur.suffix.end());
      next.suffix_delay = cur.suffix_delay + d;
      next.priority = sta.windows[in].lat + next.suffix_delay;
      queue.push(std::move(next));
    }
  }
  return out;
}

}  // namespace tka::sta
