// Per-sink Elmore wire delays over the estimated routes.
//
// The main delay model lumps each net's RC at its driver (DESIGN.md §2);
// this module computes the classic first-moment (Elmore) delay separately
// for every sink pin of every net, for reporting and for bounding the
// lumped model's error on long multi-fanout nets. Routes are per-sink
// L-shapes (layout/router), so each sink's path is its own horizontal +
// vertical run from the driver:
//
//   t_sink = R_drv * C_net_total + sum_seg R_seg * (C_seg/2 + C_downstream)
#pragma once

#include <vector>

#include "layout/extractor.hpp"
#include "layout/router.hpp"
#include "sta/delay_model.hpp"

namespace tka::sta {

/// Elmore delay of one sink pin.
struct SinkDelay {
  net::PinRef pin;
  double wire_delay_ns = 0.0;  ///< wire-only part (excludes the gate)
};

/// Per-net, per-sink Elmore delays. `routes` must come from
/// layout::route_all on the same netlist; `opt` supplies the per-um RC
/// constants that produced the extraction.
std::vector<std::vector<SinkDelay>> elmore_sink_delays(
    const net::Netlist& nl, const DelayModel& model,
    const std::vector<layout::Route>& routes,
    const layout::ExtractorOptions& opt);

/// Worst sink wire delay per net (0 for sink-less nets).
std::vector<double> worst_sink_delay(
    const std::vector<std::vector<SinkDelay>>& sink_delays, size_t num_nets);

}  // namespace tka::sta
