#include "sta/analyzer.hpp"

#include <algorithm>

#include "net/topo.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace tka::sta {

StaResult run_sta(const net::Netlist& nl, const DelayModel& model,
                  const StaOptions& options, const std::vector<double>* lat_bump) {
  if (lat_bump != nullptr) TKA_ASSERT(lat_bump->size() == nl.num_nets());
  obs::ScopedSpan span("sta.run");
  static obs::Counter& c_runs = obs::registry().counter("sta.runs");
  static obs::Histogram& h_seconds =
      obs::registry().histogram("sta.run_seconds", 1e-6, 100.0);
  obs::ScopedHistogramTimer timer(h_seconds);
  c_runs.add(1);

  StaResult result;
  result.windows.assign(nl.num_nets(), TimingWindow{});
  result.gate_delay.assign(nl.num_gates(), 0.0);
  result.gate_trans.assign(nl.num_gates(), 0.0);

  for (net::GateId g = 0; g < nl.num_gates(); ++g) {
    result.gate_delay[g] = model.gate_delay_ns(g);
    result.gate_trans[g] = model.gate_trans_ns(g);
  }

  for (net::NetId id : net::topological_nets(nl)) {
    const net::Net& n = nl.net(id);
    TimingWindow& w = result.windows[id];
    if (n.driver == net::kInvalidGate) {
      InputArrival arr;
      if (options.input_arrival) arr = options.input_arrival(id);
      TKA_ASSERT(arr.lat >= arr.eat);
      w.eat = arr.eat;
      w.lat = arr.lat;
      w.trans_early = w.trans_late = model.pi_trans_ns(id);
    } else {
      const net::Gate& g = nl.gate(n.driver);
      double eat = std::numeric_limits<double>::infinity();
      double lat = -std::numeric_limits<double>::infinity();
      for (net::NetId in : g.inputs) {
        const TimingWindow& wi = result.windows[in];
        eat = std::min(eat, wi.eat);
        lat = std::max(lat, wi.lat);
      }
      const double d = result.gate_delay[n.driver];
      w.eat = eat + d;
      w.lat = lat + d;
      w.trans_early = w.trans_late = result.gate_trans[n.driver];
    }
    if (lat_bump != nullptr) w.lat += (*lat_bump)[id];
    TKA_ASSERT(w.lat >= w.eat);
  }

  result.max_lat = -std::numeric_limits<double>::infinity();
  for (net::NetId id : nl.primary_outputs()) {
    if (result.windows[id].lat > result.max_lat) {
      result.max_lat = result.windows[id].lat;
      result.worst_po = id;
    }
  }
  if (result.worst_po == net::kInvalidNet) {
    // No declared primary outputs: fall back to the globally latest net.
    for (net::NetId id = 0; id < nl.num_nets(); ++id) {
      if (result.windows[id].lat > result.max_lat) {
        result.max_lat = result.windows[id].lat;
        result.worst_po = id;
      }
    }
  }
  return result;
}

}  // namespace tka::sta
