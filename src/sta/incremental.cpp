#include "sta/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::sta {
namespace {

constexpr double kEps = 1e-15;

bool window_equal(const TimingWindow& a, const TimingWindow& b) {
  return std::abs(a.eat - b.eat) < kEps && std::abs(a.lat - b.lat) < kEps &&
         std::abs(a.trans_early - b.trans_early) < kEps &&
         std::abs(a.trans_late - b.trans_late) < kEps;
}

}  // namespace

IncrementalSta::IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                               const StaOptions& options)
    : nl_(&nl), model_(&model), options_(options) {
  result_ = run_sta(nl, model, options);
  level_ = net::net_levels(nl);
}

void IncrementalSta::invalidate_net(net::NetId net) {
  TKA_ASSERT(net < nl_->num_nets());
  dirty_.insert({level_[net], net});
}

void IncrementalSta::recompute_net(net::NetId id) {
  const net::Net& n = nl_->net(id);
  TimingWindow w;
  if (n.driver == net::kInvalidGate) {
    InputArrival arr;
    if (options_.input_arrival) arr = options_.input_arrival(id);
    w.eat = arr.eat;
    w.lat = arr.lat;
    w.trans_early = w.trans_late = model_->pi_trans_ns(id);
  } else {
    // Refresh the driver's delay first (its load may have changed).
    result_.gate_delay[n.driver] = model_->gate_delay_ns(n.driver);
    result_.gate_trans[n.driver] = model_->gate_trans_ns(n.driver);
    const net::Gate& g = nl_->gate(n.driver);
    double eat = std::numeric_limits<double>::infinity();
    double lat = -std::numeric_limits<double>::infinity();
    for (net::NetId in : g.inputs) {
      eat = std::min(eat, result_.windows[in].eat);
      lat = std::max(lat, result_.windows[in].lat);
    }
    w.eat = eat + result_.gate_delay[n.driver];
    w.lat = lat + result_.gate_delay[n.driver];
    w.trans_early = w.trans_late = result_.gate_trans[n.driver];
  }
  const bool changed = !window_equal(w, result_.windows[id]);
  result_.windows[id] = w;
  if (changed) {
    for (const net::PinRef& pin : nl_->net(id).fanouts) {
      const net::NetId out = nl_->gate(pin.gate).output;
      dirty_.insert({level_[out], out});
    }
  }
}

size_t IncrementalSta::update() {
  size_t changed_nets = 0;
  while (!dirty_.empty()) {
    const auto [lv, id] = *dirty_.begin();
    dirty_.erase(dirty_.begin());
    const TimingWindow before = result_.windows[id];
    recompute_net(id);
    if (!window_equal(before, result_.windows[id])) ++changed_nets;
  }
  // Refresh the worst-PO summary.
  result_.max_lat = -std::numeric_limits<double>::infinity();
  result_.worst_po = net::kInvalidNet;
  for (net::NetId id : nl_->primary_outputs()) {
    if (result_.windows[id].lat > result_.max_lat) {
      result_.max_lat = result_.windows[id].lat;
      result_.worst_po = id;
    }
  }
  if (result_.worst_po == net::kInvalidNet) {
    for (net::NetId id = 0; id < nl_->num_nets(); ++id) {
      if (result_.windows[id].lat > result_.max_lat) {
        result_.max_lat = result_.windows[id].lat;
        result_.worst_po = id;
      }
    }
  }
  return changed_nets;
}

}  // namespace tka::sta
