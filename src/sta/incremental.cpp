#include "sta/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::sta {

IncrementalSta::IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                               const StaOptions& options)
    : nl_(&nl), model_(&model), options_(options) {
  result_ = run_sta(nl, model, options);
  level_ = net::net_levels(nl);
}

IncrementalSta::IncrementalSta(const net::Netlist& nl, const DelayModel& model,
                               const StaOptions& options, StaResult state,
                               std::vector<double> lat_bump)
    : nl_(&nl),
      model_(&model),
      options_(options),
      result_(std::move(state)),
      bump_(std::move(lat_bump)) {
  TKA_ASSERT(result_.windows.size() == nl.num_nets());
  TKA_ASSERT(result_.gate_delay.size() == nl.num_gates());
  TKA_ASSERT(bump_.empty() || bump_.size() == nl.num_nets());
  level_ = net::net_levels(nl);
}

void IncrementalSta::invalidate_net(net::NetId net) {
  TKA_ASSERT(net < nl_->num_nets());
  dirty_.insert({level_[net], net});
}

void IncrementalSta::set_lat_bump(net::NetId net, double bump) {
  TKA_ASSERT(net < nl_->num_nets());
  if (bump_.empty()) {
    if (bump == 0.0) return;
    bump_.assign(nl_->num_nets(), 0.0);
  }
  if (bump_[net] == bump) return;  // exact: replaying equal bumps is free
  bump_[net] = bump;
  dirty_.insert({level_[net], net});
}

void IncrementalSta::recompute_net(net::NetId id) {
  const net::Net& n = nl_->net(id);
  TimingWindow w;
  if (n.driver == net::kInvalidGate) {
    InputArrival arr;
    if (options_.input_arrival) arr = options_.input_arrival(id);
    w.eat = arr.eat;
    w.lat = arr.lat;
    w.trans_early = w.trans_late = model_->pi_trans_ns(id);
  } else {
    // Refresh the driver's delay first (its load may have changed).
    result_.gate_delay[n.driver] = model_->gate_delay_ns(n.driver);
    result_.gate_trans[n.driver] = model_->gate_trans_ns(n.driver);
    const net::Gate& g = nl_->gate(n.driver);
    double eat = std::numeric_limits<double>::infinity();
    double lat = -std::numeric_limits<double>::infinity();
    for (net::NetId in : g.inputs) {
      eat = std::min(eat, result_.windows[in].eat);
      lat = std::max(lat, result_.windows[in].lat);
    }
    w.eat = eat + result_.gate_delay[n.driver];
    w.lat = lat + result_.gate_delay[n.driver];
    w.trans_early = w.trans_late = result_.gate_trans[n.driver];
  }
  if (!bump_.empty()) w.lat += bump_[id];
  const bool changed = !(w == result_.windows[id]);
  result_.windows[id] = w;
  if (changed) {
    for (const net::PinRef& pin : nl_->net(id).fanouts) {
      const net::NetId out = nl_->gate(pin.gate).output;
      dirty_.insert({level_[out], out});
    }
  }
}

size_t IncrementalSta::update() {
  last_changed_.clear();
  while (!dirty_.empty()) {
    const auto [lv, id] = *dirty_.begin();
    dirty_.erase(dirty_.begin());
    const TimingWindow before = result_.windows[id];
    recompute_net(id);
    if (!(before == result_.windows[id])) last_changed_.push_back(id);
  }
  std::sort(last_changed_.begin(), last_changed_.end());
  // Refresh the worst-PO summary.
  result_.max_lat = -std::numeric_limits<double>::infinity();
  result_.worst_po = net::kInvalidNet;
  for (net::NetId id : nl_->primary_outputs()) {
    if (result_.windows[id].lat > result_.max_lat) {
      result_.max_lat = result_.windows[id].lat;
      result_.worst_po = id;
    }
  }
  if (result_.worst_po == net::kInvalidNet) {
    for (net::NetId id = 0; id < nl_->num_nets(); ++id) {
      if (result_.windows[id].lat > result_.max_lat) {
        result_.max_lat = result_.windows[id].lat;
        result_.worst_po = id;
      }
    }
  }
  return last_changed_.size();
}

}  // namespace tka::sta
