#include "gen/benchmark_suite.hpp"

#include "util/error.hpp"

namespace tka::gen {

const std::vector<BenchmarkSpec>& benchmark_specs() {
  static const std::vector<BenchmarkSpec> specs = {
      {"i1", 59, 46, 232, 101},     {"i2", 222, 221, 706, 102},
      {"i3", 132, 126, 551, 103},   {"i4", 236, 230, 1181, 104},
      {"i5", 204, 138, 1835, 105},  {"i6", 735, 668, 7298, 106},
      {"i7", 937, 870, 9605, 107},  {"i8", 1609, 1528, 10235, 108},
      {"i9", 1018, 955, 14140, 109},{"i10", 3379, 3155, 18318, 110},
  };
  return specs;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const BenchmarkSpec& s : benchmark_specs()) {
    if (name == s.name) return s;
  }
  throw Error("benchmark_spec: unknown circuit '" + name + "'");
}

GeneratedCircuit build_benchmark(const BenchmarkSpec& spec) {
  GeneratorParams p;
  p.name = spec.name;
  p.num_gates = spec.gates;
  p.target_couplings = spec.couplings;
  p.seed = spec.seed;
  // Denser coupling targets need a wider capture window so enough candidate
  // pairs exist.
  const double density = static_cast<double>(spec.couplings) / spec.gates;
  if (density > 8.0) {
    p.extractor.max_coupling_dist = 16.0;
  } else if (density > 4.0) {
    p.extractor.max_coupling_dist = 12.0;
  }
  return generate_circuit(p);
}

}  // namespace tka::gen
