#include "gen/circuit_generator.hpp"

#include <algorithm>
#include <cmath>

#include "layout/router.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace tka::gen {

sta::StaOptions GeneratedCircuit::sta_options() const {
  sta::StaOptions opt;
  const std::vector<sta::InputArrival>* table = &arrivals;
  opt.input_arrival = [table](net::NetId n) {
    return n < table->size() ? (*table)[n] : sta::InputArrival{};
  };
  return opt;
}

GeneratedCircuit generate_circuit(const GeneratorParams& p) {
  TKA_ASSERT(p.num_gates >= 1);
  Rng rng(p.seed);
  const net::CellLibrary& lib = net::CellLibrary::default_library();

  GeneratedCircuit out;
  out.name = p.name;
  out.netlist = std::make_unique<net::Netlist>(lib, p.name);
  net::Netlist& nl = *out.netlist;

  // Primary inputs.
  const int num_pi =
      std::max(4, static_cast<int>(std::lround(p.num_gates * p.pi_fraction)));
  std::vector<net::NetId> available;  // nets a new gate may read
  for (int i = 0; i < num_pi; ++i) {
    available.push_back(nl.add_primary_input("pi" + std::to_string(i)));
  }

  // Logic depth grows slowly with size so big circuits get long paths.
  const int depth = std::max(p.min_depth,
                             static_cast<int>(std::lround(8 + p.num_gates / 90.0)));
  // Gates per level: roughly uniform with random wobble.
  std::vector<int> per_level(depth, 0);
  for (int g = 0; g < p.num_gates; ++g) {
    per_level[static_cast<size_t>(rng.next_below(depth))]++;
  }

  // Candidate cells by fanin count.
  std::vector<std::vector<size_t>> cells_by_fanin(5);
  for (int nin = 1; nin <= 4; ++nin) {
    cells_by_fanin[nin] = lib.cells_with_inputs(nin);
  }

  int gate_counter = 0;
  size_t level_start = 0;  // first index in `available` of the previous level
  for (int lv = 0; lv < depth; ++lv) {
    const size_t prev_size = available.size();
    for (int g = 0; g < per_level[lv]; ++g) {
      // Fanin count biased toward 2 (typical mapped netlists).
      const double r = rng.next_double();
      int nin = r < 0.25 ? 1 : (r < 0.80 ? 2 : (r < 0.95 ? 3 : 4));
      nin = std::min<int>(nin, static_cast<int>(prev_size));
      while (cells_by_fanin[nin].empty() && nin > 1) --nin;
      const std::vector<size_t>& cands = cells_by_fanin[nin];
      const size_t cell = cands[rng.next_below(cands.size())];

      // Pick distinct fanins, biased toward the most recent level for
      // locality (short wires, realistic coupling structure).
      std::vector<net::NetId> fanins;
      int guard = 0;
      while (static_cast<int>(fanins.size()) < nin && guard++ < 200) {
        size_t idx;
        if (rng.next_bool(0.7) && prev_size > level_start) {
          idx = level_start + rng.next_below(prev_size - level_start);
        } else {
          idx = rng.next_below(prev_size);
        }
        const net::NetId cand = available[idx];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
          fanins.push_back(cand);
        }
      }
      if (static_cast<int>(fanins.size()) < nin) continue;  // degenerate; skip

      const net::NetId outn =
          nl.add_gate(cell, fanins, "g" + std::to_string(gate_counter++));
      available.push_back(outn);
    }
    level_start = prev_size;
  }

  // Primary outputs: every net without fanout — or, with single_sink, one
  // AND2 reduction tree over all dangling nets.
  if (p.single_sink) {
    std::vector<net::NetId> dangling;
    for (net::NetId n = 0; n < nl.num_nets(); ++n) {
      if (nl.net(n).fanouts.empty()) dangling.push_back(n);
    }
    const size_t and2 = lib.index_of("AND2X1");
    int sink_counter = 0;
    while (dangling.size() > 1) {
      std::vector<net::NetId> next;
      for (size_t i = 0; i + 1 < dangling.size(); i += 2) {
        next.push_back(nl.add_gate(and2, {dangling[i], dangling[i + 1]},
                                   "sink" + std::to_string(sink_counter++)));
      }
      if (dangling.size() % 2 == 1) next.push_back(dangling.back());
      dangling = std::move(next);
    }
    nl.mark_primary_output(dangling.front());
  } else {
    for (net::NetId n = 0; n < nl.num_nets(); ++n) {
      if (nl.net(n).fanouts.empty()) nl.mark_primary_output(n);
    }
  }
  nl.validate();

  // Place, route, extract.
  layout::PlacerOptions placer = p.placer;
  placer.seed = p.seed ^ 0x9E3779B97F4A7C15ULL;
  const layout::Placement placement = layout::grid_place(nl, placer);
  const std::vector<layout::Route> routes = layout::route_all(nl, placement);
  layout::ExtractorOptions ex = p.extractor;
  ex.max_couplings = p.target_couplings;
  out.parasitics = layout::extract(nl, routes, ex);

  // Randomized input arrivals -> diverse timing windows. The spread scales
  // with the circuit's own noiseless delay so window diversity stays
  // proportionally realistic across design sizes. Each PI draws from its
  // own counter-based stream Rng(seed', pi_index) — not from the shared
  // structure RNG — so the loop parallelizes with results that depend only
  // on (seed, pi_index), never on iteration order or thread count.
  out.arrivals.assign(nl.num_nets(), sta::InputArrival{});
  const sta::DelayModel model(nl, out.parasitics);
  const double base_delay = sta::run_sta(nl, model).max_lat;
  const double spread = std::max(p.arrival_spread_frac * base_delay, 1e-3);
  const double width = std::max(p.window_width_frac * base_delay, 1e-4);
  const std::vector<net::NetId>& pis = nl.primary_inputs();
  const std::uint64_t arrival_seed = p.seed ^ 0xA5A5A5A55A5A5A5AULL;
  runtime::parallel_for(p.threads, 0, pis.size(), [&](std::size_t pi) {
    Rng stream(arrival_seed, pi);
    sta::InputArrival a;
    a.eat = stream.next_double(0.0, spread);
    a.lat = a.eat + stream.next_double(0.0, width);
    out.arrivals[pis[pi]] = a;
  });
  return out;
}

}  // namespace tka::gen
