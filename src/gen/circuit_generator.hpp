// Synthetic benchmark circuits. Stands in for the paper's commercial
// synthesis + APR + extraction flow (DESIGN.md §5): deterministic random
// levelized DAGs from the default cell library, grid-placed, L-routed and
// extracted, with randomized primary-input arrival windows so aggressor/
// victim timing windows have realistic diversity.
#pragma once

#include <cstddef>

#include <memory>
#include <string>

#include "layout/extractor.hpp"
#include "layout/placer.hpp"
#include "net/netlist.hpp"
#include "sta/analyzer.hpp"

namespace tka::gen {

/// Generation parameters.
struct GeneratorParams {
  std::string name = "gen";
  int num_gates = 100;
  size_t target_couplings = 500;  ///< extractor keeps the largest N
  std::uint64_t seed = 1;

  int min_depth = 8;              ///< logic depth lower bound
  double pi_fraction = 0.12;      ///< primary inputs per gate

  /// Worker threads for the per-PI arrival randomization (each PI has its
  /// own counter-based RNG stream, so the output is identical for any
  /// count). 0 = auto (TKA_THREADS / hardware concurrency), 1 = serial.
  int threads = 0;

  /// PI arrivals are randomized as a fraction of the circuit's noiseless
  /// delay (measured after extraction), so timing-window diversity scales
  /// with design size the way real input constraints do.
  double arrival_spread_frac = 0.15;  ///< arrival randomization range
  double window_width_frac = 0.02;    ///< max PI window width (lat - eat)

  /// Merge all dangling nets through an AND2 reduction tree into a single
  /// primary output — the paper's single "sink node" formulation. With one
  /// sink, per-victim dominance (Theorem 1) is exact for the global
  /// objective, which the brute-force validation (Table 1) relies on.
  bool single_sink = false;
  layout::PlacerOptions placer;
  layout::ExtractorOptions extractor;
};

/// A generated design: netlist + parasitics + input arrivals.
struct GeneratedCircuit {
  std::string name;
  std::unique_ptr<net::Netlist> netlist;
  layout::Parasitics parasitics{0};
  std::vector<sta::InputArrival> arrivals;  ///< indexed by net id

  /// StaOptions wired to this circuit's arrival table.
  sta::StaOptions sta_options() const;
};

/// Builds a circuit. Deterministic in `params.seed`.
GeneratedCircuit generate_circuit(const GeneratorParams& params);

}  // namespace tka::gen
