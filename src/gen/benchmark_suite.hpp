// The i1..i10 benchmark suite (DESIGN.md §5): synthetic circuits matched to
// the (gates, nets, coupling caps) triples published in the paper's
// Table 2. Deterministic seeds; build once, reuse across benches and tests.
#pragma once

#include <cstddef>

#include <vector>

#include "gen/circuit_generator.hpp"

namespace tka::gen {

/// Descriptor of one suite circuit (the paper's published size triple).
struct BenchmarkSpec {
  const char* name;
  int gates;
  int nets;          ///< paper's net count (informational; ours will differ)
  size_t couplings;  ///< coupling-cap target, matched exactly (or capped by
                     ///< the number of extractable pairs)
  std::uint64_t seed;
};

/// All ten specs, i1..i10.
const std::vector<BenchmarkSpec>& benchmark_specs();

/// Spec by name ("i1".."i10"); throws tka::Error when unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

/// Builds the circuit for a spec.
GeneratedCircuit build_benchmark(const BenchmarkSpec& spec);

}  // namespace tka::gen
